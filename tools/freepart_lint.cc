/**
 * @file
 * freepart_lint: CI gate over the partition-boundary linter
 * (DESIGN.md §12). Replays the 23 Table 6 app models against fresh
 * FreePart runtimes, runs the four L1-L4 detectors, diffs the
 * findings against a checked-in baseline, and exits nonzero when a
 * *new* finding at or above the severity threshold appears.
 *
 * Exit codes:
 *   0  clean — no new findings at/above --threshold
 *   1  usage or I/O error
 *   2  new findings at/above --threshold (or --fix failed to converge)
 *
 * Modes:
 *   freepart_lint --baseline LINT_baseline.json --json report.json
 *       the CI gate: lint real inputs, fail only on new findings
 *   freepart_lint --write-baseline LINT_baseline.json
 *       accept the current findings as the baseline
 *   freepart_lint --plant all --fix
 *       self-check: plant all four defect classes, repair to a fixed
 *       point, fail unless the planted defects all converge away
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/partition_lint.hh"
#include "util/logging.hh"

using namespace freepart;
using namespace freepart::analysis;

namespace {

struct Options {
    std::string jsonPath;          //!< write the report here ("" = no)
    std::string baselinePath;      //!< accepted-findings file
    std::string writeBaselinePath; //!< write findings as baseline
    std::string plant;             //!< "", "all", "l1".."l4"
    bool fix = false;
    size_t maxApps = 0; //!< 0 = all 23 models
    LintSeverity threshold = LintSeverity::Warning;
    std::set<osim::Syscall> slack; //!< extra --slack names
};

void
usage(std::ostream &out)
{
    out << "usage: freepart_lint [options]\n"
           "  --json PATH            write the JSON report to PATH\n"
           "  --baseline PATH        accepted findings; only NEW "
           "findings gate\n"
           "  --write-baseline PATH  record current findings as the "
           "baseline\n"
           "  --fix                  apply repairs and re-lint to a "
           "fixed point\n"
           "  --plant all|l1..l4     inject synthetic defects "
           "(self-check)\n"
           "  --apps N               replay only the first N app "
           "models\n"
           "  --threshold SEV        gate severity: info|warning|"
           "error (default warning)\n"
           "  --slack NAME[,NAME]    extra syscalls tolerated in "
           "allowlists\n"
           "  --help                 this text\n"
           "\n"
           "Defect classes: L1 by-value-crossing, L2 wide-allowlist,\n"
           "L3 miscategorized-api, L4 registry-inconsistency.\n";
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "freepart_lint: " << flag
                      << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = nullptr;
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(std::cout);
            std::exit(0);
        } else if (!std::strcmp(arg, "--json")) {
            if (!(val = need(i, arg)))
                return false;
            opts.jsonPath = val;
        } else if (!std::strcmp(arg, "--baseline")) {
            if (!(val = need(i, arg)))
                return false;
            opts.baselinePath = val;
        } else if (!std::strcmp(arg, "--write-baseline")) {
            if (!(val = need(i, arg)))
                return false;
            opts.writeBaselinePath = val;
        } else if (!std::strcmp(arg, "--fix")) {
            opts.fix = true;
        } else if (!std::strcmp(arg, "--plant")) {
            if (!(val = need(i, arg)))
                return false;
            opts.plant = val;
            if (opts.plant != "all" && opts.plant != "l1" &&
                opts.plant != "l2" && opts.plant != "l3" &&
                opts.plant != "l4") {
                std::cerr << "freepart_lint: bad --plant value '"
                          << opts.plant << "'\n";
                return false;
            }
        } else if (!std::strcmp(arg, "--apps")) {
            if (!(val = need(i, arg)))
                return false;
            opts.maxApps = static_cast<size_t>(std::atol(val));
        } else if (!std::strcmp(arg, "--threshold")) {
            if (!(val = need(i, arg)))
                return false;
            try {
                opts.threshold = lintSeverityFromName(val);
            } catch (const util::FatalError &err) {
                std::cerr << "freepart_lint: " << err.what() << "\n";
                return false;
            }
        } else if (!std::strcmp(arg, "--slack")) {
            if (!(val = need(i, arg)))
                return false;
            std::stringstream names(val);
            std::string name;
            while (std::getline(names, name, ',')) {
                try {
                    opts.slack.insert(osim::syscallFromName(name));
                } catch (const util::FatalError &) {
                    std::cerr << "freepart_lint: unknown syscall '"
                              << name << "' in --slack\n";
                    return false;
                }
            }
        } else {
            std::cerr << "freepart_lint: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return false;
        }
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts))
        return 1;

    fw::ApiRegistry registry = fw::buildFullRegistry();
    HybridCategorizer categorizer(registry);
    Categorization cats = categorizer.categorizeAll();

    CollectOptions collect;
    collect.maxApps = opts.maxApps;
    std::cerr << "freepart_lint: replaying "
              << (opts.maxApps ? std::to_string(opts.maxApps)
                               : std::string("all"))
              << " Table 6 app models...\n";
    LintInput input = collectLintInput(registry, cats, collect);

    if (opts.plant == "all")
        plantAllDefects(input);
    else if (opts.plant == "l1")
        plantByValueCrossing(input);
    else if (opts.plant == "l2")
        plantWideAllowlist(input);
    else if (opts.plant == "l3")
        plantMiscategorization(input);
    else if (opts.plant == "l4")
        plantRegistryInconsistency(input);

    LintConfig config;
    for (osim::Syscall call : opts.slack)
        config.allowlistSlack.insert(call);
    PartitionLinter linter(config);

    bool converged = true;
    size_t repairRounds = 0;
    LintReport report;
    if (opts.fix) {
        report = linter.fixToConvergence(input, 8, &repairRounds);
        converged = report.repairableCount() == 0;
        std::cerr << "freepart_lint: --fix ran " << repairRounds
                  << " repair round(s); "
                  << report.findings.size()
                  << " finding(s) remain (" << report.repairableCount()
                  << " repairable)\n";
    } else {
        report = linter.lint(input);
    }

    LintBaseline baseline;
    bool haveBaseline = false;
    if (!opts.baselinePath.empty()) {
        std::string text;
        if (!readFile(opts.baselinePath, text)) {
            std::cerr << "freepart_lint: cannot read baseline "
                      << opts.baselinePath << "\n";
            return 1;
        }
        baseline = parseBaseline(text);
        haveBaseline = true;
    }

    if (!opts.jsonPath.empty()) {
        std::string json = reportToJson(
            report, input, haveBaseline ? &baseline : nullptr);
        if (!writeFile(opts.jsonPath, json)) {
            std::cerr << "freepart_lint: cannot write "
                      << opts.jsonPath << "\n";
            return 1;
        }
    }

    if (!opts.writeBaselinePath.empty()) {
        if (!writeFile(opts.writeBaselinePath,
                       baselineToJson(report))) {
            std::cerr << "freepart_lint: cannot write "
                      << opts.writeBaselinePath << "\n";
            return 1;
        }
        std::cerr << "freepart_lint: wrote "
                  << report.findings.size() << " accepted finding(s) "
                  << "to " << opts.writeBaselinePath << "\n";
        return 0;
    }

    // Human summary on stderr, one line per gating finding.
    size_t gating = 0;
    for (const LintFinding &finding : report.findings) {
        bool fresh = !haveBaseline ||
                     !baseline.acceptedKeys.count(finding.key);
        bool above = finding.severity >= opts.threshold;
        std::cerr << "  [" << lintDefectCode(finding.defect) << "/"
                  << lintSeverityName(finding.severity) << "] "
                  << (fresh ? "" : "(baselined) ") << finding.subject
                  << ": " << finding.message << "\n";
        if (finding.repairable())
            std::cerr << "      repair: " << finding.repair.describe()
                      << "\n";
        if (fresh && above)
            ++gating;
    }
    std::cerr << "freepart_lint: " << report.findings.size()
              << " finding(s), " << gating << " new at/above "
              << lintSeverityName(opts.threshold) << "\n";

    if (opts.fix && !converged) {
        std::cerr << "freepart_lint: --fix did not reach a fixed "
                     "point\n";
        return 2;
    }
    return gating ? 2 : 0;
}
