#!/usr/bin/env bash
# Fail if build output is tracked in git. The build tree is generated
# locally (see ROADMAP.md tier-1 verify line) and must never be
# committed; .gitignore covers it, but this guard catches force-adds.
set -euo pipefail

cd "$(dirname "$0")/.."

bad=$(git ls-files -- 'build/' '*.o' '*.a' '*.so' || true)
if [[ -n "$bad" ]]; then
    echo "error: build artifacts are tracked in git:" >&2
    echo "$bad" | head -20 >&2
    echo "(run: git rm -r --cached build/ and commit)" >&2
    exit 1
fi
echo "ok: no build artifacts tracked"
