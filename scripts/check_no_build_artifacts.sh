#!/usr/bin/env bash
# Fail if build output is tracked in git. Build trees are generated
# locally (see ROADMAP.md tier-1 verify line) under any build* name
# (build, build-rel, build-asan, build-lint, ...) and must never be
# committed; .gitignore covers them, but this guard catches force-adds.
#
# Also guard against bench temp JSONs at the repo root: bench runs
# drop table9.json / cluster.json / lint_report.json next to the
# binary, and only the curated baselines (BENCH_freepart.json,
# LINT_baseline.json) belong in git.
set -euo pipefail

cd "$(dirname "$0")/.."

bad=$(git ls-files -- 'build*/' '*.o' '*.a' '*.so' || true)
if [[ -n "$bad" ]]; then
    echo "error: build artifacts are tracked in git:" >&2
    echo "$bad" | head -20 >&2
    echo "(run: git rm -r --cached <dir> and commit)" >&2
    exit 1
fi

allowed_json='BENCH_freepart.json LINT_baseline.json'
bad_json=$(git ls-files -- '*.json' | grep -v '/' || true)
for f in $bad_json; do
    case " $allowed_json " in
    *" $f "*) ;;
    *)
        echo "error: unexpected JSON tracked at repo root: $f" >&2
        echo "(bench/lint temp output? only $allowed_json are" \
             "curated baselines — git rm --cached $f)" >&2
        exit 1
        ;;
    esac
done

echo "ok: no build artifacts tracked"
