#!/usr/bin/env python3
"""Run every bench binary with --json and merge the results.

Usage:
    scripts/bench_summary.py [--build-dir build] [--out BENCH_freepart.json]
                             [--only bench_a,bench_b]
    scripts/bench_summary.py --markdown [--out BENCH_freepart.json]

With --markdown, no benches run: the checked-in summary is rendered
as the README's "Performance results" table (paste the output there
after regenerating the baseline).

Each bench binary accepts `--json <path>` and writes a flat
{"bench": ..., "metrics": {...}} object (bench_ipc_primitives emits
google-benchmark's native JSON instead; its per-benchmark real times
are folded into the same shape). The merged document, keyed by bench
name, is what gets checked in as BENCH_freepart.json and what CI
diffs against for perf regressions (scripts/check_perf_regression.py).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Deterministic simulated-time benches. bench_ipc_primitives is
# wall-clock (google-benchmark) and therefore NOT part of the
# checked-in summary by default: its numbers vary by machine.
DEFAULT_BENCHES = [
    "bench_table9_overhead",
    "bench_fault_recovery",
    "bench_shard_cluster",
    "bench_chaos_cluster",
    "bench_serve_autoscale",
    "bench_placement",
    "bench_pipeline_parallel",
    "bench_ldc_ablation",
    "bench_table12_ldc_stats",
    "bench_fig13_overhead",
    "bench_ablation_features",
    "bench_table1_techniques",
    "bench_table2_categorization",
    "bench_table3_vuln_apis",
    "bench_table4_api_examples",
    "bench_table5_attack_matrix",
    "bench_table6_applications",
    "bench_table7_syscalls",
    "bench_table10_granularity",
    "bench_table11_coverage",
    "bench_fig4_partitions",
    "bench_fig6_pipeline",
    "bench_fig7_cve_study",
    "bench_a6_subpartition",
    "bench_case_studies",
]


def run_bench(build_dir, bench):
    exe = os.path.join(build_dir, "bench", bench)
    if not os.path.exists(exe):
        print(f"warning: {exe} not built, skipped", file=sys.stderr)
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        path = tmp.name
    try:
        proc = subprocess.run(
            [exe, "--json", path],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if proc.returncode != 0:
            print(f"error: {bench} exited {proc.returncode}",
                  file=sys.stderr)
            return None
        with open(path) as handle:
            doc = json.load(handle)
    finally:
        os.unlink(path)
    if "metrics" in doc:
        return doc["metrics"]
    # google-benchmark layout: fold real_time per benchmark.
    metrics = {}
    for entry in doc.get("benchmarks", []):
        metrics[entry["name"].replace("/", "_")] = entry["real_time"]
    return metrics


# (headline label, bench key, metric key, format, paper reference)
MARKDOWN_ROWS = [
    ("Runtime overhead vs no isolation", "table9_overhead",
     "freepart_overhead_pct", "{:.2f}%", "5.7% (Table 9)"),
    ("Mean per-app overhead, 23 apps", "fig13_overhead",
     "mean_overhead_pct", "{:.2f}%", "3.68% (Fig. 13)"),
    ("Lazy share of copy operations", "table12_ldc_stats",
     "lazy_share", "{:.3f}", "~0.95 (Table 12)"),
    ("Pipeline-parallel speedup (async vs sync)", "pipeline_parallel",
     "pipeline_speedup", "{:.2f}x", "n/a (this substrate)"),
    ("Pipeline overlap fraction (flip speculation)", "pipeline_parallel",
     "mean_overlap_fraction", "{:.1%}", "n/a (this substrate)"),
    ("Pipeline overlap fraction (barrier mode)", "pipeline_parallel",
     "nospec_mean_overlap_fraction", "{:.1%}", "n/a (this substrate)"),
    ("Speculation rollback rate, Table 6 replay", "pipeline_parallel",
     "rollback_rate", "{:.1%}", "n/a (this substrate)"),
    ("Cluster speedup, 4 shards uniform keys", "shard_cluster",
     "speedup_uniform_4shards", "{:.2f}x", "n/a (this substrate)"),
    ("Cluster throughput, 4 shards", "shard_cluster",
     "throughput_uniform_4shards", "{:,.0f} calls/s",
     "n/a (this substrate)"),
    ("Zipf imbalance, optimized placement (vs hash)", "placement",
     "imbalance_zipf_opt_4shards", "{:.2f}", "n/a (this substrate)"),
    ("Zipf cross-shard rate, optimized (vs hash)", "placement",
     "cross_rate_zipf_opt_4shards", "{:.3f}", "n/a (this substrate)"),
    ("Mean MTTR under fault injection", "fault_recovery",
     "mean_mttr_us", "{:,.0f} us", "n/a (this substrate)"),
    ("Cluster availability under 10% chaos", "chaos_cluster",
     "availability_at_10pct", "{:.1%}", "n/a (this substrate)"),
    ("Cluster p99 latency under 10% chaos", "chaos_cluster",
     "p99_us_at_10pct", "{:,.0f} us", "n/a (this substrate)"),
    ("Cluster p999 latency under 10% chaos", "chaos_cluster",
     "p999_us_at_10pct", "{:,.0f} us", "n/a (this substrate)"),
    ("Serving SLO attainment, autoscaled Zipf ramp", "serve_autoscale",
     "slo_attainment_autoscaled", "{:.1%}", "n/a (this substrate)"),
    ("Serving p99 latency, autoscaled", "serve_autoscale",
     "p99_us_autoscaled", "{:,.0f} us", "n/a (this substrate)"),
    ("Shard-seconds saved vs static max cluster", "serve_autoscale",
     "shard_seconds_saved_pct", "{:.1f}%", "n/a (this substrate)"),
    ("Warm vs cold session start speedup", "serve_autoscale",
     "warm_vs_cold_speedup", "{:.1f}x", "n/a (this substrate)"),
    ("Attacks mitigated", "table5_attack_matrix",
     "attacks_mitigated", "{:.0f}", "all (Table 5)"),
]


def render_markdown(path):
    with open(path) as handle:
        summary = json.load(handle)
    lines = [
        "| Metric | Measured | Paper |",
        "|---|---|---|",
    ]
    for label, bench, metric, fmt, paper in MARKDOWN_ROWS:
        metrics = summary.get(bench)
        if metrics is None or metric not in metrics:
            print(f"warning: {bench}.{metric} missing from {path}",
                  file=sys.stderr)
            continue
        lines.append(
            f"| {label} | {fmt.format(metrics[metric])} | {paper} |")
    print("\n".join(lines))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_freepart.json")
    parser.add_argument("--only",
                        help="comma-separated subset of bench names")
    parser.add_argument("--markdown", action="store_true",
                        help="render --out as a markdown table "
                             "instead of running benches")
    args = parser.parse_args()

    if args.markdown:
        render_markdown(args.out)
        return 0

    benches = (args.only.split(",") if args.only else DEFAULT_BENCHES)
    summary = {}
    failed = False
    for bench in benches:
        print(f"running {bench} ...", flush=True)
        metrics = run_bench(args.build_dir, bench)
        if metrics is None:
            failed = True
            continue
        summary[bench.removeprefix("bench_")] = metrics

    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(summary)} benches)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
