#!/usr/bin/env python3
"""CI perf gate: compare fresh bench runs against the checked-in
baseline and fail on a meaningful regression.

Usage:
    scripts/check_perf_regression.py --current /tmp/t9.json \
        [--current-cluster /tmp/cluster.json] \
        [--current-pipeline /tmp/pipeline.json] \
        [--baseline BENCH_freepart.json] [--tolerance 0.20]

Three gates:
  * bench_table9_overhead (--current, required): FreePart's simulated
    overhead over the no-isolation baseline (freepart_overhead_pct).
    A >20% relative increase (e.g. 5.2% -> 6.3%) fails.
  * bench_shard_cluster (--current-cluster, optional): aggregate
    4-shard uniform-key throughput and its speedup over 1 shard. A
    >20% relative decrease of either fails, as does any acked call
    lost in the kill-one-shard drill.
  * bench_pipeline_parallel (--current-pipeline, optional): mean
    async-vs-sync speedup over the pipeline-shaped Table 6 apps,
    with flip speculation on (DESIGN.md §15). Fails below the
    absolute 1.2x speedup floor or 0.5 overlap-fraction floor, on a
    >tolerance relative drop from the baseline (including the
    speculation-off numbers, which must keep reproducing the
    pre-speculation behaviour), if the rollback rate exceeds 20% on
    the Table 6 replay, or if any replay (speculative, adversarial,
    or repeated) is not byte-identical and deterministic.
  * bench_chaos_cluster (--current-chaos, optional): availability of
    the 23-app open-loop replay under the seeded 10% chaos plan.
    Fails below the absolute 95% availability floor, if any acked
    call is lost (either run), if the shed rate exceeds 10%, or if
    the chaos run does not replay deterministically.
  * bench_serve_autoscale (--current-serving, optional): the multi-
    tenant Zipf ramp through the SLO-driven autoscaler. Fails below
    the absolute 95% SLO-attainment floor, if any acked call is lost
    in any of the three runs, if the autoscaler does not strictly
    undercut the static max cluster's shard-seconds, if warm agent
    checkout is not cheaper than cold spawn, if the policy never
    scaled in both directions, or if the run does not replay
    deterministically.
  * bench_placement (--current-placement, optional): load-aware
    placement vs consistent hashing under the Zipf workload. Fails
    if the optimized 4-shard imbalance exceeds the absolute 1.2
    floor, if the optimized cross-shard call rate is not strictly
    below hash at 4 and 8 shards, if any re-partition epoch moved
    more than its migrationMaxBytes budget, or if the optimize-and-
    migrate loop does not replay deterministically.

The whole run is deterministic simulated time, so any drift is a real
code change, not machine noise; the tolerance only absorbs intentional
small cost-model tweaks.
"""

import argparse
import json
import sys


def check_max(name, baseline, current, tolerance):
    """Gate a metric that must not increase beyond tolerance."""
    limit = baseline * (1.0 + tolerance)
    print(f"{name}: baseline {baseline:.2f}, current {current:.2f}, "
          f"limit {limit:.2f}")
    if current > limit:
        print(f"FAIL: {name} regressed beyond tolerance",
              file=sys.stderr)
        return False
    return True


def check_min(name, baseline, current, tolerance):
    """Gate a metric that must not decrease beyond tolerance."""
    limit = baseline * (1.0 - tolerance)
    print(f"{name}: baseline {baseline:.2f}, current {current:.2f}, "
          f"floor {limit:.2f}")
    if current < limit:
        print(f"FAIL: {name} regressed beyond tolerance",
              file=sys.stderr)
        return False
    return True


EPILOG = """\
the gate set (all deterministic simulated time):
  table9 overhead   freepart_overhead_pct must not rise > tolerance
  shard cluster     4-shard throughput + speedup must not drop >
                    tolerance; zero acked calls lost in the kill drill
  pipeline          speedup >= 1.2x absolute, overlap >= 0.5,
                    rollback rate <= 20%, no > tolerance drop (spec
                    on or off), replays byte-identical + deterministic
  chaos             availability >= 95%, shed rate <= 10%, zero lost
                    acks, deterministic replay
  placement         optimized imbalance <= 1.2 absolute, optimized
                    cross-shard rate strictly below hash at 4 and 8
                    shards, per-epoch moved bytes within budget,
                    deterministic replay
  serving           SLO attainment >= 95%, zero lost acks, autoscaled
                    shard-seconds strictly below static max, warm
                    checkout strictly below cold, >= 1 scale-up and
                    >= 1 scale-down, deterministic replay

after an intentional perf change, refresh the checked-in baseline
with the same bench outputs instead of hand-editing it:

  scripts/check_perf_regression.py --current table9.json \\
      --current-cluster cluster.json --current-pipeline pipeline.json \\
      --current-chaos chaos.json --current-placement placement.json \\
      --current-serving serving.json --write-baseline

the partition-boundary lint gate (freepart_lint + LINT_baseline.json)
runs as its own CI job; see DESIGN.md §12.
"""


def write_baseline(args):
    """Refresh the --baseline file's sections from the --current*
    bench outputs, leaving sections without a fresh input alone."""
    with open(args.baseline) as handle:
        baseline_doc = json.load(handle)

    sections = [("table9_overhead", args.current),
                ("shard_cluster", args.current_cluster),
                ("pipeline_parallel", args.current_pipeline),
                ("chaos_cluster", args.current_chaos),
                ("placement", args.current_placement),
                ("serve_autoscale", args.current_serving)]
    for section, path in sections:
        if not path:
            continue
        with open(path) as handle:
            baseline_doc[section] = json.load(handle)["metrics"]
        print(f"updated {section} from {path}")

    with open(args.baseline, "w") as handle:
        json.dump(baseline_doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.baseline}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="CI perf gate over the checked-in bench baseline",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", required=True,
                        help="JSON written by bench_table9_overhead --json")
    parser.add_argument("--current-cluster",
                        help="JSON written by bench_shard_cluster --json")
    parser.add_argument("--current-pipeline",
                        help="JSON written by bench_pipeline_parallel "
                             "--json")
    parser.add_argument("--current-chaos",
                        help="JSON written by bench_chaos_cluster "
                             "--json")
    parser.add_argument("--current-placement",
                        help="JSON written by bench_placement --json")
    parser.add_argument("--current-serving",
                        help="JSON written by bench_serve_autoscale "
                             "--json")
    parser.add_argument("--baseline", default="BENCH_freepart.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative drift (0.20 = 20%%)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="instead of gating, update the --baseline "
                             "file's sections from the provided "
                             "--current* files (documented refresh "
                             "after an intentional perf change)")
    args = parser.parse_args()

    if args.write_baseline:
        return write_baseline(args)

    with open(args.baseline) as handle:
        baseline_doc = json.load(handle)

    with open(args.current) as handle:
        current_doc = json.load(handle)
    ok = check_max(
        "FreePart overhead pct",
        baseline_doc["table9_overhead"]["freepart_overhead_pct"],
        current_doc["metrics"]["freepart_overhead_pct"],
        args.tolerance)

    if args.current_cluster:
        cluster_base = baseline_doc["shard_cluster"]
        with open(args.current_cluster) as handle:
            cluster = json.load(handle)["metrics"]
        ok &= check_min(
            "cluster 4-shard throughput (calls/s)",
            cluster_base["throughput_uniform_4shards"],
            cluster["throughput_uniform_4shards"], args.tolerance)
        ok &= check_min(
            "cluster 4-shard speedup",
            cluster_base["speedup_uniform_4shards"],
            cluster["speedup_uniform_4shards"], args.tolerance)
        lost = cluster["kill_lost_acks"]
        print(f"kill-one-shard lost acks: {lost}")
        if lost != 0:
            print("FAIL: acknowledged calls lost in the kill drill",
                  file=sys.stderr)
            ok = False

    if args.current_pipeline:
        pipe_base = baseline_doc["pipeline_parallel"]
        with open(args.current_pipeline) as handle:
            pipe = json.load(handle)["metrics"]
        speedup = pipe["pipeline_speedup"]
        # Absolute floor first: the feature must stay clearly faster
        # than serialized accounting regardless of what the baseline
        # says.
        print(f"pipeline speedup: current {speedup:.2f}, floor 1.20")
        if speedup < 1.2:
            print("FAIL: pipeline speedup below the 1.2x floor",
                  file=sys.stderr)
            ok = False
        ok &= check_min(
            "pipeline speedup vs baseline",
            pipe_base["pipeline_speedup"], speedup, args.tolerance)
        if pipe["byte_identical"] != 1:
            print("FAIL: async replay not byte-identical to sync",
                  file=sys.stderr)
            ok = False
        overlap = pipe["pipeline_overlap_fraction"]
        print(f"pipeline overlap fraction (speculative, shaped "
              f"subset): {overlap:.3f}, floor 0.50")
        if overlap < 0.50:
            print("FAIL: speculative overlap fraction below the "
                  "0.5 floor", file=sys.stderr)
            ok = False
        rollback = pipe["rollback_rate"]
        print(f"pipeline speculation rollback rate: {rollback:.3f}, "
              f"ceiling 0.20")
        if rollback > 0.20:
            print("FAIL: speculation rollback rate above the 20% "
                  "ceiling on the Table 6 replay", file=sys.stderr)
            ok = False
        if pipe["deterministic_replay"] != 1:
            print("FAIL: speculative replay not deterministic across "
                  "repeated runs", file=sys.stderr)
            ok = False
        if pipe["adv_byte_identical"] != 1:
            print("FAIL: misprediction-heavy adversarial replay not "
                  "byte-identical to sync", file=sys.stderr)
            ok = False
        if "nospec_pipeline_speedup" in pipe_base:
            # The gate-off path must keep reproducing the pre-
            # speculation numbers: drift here means the disabled
            # configuration changed behaviour.
            ok &= check_min(
                "barrier-mode (speculation off) speedup vs baseline",
                pipe_base["nospec_pipeline_speedup"],
                pipe["nospec_pipeline_speedup"], args.tolerance)
            ok &= check_min(
                "barrier-mode (speculation off) overlap vs baseline",
                pipe_base["nospec_mean_overlap_fraction"],
                pipe["nospec_mean_overlap_fraction"], args.tolerance)

    if args.current_chaos:
        with open(args.current_chaos) as handle:
            chaos = json.load(handle)["metrics"]
        avail = chaos["availability_at_10pct"]
        print(f"chaos availability at 10%: {avail:.4f}, floor 0.95")
        if avail < 0.95:
            print("FAIL: availability under chaos below the 95% floor",
                  file=sys.stderr)
            ok = False
        shed = chaos["shed_rate_at_10pct"]
        print(f"chaos shed rate at 10%: {shed:.4f}, ceiling 0.10")
        if shed > 0.10:
            print("FAIL: shed rate under chaos above the 10% ceiling",
                  file=sys.stderr)
            ok = False
        lost = chaos["lost_acks_at_0pct"] + chaos["lost_acks_at_10pct"]
        print(f"chaos lost acks (clean + chaos): {lost}")
        if lost != 0:
            print("FAIL: acknowledged calls lost under chaos",
                  file=sys.stderr)
            ok = False
        if chaos["deterministic_replay"] != 1:
            print("FAIL: chaos run did not replay deterministically",
                  file=sys.stderr)
            ok = False

    if args.current_placement:
        place_base = baseline_doc.get("placement", {})
        with open(args.current_placement) as handle:
            place = json.load(handle)["metrics"]
        imbalance = place["imbalance_zipf_opt_4shards"]
        print(f"placement optimized 4-shard imbalance: "
              f"{imbalance:.3f}, ceiling 1.20")
        if imbalance > 1.2:
            print("FAIL: optimized placement imbalance above the "
                  "1.2 ceiling", file=sys.stderr)
            ok = False
        for shards in (4, 8):
            hash_rate = place[f"cross_rate_zipf_hash_{shards}shards"]
            opt_rate = place[f"cross_rate_zipf_opt_{shards}shards"]
            print(f"placement cross-shard rate at {shards} shards: "
                  f"hash {hash_rate:.4f}, optimized {opt_rate:.4f}")
            if opt_rate >= hash_rate:
                print(f"FAIL: optimized cross-shard rate not below "
                      f"hash at {shards} shards", file=sys.stderr)
                ok = False
        if place["budget_respected"] != 1:
            print("FAIL: a re-partition epoch exceeded its "
                  "migrationMaxBytes budget", file=sys.stderr)
            ok = False
        if place["deterministic_replay"] != 1:
            print("FAIL: placement run did not replay "
                  "deterministically", file=sys.stderr)
            ok = False
        if place_base:
            # Relative drift guards against quiet optimizer decay once
            # a baseline section exists.
            ok &= check_max(
                "placement optimized 4-shard cross rate vs baseline",
                place_base["cross_rate_zipf_opt_4shards"],
                place["cross_rate_zipf_opt_4shards"], args.tolerance)
            ok &= check_min(
                "placement optimized 4-shard throughput vs baseline",
                place_base["throughput_zipf_opt_4shards"],
                place["throughput_zipf_opt_4shards"], args.tolerance)

    if args.current_serving:
        serve_base = baseline_doc.get("serve_autoscale", {})
        with open(args.current_serving) as handle:
            serve = json.load(handle)["metrics"]
        slo = serve["slo_attainment_autoscaled"]
        print(f"serving SLO attainment (autoscaled): {slo:.4f}, "
              f"floor 0.95")
        if slo < 0.95:
            print("FAIL: autoscaled SLO attainment below the 95% "
                  "floor", file=sys.stderr)
            ok = False
        lost = (serve["lost_acks_autoscaled"] +
                serve["lost_acks_static"] +
                serve["lost_acks_coldstart"])
        print(f"serving lost acks (auto + static + cold): {lost}")
        if lost != 0:
            print("FAIL: acknowledged calls lost in a serving run",
                  file=sys.stderr)
            ok = False
        auto_ss = serve["shard_seconds_autoscaled"]
        static_ss = serve["shard_seconds_static"]
        print(f"serving shard-seconds: autoscaled {auto_ss:.4f}, "
              f"static max {static_ss:.4f}")
        if auto_ss >= static_ss:
            print("FAIL: autoscaler did not undercut the static max "
                  "cluster's shard-seconds", file=sys.stderr)
            ok = False
        warm = serve["warm_checkout_mean_us"]
        cold = serve["cold_checkout_mean_us"]
        print(f"serving session start: warm {warm:.1f} us, "
              f"cold {cold:.1f} us")
        if warm >= cold:
            print("FAIL: warm agent checkout not cheaper than cold "
                  "spawn", file=sys.stderr)
            ok = False
        ups = serve["scale_up_events"]
        downs = serve["scale_down_events"]
        print(f"serving scale events: {ups} up, {downs} down")
        if ups < 1 or downs < 1:
            print("FAIL: autoscaler never scaled in both directions "
                  "over the ramp", file=sys.stderr)
            ok = False
        if serve["deterministic_replay"] != 1:
            print("FAIL: serving run did not replay "
                  "deterministically", file=sys.stderr)
            ok = False
        if serve_base:
            # Drift guards once a baseline section exists: tail
            # latency must not quietly balloon, nor the capacity
            # savings quietly erode.
            ok &= check_max(
                "serving autoscaled p99 vs baseline",
                serve_base["p99_us_autoscaled"],
                serve["p99_us_autoscaled"], args.tolerance)
            ok &= check_min(
                "serving shard-seconds saved pct vs baseline",
                serve_base["shard_seconds_saved_pct"],
                serve["shard_seconds_saved_pct"], args.tolerance)

    if not ok:
        return 1
    print("ok: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
