#!/usr/bin/env python3
"""CI perf gate: compare a fresh bench_table9_overhead run against
the checked-in baseline and fail on a meaningful overhead regression.

Usage:
    scripts/check_perf_regression.py --current /tmp/t9.json \
        [--baseline BENCH_freepart.json] [--tolerance 0.20]

The gated metric is FreePart's simulated overhead over the
no-isolation baseline (freepart_overhead_pct). The whole run is
deterministic simulated time, so any drift is a real code change, not
machine noise; the tolerance only absorbs intentional small cost-model
tweaks. A >20% relative increase (e.g. 5.2% -> 6.3%) fails.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True,
                        help="JSON written by bench_table9_overhead --json")
    parser.add_argument("--baseline", default="BENCH_freepart.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative increase (0.20 = +20%%)")
    args = parser.parse_args()

    with open(args.baseline) as handle:
        baseline_doc = json.load(handle)
    baseline = baseline_doc["table9_overhead"]["freepart_overhead_pct"]

    with open(args.current) as handle:
        current_doc = json.load(handle)
    current = current_doc["metrics"]["freepart_overhead_pct"]

    limit = baseline * (1.0 + args.tolerance)
    print(f"FreePart overhead: baseline {baseline:.2f}%, "
          f"current {current:.2f}%, limit {limit:.2f}%")
    if current > limit:
        print("FAIL: simulated RPC/copy overhead regressed beyond "
              "tolerance", file=sys.stderr)
        return 1
    print("ok: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
