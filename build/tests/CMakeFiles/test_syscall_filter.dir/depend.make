# Empty dependencies file for test_syscall_filter.
# This may be replaced when dependencies are built.
