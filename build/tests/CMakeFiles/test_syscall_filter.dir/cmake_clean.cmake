file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_filter.dir/test_syscall_filter.cc.o"
  "CMakeFiles/test_syscall_filter.dir/test_syscall_filter.cc.o.d"
  "test_syscall_filter"
  "test_syscall_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
