file(REMOVE_RECURSE
  "CMakeFiles/test_fw_data.dir/test_fw_data.cc.o"
  "CMakeFiles/test_fw_data.dir/test_fw_data.cc.o.d"
  "test_fw_data"
  "test_fw_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
