# Empty dependencies file for test_runtime_edge.
# This may be replaced when dependencies are built.
