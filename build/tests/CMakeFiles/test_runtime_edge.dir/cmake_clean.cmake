file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_edge.dir/test_runtime_edge.cc.o"
  "CMakeFiles/test_runtime_edge.dir/test_runtime_edge.cc.o.d"
  "test_runtime_edge"
  "test_runtime_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
