# Empty dependencies file for test_minidnn.
# This may be replaced when dependencies are built.
