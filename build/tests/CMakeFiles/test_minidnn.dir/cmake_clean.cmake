file(REMOVE_RECURSE
  "CMakeFiles/test_minidnn.dir/test_minidnn.cc.o"
  "CMakeFiles/test_minidnn.dir/test_minidnn.cc.o.d"
  "test_minidnn"
  "test_minidnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minidnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
