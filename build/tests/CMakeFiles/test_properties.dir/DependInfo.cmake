
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/test_properties.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fw/CMakeFiles/fp_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
