file(REMOVE_RECURSE
  "CMakeFiles/test_minicv_ops.dir/test_minicv_ops.cc.o"
  "CMakeFiles/test_minicv_ops.dir/test_minicv_ops.cc.o.d"
  "test_minicv_ops"
  "test_minicv_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minicv_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
