# Empty dependencies file for test_minicv_ops.
# This may be replaced when dependencies are built.
