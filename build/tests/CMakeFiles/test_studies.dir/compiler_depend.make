# Empty compiler generated dependencies file for test_studies.
# This may be replaced when dependencies are built.
