file(REMOVE_RECURSE
  "CMakeFiles/test_studies.dir/test_studies.cc.o"
  "CMakeFiles/test_studies.dir/test_studies.cc.o.d"
  "test_studies"
  "test_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
