file(REMOVE_RECURSE
  "CMakeFiles/test_ipc.dir/test_ipc.cc.o"
  "CMakeFiles/test_ipc.dir/test_ipc.cc.o.d"
  "test_ipc"
  "test_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
