# Empty dependencies file for bench_table5_attack_matrix.
# This may be replaced when dependencies are built.
