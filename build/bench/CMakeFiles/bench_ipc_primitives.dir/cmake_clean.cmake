file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc_primitives.dir/bench_ipc_primitives.cc.o"
  "CMakeFiles/bench_ipc_primitives.dir/bench_ipc_primitives.cc.o.d"
  "bench_ipc_primitives"
  "bench_ipc_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
