# Empty compiler generated dependencies file for bench_ipc_primitives.
# This may be replaced when dependencies are built.
