# Empty compiler generated dependencies file for bench_table12_ldc_stats.
# This may be replaced when dependencies are built.
