# Empty dependencies file for bench_table6_applications.
# This may be replaced when dependencies are built.
