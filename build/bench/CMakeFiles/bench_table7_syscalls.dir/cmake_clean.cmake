file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_syscalls.dir/bench_table7_syscalls.cc.o"
  "CMakeFiles/bench_table7_syscalls.dir/bench_table7_syscalls.cc.o.d"
  "bench_table7_syscalls"
  "bench_table7_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
