# Empty dependencies file for bench_table2_categorization.
# This may be replaced when dependencies are built.
