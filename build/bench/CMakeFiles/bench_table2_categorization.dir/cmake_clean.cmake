file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_categorization.dir/bench_table2_categorization.cc.o"
  "CMakeFiles/bench_table2_categorization.dir/bench_table2_categorization.cc.o.d"
  "bench_table2_categorization"
  "bench_table2_categorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_categorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
