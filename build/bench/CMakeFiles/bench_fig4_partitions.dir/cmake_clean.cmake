file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_partitions.dir/bench_fig4_partitions.cc.o"
  "CMakeFiles/bench_fig4_partitions.dir/bench_fig4_partitions.cc.o.d"
  "bench_fig4_partitions"
  "bench_fig4_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
