# Empty dependencies file for bench_case_studies.
# This may be replaced when dependencies are built.
