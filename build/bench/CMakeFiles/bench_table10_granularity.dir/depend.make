# Empty dependencies file for bench_table10_granularity.
# This may be replaced when dependencies are built.
