# Empty compiler generated dependencies file for bench_fig7_cve_study.
# This may be replaced when dependencies are built.
