file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_overhead.dir/bench_table9_overhead.cc.o"
  "CMakeFiles/bench_table9_overhead.dir/bench_table9_overhead.cc.o.d"
  "bench_table9_overhead"
  "bench_table9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
