# Empty dependencies file for bench_a6_subpartition.
# This may be replaced when dependencies are built.
