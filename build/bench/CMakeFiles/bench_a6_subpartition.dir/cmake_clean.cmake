file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_subpartition.dir/bench_a6_subpartition.cc.o"
  "CMakeFiles/bench_a6_subpartition.dir/bench_a6_subpartition.cc.o.d"
  "bench_a6_subpartition"
  "bench_a6_subpartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_subpartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
