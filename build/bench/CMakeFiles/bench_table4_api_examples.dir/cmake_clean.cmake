file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_api_examples.dir/bench_table4_api_examples.cc.o"
  "CMakeFiles/bench_table4_api_examples.dir/bench_table4_api_examples.cc.o.d"
  "bench_table4_api_examples"
  "bench_table4_api_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_api_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
