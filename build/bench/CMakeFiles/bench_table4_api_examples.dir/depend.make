# Empty dependencies file for bench_table4_api_examples.
# This may be replaced when dependencies are built.
