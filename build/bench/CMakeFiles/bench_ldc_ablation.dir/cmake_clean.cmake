file(REMOVE_RECURSE
  "CMakeFiles/bench_ldc_ablation.dir/bench_ldc_ablation.cc.o"
  "CMakeFiles/bench_ldc_ablation.dir/bench_ldc_ablation.cc.o.d"
  "bench_ldc_ablation"
  "bench_ldc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
