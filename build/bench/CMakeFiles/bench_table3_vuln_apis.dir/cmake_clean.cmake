file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_vuln_apis.dir/bench_table3_vuln_apis.cc.o"
  "CMakeFiles/bench_table3_vuln_apis.dir/bench_table3_vuln_apis.cc.o.d"
  "bench_table3_vuln_apis"
  "bench_table3_vuln_apis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_vuln_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
