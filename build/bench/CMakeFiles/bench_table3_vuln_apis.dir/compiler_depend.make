# Empty compiler generated dependencies file for bench_table3_vuln_apis.
# This may be replaced when dependencies are built.
