file(REMOVE_RECURSE
  "CMakeFiles/omr_grader.dir/omr_grader.cc.o"
  "CMakeFiles/omr_grader.dir/omr_grader.cc.o.d"
  "omr_grader"
  "omr_grader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_grader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
