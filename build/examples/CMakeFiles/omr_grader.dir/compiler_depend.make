# Empty compiler generated dependencies file for omr_grader.
# This may be replaced when dependencies are built.
