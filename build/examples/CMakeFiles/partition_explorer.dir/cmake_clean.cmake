file(REMOVE_RECURSE
  "CMakeFiles/partition_explorer.dir/partition_explorer.cc.o"
  "CMakeFiles/partition_explorer.dir/partition_explorer.cc.o.d"
  "partition_explorer"
  "partition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
