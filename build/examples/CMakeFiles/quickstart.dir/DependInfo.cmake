
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/fp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/fp_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fw/CMakeFiles/fp_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
