file(REMOVE_RECURSE
  "CMakeFiles/drone_tracker.dir/drone_tracker.cc.o"
  "CMakeFiles/drone_tracker.dir/drone_tracker.cc.o.d"
  "drone_tracker"
  "drone_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
