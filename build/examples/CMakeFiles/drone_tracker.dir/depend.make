# Empty dependencies file for drone_tracker.
# This may be replaced when dependencies are built.
