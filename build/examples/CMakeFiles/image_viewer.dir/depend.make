# Empty dependencies file for image_viewer.
# This may be replaced when dependencies are built.
