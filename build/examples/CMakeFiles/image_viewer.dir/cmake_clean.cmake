file(REMOVE_RECURSE
  "CMakeFiles/image_viewer.dir/image_viewer.cc.o"
  "CMakeFiles/image_viewer.dir/image_viewer.cc.o.d"
  "image_viewer"
  "image_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
