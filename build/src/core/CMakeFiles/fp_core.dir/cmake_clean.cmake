file(REMOVE_RECURSE
  "CMakeFiles/fp_core.dir/partition_plan.cc.o"
  "CMakeFiles/fp_core.dir/partition_plan.cc.o.d"
  "CMakeFiles/fp_core.dir/runtime.cc.o"
  "CMakeFiles/fp_core.dir/runtime.cc.o.d"
  "libfp_core.a"
  "libfp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
