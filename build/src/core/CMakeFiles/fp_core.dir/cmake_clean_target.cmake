file(REMOVE_RECURSE
  "libfp_core.a"
)
