# Empty compiler generated dependencies file for fp_core.
# This may be replaced when dependencies are built.
