file(REMOVE_RECURSE
  "CMakeFiles/fp_util.dir/logging.cc.o"
  "CMakeFiles/fp_util.dir/logging.cc.o.d"
  "CMakeFiles/fp_util.dir/table.cc.o"
  "CMakeFiles/fp_util.dir/table.cc.o.d"
  "libfp_util.a"
  "libfp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
