file(REMOVE_RECURSE
  "CMakeFiles/fp_fw.dir/api_registry.cc.o"
  "CMakeFiles/fp_fw.dir/api_registry.cc.o.d"
  "CMakeFiles/fp_fw.dir/api_types.cc.o"
  "CMakeFiles/fp_fw.dir/api_types.cc.o.d"
  "CMakeFiles/fp_fw.dir/exec_context.cc.o"
  "CMakeFiles/fp_fw.dir/exec_context.cc.o.d"
  "CMakeFiles/fp_fw.dir/image_format.cc.o"
  "CMakeFiles/fp_fw.dir/image_format.cc.o.d"
  "CMakeFiles/fp_fw.dir/invoker.cc.o"
  "CMakeFiles/fp_fw.dir/invoker.cc.o.d"
  "CMakeFiles/fp_fw.dir/mat.cc.o"
  "CMakeFiles/fp_fw.dir/mat.cc.o.d"
  "CMakeFiles/fp_fw.dir/minicv.cc.o"
  "CMakeFiles/fp_fw.dir/minicv.cc.o.d"
  "CMakeFiles/fp_fw.dir/minicv_ops.cc.o"
  "CMakeFiles/fp_fw.dir/minicv_ops.cc.o.d"
  "CMakeFiles/fp_fw.dir/minidnn.cc.o"
  "CMakeFiles/fp_fw.dir/minidnn.cc.o.d"
  "CMakeFiles/fp_fw.dir/object_store.cc.o"
  "CMakeFiles/fp_fw.dir/object_store.cc.o.d"
  "CMakeFiles/fp_fw.dir/tensor.cc.o"
  "CMakeFiles/fp_fw.dir/tensor.cc.o.d"
  "CMakeFiles/fp_fw.dir/vuln.cc.o"
  "CMakeFiles/fp_fw.dir/vuln.cc.o.d"
  "libfp_fw.a"
  "libfp_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
