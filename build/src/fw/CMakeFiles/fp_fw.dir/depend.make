# Empty dependencies file for fp_fw.
# This may be replaced when dependencies are built.
