
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fw/api_registry.cc" "src/fw/CMakeFiles/fp_fw.dir/api_registry.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/api_registry.cc.o.d"
  "/root/repo/src/fw/api_types.cc" "src/fw/CMakeFiles/fp_fw.dir/api_types.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/api_types.cc.o.d"
  "/root/repo/src/fw/exec_context.cc" "src/fw/CMakeFiles/fp_fw.dir/exec_context.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/exec_context.cc.o.d"
  "/root/repo/src/fw/image_format.cc" "src/fw/CMakeFiles/fp_fw.dir/image_format.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/image_format.cc.o.d"
  "/root/repo/src/fw/invoker.cc" "src/fw/CMakeFiles/fp_fw.dir/invoker.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/invoker.cc.o.d"
  "/root/repo/src/fw/mat.cc" "src/fw/CMakeFiles/fp_fw.dir/mat.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/mat.cc.o.d"
  "/root/repo/src/fw/minicv.cc" "src/fw/CMakeFiles/fp_fw.dir/minicv.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/minicv.cc.o.d"
  "/root/repo/src/fw/minicv_ops.cc" "src/fw/CMakeFiles/fp_fw.dir/minicv_ops.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/minicv_ops.cc.o.d"
  "/root/repo/src/fw/minidnn.cc" "src/fw/CMakeFiles/fp_fw.dir/minidnn.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/minidnn.cc.o.d"
  "/root/repo/src/fw/object_store.cc" "src/fw/CMakeFiles/fp_fw.dir/object_store.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/object_store.cc.o.d"
  "/root/repo/src/fw/tensor.cc" "src/fw/CMakeFiles/fp_fw.dir/tensor.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/tensor.cc.o.d"
  "/root/repo/src/fw/vuln.cc" "src/fw/CMakeFiles/fp_fw.dir/vuln.cc.o" "gcc" "src/fw/CMakeFiles/fp_fw.dir/vuln.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/fp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
