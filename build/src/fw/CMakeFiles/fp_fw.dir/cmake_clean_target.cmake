file(REMOVE_RECURSE
  "libfp_fw.a"
)
