
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dynamic_tracer.cc" "src/analysis/CMakeFiles/fp_analysis.dir/dynamic_tracer.cc.o" "gcc" "src/analysis/CMakeFiles/fp_analysis.dir/dynamic_tracer.cc.o.d"
  "/root/repo/src/analysis/hybrid_categorizer.cc" "src/analysis/CMakeFiles/fp_analysis.dir/hybrid_categorizer.cc.o" "gcc" "src/analysis/CMakeFiles/fp_analysis.dir/hybrid_categorizer.cc.o.d"
  "/root/repo/src/analysis/static_analyzer.cc" "src/analysis/CMakeFiles/fp_analysis.dir/static_analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/fp_analysis.dir/static_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fw/CMakeFiles/fp_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
