file(REMOVE_RECURSE
  "libfp_analysis.a"
)
