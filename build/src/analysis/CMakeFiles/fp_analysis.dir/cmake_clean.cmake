file(REMOVE_RECURSE
  "CMakeFiles/fp_analysis.dir/dynamic_tracer.cc.o"
  "CMakeFiles/fp_analysis.dir/dynamic_tracer.cc.o.d"
  "CMakeFiles/fp_analysis.dir/hybrid_categorizer.cc.o"
  "CMakeFiles/fp_analysis.dir/hybrid_categorizer.cc.o.d"
  "CMakeFiles/fp_analysis.dir/static_analyzer.cc.o"
  "CMakeFiles/fp_analysis.dir/static_analyzer.cc.o.d"
  "libfp_analysis.a"
  "libfp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
