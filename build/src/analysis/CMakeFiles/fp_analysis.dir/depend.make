# Empty dependencies file for fp_analysis.
# This may be replaced when dependencies are built.
