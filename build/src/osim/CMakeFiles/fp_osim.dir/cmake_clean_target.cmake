file(REMOVE_RECURSE
  "libfp_osim.a"
)
