
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osim/address_space.cc" "src/osim/CMakeFiles/fp_osim.dir/address_space.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/address_space.cc.o.d"
  "/root/repo/src/osim/devices.cc" "src/osim/CMakeFiles/fp_osim.dir/devices.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/devices.cc.o.d"
  "/root/repo/src/osim/kernel.cc" "src/osim/CMakeFiles/fp_osim.dir/kernel.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/kernel.cc.o.d"
  "/root/repo/src/osim/syscall_filter.cc" "src/osim/CMakeFiles/fp_osim.dir/syscall_filter.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/syscall_filter.cc.o.d"
  "/root/repo/src/osim/syscalls.cc" "src/osim/CMakeFiles/fp_osim.dir/syscalls.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/syscalls.cc.o.d"
  "/root/repo/src/osim/vfs.cc" "src/osim/CMakeFiles/fp_osim.dir/vfs.cc.o" "gcc" "src/osim/CMakeFiles/fp_osim.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
