file(REMOVE_RECURSE
  "CMakeFiles/fp_osim.dir/address_space.cc.o"
  "CMakeFiles/fp_osim.dir/address_space.cc.o.d"
  "CMakeFiles/fp_osim.dir/devices.cc.o"
  "CMakeFiles/fp_osim.dir/devices.cc.o.d"
  "CMakeFiles/fp_osim.dir/kernel.cc.o"
  "CMakeFiles/fp_osim.dir/kernel.cc.o.d"
  "CMakeFiles/fp_osim.dir/syscall_filter.cc.o"
  "CMakeFiles/fp_osim.dir/syscall_filter.cc.o.d"
  "CMakeFiles/fp_osim.dir/syscalls.cc.o"
  "CMakeFiles/fp_osim.dir/syscalls.cc.o.d"
  "CMakeFiles/fp_osim.dir/vfs.cc.o"
  "CMakeFiles/fp_osim.dir/vfs.cc.o.d"
  "libfp_osim.a"
  "libfp_osim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_osim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
