# Empty compiler generated dependencies file for fp_osim.
# This may be replaced when dependencies are built.
