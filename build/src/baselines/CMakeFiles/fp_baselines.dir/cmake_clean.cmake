file(REMOVE_RECURSE
  "CMakeFiles/fp_baselines.dir/evaluator.cc.o"
  "CMakeFiles/fp_baselines.dir/evaluator.cc.o.d"
  "CMakeFiles/fp_baselines.dir/technique.cc.o"
  "CMakeFiles/fp_baselines.dir/technique.cc.o.d"
  "libfp_baselines.a"
  "libfp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
