# Empty dependencies file for fp_baselines.
# This may be replaced when dependencies are built.
