file(REMOVE_RECURSE
  "CMakeFiles/fp_apps.dir/app_models.cc.o"
  "CMakeFiles/fp_apps.dir/app_models.cc.o.d"
  "CMakeFiles/fp_apps.dir/drone.cc.o"
  "CMakeFiles/fp_apps.dir/drone.cc.o.d"
  "CMakeFiles/fp_apps.dir/image_viewer.cc.o"
  "CMakeFiles/fp_apps.dir/image_viewer.cc.o.d"
  "CMakeFiles/fp_apps.dir/omr_checker.cc.o"
  "CMakeFiles/fp_apps.dir/omr_checker.cc.o.d"
  "CMakeFiles/fp_apps.dir/studies.cc.o"
  "CMakeFiles/fp_apps.dir/studies.cc.o.d"
  "CMakeFiles/fp_apps.dir/workload.cc.o"
  "CMakeFiles/fp_apps.dir/workload.cc.o.d"
  "libfp_apps.a"
  "libfp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
