
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_models.cc" "src/apps/CMakeFiles/fp_apps.dir/app_models.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/app_models.cc.o.d"
  "/root/repo/src/apps/drone.cc" "src/apps/CMakeFiles/fp_apps.dir/drone.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/drone.cc.o.d"
  "/root/repo/src/apps/image_viewer.cc" "src/apps/CMakeFiles/fp_apps.dir/image_viewer.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/image_viewer.cc.o.d"
  "/root/repo/src/apps/omr_checker.cc" "src/apps/CMakeFiles/fp_apps.dir/omr_checker.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/omr_checker.cc.o.d"
  "/root/repo/src/apps/studies.cc" "src/apps/CMakeFiles/fp_apps.dir/studies.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/studies.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/apps/CMakeFiles/fp_apps.dir/workload.cc.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fw/CMakeFiles/fp_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
