# Empty compiler generated dependencies file for fp_attacks.
# This may be replaced when dependencies are built.
