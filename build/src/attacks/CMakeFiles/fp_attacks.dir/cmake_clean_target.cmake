file(REMOVE_RECURSE
  "libfp_attacks.a"
)
