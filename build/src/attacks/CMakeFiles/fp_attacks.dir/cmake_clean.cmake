file(REMOVE_RECURSE
  "CMakeFiles/fp_attacks.dir/attack_driver.cc.o"
  "CMakeFiles/fp_attacks.dir/attack_driver.cc.o.d"
  "CMakeFiles/fp_attacks.dir/cve_corpus.cc.o"
  "CMakeFiles/fp_attacks.dir/cve_corpus.cc.o.d"
  "libfp_attacks.a"
  "libfp_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
