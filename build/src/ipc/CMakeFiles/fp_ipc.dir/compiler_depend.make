# Empty compiler generated dependencies file for fp_ipc.
# This may be replaced when dependencies are built.
