
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/channel.cc" "src/ipc/CMakeFiles/fp_ipc.dir/channel.cc.o" "gcc" "src/ipc/CMakeFiles/fp_ipc.dir/channel.cc.o.d"
  "/root/repo/src/ipc/codec.cc" "src/ipc/CMakeFiles/fp_ipc.dir/codec.cc.o" "gcc" "src/ipc/CMakeFiles/fp_ipc.dir/codec.cc.o.d"
  "/root/repo/src/ipc/spsc_ring.cc" "src/ipc/CMakeFiles/fp_ipc.dir/spsc_ring.cc.o" "gcc" "src/ipc/CMakeFiles/fp_ipc.dir/spsc_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osim/CMakeFiles/fp_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
