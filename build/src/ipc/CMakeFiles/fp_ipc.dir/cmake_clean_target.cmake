file(REMOVE_RECURSE
  "libfp_ipc.a"
)
