file(REMOVE_RECURSE
  "CMakeFiles/fp_ipc.dir/channel.cc.o"
  "CMakeFiles/fp_ipc.dir/channel.cc.o.d"
  "CMakeFiles/fp_ipc.dir/codec.cc.o"
  "CMakeFiles/fp_ipc.dir/codec.cc.o.d"
  "CMakeFiles/fp_ipc.dir/spsc_ring.cc.o"
  "CMakeFiles/fp_ipc.dir/spsc_ring.cc.o.d"
  "libfp_ipc.a"
  "libfp_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
