/**
 * @file
 * A bidirectional RPC channel between the host process and one agent
 * process, built from two SPSC rings in a simulated shared-memory
 * segment with futex-accounted synchronization (§4.3, footnote 8).
 *
 * The simulation executes synchronously, so a send immediately makes
 * the message poppable on the other side; the futex/context-switch
 * latency is charged to the simulated clock via the kernel cost
 * model.
 *
 * All traffic is batch-framed: a send encodes one or more messages
 * directly into ring storage (reserve/commit, no staging buffer)
 * under a single shared FNV-1a trailer, and pays one futex wake for
 * the whole burst — or none at all inside a hot window, when the
 * peer is still busy-polling after the previous exchange (the
 * adaptive-spin fast path). Single-message send/receive wrappers are
 * batches of one.
 */

#ifndef FREEPART_IPC_CHANNEL_HH
#define FREEPART_IPC_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "ipc/codec.hh"
#include "ipc/spsc_ring.hh"
#include "osim/kernel.hh"

namespace freepart::ipc {

/** IPC traffic counters for one channel. */
struct ChannelStats {
    uint64_t requests = 0;      //!< request messages sent
    uint64_t responses = 0;     //!< response messages sent
    uint64_t delivers = 0;      //!< piggybacked object deliveries
    uint64_t batches = 0;       //!< batch frames sent
    uint64_t hotSends = 0;      //!< sends that skipped the futex wake
    uint64_t bytesSent = 0;     //!< total wire bytes in both directions
    uint64_t futexWakes = 0;    //!< synchronization wakeups charged
    uint64_t dropped = 0;       //!< frames lost to injected faults
    uint64_t corrupted = 0;     //!< frames rejected as corrupt
    uint64_t inFlightPeak = 0;  //!< deepest async in-flight queue seen
};

/**
 * Host<->agent channel over a shm segment. The first half of the
 * segment is the request ring (host -> agent), the second half the
 * response ring (agent -> host).
 */
class Channel
{
  public:
    /**
     * Create a channel between two processes.
     *
     * @param kernel     Owning kernel (provides shm + cost model).
     * @param name       Segment name, e.g. "ch:loading".
     * @param host_pid   Host-side process.
     * @param agent_pid  Agent-side process.
     * @param ring_bytes Bytes per direction.
     */
    Channel(osim::Kernel &kernel, const std::string &name,
            osim::Pid host_pid, osim::Pid agent_pid,
            size_t ring_bytes = 1 << 20);

    /**
     * Send a burst of messages host->agent as one batch frame. With
     * hot=true the agent is assumed to be busy-polling (consecutive
     * same-partition calls) and no futex wake is charged.
     */
    void sendRequestBatch(const std::vector<Message> &msgs, bool hot);

    /** Pop the pending request-side batch on the agent side. */
    bool receiveRequestBatch(std::vector<Message> &out);

    /** Send a response burst agent->host. */
    void sendResponseBatch(const std::vector<Message> &msgs, bool hot);

    /** Pop the pending response-side batch on the host side. */
    bool receiveResponseBatch(std::vector<Message> &out);

    /** Send a request host->agent (cold batch of one). */
    void sendRequest(const Message &msg);

    /** Pop the pending request on the agent side; the frame must hold
     *  exactly one message. */
    bool receiveRequest(Message &out);

    /** Send a response agent->host (cold batch of one). */
    void sendResponse(const Message &msg);

    /** Pop the pending response on the host side. */
    bool receiveResponse(Message &out);

    /**
     * Re-map the channel's shm segment into a process (used after an
     * agent respawn wipes its address space, §4.4.2).
     */
    void remapInto(osim::Pid pid);

    const ChannelStats &stats() const { return stats_; }
    void resetStats() { stats_ = ChannelStats(); }

    /**
     * Bytes currently enqueued on the request ring. Sampled between a
     * send and the matching pop this is the enqueue watermark of the
     * in-flight batch — the queueing-pressure signal the runtime's
     * adaptive batching-depth controller feeds on.
     */
    size_t pendingRequestBytes() const { return reqRing.size(); }

    /** Per-direction ring capacity in bytes. */
    size_t ringCapacity() const { return reqRing.capacity(); }

    osim::Pid hostPid() const { return host; }
    osim::Pid agentPid() const { return agent; }

    // ---- Async in-flight tracking (pipeline-parallel mode) -----------
    //
    // Under RuntimeConfig::pipelineParallel the runtime issues calls
    // on this channel without waiting; each issued-but-unreaped call
    // is queued here with its completion time on the agent's virtual
    // timeline. The queue bounds dispatch depth (the runtime stalls
    // when it is full) and is reaped as the host clock passes
    // completion times. Completion times are monotone per channel, so
    // the front entry is always the oldest.

    /** Record an async call completing at `done` (virtual time). */
    void
    noteInFlight(uint64_t ticket, osim::SimTime done)
    {
        inFlight_.emplace_back(ticket, done);
        if (inFlight_.size() > stats_.inFlightPeak)
            stats_.inFlightPeak = inFlight_.size();
    }

    /** Issued async calls not yet reaped. */
    size_t inFlightDepth() const { return inFlight_.size(); }

    /** Completion time of the oldest in-flight call (0 if none). */
    osim::SimTime
    oldestInFlightDone() const
    {
        return inFlight_.empty() ? 0 : inFlight_.front().second;
    }

    /** Drop entries completed at or before `now`; returns count. */
    size_t
    reapCompleted(osim::SimTime now)
    {
        size_t reaped = 0;
        while (!inFlight_.empty() && inFlight_.front().second <= now) {
            inFlight_.pop_front();
            ++reaped;
        }
        return reaped;
    }

    /** Forget all in-flight entries (full barrier / drain). */
    void clearInFlight() { inFlight_.clear(); }

  private:
    void sendOn(SpscRing &ring, const std::vector<Message> &msgs,
                bool is_request, bool hot);

    /**
     * Pop + decode one batch frame, applying ring-transfer faults on
     * the receiving side: a Transient fault drops the frame, a
     * Corrupt fault flips wire bytes so the shared trailer rejects
     * it. Both surface as "no message" — the at-least-once layer
     * above must retry the whole call.
     */
    bool receiveOn(SpscRing &ring, osim::Pid receiver,
                   std::vector<Message> &out);

    osim::Kernel &kernel;
    osim::Pid host;
    osim::Pid agent;
    uint32_t segId;
    SpscRing reqRing;
    SpscRing respRing;
    ChannelStats stats_;
    std::deque<std::pair<uint64_t, osim::SimTime>> inFlight_;
};

} // namespace freepart::ipc

#endif // FREEPART_IPC_CHANNEL_HH
