/**
 * @file
 * A bidirectional RPC channel between the host process and one agent
 * process, built from two SPSC rings in a simulated shared-memory
 * segment with futex-accounted synchronization (§4.3, footnote 8).
 *
 * The simulation executes synchronously, so a send immediately makes
 * the message poppable on the other side; the futex/context-switch
 * latency is charged to the simulated clock via the kernel cost
 * model.
 */

#ifndef FREEPART_IPC_CHANNEL_HH
#define FREEPART_IPC_CHANNEL_HH

#include <cstdint>
#include <string>

#include "ipc/codec.hh"
#include "ipc/spsc_ring.hh"
#include "osim/kernel.hh"

namespace freepart::ipc {

/** IPC traffic counters for one channel. */
struct ChannelStats {
    uint64_t requests = 0;      //!< request messages sent
    uint64_t responses = 0;     //!< response messages sent
    uint64_t bytesSent = 0;     //!< total wire bytes in both directions
    uint64_t futexWakes = 0;    //!< synchronization wakeups charged
    uint64_t dropped = 0;       //!< messages lost to injected faults
    uint64_t corrupted = 0;     //!< messages rejected as corrupt
};

/**
 * Host<->agent channel over a shm segment. The first half of the
 * segment is the request ring (host -> agent), the second half the
 * response ring (agent -> host).
 */
class Channel
{
  public:
    /**
     * Create a channel between two processes.
     *
     * @param kernel     Owning kernel (provides shm + cost model).
     * @param name       Segment name, e.g. "ch:loading".
     * @param host_pid   Host-side process.
     * @param agent_pid  Agent-side process.
     * @param ring_bytes Bytes per direction.
     */
    Channel(osim::Kernel &kernel, const std::string &name,
            osim::Pid host_pid, osim::Pid agent_pid,
            size_t ring_bytes = 1 << 20);

    /** Send a request host->agent; charges IPC round-trip setup. */
    void sendRequest(const Message &msg);

    /** Pop the pending request on the agent side. */
    bool receiveRequest(Message &out);

    /** Send a response agent->host. */
    void sendResponse(const Message &msg);

    /** Pop the pending response on the host side. */
    bool receiveResponse(Message &out);

    /**
     * Re-map the channel's shm segment into a process (used after an
     * agent respawn wipes its address space, §4.4.2).
     */
    void remapInto(osim::Pid pid);

    const ChannelStats &stats() const { return stats_; }
    void resetStats() { stats_ = ChannelStats(); }

    osim::Pid hostPid() const { return host; }
    osim::Pid agentPid() const { return agent; }

  private:
    void sendOn(SpscRing &ring, const Message &msg, bool is_request);

    /**
     * Pop + decode one message, applying ring-transfer faults on the
     * receiving side: a Transient fault drops the message, a Corrupt
     * fault flips wire bytes so decoding rejects it. Both surface as
     * "no message" — the at-least-once layer above must retry.
     */
    bool receiveOn(SpscRing &ring, osim::Pid receiver, Message &out);

    osim::Kernel &kernel;
    osim::Pid host;
    osim::Pid agent;
    uint32_t segId;
    SpscRing reqRing;
    SpscRing respRing;
    ChannelStats stats_;
};

} // namespace freepart::ipc

#endif // FREEPART_IPC_CHANNEL_HH
