#include "ipc/codec.hh"

#include <cstring>

#include "util/checksum.hh"
#include "util/logging.hh"

namespace freepart::ipc {

Value::Kind
Value::kind() const
{
    return static_cast<Kind>(payload.index());
}

uint64_t
Value::asU64() const
{
    if (auto *v = std::get_if<uint64_t>(&payload))
        return *v;
    if (auto *v = std::get_if<int64_t>(&payload))
        return static_cast<uint64_t>(*v);
    util::panic("Value::asU64 on kind %d", static_cast<int>(kind()));
}

int64_t
Value::asI64() const
{
    if (auto *v = std::get_if<int64_t>(&payload))
        return *v;
    if (auto *v = std::get_if<uint64_t>(&payload))
        return static_cast<int64_t>(*v);
    util::panic("Value::asI64 on kind %d", static_cast<int>(kind()));
}

double
Value::asF64() const
{
    if (auto *v = std::get_if<double>(&payload))
        return *v;
    util::panic("Value::asF64 on kind %d", static_cast<int>(kind()));
}

const std::string &
Value::asStr() const
{
    if (auto *v = std::get_if<std::string>(&payload))
        return *v;
    util::panic("Value::asStr on kind %d", static_cast<int>(kind()));
}

const std::vector<uint8_t> &
Value::asBlob() const
{
    if (auto *v = std::get_if<std::vector<uint8_t>>(&payload))
        return *v;
    util::panic("Value::asBlob on kind %d", static_cast<int>(kind()));
}

std::vector<uint8_t> &
Value::asBlobMutable()
{
    if (auto *v = std::get_if<std::vector<uint8_t>>(&payload))
        return *v;
    util::panic("Value::asBlobMutable on kind %d",
                static_cast<int>(kind()));
}

const ObjectRef &
Value::asRef() const
{
    if (auto *v = std::get_if<ObjectRef>(&payload))
        return *v;
    util::panic("Value::asRef on kind %d", static_cast<int>(kind()));
}

size_t
Value::wireSize() const
{
    switch (kind()) {
      case Kind::None:
        return 1;
      case Kind::U64:
      case Kind::I64:
      case Kind::F64:
        return 1 + 8;
      case Kind::Str:
        return 1 + 4 + asStr().size();
      case Kind::Blob:
        return 1 + 4 + asBlob().size();
      case Kind::Ref:
        return 1 + 12;
    }
    return 1;
}

namespace {

/** Fixed bytes of a message body before its values. */
constexpr size_t kMsgHeaderBytes = 1 + 8 + 4 + 4 + 4;

/** Fixed bytes of a batch frame around its entries. */
constexpr size_t kBatchCountBytes = sizeof(uint32_t);
constexpr size_t kBatchTrailerBytes = sizeof(uint64_t);

/** Typed little helpers over a ByteSink. */
class Writer
{
  public:
    explicit Writer(ByteSink &sink) : sink(sink) {}

    void
    u8(uint8_t v)
    {
        sink.append(&v, sizeof(v));
    }

    void
    u32(uint32_t v)
    {
        sink.append(&v, sizeof(v));
    }

    void
    u64(uint64_t v)
    {
        sink.append(&v, sizeof(v));
    }

    void
    f64(double v)
    {
        sink.append(&v, sizeof(v));
    }

    void
    bytes(const void *p, size_t n)
    {
        sink.append(p, n);
    }

  private:
    ByteSink &sink;
};

/**
 * Forwarding sink that folds every byte into an FNV-1a state so a
 * batch trailer can be computed while streaming into ring storage —
 * no second pass over (possibly wrapped) ring memory.
 */
class ChecksumSink final : public ByteSink
{
  public:
    explicit ChecksumSink(ByteSink &inner) : inner(inner) {}

    void
    append(const void *bytes, size_t len) override
    {
        state = util::fnv1a64Accumulate(
            state, static_cast<const uint8_t *>(bytes), len);
        inner.append(bytes, len);
    }

    uint64_t sum() const { return state; }

  private:
    ByteSink &inner;
    uint64_t state = util::kFnv1a64Init;
};

class Reader
{
  public:
    /** Read [0, limit) of a raw buffer. */
    Reader(const uint8_t *b, size_t limit) : buf(b), limit(limit) {}

    uint8_t
    u8()
    {
        need(1);
        return buf[pos++];
    }

    uint32_t
    u32()
    {
        uint32_t v;
        take(&v, sizeof(v));
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v;
        take(&v, sizeof(v));
        return v;
    }

    double
    f64()
    {
        double v;
        take(&v, sizeof(v));
        return v;
    }

    std::vector<uint8_t>
    blob(size_t n)
    {
        need(n);
        std::vector<uint8_t> out(buf + pos, buf + pos + n);
        pos += n;
        return out;
    }

    void
    skip(size_t n)
    {
        need(n);
        pos += n;
    }

    bool
    done() const
    {
        return pos == limit;
    }

  private:
    void
    need(size_t n)
    {
        if (pos + n > limit)
            util::fatal("codec: truncated message (need %zu at %zu/%zu)",
                        n, pos, limit);
    }

    void
    take(void *p, size_t n)
    {
        need(n);
        std::memcpy(p, buf + pos, n);
        pos += n;
    }

    const uint8_t *buf;
    size_t limit;
    size_t pos = 0;
};

void
encodeValue(Writer &w, const Value &v)
{
    w.u8(static_cast<uint8_t>(v.kind()));
    switch (v.kind()) {
      case Value::Kind::None:
        break;
      case Value::Kind::U64:
        w.u64(v.asU64());
        break;
      case Value::Kind::I64:
        w.u64(static_cast<uint64_t>(v.asI64()));
        break;
      case Value::Kind::F64:
        w.f64(v.asF64());
        break;
      case Value::Kind::Str: {
        const std::string &s = v.asStr();
        w.u32(static_cast<uint32_t>(s.size()));
        w.bytes(s.data(), s.size());
        break;
      }
      case Value::Kind::Blob: {
        const auto &b = v.asBlob();
        w.u32(static_cast<uint32_t>(b.size()));
        w.bytes(b.data(), b.size());
        break;
      }
      case Value::Kind::Ref: {
        const ObjectRef &r = v.asRef();
        w.u32(r.ownerPartition);
        w.u64(r.objectId);
        break;
      }
    }
}

Value
decodeValue(Reader &r)
{
    auto kind = static_cast<Value::Kind>(r.u8());
    switch (kind) {
      case Value::Kind::None:
        return Value();
      case Value::Kind::U64:
        return Value(r.u64());
      case Value::Kind::I64:
        return Value(static_cast<int64_t>(r.u64()));
      case Value::Kind::F64:
        return Value(r.f64());
      case Value::Kind::Str: {
        uint32_t n = r.u32();
        auto bytes = r.blob(n);
        return Value(std::string(bytes.begin(), bytes.end()));
      }
      case Value::Kind::Blob: {
        uint32_t n = r.u32();
        return Value(r.blob(n));
      }
      case Value::Kind::Ref: {
        ObjectRef ref;
        ref.ownerPartition = r.u32();
        ref.objectId = r.u64();
        return Value(ref);
      }
    }
    util::fatal("codec: bad value tag %d", static_cast<int>(kind));
}

} // namespace

size_t
messageBodySize(const Message &msg)
{
    size_t size = kMsgHeaderBytes;
    for (const Value &v : msg.values)
        size += v.wireSize();
    return size;
}

void
encodeMessageBodyTo(ByteSink &sink, const Message &msg)
{
    Writer w(sink);
    w.u8(static_cast<uint8_t>(msg.kind));
    w.u64(msg.seq);
    w.u32(msg.apiId);
    w.u32(msg.status);
    w.u32(static_cast<uint32_t>(msg.values.size()));
    for (const Value &v : msg.values)
        encodeValue(w, v);
}

Message
decodeMessageBody(const uint8_t *data, size_t len)
{
    Reader r(data, len);
    Message msg;
    msg.kind = static_cast<MsgKind>(r.u8());
    msg.seq = r.u64();
    msg.apiId = r.u32();
    msg.status = r.u32();
    uint32_t count = r.u32();
    // A corrupted count must not drive a giant reserve; each value
    // needs at least one wire byte, so anything larger is malformed.
    if (count > len)
        util::fatal("codec: value count %u exceeds body size %zu",
                    count, len);
    msg.values.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        msg.values.push_back(decodeValue(r));
    if (!r.done())
        util::fatal("codec: trailing bytes in message");
    return msg;
}

std::vector<uint8_t>
encodeMessage(const Message &msg)
{
    std::vector<uint8_t> wire;
    wire.reserve(messageBodySize(msg) + sizeof(uint64_t));
    VectorSink sink(wire);
    encodeMessageBodyTo(sink, msg);
    // End-to-end integrity trailer: the receiver verifies this before
    // acting on any field, so a message corrupted on the shared ring
    // is rejected instead of silently mis-decoded.
    uint64_t sum = util::fnv1a64(wire);
    Writer w(sink);
    w.u64(sum);
    return wire;
}

Message
decodeMessage(const std::vector<uint8_t> &wire)
{
    if (wire.size() < sizeof(uint64_t))
        util::fatal("codec: message shorter than its checksum");
    size_t body = wire.size() - sizeof(uint64_t);
    uint64_t expected;
    std::memcpy(&expected, wire.data() + body, sizeof(expected));
    if (util::fnv1a64(wire.data(), body) != expected)
        util::fatal("codec: checksum mismatch on %zu-byte message",
                    wire.size());
    return decodeMessageBody(wire.data(), body);
}

size_t
batchWireSize(const std::vector<Message> &msgs)
{
    size_t size = kBatchCountBytes + kBatchTrailerBytes;
    for (const Message &msg : msgs)
        size += sizeof(uint32_t) + messageBodySize(msg);
    return size;
}

void
encodeBatchTo(ByteSink &sink, const std::vector<Message> &msgs)
{
    // One shared trailer covers the count word, every length prefix,
    // and every body — computed while the bytes stream through, so
    // the zero-copy ring path never re-reads what it wrote.
    ChecksumSink checked(sink);
    Writer w(checked);
    w.u32(static_cast<uint32_t>(msgs.size()));
    for (const Message &msg : msgs) {
        w.u32(static_cast<uint32_t>(messageBodySize(msg)));
        encodeMessageBodyTo(checked, msg);
    }
    uint64_t sum = checked.sum();
    Writer trailer(sink);
    trailer.u64(sum);
}

std::vector<uint8_t>
encodeBatch(const std::vector<Message> &msgs)
{
    std::vector<uint8_t> wire;
    wire.reserve(batchWireSize(msgs));
    VectorSink sink(wire);
    encodeBatchTo(sink, msgs);
    return wire;
}

std::vector<Message>
decodeBatch(const std::vector<uint8_t> &wire)
{
    if (wire.size() < kBatchCountBytes + kBatchTrailerBytes)
        util::fatal("codec: batch frame shorter than its framing");
    size_t body = wire.size() - kBatchTrailerBytes;
    uint64_t expected;
    std::memcpy(&expected, wire.data() + body, sizeof(expected));
    if (util::fnv1a64(wire.data(), body) != expected)
        util::fatal("codec: batch checksum mismatch on %zu-byte frame",
                    wire.size());
    Reader r(wire.data(), body);
    uint32_t count = r.u32();
    if (count > wire.size())
        util::fatal("codec: batch count %u exceeds frame size %zu",
                    count, wire.size());
    std::vector<Message> msgs;
    msgs.reserve(count);
    size_t pos = kBatchCountBytes;
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t len = r.u32();
        pos += sizeof(uint32_t);
        if (pos + len > body)
            util::fatal("codec: batch entry %u overruns frame", i);
        msgs.push_back(decodeMessageBody(wire.data() + pos, len));
        pos += len;
        r.skip(len); // keep the reader in lockstep for done()
    }
    if (!r.done())
        util::fatal("codec: trailing bytes in batch frame");
    return msgs;
}

} // namespace freepart::ipc
