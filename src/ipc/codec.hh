/**
 * @file
 * RPC value model and wire codec. Framework API arguments and return
 * values are marshalled as tagged Values. A Blob carries the full
 * bytes of a data object (eager copy); a Ref carries only an object
 * reference — the Lazy Data Copy optimization (§4.3.2) — consisting of
 * the owning partition and a buffer identifier, matching the paper's
 * "agent process's PID and the identifier of the buffer".
 *
 * Two wire framings exist:
 *  - a standalone message: body + per-message FNV-1a trailer
 *    (encodeMessage/decodeMessage);
 *  - a batch frame holding several bodies under ONE shared trailer
 *    ([u32 count][(u32 len, body)...][u64 fnv1a]), used by the
 *    batched ring RPC so a burst of messages pays a single checksum
 *    and a single publish. Encoding targets a ByteSink so the bytes
 *    can stream straight into ring storage (no staging vector).
 */

#ifndef FREEPART_IPC_CODEC_HH
#define FREEPART_IPC_CODEC_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace freepart::ipc {

/**
 * Reference to a data object living in some partition's object table
 * (the LDC wire representation).
 */
struct ObjectRef {
    uint32_t ownerPartition = 0; //!< partition currently holding data
    uint64_t objectId = 0;       //!< identifier within the object table

    bool
    operator==(const ObjectRef &o) const
    {
        return ownerPartition == o.ownerPartition &&
               objectId == o.objectId;
    }
};

/** A marshallable RPC value. */
class Value
{
  public:
    /** Wire tags. */
    enum class Kind : uint8_t {
        None = 0,
        U64,
        I64,
        F64,
        Str,
        Blob,
        Ref,
    };

    Value() : payload(std::monostate{}) {}
    explicit Value(uint64_t v) : payload(v) {}
    explicit Value(int64_t v) : payload(v) {}
    explicit Value(double v) : payload(v) {}
    explicit Value(std::string v) : payload(std::move(v)) {}
    explicit Value(std::vector<uint8_t> v) : payload(std::move(v)) {}
    explicit Value(ObjectRef v) : payload(v) {}

    Kind kind() const;

    bool isNone() const { return kind() == Kind::None; }

    uint64_t asU64() const;
    int64_t asI64() const;
    double asF64() const;
    const std::string &asStr() const;
    const std::vector<uint8_t> &asBlob() const;
    std::vector<uint8_t> &asBlobMutable();
    const ObjectRef &asRef() const;

    /** Exact encoded size in bytes (tag + payload). */
    size_t wireSize() const;

  private:
    std::variant<std::monostate, uint64_t, int64_t, double,
                 std::string, std::vector<uint8_t>, ObjectRef>
        payload;
};

/** A list of RPC argument/return values. */
using ValueList = std::vector<Value>;

/** RPC message kinds. */
enum class MsgKind : uint8_t {
    Request = 1,   //!< host -> agent: execute API
    Response = 2,  //!< agent -> host: results
    Fetch = 3,     //!< agent -> agent: LDC direct data fetch
    FetchReply = 4,
    Ack = 5,       //!< exactly-once delivery acknowledgement
    Deliver = 6,   //!< object bytes piggybacked on a request batch
                   //!< (the LDC fetch riding the same round trip)
};

/** Decoded RPC message. */
struct Message {
    MsgKind kind = MsgKind::Request;
    uint64_t seq = 0;    //!< sequence number (exactly-once dedup)
    uint32_t apiId = 0;  //!< target API (requests only)
    uint32_t status = 0; //!< 0 = ok (responses only)
    ValueList values;    //!< arguments or results
};

/**
 * Abstract byte output for the encoder. Lets the same encode path
 * fill a std::vector or write straight into SpscRing storage.
 */
class ByteSink
{
  public:
    virtual void append(const void *bytes, size_t len) = 0;

  protected:
    ~ByteSink() = default;
};

/** ByteSink over a std::vector (the staging-buffer path). */
class VectorSink final : public ByteSink
{
  public:
    explicit VectorSink(std::vector<uint8_t> &out) : out(out) {}

    void
    append(const void *bytes, size_t len) override
    {
        const auto *b = static_cast<const uint8_t *>(bytes);
        out.insert(out.end(), b, b + len);
    }

  private:
    std::vector<uint8_t> &out;
};

/** Exact encoded size of a message body (header + values, no
 *  trailer). encodeMessageBodyTo emits exactly this many bytes. */
size_t messageBodySize(const Message &msg);

/** Stream a message body (no trailer) into a sink. */
void encodeMessageBodyTo(ByteSink &sink, const Message &msg);

/** Parse a bare message body; throws on malformed input. */
Message decodeMessageBody(const uint8_t *data, size_t len);

/** Serialize a standalone message (body + FNV-1a trailer). */
std::vector<uint8_t> encodeMessage(const Message &msg);

/** Parse standalone wire bytes; verifies the trailer, throws on
 *  malformed input. */
Message decodeMessage(const std::vector<uint8_t> &wire);

/** Exact encoded size of a batch frame for these messages. */
size_t batchWireSize(const std::vector<Message> &msgs);

/** Stream a batch frame (count, bodies, shared trailer) into a
 *  sink. */
void encodeBatchTo(ByteSink &sink, const std::vector<Message> &msgs);

/** Serialize a batch frame to a staging vector (tests, accounting). */
std::vector<uint8_t> encodeBatch(const std::vector<Message> &msgs);

/** Parse a batch frame; verifies the shared trailer first, throws on
 *  any corruption (the whole batch is rejected as one unit). */
std::vector<Message> decodeBatch(const std::vector<uint8_t> &wire);

} // namespace freepart::ipc

#endif // FREEPART_IPC_CODEC_HH
