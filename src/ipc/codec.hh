/**
 * @file
 * RPC value model and wire codec. Framework API arguments and return
 * values are marshalled as tagged Values. A Blob carries the full
 * bytes of a data object (eager copy); a Ref carries only an object
 * reference — the Lazy Data Copy optimization (§4.3.2) — consisting of
 * the owning partition and a buffer identifier, matching the paper's
 * "agent process's PID and the identifier of the buffer".
 */

#ifndef FREEPART_IPC_CODEC_HH
#define FREEPART_IPC_CODEC_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace freepart::ipc {

/**
 * Reference to a data object living in some partition's object table
 * (the LDC wire representation).
 */
struct ObjectRef {
    uint32_t ownerPartition = 0; //!< partition currently holding data
    uint64_t objectId = 0;       //!< identifier within the object table

    bool
    operator==(const ObjectRef &o) const
    {
        return ownerPartition == o.ownerPartition &&
               objectId == o.objectId;
    }
};

/** A marshallable RPC value. */
class Value
{
  public:
    /** Wire tags. */
    enum class Kind : uint8_t {
        None = 0,
        U64,
        I64,
        F64,
        Str,
        Blob,
        Ref,
    };

    Value() : payload(std::monostate{}) {}
    explicit Value(uint64_t v) : payload(v) {}
    explicit Value(int64_t v) : payload(v) {}
    explicit Value(double v) : payload(v) {}
    explicit Value(std::string v) : payload(std::move(v)) {}
    explicit Value(std::vector<uint8_t> v) : payload(std::move(v)) {}
    explicit Value(ObjectRef v) : payload(v) {}

    Kind kind() const;

    bool isNone() const { return kind() == Kind::None; }

    uint64_t asU64() const;
    int64_t asI64() const;
    double asF64() const;
    const std::string &asStr() const;
    const std::vector<uint8_t> &asBlob() const;
    std::vector<uint8_t> &asBlobMutable();
    const ObjectRef &asRef() const;

    /** Approximate wire size in bytes (for IPC accounting). */
    size_t wireSize() const;

  private:
    std::variant<std::monostate, uint64_t, int64_t, double,
                 std::string, std::vector<uint8_t>, ObjectRef>
        payload;
};

/** A list of RPC argument/return values. */
using ValueList = std::vector<Value>;

/** RPC message kinds. */
enum class MsgKind : uint8_t {
    Request = 1,   //!< host -> agent: execute API
    Response = 2,  //!< agent -> host: results
    Fetch = 3,     //!< agent -> agent: LDC direct data fetch
    FetchReply = 4,
    Ack = 5,       //!< exactly-once delivery acknowledgement
};

/** Decoded RPC message. */
struct Message {
    MsgKind kind = MsgKind::Request;
    uint64_t seq = 0;    //!< sequence number (exactly-once dedup)
    uint32_t apiId = 0;  //!< target API (requests only)
    uint32_t status = 0; //!< 0 = ok (responses only)
    ValueList values;    //!< arguments or results
};

/** Serialize a message to wire bytes. */
std::vector<uint8_t> encodeMessage(const Message &msg);

/** Parse wire bytes back into a message; throws on malformed input. */
Message decodeMessage(const std::vector<uint8_t> &wire);

} // namespace freepart::ipc

#endif // FREEPART_IPC_CODEC_HH
