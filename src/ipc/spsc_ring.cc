#include "ipc/spsc_ring.hh"

#include "util/logging.hh"

namespace freepart::ipc {

SpscRing::SpscRing(uint8_t *region, size_t region_len, bool init)
    : base(region), data(region + kHeaderBytes),
      cap(region_len > kHeaderBytes ? region_len - kHeaderBytes : 0)
{
    if (region_len <= kHeaderBytes + kRecordPrefix)
        util::fatal("SpscRing: region too small (%zu bytes)",
                    region_len);
    if (init) {
        headRef().store(0, std::memory_order_relaxed);
        tailRef().store(0, std::memory_order_relaxed);
        header().capacity = cap;
    }
}

SpscRing
SpscRing::create(uint8_t *region, size_t region_len)
{
    return SpscRing(region, region_len, true);
}

SpscRing
SpscRing::attach(uint8_t *region, size_t region_len)
{
    return SpscRing(region, region_len, false);
}

size_t
SpscRing::size() const
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
}

void
SpscRing::copyIn(uint64_t pos, const uint8_t *src, size_t len)
{
    size_t off = static_cast<size_t>(pos % cap);
    size_t first = std::min(len, cap - off);
    std::memcpy(data + off, src, first);
    if (first < len)
        std::memcpy(data, src + first, len - first);
}

void
SpscRing::copyOut(uint64_t pos, uint8_t *dst, size_t len) const
{
    size_t off = static_cast<size_t>(pos % cap);
    size_t first = std::min(len, cap - off);
    std::memcpy(dst, data + off, first);
    if (first < len)
        std::memcpy(dst + first, data, len - first);
}

bool
SpscRing::tryPush(const uint8_t *payload, size_t len)
{
    uint64_t head = headRef().load(std::memory_order_acquire);
    uint64_t tail = tailRef().load(std::memory_order_relaxed);
    size_t used = static_cast<size_t>(tail - head);
    size_t need = kRecordPrefix + len;
    if (need > cap - used)
        return false;
    uint32_t len32 = static_cast<uint32_t>(len);
    copyIn(tail, reinterpret_cast<const uint8_t *>(&len32),
           sizeof(len32));
    copyIn(tail + sizeof(len32), payload, len);
    tailRef().store(tail + need, std::memory_order_release);
    return true;
}

bool
SpscRing::tryPushBatch(const std::vector<std::vector<uint8_t>> &batch)
{
    uint64_t head = headRef().load(std::memory_order_acquire);
    uint64_t tail = tailRef().load(std::memory_order_relaxed);
    size_t used = static_cast<size_t>(tail - head);
    size_t need = 0;
    for (const std::vector<uint8_t> &record : batch)
        need += kRecordPrefix + record.size();
    if (need > cap - used)
        return false;
    uint64_t pos = tail;
    for (const std::vector<uint8_t> &record : batch) {
        uint32_t len32 = static_cast<uint32_t>(record.size());
        copyIn(pos, reinterpret_cast<const uint8_t *>(&len32),
               sizeof(len32));
        copyIn(pos + sizeof(len32), record.data(), record.size());
        pos += kRecordPrefix + record.size();
    }
    // One release store publishes the whole burst: the consumer sees
    // either none of the batch or all of it.
    tailRef().store(pos, std::memory_order_release);
    return true;
}

uint64_t
SpscRing::popAt(uint64_t head, std::vector<uint8_t> &out) const
{
    uint32_t len32 = 0;
    copyOut(head, reinterpret_cast<uint8_t *>(&len32), sizeof(len32));
    out.resize(len32);
    copyOut(head + sizeof(len32), out.data(), len32);
    return head + sizeof(len32) + len32;
}

bool
SpscRing::tryPop(std::vector<uint8_t> &out)
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_relaxed);
    if (tail == head)
        return false;
    headRef().store(popAt(head, out), std::memory_order_release);
    return true;
}

size_t
SpscRing::tryPopBatch(std::vector<std::vector<uint8_t>> &out,
                      size_t max_records)
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_relaxed);
    size_t popped = 0;
    while (head != tail && popped < max_records) {
        std::vector<uint8_t> record;
        head = popAt(head, record);
        out.push_back(std::move(record));
        ++popped;
    }
    if (popped)
        headRef().store(head, std::memory_order_release);
    return popped;
}

size_t
SpscRing::peekLength() const
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_relaxed);
    if (tail == head)
        return 0;
    uint32_t len32 = 0;
    copyOut(head, reinterpret_cast<uint8_t *>(&len32), sizeof(len32));
    return len32;
}

bool
SpscRing::tryReserve(size_t len, Reservation &out)
{
    uint64_t head = headRef().load(std::memory_order_acquire);
    uint64_t tail = tailRef().load(std::memory_order_relaxed);
    size_t used = static_cast<size_t>(tail - head);
    if (kRecordPrefix + len > cap - used)
        return false;
    uint32_t len32 = static_cast<uint32_t>(len);
    copyIn(tail, reinterpret_cast<const uint8_t *>(&len32),
           sizeof(len32));
    out.start = tail;
    out.length = len;
    out.written = 0;
    return true;
}

void
SpscRing::reservationWrite(Reservation &res, const void *src, size_t n)
{
    if (res.written + n > res.length)
        util::fatal("SpscRing: reservation overflow (%zu + %zu > %zu)",
                    res.written, n, res.length);
    copyIn(res.start + kRecordPrefix + res.written,
           static_cast<const uint8_t *>(src), n);
    res.written += n;
}

void
SpscRing::commit(const Reservation &res)
{
    if (res.written != res.length)
        util::fatal("SpscRing: committing under-filled reservation "
                    "(%zu of %zu bytes)",
                    res.written, res.length);
    tailRef().store(res.start + kRecordPrefix + res.length,
                    std::memory_order_release);
}

} // namespace freepart::ipc
