#include "ipc/spsc_ring.hh"

#include "util/logging.hh"

namespace freepart::ipc {

SpscRing::SpscRing(uint8_t *region, size_t region_len, bool init)
    : base(region), data(region + kHeaderBytes),
      cap(region_len > kHeaderBytes ? region_len - kHeaderBytes : 0)
{
    if (region_len <= kHeaderBytes + sizeof(uint32_t))
        util::fatal("SpscRing: region too small (%zu bytes)",
                    region_len);
    if (init) {
        headRef().store(0, std::memory_order_relaxed);
        tailRef().store(0, std::memory_order_relaxed);
        std::memcpy(base + 2 * sizeof(uint64_t), &cap, sizeof(uint64_t));
    }
}

SpscRing
SpscRing::create(uint8_t *region, size_t region_len)
{
    return SpscRing(region, region_len, true);
}

SpscRing
SpscRing::attach(uint8_t *region, size_t region_len)
{
    return SpscRing(region, region_len, false);
}

std::atomic<uint64_t> &
SpscRing::headRef() const
{
    return *reinterpret_cast<std::atomic<uint64_t> *>(base);
}

std::atomic<uint64_t> &
SpscRing::tailRef() const
{
    return *reinterpret_cast<std::atomic<uint64_t> *>(
        base + sizeof(uint64_t));
}

size_t
SpscRing::size() const
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
}

void
SpscRing::copyIn(uint64_t pos, const uint8_t *src, size_t len)
{
    size_t off = static_cast<size_t>(pos % cap);
    size_t first = std::min(len, cap - off);
    std::memcpy(data + off, src, first);
    if (first < len)
        std::memcpy(data, src + first, len - first);
}

void
SpscRing::copyOut(uint64_t pos, uint8_t *dst, size_t len) const
{
    size_t off = static_cast<size_t>(pos % cap);
    size_t first = std::min(len, cap - off);
    std::memcpy(dst, data + off, first);
    if (first < len)
        std::memcpy(dst + first, data, len - first);
}

bool
SpscRing::tryPush(const uint8_t *payload, size_t len)
{
    uint64_t head = headRef().load(std::memory_order_acquire);
    uint64_t tail = tailRef().load(std::memory_order_relaxed);
    size_t used = static_cast<size_t>(tail - head);
    size_t need = sizeof(uint32_t) + len;
    if (need > cap - used)
        return false;
    uint32_t len32 = static_cast<uint32_t>(len);
    copyIn(tail, reinterpret_cast<const uint8_t *>(&len32),
           sizeof(len32));
    copyIn(tail + sizeof(len32), payload, len);
    tailRef().store(tail + need, std::memory_order_release);
    return true;
}

bool
SpscRing::tryPop(std::vector<uint8_t> &out)
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_relaxed);
    if (tail == head)
        return false;
    uint32_t len32 = 0;
    copyOut(head, reinterpret_cast<uint8_t *>(&len32), sizeof(len32));
    out.resize(len32);
    copyOut(head + sizeof(len32), out.data(), len32);
    headRef().store(head + sizeof(len32) + len32,
                    std::memory_order_release);
    return true;
}

size_t
SpscRing::peekLength() const
{
    uint64_t tail = tailRef().load(std::memory_order_acquire);
    uint64_t head = headRef().load(std::memory_order_relaxed);
    if (tail == head)
        return 0;
    uint32_t len32 = 0;
    copyOut(head, reinterpret_cast<uint8_t *>(&len32), sizeof(len32));
    return len32;
}

} // namespace freepart::ipc
