/**
 * @file
 * Single-producer/single-consumer byte ring buffer. This is the IPC
 * primitive the paper describes in §4.3 footnote 8: "We implement IPC
 * between processes using shared memory. It uses ring buffers and
 * futex for synchronization."
 *
 * The ring operates over an externally provided byte region, so the
 * same implementation runs both over simulated shared-memory segments
 * (inside osim) and over real process memory (the real-time
 * google-benchmark harness exercises it with actual std::threads).
 *
 * Two producer APIs exist:
 *  - tryPush / tryPushBatch copy fully formed records in;
 *  - tryReserve / reservationWrite / commit let an encoder stream
 *    bytes straight into ring storage (no staging buffer), publishing
 *    the record only at commit. The consumer never observes a
 *    partially written record because the tail index moves last.
 */

#ifndef FREEPART_IPC_SPSC_RING_HH
#define FREEPART_IPC_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

namespace freepart::ipc {

/**
 * Ring control block at the start of the region. head and tail live
 * on separate cache lines so the producer's tail stores never
 * invalidate the consumer's head line (and vice versa) — under the
 * two-thread stress load the indices are the only contended words.
 */
struct alignas(64) SpscRingHeader {
    alignas(64) std::atomic<uint64_t> head; //!< consumer-owned
    alignas(64) std::atomic<uint64_t> tail; //!< producer-owned
    alignas(64) uint64_t capacity;          //!< data-area length
};
static_assert(sizeof(SpscRingHeader) == 192,
              "head/tail/capacity must occupy one cache line each");

/**
 * Lock-free SPSC ring over a caller-owned byte region.
 *
 * Region layout: [SpscRingHeader][data bytes...]. head/tail are
 * free-running counters; the producer owns tail, the consumer owns
 * head. Records are length-prefixed (u32) so variable sized messages
 * pop out whole.
 */
class SpscRing
{
  public:
    /** Header bytes reserved at the start of the region. */
    static constexpr size_t kHeaderBytes = sizeof(SpscRingHeader);

    /** Length prefix stored before each record's payload. */
    static constexpr size_t kRecordPrefix = sizeof(uint32_t);

    /**
     * An in-flight zero-copy record (see tryReserve). The producer
     * streams payload bytes into it with reservationWrite and
     * publishes with commit; until then the consumer cannot see it.
     */
    struct Reservation {
        uint64_t start = 0;  //!< absolute tail position of the prefix
        size_t length = 0;   //!< reserved payload length
        size_t written = 0;  //!< payload bytes streamed so far
    };

    /** Attach to (and zero-initialize) a region as a fresh ring. */
    static SpscRing create(uint8_t *region, size_t region_len);

    /** Attach to an already initialized region. */
    static SpscRing attach(uint8_t *region, size_t region_len);

    /** Usable data capacity in bytes. */
    size_t capacity() const { return cap; }

    /** Bytes currently enqueued. */
    size_t size() const;

    /** True if no records are enqueued. */
    bool empty() const { return size() == 0; }

    /**
     * Enqueue one length-prefixed record.
     * @return false if there is not enough free space.
     */
    bool tryPush(const uint8_t *data, size_t len);

    /**
     * Enqueue several records, all-or-nothing, with a single tail
     * publish (one producer-side release store — the batched-RPC
     * analogue of one futex wake for the whole burst).
     * @return false if the batch does not fit; nothing is written.
     */
    bool tryPushBatch(const std::vector<std::vector<uint8_t>> &batch);

    /**
     * Dequeue one record into out (replacing its contents).
     * @return false if the ring is empty.
     */
    bool tryPop(std::vector<uint8_t> &out);

    /**
     * Dequeue up to max_records pending records with a single head
     * publish. Appends to out; returns the number popped.
     */
    size_t tryPopBatch(std::vector<std::vector<uint8_t>> &out,
                       size_t max_records);

    /** Peek the length of the next record (0 if empty). */
    size_t peekLength() const;

    /**
     * Reserve space for one record of exactly len payload bytes.
     * The record stays invisible to the consumer until commit().
     * @return false if there is not enough free space.
     */
    bool tryReserve(size_t len, Reservation &out);

    /** Stream the next n payload bytes into a reservation. */
    void reservationWrite(Reservation &res, const void *src, size_t n);

    /** Publish a fully written reservation; panics if under-filled. */
    void commit(const Reservation &res);

  private:
    SpscRing(uint8_t *region, size_t region_len, bool init);

    SpscRingHeader &header() const
    {
        return *reinterpret_cast<SpscRingHeader *>(base);
    }

    std::atomic<uint64_t> &headRef() const { return header().head; }
    std::atomic<uint64_t> &tailRef() const { return header().tail; }
    void copyIn(uint64_t pos, const uint8_t *src, size_t len);
    void copyOut(uint64_t pos, uint8_t *dst, size_t len) const;
    /** Pop one record assuming head/tail already loaded; returns new
     *  head position (not stored). */
    uint64_t popAt(uint64_t head, std::vector<uint8_t> &out) const;

    uint8_t *base;   //!< region start (header lives here)
    uint8_t *data;   //!< data area start
    size_t cap;      //!< data area length
};

} // namespace freepart::ipc

#endif // FREEPART_IPC_SPSC_RING_HH
