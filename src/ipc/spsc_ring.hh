/**
 * @file
 * Single-producer/single-consumer byte ring buffer. This is the IPC
 * primitive the paper describes in §4.3 footnote 8: "We implement IPC
 * between processes using shared memory. It uses ring buffers and
 * futex for synchronization."
 *
 * The ring operates over an externally provided byte region, so the
 * same implementation runs both over simulated shared-memory segments
 * (inside osim) and over real process memory (the real-time
 * google-benchmark harness exercises it with actual std::threads).
 */

#ifndef FREEPART_IPC_SPSC_RING_HH
#define FREEPART_IPC_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

namespace freepart::ipc {

/**
 * Lock-free SPSC ring over a caller-owned byte region.
 *
 * Region layout: [head:u64][tail:u64][capacity:u64][data bytes...].
 * head/tail are free-running counters; the producer owns tail, the
 * consumer owns head. Records are length-prefixed (u32) so variable
 * sized messages pop out whole.
 */
class SpscRing
{
  public:
    /** Header bytes reserved at the start of the region. */
    static constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);

    /** Attach to (and zero-initialize) a region as a fresh ring. */
    static SpscRing create(uint8_t *region, size_t region_len);

    /** Attach to an already initialized region. */
    static SpscRing attach(uint8_t *region, size_t region_len);

    /** Usable data capacity in bytes. */
    size_t capacity() const { return cap; }

    /** Bytes currently enqueued. */
    size_t size() const;

    /** True if no records are enqueued. */
    bool empty() const { return size() == 0; }

    /**
     * Enqueue one length-prefixed record.
     * @return false if there is not enough free space.
     */
    bool tryPush(const uint8_t *data, size_t len);

    /**
     * Dequeue one record into out (replacing its contents).
     * @return false if the ring is empty.
     */
    bool tryPop(std::vector<uint8_t> &out);

    /** Peek the length of the next record (0 if empty). */
    size_t peekLength() const;

  private:
    SpscRing(uint8_t *region, size_t region_len, bool init);

    std::atomic<uint64_t> &headRef() const;
    std::atomic<uint64_t> &tailRef() const;
    void copyIn(uint64_t pos, const uint8_t *src, size_t len);
    void copyOut(uint64_t pos, uint8_t *dst, size_t len) const;

    uint8_t *base;   //!< region start (header lives here)
    uint8_t *data;   //!< data area start
    size_t cap;      //!< data area length
};

} // namespace freepart::ipc

#endif // FREEPART_IPC_SPSC_RING_HH
