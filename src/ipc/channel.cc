#include "ipc/channel.hh"

#include "util/logging.hh"

namespace freepart::ipc {

namespace {

/** Split a segment's backing into two ring regions. */
uint8_t *
regionAt(const osim::Backing &backing, size_t offset)
{
    return backing->data() + offset;
}

} // namespace

Channel::Channel(osim::Kernel &kernel, const std::string &name,
                 osim::Pid host_pid, osim::Pid agent_pid,
                 size_t ring_bytes)
    : kernel(kernel), host(host_pid), agent(agent_pid),
      segId(kernel.shmCreate(name, 2 * ring_bytes)),
      reqRing(SpscRing::create(regionAt(kernel.shmBacking(segId), 0),
                               ring_bytes)),
      respRing(SpscRing::create(
          regionAt(kernel.shmBacking(segId), ring_bytes), ring_bytes))
{
    // Map the segment into both processes so the isolation picture is
    // faithful: the rings are the only memory the two sides share.
    kernel.trustedShmMap(host_pid, segId, osim::PermRW);
    kernel.trustedShmMap(agent_pid, segId, osim::PermRW);
}

void
Channel::remapInto(osim::Pid pid)
{
    kernel.trustedShmMap(pid, segId, osim::PermRW);
}

void
Channel::sendOn(SpscRing &ring, const Message &msg, bool is_request)
{
    std::vector<uint8_t> wire = encodeMessage(msg);
    if (!ring.tryPush(wire.data(), wire.size())) {
        // A full ring would block the real producer on a futex until
        // the consumer drains; the synchronous simulation never leaves
        // messages queued, so this indicates a single oversized
        // message.
        util::fatal("channel: message of %zu bytes exceeds ring "
                    "capacity %zu",
                    wire.size(), ring.capacity());
    }
    stats_.bytesSent += wire.size();
    ++stats_.futexWakes;
    if (is_request)
        ++stats_.requests;
    else
        ++stats_.responses;
    // Futex wake + wait on the peer side + context switch.
    kernel.advance(kernel.costs().ipcRoundTrip / 2);
}

void
Channel::sendRequest(const Message &msg)
{
    sendOn(reqRing, msg, true);
}

bool
Channel::receiveOn(SpscRing &ring, osim::Pid receiver, Message &out)
{
    std::vector<uint8_t> wire;
    if (!ring.tryPop(wire))
        return false;
    switch (kernel.queryFault(osim::FaultPoint::RingTransfer,
                              receiver)) {
      case osim::FaultAction::Transient:
      case osim::FaultAction::Crash:
        // The message never reaches the receiver (a lost wakeup /
        // torn write in the real futex-synchronized ring).
        ++stats_.dropped;
        return false;
      case osim::FaultAction::Corrupt:
        kernel.faultInjector()->corrupt(wire);
        break;
      default:
        break;
    }
    try {
        out = decodeMessage(wire);
    } catch (const std::exception &) {
        // Corrupted framing: the receiver rejects the message.
        ++stats_.corrupted;
        return false;
    }
    return true;
}

bool
Channel::receiveRequest(Message &out)
{
    return receiveOn(reqRing, agent, out);
}

void
Channel::sendResponse(const Message &msg)
{
    sendOn(respRing, msg, false);
}

bool
Channel::receiveResponse(Message &out)
{
    return receiveOn(respRing, host, out);
}

} // namespace freepart::ipc
