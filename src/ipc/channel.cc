#include "ipc/channel.hh"

#include "util/logging.hh"

namespace freepart::ipc {

namespace {

/** Split a segment's backing into two ring regions. */
uint8_t *
regionAt(const osim::Backing &backing, size_t offset)
{
    return backing->data() + offset;
}

/** ByteSink that streams encoder output straight into a ring
 *  reservation — the zero-copy path (no staging vector). */
class RingSink final : public ByteSink
{
  public:
    RingSink(SpscRing &ring, SpscRing::Reservation &res)
        : ring(ring), res(res)
    {
    }

    void
    append(const void *bytes, size_t len) override
    {
        ring.reservationWrite(res, bytes, len);
    }

  private:
    SpscRing &ring;
    SpscRing::Reservation &res;
};

} // namespace

Channel::Channel(osim::Kernel &kernel, const std::string &name,
                 osim::Pid host_pid, osim::Pid agent_pid,
                 size_t ring_bytes)
    : kernel(kernel), host(host_pid), agent(agent_pid),
      segId(kernel.shmCreate(name, 2 * ring_bytes)),
      reqRing(SpscRing::create(regionAt(kernel.shmBacking(segId), 0),
                               ring_bytes)),
      respRing(SpscRing::create(
          regionAt(kernel.shmBacking(segId), ring_bytes), ring_bytes))
{
    // Map the segment into both processes so the isolation picture is
    // faithful: the rings are the only memory the two sides share.
    kernel.trustedShmMap(host_pid, segId, osim::PermRW);
    kernel.trustedShmMap(agent_pid, segId, osim::PermRW);
}

void
Channel::remapInto(osim::Pid pid)
{
    kernel.trustedShmMap(pid, segId, osim::PermRW);
}

void
Channel::sendOn(SpscRing &ring, const std::vector<Message> &msgs,
                bool is_request, bool hot)
{
    if (msgs.empty())
        util::fatal("channel: empty batch send");
    size_t frame = batchWireSize(msgs);
    SpscRing::Reservation res;
    if (!ring.tryReserve(frame, res)) {
        // A full ring would block the real producer on a futex until
        // the consumer drains; the synchronous simulation never leaves
        // frames queued, so this indicates a single oversized batch.
        util::fatal("channel: batch frame of %zu bytes exceeds ring "
                    "capacity %zu",
                    frame, ring.capacity());
    }
    RingSink sink(ring, res);
    encodeBatchTo(sink, msgs);
    ring.commit(res);

    stats_.bytesSent += frame;
    ++stats_.batches;
    if (hot)
        ++stats_.hotSends;
    else
        ++stats_.futexWakes;
    for (const Message &msg : msgs) {
        switch (msg.kind) {
          case MsgKind::Deliver:
            ++stats_.delivers;
            break;
          default:
            if (is_request)
                ++stats_.requests;
            else
                ++stats_.responses;
            break;
        }
    }
    // One wake (if the peer is parked) plus per-message ring work.
    kernel.advance(kernel.costs().ipcSendCost(msgs.size(), hot));
}

bool
Channel::receiveOn(SpscRing &ring, osim::Pid receiver,
                   std::vector<Message> &out)
{
    std::vector<uint8_t> wire;
    if (!ring.tryPop(wire))
        return false;
    switch (kernel.queryFault(osim::FaultPoint::RingTransfer,
                              receiver)) {
      case osim::FaultAction::Transient:
      case osim::FaultAction::Crash:
        // The frame never reaches the receiver (a lost wakeup / torn
        // write in the real futex-synchronized ring).
        ++stats_.dropped;
        return false;
      case osim::FaultAction::Corrupt:
        kernel.faultInjector()->corrupt(wire);
        break;
      default:
        break;
    }
    try {
        out = decodeBatch(wire);
    } catch (const std::exception &) {
        // The shared trailer rejects the whole burst: batching widens
        // the blast radius of one corrupt byte to the frame, and the
        // at-least-once layer re-issues the whole call.
        ++stats_.corrupted;
        return false;
    }
    return true;
}

void
Channel::sendRequestBatch(const std::vector<Message> &msgs, bool hot)
{
    sendOn(reqRing, msgs, true, hot);
}

bool
Channel::receiveRequestBatch(std::vector<Message> &out)
{
    return receiveOn(reqRing, agent, out);
}

void
Channel::sendResponseBatch(const std::vector<Message> &msgs, bool hot)
{
    sendOn(respRing, msgs, false, hot);
}

bool
Channel::receiveResponseBatch(std::vector<Message> &out)
{
    return receiveOn(respRing, host, out);
}

void
Channel::sendRequest(const Message &msg)
{
    sendOn(reqRing, {msg}, true, /*hot=*/false);
}

bool
Channel::receiveRequest(Message &out)
{
    std::vector<Message> msgs;
    if (!receiveOn(reqRing, agent, msgs))
        return false;
    if (msgs.size() != 1)
        util::fatal("channel: expected single-message frame, got %zu",
                    msgs.size());
    out = std::move(msgs.front());
    return true;
}

void
Channel::sendResponse(const Message &msg)
{
    sendOn(respRing, {msg}, false, /*hot=*/false);
}

bool
Channel::receiveResponse(Message &out)
{
    std::vector<Message> msgs;
    if (!receiveOn(respRing, host, msgs))
        return false;
    if (msgs.size() != 1)
        util::fatal("channel: expected single-message frame, got %zu",
                    msgs.size());
    out = std::move(msgs.front());
    return true;
}

} // namespace freepart::ipc
