/**
 * @file
 * Head-to-head evaluation of the isolation techniques on the
 * motivating example (OMRChecker): runs the app under each technique
 * for the performance comparison (Table 9), measures the API
 * isolation granularity (Table 10), and launches the motivating
 * example's attacks to score each technique against the Table 8
 * security rubric (summarized in Table 1).
 */

#ifndef FREEPART_BASELINES_EVALUATOR_HH
#define FREEPART_BASELINES_EVALUATOR_HH

#include <memory>

#include "apps/omr_checker.hh"
#include "attacks/attack_driver.hh"
#include "baselines/technique.hh"

namespace freepart::baselines {

/** The Table 8 rubric checklist. */
struct SecurityChecks {
    // Data checks (6).
    bool omrCropCorruptionMitigated = false;
    bool templateCorruptionMitigated = false;
    bool omrCropPermsEnforced = false;
    bool templatePermsEnforced = false;
    bool omrCropNotShared = false;
    bool templateNotShared = false;
    // API checks (5).
    bool codeRewriteMitigated = false;
    bool imreadIsolated = false;
    bool imshowIsolated = false;
    bool fiveOrMoreProcesses = false;
    bool individualProcesses = false;

    int dataScore() const;
    int apiScore() const;

    /** "Highly" / "Mostly" / "Less" / "Not" effective. */
    const char *dataLevel() const;
    const char *apiLevel() const;
};

/** Full evaluation record for one technique (one Table 1 row). */
struct TechniqueReport {
    Technique technique = Technique::NoIsolation;
    SecurityChecks checks;
    bool preventsMemCorruption = false; //!< M attack class
    bool preventsCodeManip = false;     //!< C attack class
    bool preventsDos = false;           //!< D attack class
    size_t isolatedCveApis = 0;         //!< Table 1 "Isolated API" col
    size_t processCount = 0;            //!< Table 1 "# of Processes"
    size_t minApisPerProc = 0;          //!< Table 10 granularity
    size_t maxApisPerProc = 0;
    double granStddev = 0.0;            //!< Table 1 granularity sigma
    uint64_t ipcCount = 0;              //!< Table 9 "# of IPC"
    uint64_t bytesTransferred = 0;      //!< Table 9 "Data"
    osim::SimTime simTime = 0;          //!< Table 9 "Time"
    double overheadPct = 0.0;           //!< vs NoIsolation

    /** Table 9 performance class ("Low"/"Moderate"/"High"). */
    const char *perfLevel() const;
};

/** The evaluation harness. */
class TechniqueEvaluator
{
  public:
    struct Config {
        int submissions = 2;          //!< graded inputs per run
        uint32_t imageRows = 192;     //!< submission image size
        uint32_t imageCols = 192;
        uint32_t questions = 8;       //!< hot-loop iterations
    };

    TechniqueEvaluator();
    explicit TechniqueEvaluator(Config config);

    /** Evaluate one technique (overheadPct left at 0). */
    TechniqueReport evaluate(Technique technique);

    /** Evaluate all techniques; fills overheadPct vs NoIsolation. */
    std::vector<TechniqueReport> evaluateAll();

    /** The OMR application's API set (discovered by a dry run). */
    const std::vector<std::string> &omrApis() const { return apis; }

    /** Access the categorization shared by all runs. */
    const analysis::Categorization &categorization() const
    {
        return cats;
    }

  private:
    /** Fresh runtime + critical data for one scenario. */
    struct Scenario {
        std::unique_ptr<osim::Kernel> kernel;
        std::unique_ptr<core::FreePartRuntime> runtime;
        TechniqueSetup setup;
        osim::Addr templateAddr = 0;
        osim::Pid templatePid = 0;
        osim::Addr cropAddr = 0;
        osim::Pid cropPid = 0;
        osim::Addr codeAddr = 0; //!< page in the imread process
        osim::Pid codePid = 0;
    };

    Scenario makeScenario(Technique technique);
    void warmup(Scenario &scenario, int submissions);
    void measureSecurity(Technique technique,
                         TechniqueReport &report);
    void measurePerformance(Technique technique,
                            TechniqueReport &report);
    void measureGranularity(Technique technique,
                            TechniqueReport &report);

    Config config;
    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::vector<std::string> apis;
};

} // namespace freepart::baselines

#endif // FREEPART_BASELINES_EVALUATOR_HH
