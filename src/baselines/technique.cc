#include "baselines/technique.hh"

#include "util/logging.hh"

namespace freepart::baselines {

const char *
techniqueName(Technique technique)
{
    switch (technique) {
      case Technique::NoIsolation:
        return "No isolation";
      case Technique::CodeApi:
        return "Code-based: API";
      case Technique::CodeApiData:
        return "Code-based: API & Data";
      case Technique::LibEntire:
        return "Library-based: Entire Library";
      case Technique::LibPerApi:
        return "Library-based: Individual APIs";
      case Technique::MemoryBased:
        return "Memory-based";
      case Technique::FreePart:
        return "FreePart";
      case Technique::NumTechniques:
        break;
    }
    return "?";
}

TechniqueSetup
makeTechniqueSetup(Technique technique,
                   const std::vector<std::string> &apis)
{
    TechniqueSetup setup;
    switch (technique) {
      case Technique::NoIsolation: {
        setup.plan = core::PartitionPlan::inHost();
        setup.config.enforceMemoryProtection = false;
        setup.config.restrictSyscalls = false;
        break;
      }
      case Technique::CodeApi: {
        // Three processes split by annotated code region: the
        // initialization + imread region (which also holds the
        // template variable — the Fig. 2-(a) weakness), the imshow
        // region, and everything else.
        std::map<std::string, uint32_t> map;
        for (const std::string &api : apis) {
            if (api == "cv2.imread")
                map[api] = 0;
            else if (api == "cv2.imshow")
                map[api] = 1;
            else
                map[api] = 2;
        }
        setup.plan = core::PartitionPlan::custom(std::move(map), 3);
        setup.config.enforceMemoryProtection = false;
        // Diverse code runs in every process, so a syscall allowlist
        // degenerates to allow-everything (§3 footnote 3).
        setup.config.restrictSyscalls = false;
        // The partitioned host code holds its data in-process, so
        // objects move only when a call crosses a code region.
        setup.config.lazyDataCopy = true;
        // Prior technique: classic one-wake-per-message transport.
        setup.config.batchedRpc = false;
        setup.templatePartition = 0; // lives with imread
        setup.cropPartition = 2;     // lives with the API bulk
        break;
      }
      case Technique::CodeApiData: {
        // Same three code processes + two dedicated data processes
        // (partitions 3 and 4 run no APIs).
        std::map<std::string, uint32_t> map;
        for (const std::string &api : apis) {
            if (api == "cv2.imread")
                map[api] = 0;
            else if (api == "cv2.imshow")
                map[api] = 1;
            else
                map[api] = 2;
        }
        setup.plan = core::PartitionPlan::custom(std::move(map), 5);
        setup.config.enforceMemoryProtection = false;
        setup.config.restrictSyscalls = false;
        setup.config.lazyDataCopy = true;
        setup.config.batchedRpc = false;
        setup.templatePartition = 3;
        setup.cropPartition = 4;
        setup.chargeDataAccessIpc = true;
        break;
      }
      case Technique::LibEntire: {
        setup.plan = core::PartitionPlan::singleAgent();
        setup.config.enforceMemoryProtection = false;
        // One process runs every API type: the union allowlist
        // approaches allow-everything, modeled as no restriction.
        setup.config.restrictSyscalls = false;
        // The [10] optimization: variables shared with the library
        // over shared memory (fast, but exposes the data).
        setup.config.lazyDataCopy = true;
        setup.config.batchedRpc = false;
        setup.dataSharedWithApis = true;
        break;
      }
      case Technique::LibPerApi: {
        setup.plan = core::PartitionPlan::perApi(apis);
        setup.config.enforceMemoryProtection = false;
        // Narrow per-process profiles make restriction effective.
        setup.config.restrictSyscalls = true;
        // Entire argument data transferred on every call (Fig. 2-(d),
        // "355 MB for a 1.7 MB image").
        setup.config.lazyDataCopy = false;
        setup.config.batchedRpc = false;
        break;
      }
      case Technique::MemoryBased: {
        setup.plan = core::PartitionPlan::inHost();
        setup.config.enforceMemoryProtection = true;
        setup.config.restrictSyscalls = false;
        break;
      }
      case Technique::FreePart: {
        setup.plan = core::PartitionPlan::freePartDefault();
        // Defaults: LDC + protection + seccomp + restart.
        break;
      }
      case Technique::NumTechniques:
        util::panic("makeTechniqueSetup: bad technique");
    }
    return setup;
}

} // namespace freepart::baselines
