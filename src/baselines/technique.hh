/**
 * @file
 * The isolation techniques compared in §3.1 / Table 1, each expressed
 * as a configuration of the shared runtime: a partition plan, feature
 * switches, and critical-data placement. The semantics follow the
 * paper's Fig. 2 illustrations:
 *
 *  (a) Code-based API isolation: 3 processes split by code region;
 *      the template variable lives WITH the imread process.
 *  (b) Code-based API+data isolation: 5 processes (3 code + 2 data);
 *      every critical-data access costs an IPC (>800 per input).
 *  (c) Library-based isolation, entire library: 1 agent runs all
 *      APIs; data shared with the library via shared memory.
 *  (d) Library-based isolation, per API: one process per API, full
 *      argument copies on every call.
 *  (e) Memory-based isolation: no partitions, page permissions only.
 *  (f) FreePart: 4 type-based agents + temporal protection + LDC +
 *      per-agent seccomp.
 */

#ifndef FREEPART_BASELINES_TECHNIQUE_HH
#define FREEPART_BASELINES_TECHNIQUE_HH

#include <string>
#include <vector>

#include "core/partition_plan.hh"
#include "core/runtime.hh"

namespace freepart::baselines {

/** The compared techniques. */
enum class Technique : uint8_t {
    NoIsolation = 0, //!< vanilla execution (overhead baseline)
    CodeApi,         //!< Fig. 2-(a)
    CodeApiData,     //!< Fig. 2-(b)
    LibEntire,       //!< Fig. 2-(c)
    LibPerApi,       //!< Fig. 2-(d)
    MemoryBased,     //!< memory permissions only
    FreePart,        //!< Fig. 2-(e)
    NumTechniques,
};

constexpr size_t kNumTechniques =
    static_cast<size_t>(Technique::NumTechniques);

/** Display name (Table 1 row label). */
const char *techniqueName(Technique technique);

/** Everything needed to instantiate a technique on an app. */
struct TechniqueSetup {
    core::PartitionPlan plan = core::PartitionPlan::inHost();
    core::RuntimeConfig config;
    /** Critical data (template) placed in this partition
     *  (kHostPartition = host process). */
    uint32_t templatePartition = core::kHostPartition;
    /** Second critical variable (OMRCrop) placement. */
    uint32_t cropPartition = core::kHostPartition;
    /** Data kept in a mapping shared with API processes (the [10]
     *  shared-memory optimization of Fig. 2-(c)). */
    bool dataSharedWithApis = false;
    /** Charge one IPC round trip per critical-data access (the
     *  Fig. 2-(b) data-isolation cost; ">800 IPCs per input"). */
    bool chargeDataAccessIpc = false;
};

/**
 * Build the setup of a technique for an application using the given
 * API list (needed by the per-API and code-based plans).
 */
TechniqueSetup makeTechniqueSetup(Technique technique,
                                  const std::vector<std::string> &apis);

} // namespace freepart::baselines

#endif // FREEPART_BASELINES_TECHNIQUE_HH
