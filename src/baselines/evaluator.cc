#include "baselines/evaluator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace freepart::baselines {

namespace {

/** Critical-data accesses charged per API call for the Fig. 2-(b)
 *  data-isolation technique (the paper reports ">800 IPCs for each
 *  sample input"; scaled to this build's shorter per-input call
 *  sequences so the Table 9 ordering is preserved). */
constexpr uint64_t kDataAccessesPerCall = 4;

/**
 * Reported process count per Table 1 semantics: code-based
 * techniques split the host program itself, library-based and
 * FreePart add agent processes next to the host, memory-based uses
 * one process.
 */
size_t
reportedProcessCount(Technique technique,
                     const core::PartitionPlan &plan)
{
    switch (technique) {
      case Technique::NoIsolation:
      case Technique::MemoryBased:
        return 1;
      case Technique::CodeApi:
      case Technique::CodeApiData:
        return plan.partitionCount();
      default:
        return plan.partitionCount() + 1;
    }
}

} // namespace

int
SecurityChecks::dataScore() const
{
    return int(omrCropCorruptionMitigated) +
           int(templateCorruptionMitigated) +
           int(omrCropPermsEnforced) + int(templatePermsEnforced) +
           int(omrCropNotShared) + int(templateNotShared);
}

int
SecurityChecks::apiScore() const
{
    return int(codeRewriteMitigated) + int(imreadIsolated) +
           int(imshowIsolated) + int(fiveOrMoreProcesses) +
           int(individualProcesses);
}

const char *
SecurityChecks::dataLevel() const
{
    int score = dataScore();
    if (score >= 6)
        return "Highly";
    if (score >= 4)
        return "Mostly";
    if (score >= 2)
        return "Less";
    return "Not";
}

const char *
SecurityChecks::apiLevel() const
{
    int score = apiScore();
    if (score >= 5)
        return "Highly";
    if (score >= 3)
        return "Mostly";
    if (score >= 2)
        return "Less";
    return "Not";
}

const char *
TechniqueReport::perfLevel() const
{
    if (overheadPct < 10.0)
        return "Low";
    if (overheadPct < 100.0)
        return "Moderate";
    return "High";
}

TechniqueEvaluator::TechniqueEvaluator()
    : TechniqueEvaluator(Config())
{
}

TechniqueEvaluator::TechniqueEvaluator(Config config)
    : config(config), registry(fw::buildFullRegistry())
{
    analysis::HybridCategorizer categorizer(registry);
    cats = categorizer.categorizeAll();

    // Dry run to discover the OMR application's API set.
    osim::Kernel kernel;
    apps::OmrChecker::Config omr_config;
    omr_config.imageRows = 48;
    omr_config.imageCols = 48;
    omr_config.questions = 2;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 1, omr_config);
    core::FreePartRuntime runtime(kernel, registry, cats,
                                  core::PartitionPlan::inHost());
    apps::OmrChecker app(runtime, omr_config);
    app.setup();
    app.gradeSubmission(inputs[0]);
    app.finish();
    apis = app.usedApis();
}

TechniqueEvaluator::Scenario
TechniqueEvaluator::makeScenario(Technique technique)
{
    Scenario scenario;
    scenario.setup = makeTechniqueSetup(technique, apis);
    scenario.kernel = std::make_unique<osim::Kernel>();
    scenario.runtime = std::make_unique<core::FreePartRuntime>(
        *scenario.kernel, registry, cats, scenario.setup.plan,
        scenario.setup.config);

    core::FreePartRuntime &runtime = *scenario.runtime;
    // Critical data placed per technique semantics (Fig. 2).
    scenario.templateAddr = runtime.allocInPartition(
        scenario.setup.templatePartition, "template", 64);
    scenario.templatePid =
        scenario.setup.templatePartition == core::kHostPartition
            ? runtime.hostPid()
            : runtime.agentPid(scenario.setup.templatePartition);
    scenario.cropAddr = runtime.allocInPartition(
        scenario.setup.cropPartition, "OMRCrop", 64);
    scenario.cropPid =
        scenario.setup.cropPartition == core::kHostPartition
            ? runtime.hostPid()
            : runtime.agentPid(scenario.setup.cropPartition);
    const char *template_bytes = "QBLOCKS:coordinates-v1..........";
    scenario.kernel->process(scenario.templatePid)
        .space()
        .write(scenario.templateAddr, template_bytes, 32);
    const char *crop_bytes = "OMRCROP:input-image-pixels......";
    scenario.kernel->process(scenario.cropPid)
        .space()
        .write(scenario.cropAddr, crop_bytes, 32);

    // A resident "API code" page in the process that will execute
    // imread (the code-manipulation attack target).
    uint32_t imread_part = scenario.setup.plan.partitionFor(
        "cv2.imread", fw::ApiType::Loading);
    scenario.codePid = imread_part == core::kHostPartition
                           ? runtime.hostPid()
                           : runtime.agentPid(imread_part);
    scenario.codeAddr =
        scenario.kernel->process(scenario.codePid)
            .space()
            .alloc(64, osim::PermRX, "imread-code");
    return scenario;
}

void
TechniqueEvaluator::warmup(Scenario &scenario, int submissions)
{
    apps::OmrChecker::Config omr_config;
    omr_config.imageRows = config.imageRows;
    omr_config.imageCols = config.imageCols;
    omr_config.questions = config.questions;
    auto inputs = apps::OmrChecker::seedInputs(
        *scenario.kernel, submissions, omr_config);
    apps::OmrChecker app(*scenario.runtime, omr_config);
    app.setup();
    for (const std::string &input : inputs)
        app.gradeSubmission(input);
    app.finish();
    scenario.runtime->lockdownAll();
}

void
TechniqueEvaluator::measureSecurity(Technique technique,
                                    TechniqueReport &report)
{
    using attacks::AttackDriver;
    using attacks::AttackGoal;
    using attacks::AttackOutcome;
    using attacks::AttackSpec;

    // Each attack runs against a fresh scenario so outcomes are
    // independent (a host crash in one cannot mask another).
    auto attack = [&](const std::string &cve, AttackGoal goal,
                      osim::Pid pid, osim::Addr addr, size_t len) {
        Scenario scenario = makeScenario(technique);
        warmup(scenario, 1);
        AttackDriver driver(*scenario.runtime, registry);
        AttackSpec spec;
        spec.cve = cve;
        spec.goal = goal;
        spec.targetPid = pid;
        spec.targetAddr = addr;
        spec.targetLen = len;
        return std::make_pair(driver.launch(spec),
                              std::move(scenario));
    };

    // M: memory corruption of template (via imread, Fig. 1 step 1).
    auto [m_template, s1] =
        [&] {
            Scenario scenario = makeScenario(technique);
            warmup(scenario, 1);
            AttackDriver driver(*scenario.runtime, registry);
            AttackSpec spec;
            spec.cve = "CVE-2017-12597";
            spec.goal = AttackGoal::CorruptData;
            spec.targetPid = scenario.templatePid;
            spec.targetAddr = scenario.templateAddr;
            spec.targetLen = 8;
            return std::make_pair(driver.launch(spec),
                                  std::move(scenario));
        }();

    // M: memory corruption of OMRCrop (via another imread CVE).
    auto [m_crop, s2] = [&] {
        Scenario scenario = makeScenario(technique);
        warmup(scenario, 1);
        AttackDriver driver(*scenario.runtime, registry);
        AttackSpec spec;
        spec.cve = "CVE-2017-12606";
        spec.goal = AttackGoal::CorruptData;
        spec.targetPid = scenario.cropPid;
        spec.targetAddr = scenario.cropAddr;
        spec.targetLen = 8;
        return std::make_pair(driver.launch(spec),
                              std::move(scenario));
    }();

    // C: code rewriting inside the imread process.
    auto [c_outcome, s3] = [&] {
        Scenario scenario = makeScenario(technique);
        warmup(scenario, 1);
        AttackDriver driver(*scenario.runtime, registry);
        AttackSpec spec;
        spec.cve = "CVE-2017-17760";
        spec.goal = AttackGoal::CodeRewrite;
        spec.targetPid = scenario.codePid;
        spec.targetAddr = scenario.codeAddr;
        spec.targetLen = 4;
        return std::make_pair(driver.launch(spec),
                              std::move(scenario));
    }();

    // D: denial of service via imread and via imshow (Fig. 1 (B)).
    auto [d_imread, s4] =
        attack("CVE-2017-14136", AttackGoal::Dos, 0, 0, 0);
    auto [d_imshow, s5] =
        attack("SIM-IMSHOW-DOS", AttackGoal::Dos, 0, 0, 0);

    report.preventsMemCorruption =
        !m_template.dataCorrupted && !m_crop.dataCorrupted;
    report.preventsCodeManip = !c_outcome.dataCorrupted;
    report.preventsDos =
        !d_imread.hostCrashed && !d_imshow.hostCrashed;

    SecurityChecks &checks = report.checks;
    checks.templateCorruptionMitigated = !m_template.dataCorrupted;
    checks.omrCropCorruptionMitigated = !m_crop.dataCorrupted;
    checks.codeRewriteMitigated = !c_outcome.dataCorrupted;

    // Permission enforcement: the annotated variables must actually
    // have been flipped read-only during the warmup run.
    auto perms_enforced = [&](const Scenario &scenario,
                              const char *name) {
        for (const core::ProtectedVar &var :
             scenario.runtime->protectedVars())
            if (var.name == name && var.isProtected)
                return true;
        return false;
    };
    checks.templatePermsEnforced = perms_enforced(s1, "template");
    checks.omrCropPermsEnforced = perms_enforced(s2, "OMRCrop");

    // Shared-with-APIs: structural — the variable's process also
    // executes framework APIs, or the technique shares data with the
    // library over shared memory.
    const TechniqueSetup &setup = s1.setup;
    auto shared_with_apis = [&](uint32_t partition) {
        if (setup.dataSharedWithApis)
            return true;
        // A partition (or the host) is private iff no framework API
        // executes inside it.
        for (const std::string &api : apis)
            if (setup.plan.partitionFor(
                    api, registry.require(api).declaredType) ==
                partition)
                return true;
        return false;
    };
    checks.templateNotShared =
        !shared_with_apis(setup.templatePartition);
    checks.omrCropNotShared = !shared_with_apis(setup.cropPartition);

    // Isolation of the two CVE-carrying APIs used by the app: the
    // API must run outside the host, away from the critical data,
    // and not share a process with the other vulnerable API.
    auto partition_of = [&](const std::string &api) {
        return setup.plan.partitionFor(
            api, cats.count(api) ? cats.at(api).type
                                 : fw::ApiType::Unknown);
    };
    uint32_t p_imread = partition_of("cv2.imread");
    uint32_t p_imshow = partition_of("cv2.imshow");
    auto isolated = [&](uint32_t p, uint32_t other) {
        return p != core::kHostPartition &&
               p != setup.templatePartition &&
               p != setup.cropPartition && p != other;
    };
    checks.imreadIsolated = isolated(p_imread, p_imshow);
    checks.imshowIsolated = isolated(p_imshow, p_imread);
    report.isolatedCveApis = size_t(checks.imreadIsolated) +
                             size_t(checks.imshowIsolated);

    report.processCount =
        reportedProcessCount(technique, setup.plan);
    checks.fiveOrMoreProcesses = report.processCount >= 5;
    checks.individualProcesses = technique == Technique::LibPerApi;
}

void
TechniqueEvaluator::measurePerformance(Technique technique,
                                       TechniqueReport &report)
{
    Scenario scenario = makeScenario(technique);
    warmup(scenario, config.submissions);
    core::RunStats stats = scenario.runtime->stats();
    report.ipcCount = stats.ipcMessages;
    report.bytesTransferred = stats.bytesTransferred;
    report.simTime = stats.elapsed();
    if (scenario.setup.chargeDataAccessIpc) {
        // Fig. 2-(b): every critical-data access from partitioned
        // code is an IPC to the data process.
        uint64_t accesses = stats.apiCalls * kDataAccessesPerCall;
        const osim::CostModel &costs = scenario.kernel->costs();
        report.ipcCount += accesses;
        report.bytesTransferred += accesses * 64;
        report.simTime +=
            accesses * (costs.ipcRoundTrip + costs.copyCost(64));
    }
}

void
TechniqueEvaluator::measureGranularity(Technique technique,
                                       TechniqueReport &report)
{
    TechniqueSetup setup = makeTechniqueSetup(technique, apis);
    std::map<uint32_t, size_t> per_partition;
    for (const std::string &api : apis) {
        fw::ApiType type = cats.count(api)
                               ? cats.at(api).type
                               : fw::ApiType::Unknown;
        ++per_partition[setup.plan.partitionFor(api, type)];
    }
    std::vector<size_t> counts;
    counts.reserve(per_partition.size());
    for (const auto &[partition, count] : per_partition)
        counts.push_back(count);
    if (counts.empty())
        return;
    report.minApisPerProc =
        *std::min_element(counts.begin(), counts.end());
    report.maxApisPerProc =
        *std::max_element(counts.begin(), counts.end());
    double mean = 0;
    for (size_t count : counts)
        mean += static_cast<double>(count);
    mean /= static_cast<double>(counts.size());
    double var = 0;
    for (size_t count : counts)
        var += (static_cast<double>(count) - mean) *
               (static_cast<double>(count) - mean);
    report.granStddev = counts.size() > 1
                            ? std::sqrt(var / (counts.size() - 1))
                            : 0.0;
}

TechniqueReport
TechniqueEvaluator::evaluate(Technique technique)
{
    TechniqueReport report;
    report.technique = technique;
    measureSecurity(technique, report);
    measurePerformance(technique, report);
    measureGranularity(technique, report);
    return report;
}

std::vector<TechniqueReport>
TechniqueEvaluator::evaluateAll()
{
    std::vector<TechniqueReport> reports;
    for (size_t i = 0; i < kNumTechniques; ++i)
        reports.push_back(
            evaluate(static_cast<Technique>(i)));
    double base = 0;
    for (const TechniqueReport &report : reports)
        if (report.technique == Technique::NoIsolation)
            base = static_cast<double>(report.simTime);
    if (base > 0)
        for (TechniqueReport &report : reports)
            report.overheadPct =
                (static_cast<double>(report.simTime) - base) /
                base * 100.0;
    return reports;
}

} // namespace freepart::baselines
