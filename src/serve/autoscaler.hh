/**
 * @file
 * SLO-driven shard autoscaler (DESIGN.md §14.2): a deterministic
 * policy loop over signals the cluster layer already produces — per
 * shard queue-depth estimates on the open-loop arrival axis (the same
 * quantity admission control sheds on), and the router's shed /
 * deadline-miss counters. Under sustained queue pressure it adds
 * serving capacity, preferring to revive a previously retired slot
 * (the proactive-push join path) before growing the cluster with a
 * fresh shard; under sustained idleness it retires the least-loaded
 * shard, which evacuates its objects to the survivors so no
 * acknowledged result is lost.
 *
 * Hysteresis is explicit: a scale decision needs `sustainUp` /
 * `sustainDown` *consecutive* over- or under-threshold ticks, and
 * every membership change opens a cooldown window — so chaos-induced
 * blips (a stalled shard, one slow call) don't flap membership.
 *
 * The loop also governs the warm agent pool: each tick resizes every
 * live shard's pool target from its observed peak lease concurrency.
 *
 * Everything is driven off the arrival clock the traffic generator
 * advances; no wall time, no randomness — runs replay byte-
 * identically.
 */

#ifndef FREEPART_SERVE_AUTOSCALER_HH
#define FREEPART_SERVE_AUTOSCALER_HH

#include <cstdint>

#include "osim/types.hh"
#include "shard/shard_router.hh"

namespace freepart::serve {

class WarmAgentPool;

struct AutoscalerConfig {
    /** Live-shard bounds the policy may move between. */
    uint32_t minLiveShards = 1;
    uint32_t maxLiveShards = 8;

    /** Policy evaluation period on the arrival clock. */
    osim::SimTime tickInterval = 250'000;

    /** A tick votes *up* when any shard's queue depth (service-EWMA
     *  units) reaches this, or calls were shed / missed deadlines
     *  since the previous tick. */
    double scaleUpDepth = 8.0;

    /** A tick votes *down* when the *mean* depth across live shards
     *  is at or below this and nothing was shed or late since the
     *  previous tick. Mean, not max: one shard mid-call always has
     *  nonzero depth — capacity decisions read aggregate occupancy,
     *  hotspot decisions (up) read the max. */
    double scaleDownDepth = 0.5;

    /** Hard-overload escape hatch: at or above this max depth a
     *  sustained up vote ignores the cooldown window (scale up fast,
     *  scale down slow — downs always honor the cooldown). */
    double panicDepth = 16.0;

    /** Consecutive votes required before acting (hysteresis). */
    uint32_t sustainUp = 3;
    uint32_t sustainDown = 12;

    /** Quiet window after any membership change. */
    osim::SimTime cooldown = 2'000'000;

    /** When no retired slot is available to revive, grow the cluster
     *  with addShard (off = revive-only, bounded by history). */
    bool growByAddShard = true;

    /** Kernel seeding for shards the policy adds (fixture files). */
    shard::ShardRouter::SeedFn seed;

    /** Warm-pool target bounds per shard (governance). */
    uint32_t poolMin = 1;
    uint32_t poolMax = 8;
};

struct AutoscalerStats {
    uint64_t ticks = 0;
    uint64_t scaleUps = 0;
    uint64_t panicScaleUps = 0; //!< ups that bypassed the cooldown
    uint64_t scaleDowns = 0;
    uint64_t shardsRevived = 0; //!< scale-ups served by a retired slot
    uint64_t shardsAdded = 0;   //!< scale-ups that grew the cluster
    uint64_t upVotes = 0;
    uint64_t downVotes = 0;
    uint64_t blipsIgnored = 0;   //!< streaks broken before sustain
    uint64_t cooldownHolds = 0;  //!< sustained votes deferred
    uint32_t livePeak = 0;
    uint32_t liveFloor = 0;
    double maxDepthSeen = 0.0;
    /** Integral of live shards over the arrival axis, in shard-
     *  seconds — the capacity bill a static max-size cluster is
     *  compared against. */
    double shardSeconds = 0.0;
};

/** The policy loop. Call observe() as arrivals advance (cheap between
 *  ticks) and finish() once at the end to close the capacity
 *  integral. */
class Autoscaler
{
  public:
    Autoscaler(shard::ShardRouter &router, AutoscalerConfig config,
               WarmAgentPool *pool = nullptr);

    /** Advance the policy clock to `now` (nondecreasing). Runs at
     *  most one policy tick per tickInterval elapsed. */
    void observe(osim::SimTime now);

    /** Close the shard-seconds integral at the end of a run. */
    void finish(osim::SimTime now);

    const AutoscalerStats &stats() const { return stats_; }

  private:
    void tick(osim::SimTime now);
    bool scaleUp(osim::SimTime now);
    bool scaleDown(osim::SimTime now);
    void governPool(osim::SimTime now);
    void accumulateCapacity(osim::SimTime now);

    shard::ShardRouter &router_;
    AutoscalerConfig config_;
    WarmAgentPool *pool_;
    AutoscalerStats stats_;

    osim::SimTime lastTick_ = 0;     //!< last policy evaluation
    osim::SimTime lastAccount_ = 0;  //!< capacity-integral watermark
    osim::SimTime nextAllowed_ = 0;  //!< cooldown gate
    uint64_t lastShed_ = 0;
    uint64_t lastMisses_ = 0;
    uint32_t upStreak_ = 0;
    uint32_t downStreak_ = 0;
};

} // namespace freepart::serve

#endif // FREEPART_SERVE_AUTOSCALER_HH
