#include "serve/tenant_workload.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"
#include "util/rng.hh"

namespace freepart::serve {

namespace {

/** Unary Mat ops standing in for processing chains (the app model's
 *  trace supplies the call structure; these supply the work). */
const char *const kOps[] = {"cv2.GaussianBlur", "cv2.erode",
                            "cv2.dilate",       "cv2.flip",
                            "cv2.normalize",    "cv2.bitwise_not"};
constexpr size_t kNumOps = sizeof(kOps) / sizeof(*kOps);

} // namespace

double
percentileUs(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

TenantTrafficGenerator::TenantTrafficGenerator(
    const apps::WorkloadGenerator &generator,
    TenantWorkloadConfig config)
    : config_(config)
{
    if (config_.tenants == 0)
        util::fatal("TenantTrafficGenerator: tenants must be >= 1");
    if (config_.zipfExponent < 0.0)
        util::fatal("TenantTrafficGenerator: zipfExponent must be "
                    ">= 0");
    const std::vector<apps::AppModel> &models = apps::appModels();
    for (const apps::AppModel &model : models) {
        std::vector<ScriptCall> script;
        size_t op = static_cast<size_t>(model.id); // de-phase op cycles
        for (const apps::WorkloadCall &call : generator.trace(model)) {
            if (call.startsRound)
                script.push_back({"cv2.imread", true});
            else
                script.push_back({kOps[op++ % kNumOps], false});
        }
        script.push_back({"cv2.imwrite", false});
        scripts_.push_back(std::move(script));
    }
}

uint64_t
TenantTrafficGenerator::keyOf(uint32_t tenant) const
{
    return config_.keyBase + static_cast<uint64_t>(tenant) * 131;
}

size_t
TenantTrafficGenerator::sessionLength(uint32_t tenant) const
{
    return scripts_[tenant % scripts_.size()].size();
}

ServeOutcome
TenantTrafficGenerator::run(shard::ShardRouter &router,
                            const std::vector<RampPhase> &phases,
                            Autoscaler *scaler, WarmAgentPool *pool)
{
    struct Tenant {
        int32_t activeIdx = -1; //!< slot in `active`, -1 = none
        uint64_t issued = 0;
        std::vector<double> latenciesUs;
    };
    struct ActiveSession {
        uint32_t tenant = 0;
        size_t next = 0;
        ipc::Value chain;
        bool haveChain = false;
        uint32_t leaseShard = 0;
    };

    util::Rng rng(config_.seed);
    util::ZipfSampler popularity(config_.tenants,
                                 config_.zipfExponent);
    std::vector<Tenant> tenants(config_.tenants);
    std::vector<ActiveSession> active;
    active.reserve(config_.maxConcurrentSessions);
    if (pool)
        pool->ensureShards(router.shardCount());

    ServeOutcome out;
    std::vector<double> latenciesUs;
    std::vector<std::pair<uint64_t, uint64_t>> acked; // token, key
    osim::SimTime arrival = 0;
    uint64_t token = 0;

    auto endSessionAt = [&](size_t idx, osim::SimTime now) {
        ActiveSession &session = active[idx];
        router.endSession(keyOf(session.tenant));
        if (pool)
            pool->release(session.leaseShard, now);
        tenants[session.tenant].activeIdx = -1;
        if (idx + 1 != active.size()) {
            active[idx] = std::move(active.back());
            tenants[active[idx].tenant].activeIdx =
                static_cast<int32_t>(idx);
        }
        active.pop_back();
    };

    for (const RampPhase &phase : phases) {
        for (uint64_t i = 0; i < phase.calls; ++i) {
            arrival += std::max<osim::SimTime>(
                1, static_cast<osim::SimTime>(rng.exponential(
                       static_cast<double>(
                           phase.meanInterarrival))));
            auto t = static_cast<uint32_t>(popularity.draw(rng));

            if (tenants[t].activeIdx < 0) {
                if (active.size() <
                    config_.maxConcurrentSessions) {
                    // Session start: check an agent set out of the
                    // warm pool on the key's owner shard and charge
                    // the acquisition to its horizon — the session's
                    // first call queues behind it.
                    uint64_t key = keyOf(t);
                    uint32_t owner = router.ownerShardOf(key);
                    if (owner == shard::kInvalidShard)
                        owner = 0;
                    PoolCheckout checkout;
                    checkout.warm = true; // free start without a pool
                    if (pool)
                        checkout = pool->checkout(owner, arrival);
                    router.chargeSessionStart(key, arrival,
                                              checkout.cost,
                                              checkout.warm);
                    tenants[t].activeIdx =
                        static_cast<int32_t>(active.size());
                    ActiveSession fresh;
                    fresh.tenant = t;
                    fresh.leaseShard = owner;
                    active.push_back(std::move(fresh));
                    ++out.sessionsStarted;
                } else {
                    // Admission cap full: the frontend parks the new
                    // tenant and the arrival advances an active
                    // session instead (deterministic pick).
                    t = active[t % active.size()].tenant;
                }
            }

            ActiveSession &session =
                active[static_cast<size_t>(tenants[t].activeIdx)];
            Tenant &tenant = tenants[t];
            uint64_t key = keyOf(t);
            const std::vector<ScriptCall> &script =
                scripts_[t % scripts_.size()];
            const ScriptCall &call = script[session.next++];
            ipc::ValueList args;
            std::string api = call.api;
            if (call.load || !session.haveChain) {
                // Round boundary — or the chain was lost (shed call,
                // chaos) and the app rebuilds from a fresh load.
                api = "cv2.imread";
                args.emplace_back(std::string("/data/test.fpim"));
            } else if (api == "cv2.imwrite") {
                args.emplace_back(std::string("/out/tenant") +
                                  std::to_string(t) + ".fpim");
                args.push_back(session.chain);
            } else {
                args.push_back(session.chain);
            }

            shard::CallOptions opts;
            opts.dedupToken = ++token;
            opts.arrival = arrival;
            opts.deadline = config_.deadline;
            shard::RoutedCall routed =
                router.invokeAt(key, api, std::move(args), opts);
            ++out.issued;
            ++tenant.issued;

            if (routed.result.ok) {
                ++out.acked;
                if (!routed.deadlineMissed)
                    ++out.ackedInDeadline;
                acked.emplace_back(opts.dedupToken, key);
                double us =
                    static_cast<double>(routed.latency) / 1000.0;
                latenciesUs.push_back(us);
                tenant.latenciesUs.push_back(us);
                if (!routed.result.values.empty() &&
                    routed.result.values[0].kind() ==
                        ipc::Value::Kind::Ref) {
                    session.chain = routed.result.values[0];
                    session.haveChain = true;
                }
            } else {
                session.haveChain = false;
            }

            if (session.next >= script.size()) {
                // Session end: scrub the tenant's objects cluster-
                // wide and return the agent set to the pool (its
                // clean-epoch reset runs in the background).
                endSessionAt(
                    static_cast<size_t>(tenants[t].activeIdx),
                    arrival);
                ++out.sessionsCompleted;
            }

            if (scaler)
                scaler->observe(arrival);
        }
    }
    out.lastArrival = arrival;

    // Close out sessions still mid-script so lease accounting and the
    // scrub counters balance.
    while (!active.empty())
        endSessionAt(active.size() - 1, arrival);

    // At-least-once audit: every acknowledged token must still answer
    // from the cluster dedup cache — session teardown scrubs objects,
    // never acks.
    for (const auto &[seq, key] : acked) {
        shard::RoutedCall replay =
            router.invoke(key, "cv2.bitwise_not", {}, seq);
        if (!replay.result.ok || !replay.deduped)
            ++out.lostAcks;
    }

    if (scaler)
        scaler->finish(arrival);
    router.drainAll();
    out.cluster = router.stats();
    if (scaler) {
        out.scaler = scaler->stats();
        out.shardSeconds = out.scaler.shardSeconds;
    } else {
        out.shardSeconds = static_cast<double>(
                               router.liveShardCount()) *
                           static_cast<double>(arrival) * 1e-9;
    }
    if (pool)
        out.pool = pool->stats();

    out.sloAttainment =
        out.issued ? static_cast<double>(out.ackedInDeadline) /
                         static_cast<double>(out.issued)
                   : 0.0;
    std::sort(latenciesUs.begin(), latenciesUs.end());
    out.p50Us = percentileUs(latenciesUs, 0.50);
    out.p99Us = percentileUs(latenciesUs, 0.99);
    out.p999Us = percentileUs(latenciesUs, 0.999);

    uint64_t hottest = 0;
    for (Tenant &tenant : tenants) {
        if (tenant.issued > 0)
            ++out.tenantsTouched;
        hottest = std::max(hottest, tenant.issued);
        if (tenant.latenciesUs.size() <
            config_.tenantPercentileMinAcks)
            continue;
        std::sort(tenant.latenciesUs.begin(),
                  tenant.latenciesUs.end());
        ++out.tenantsInBreakdown;
        out.worstTenantP99Us =
            std::max(out.worstTenantP99Us,
                     percentileUs(tenant.latenciesUs, 0.99));
    }
    out.hottestTenantShare =
        out.issued ? static_cast<double>(hottest) /
                         static_cast<double>(out.issued)
                   : 0.0;
    return out;
}

} // namespace freepart::serve
