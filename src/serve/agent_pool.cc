#include "serve/agent_pool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace freepart::serve {

WarmAgentPool::WarmAgentPool(AgentPoolConfig config)
    : config_(config)
{
    if (config_.maxSize == 0)
        util::fatal("WarmAgentPool: maxSize must be >= 1");
    if (config_.initialSize > config_.maxSize)
        util::fatal("WarmAgentPool: initialSize %u exceeds maxSize %u",
                    config_.initialSize, config_.maxSize);
}

void
WarmAgentPool::ensureShards(size_t count)
{
    while (pools_.size() < count) {
        ShardPool pool;
        pool.target = config_.initialSize;
        if (config_.enabled)
            pool.readyAt.assign(config_.initialSize, 0);
        pools_.push_back(std::move(pool));
    }
}

WarmAgentPool::ShardPool &
WarmAgentPool::poolFor(uint32_t shard)
{
    ensureShards(static_cast<size_t>(shard) + 1);
    return pools_[shard];
}

PoolCheckout
WarmAgentPool::checkout(uint32_t shard, osim::SimTime now)
{
    ShardPool &pool = poolFor(shard);
    PoolCheckout out;
    // Earliest-clean set wins; index order breaks ties so the scan
    // is deterministic.
    size_t best = pool.readyAt.size();
    for (size_t i = 0; i < pool.readyAt.size(); ++i)
        if (best == pool.readyAt.size() ||
            pool.readyAt[i] < pool.readyAt[best])
            best = i;
    // A set whose readiness is further out than one epoch reset is
    // still mid background-spawn — waiting for it is no better than
    // spawning fresh on the critical path, so leave it to mature.
    if (config_.enabled && best < pool.readyAt.size() &&
        pool.readyAt[best] <= now + config_.epochReset) {
        osim::SimTime ready = pool.readyAt[best];
        pool.readyAt.erase(pool.readyAt.begin() +
                           static_cast<ptrdiff_t>(best));
        out.warm = true;
        out.cost = config_.warmHandoff;
        if (ready > now) {
            // The set is still mid-reset: the session waits out the
            // remainder, which is still far cheaper than a spawn.
            out.waited = ready - now;
            out.cost += out.waited;
            ++stats_.resetWaits;
            stats_.waitedTotal += out.waited;
        }
        ++stats_.warmCheckouts;
    } else {
        out.cost = config_.coldSpawn;
        ++stats_.coldFallbacks;
    }
    ++pool.leases;
    pool.leasePeak = std::max(pool.leasePeak, pool.leases);
    stats_.leasesPeak = std::max(stats_.leasesPeak, pool.leases);
    stats_.costTotal += out.cost;
    return out;
}

void
WarmAgentPool::release(uint32_t shard, osim::SimTime now)
{
    ShardPool &pool = poolFor(shard);
    if (pool.leases == 0)
        util::fatal("WarmAgentPool: release without a lease on "
                    "shard %u",
                    shard);
    --pool.leases;
    ++stats_.releases;
    if (!config_.enabled)
        return;
    // The released set re-enters the inventory once its background
    // clean-epoch reset finishes — unless the shard already holds its
    // target (then the set is torn down instead of hoarding memory).
    uint32_t holding =
        pool.leases + static_cast<uint32_t>(pool.readyAt.size());
    if (holding < pool.target && pool.readyAt.size() <
                                     static_cast<size_t>(
                                         config_.maxSize)) {
        pool.readyAt.push_back(now + config_.epochReset);
        ++stats_.setsRecycled;
    } else {
        ++stats_.setsDropped;
    }
}

void
WarmAgentPool::setTarget(uint32_t shard, uint32_t target,
                         osim::SimTime now)
{
    ShardPool &pool = poolFor(shard);
    target = std::min(target, config_.maxSize);
    if (target == pool.target || !config_.enabled) {
        pool.target = target;
        return;
    }
    if (target > pool.target) {
        // Grow: spawn fresh sets in the background; they join the
        // inventory once their (off-critical-path) spawn completes.
        uint32_t holding =
            pool.leases + static_cast<uint32_t>(pool.readyAt.size());
        for (uint32_t i = holding; i < target; ++i)
            pool.readyAt.push_back(now + config_.coldSpawn);
        ++stats_.targetGrows;
    } else {
        // Shrink: drop the latest-ready idle sets first (they are the
        // coldest investment); leased sets drain via release().
        ++stats_.targetShrinks;
        while (!pool.readyAt.empty() &&
               pool.leases + pool.readyAt.size() >
                   static_cast<size_t>(target)) {
            size_t worst = 0;
            for (size_t i = 1; i < pool.readyAt.size(); ++i)
                if (pool.readyAt[i] > pool.readyAt[worst])
                    worst = i;
            pool.readyAt.erase(pool.readyAt.begin() +
                               static_cast<ptrdiff_t>(worst));
            ++stats_.setsDropped;
        }
    }
    pool.target = target;
}

uint32_t
WarmAgentPool::leases(uint32_t shard) const
{
    return shard < pools_.size() ? pools_[shard].leases : 0;
}

uint32_t
WarmAgentPool::idleReady(uint32_t shard, osim::SimTime now) const
{
    if (shard >= pools_.size())
        return 0;
    uint32_t ready = 0;
    for (osim::SimTime at : pools_[shard].readyAt)
        if (at <= now)
            ++ready;
    return ready;
}

uint32_t
WarmAgentPool::target(uint32_t shard) const
{
    return shard < pools_.size() ? pools_[shard].target
                                 : config_.initialSize;
}

uint32_t
WarmAgentPool::drainLeasePeak(uint32_t shard)
{
    ShardPool &pool = poolFor(shard);
    uint32_t peak = pool.leasePeak;
    pool.leasePeak = pool.leases;
    return peak;
}

} // namespace freepart::serve
