#include "serve/autoscaler.hh"

#include <algorithm>

#include "serve/agent_pool.hh"
#include "util/logging.hh"

namespace freepart::serve {

Autoscaler::Autoscaler(shard::ShardRouter &router,
                       AutoscalerConfig config, WarmAgentPool *pool)
    : router_(router), config_(std::move(config)), pool_(pool)
{
    if (config_.minLiveShards == 0)
        util::fatal("Autoscaler: minLiveShards must be >= 1");
    if (config_.maxLiveShards < config_.minLiveShards)
        util::fatal("Autoscaler: maxLiveShards %u below "
                    "minLiveShards %u",
                    config_.maxLiveShards, config_.minLiveShards);
    if (config_.tickInterval == 0)
        util::fatal("Autoscaler: tickInterval must be > 0");
    if (config_.scaleUpDepth <= config_.scaleDownDepth)
        util::fatal("Autoscaler: scaleUpDepth must exceed "
                    "scaleDownDepth (hysteresis band)");
    if (config_.panicDepth < config_.scaleUpDepth)
        util::fatal("Autoscaler: panicDepth must be at least "
                    "scaleUpDepth");
    if (config_.sustainUp == 0 || config_.sustainDown == 0)
        util::fatal("Autoscaler: sustain counts must be >= 1");
    if (config_.poolMax < config_.poolMin)
        util::fatal("Autoscaler: poolMax below poolMin");
    stats_.liveFloor = static_cast<uint32_t>(router_.liveShardCount());
    stats_.livePeak = stats_.liveFloor;
    if (pool_)
        pool_->ensureShards(router_.shardCount());
}

void
Autoscaler::accumulateCapacity(osim::SimTime now)
{
    if (now <= lastAccount_)
        return;
    stats_.shardSeconds +=
        static_cast<double>(router_.liveShardCount()) *
        static_cast<double>(now - lastAccount_) * 1e-9;
    lastAccount_ = now;
}

void
Autoscaler::observe(osim::SimTime now)
{
    if (now < lastTick_ + config_.tickInterval)
        return;
    // Bill the capacity held since the last evaluation *before* any
    // membership change this tick makes.
    accumulateCapacity(now);
    tick(now);
    lastTick_ = now;
}

void
Autoscaler::finish(osim::SimTime now)
{
    accumulateCapacity(now);
}

void
Autoscaler::tick(osim::SimTime now)
{
    ++stats_.ticks;
    auto live = static_cast<uint32_t>(router_.liveShardCount());
    stats_.livePeak = std::max(stats_.livePeak, live);
    stats_.liveFloor = std::min(stats_.liveFloor, live);

    double maxDepth = 0.0;
    double depthSum = 0.0;
    uint32_t depthShards = 0;
    for (uint32_t s = 0; s < router_.shardCount(); ++s) {
        if (!router_.shardLive(s))
            continue;
        double depth = router_.queueDepthAt(s, now);
        maxDepth = std::max(maxDepth, depth);
        depthSum += depth;
        ++depthShards;
    }
    double meanDepth = depthShards ? depthSum / depthShards : 0.0;
    stats_.maxDepthSeen = std::max(stats_.maxDepthSeen, maxDepth);

    const shard::ClusterStats &qs = router_.quickStats();
    uint64_t shedDelta = qs.shedCalls - lastShed_;
    uint64_t missDelta = qs.deadlineMisses - lastMisses_;
    lastShed_ = qs.shedCalls;
    lastMisses_ = qs.deadlineMisses;

    bool pressure = maxDepth >= config_.scaleUpDepth ||
                    shedDelta > 0 || missDelta > 0;
    // Down votes are predictive: the survivors absorb the victim's
    // load, so project the mean depth onto live-1 shards — retiring
    // into a level that immediately re-triggers pressure just flaps
    // membership.
    double projected = live > 1
                           ? meanDepth * static_cast<double>(live) /
                                 static_cast<double>(live - 1)
                           : meanDepth;
    bool idle = projected <= config_.scaleDownDepth &&
                shedDelta == 0 && missDelta == 0;

    if (pressure) {
        ++upStreak_;
        ++stats_.upVotes;
    } else {
        if (upStreak_ > 0 && upStreak_ < config_.sustainUp)
            ++stats_.blipsIgnored;
        upStreak_ = 0;
    }
    if (idle) {
        ++downStreak_;
        ++stats_.downVotes;
    } else {
        if (downStreak_ > 0 && downStreak_ < config_.sustainDown)
            ++stats_.blipsIgnored;
        downStreak_ = 0;
    }

    if (upStreak_ >= config_.sustainUp && live < config_.maxLiveShards) {
        bool panic = maxDepth >= config_.panicDepth;
        if (now < nextAllowed_ && !panic) {
            ++stats_.cooldownHolds;
        } else if (scaleUp(now)) {
            if (panic && now < nextAllowed_)
                ++stats_.panicScaleUps;
            ++stats_.scaleUps;
            nextAllowed_ = now + config_.cooldown;
            upStreak_ = 0;
            downStreak_ = 0;
            stats_.livePeak = std::max(
                stats_.livePeak,
                static_cast<uint32_t>(router_.liveShardCount()));
        }
    } else if (downStreak_ >= config_.sustainDown &&
               live > config_.minLiveShards) {
        if (now < nextAllowed_) {
            ++stats_.cooldownHolds;
        } else if (scaleDown(now)) {
            ++stats_.scaleDowns;
            nextAllowed_ = now + config_.cooldown;
            upStreak_ = 0;
            downStreak_ = 0;
        }
    }

    governPool(now);
}

bool
Autoscaler::scaleUp(osim::SimTime /*now*/)
{
    // Prefer reviving a retired slot: the namespace already exists,
    // and reviveShard's proactive push rehydrates its key range.
    for (uint32_t s = 0; s < router_.shardCount(); ++s) {
        if (router_.shardRetired(s)) {
            router_.reviveShard(s);
            ++stats_.shardsRevived;
            if (pool_)
                pool_->ensureShards(router_.shardCount());
            return true;
        }
    }
    if (!config_.growByAddShard)
        return false;
    router_.addShard(config_.seed);
    ++stats_.shardsAdded;
    if (pool_)
        pool_->ensureShards(router_.shardCount());
    return true;
}

bool
Autoscaler::scaleDown(osim::SimTime now)
{
    // Retire the shallowest queue; ties go to the highest slot so the
    // original shards stay put and growth unwinds in reverse.
    uint32_t victim = shard::kInvalidShard;
    double victimDepth = 0.0;
    for (uint32_t s = 0; s < router_.shardCount(); ++s) {
        if (!router_.shardLive(s) || !router_.ring().contains(s))
            continue;
        double depth = router_.queueDepthAt(s, now);
        if (victim == shard::kInvalidShard || depth < victimDepth ||
            (depth == victimDepth && s > victim)) {
            victim = s;
            victimDepth = depth;
        }
    }
    if (victim == shard::kInvalidShard)
        return false;
    return router_.retireShard(victim);
}

void
Autoscaler::governPool(osim::SimTime now)
{
    if (!pool_)
        return;
    for (uint32_t s = 0; s < router_.shardCount(); ++s) {
        if (!router_.shardLive(s))
            continue;
        // Provision for the recent concurrency peak plus spares;
        // clamped so a quiet shard still keeps warm sets around.
        // Shrinks need slack below the current target (hysteresis):
        // a twitchy target churns real warm sets for pending spawns.
        uint32_t want = pool_->drainLeasePeak(s) + 2;
        want = std::max(want, config_.poolMin);
        want = std::min(want, config_.poolMax);
        uint32_t current = pool_->target(s);
        if (want < current && current - want <= 2)
            want = current;
        pool_->setTarget(s, want, now);
    }
}

} // namespace freepart::serve
