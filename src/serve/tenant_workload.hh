/**
 * @file
 * Multi-tenant open-loop traffic generator (DESIGN.md §14.1). Tenants
 * are drawn per call from a Zipfian popularity distribution (a few
 * tenants dominate, a long tail trickles — `util::ZipfSampler`), and
 * call arrivals are a Poisson process on the shared open-loop axis
 * (exponential gaps via the deterministic `Rng::exponential`). Each
 * tenant replays sessions of one of the 23 Table 6 application models
 * (load -> process-chain -> store), checked out against a warm agent
 * pool at session start and torn down — objects scrubbed cluster-wide
 * — at session end.
 *
 * The generator measures what a serving operator watches: per-call
 * p50/p99/p999 latency, SLO attainment (acked within deadline over
 * issued), a per-tenant percentile breakdown, and the capacity bill
 * in shard-seconds. Every draw comes from one seeded Rng, so a run
 * replays byte-identically.
 */

#ifndef FREEPART_SERVE_TENANT_WORKLOAD_HH
#define FREEPART_SERVE_TENANT_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_models.hh"
#include "apps/workload.hh"
#include "serve/agent_pool.hh"
#include "serve/autoscaler.hh"
#include "shard/shard_router.hh"

namespace freepart::serve {

struct TenantWorkloadConfig {
    /** Distinct tenants the popularity distribution draws from. */
    uint32_t tenants = 1000;

    /** Zipf exponent of tenant popularity (0 = uniform). */
    double zipfExponent = 1.1;

    /** Seed of the single Rng behind tenant draws and arrival gaps. */
    uint64_t seed = 0x5eafe11;

    /** Routing-key base; tenant t keys at keyBase + t * stride. */
    uint64_t keyBase = 0x7e4a0000;

    /** Per-call deadline relative to arrival (0 = router default). */
    osim::SimTime deadline = 0;

    /** Session admission cap of the serving frontend: at most this
     *  many tenant sessions run concurrently (each holds one warm
     *  agent set). Arrivals drawn for a tenant without a slot while
     *  the cap is full advance an already-active session instead —
     *  open-loop call rate is preserved, lease concurrency bounded. */
    uint32_t maxConcurrentSessions = 48;

    /** Tenants with at least this many acked calls enter the
     *  per-tenant percentile breakdown (tiny samples are noise). */
    uint64_t tenantPercentileMinAcks = 20;
};

/** One load phase: `calls` arrivals at mean Poisson gap
 *  `meanInterarrival`. A ramp is just a list of phases. */
struct RampPhase {
    uint64_t calls = 0;
    osim::SimTime meanInterarrival = 0;
};

/** What one run produced. */
struct ServeOutcome {
    uint64_t issued = 0;
    uint64_t acked = 0;
    uint64_t ackedInDeadline = 0;
    uint64_t lostAcks = 0; //!< at-least-once audit failures
    uint64_t sessionsStarted = 0;
    uint64_t sessionsCompleted = 0;
    uint64_t tenantsTouched = 0;

    double sloAttainment = 0.0; //!< ackedInDeadline / issued
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;

    /** Worst per-tenant p99 among tenants with enough samples. */
    double worstTenantP99Us = 0.0;
    /** Tenants that met the sample floor for the breakdown. */
    uint64_t tenantsInBreakdown = 0;
    /** Issued-call share of the hottest tenant (Zipf witness). */
    double hottestTenantShare = 0.0;

    /** Integral of live shards over the arrival axis (shard-s) —
     *  compare against staticShards x duration for the savings. */
    double shardSeconds = 0.0;
    osim::SimTime lastArrival = 0;

    shard::ClusterStats cluster;
    AutoscalerStats scaler; //!< zeroed without an autoscaler
    AgentPoolStats pool;    //!< zeroed without a pool
};

/** Sorted-vector percentile (nearest-rank on the index line). */
double percentileUs(const std::vector<double> &sorted, double p);

class TenantTrafficGenerator
{
  public:
    TenantTrafficGenerator(const apps::WorkloadGenerator &generator,
                           TenantWorkloadConfig config);

    /**
     * Drive the ramp through the router open-loop: draws tenant +
     * arrival gap per call, manages session lifecycles against the
     * pool, ticks the autoscaler on the arrival clock, and ends with
     * the at-least-once audit (every acked token resubmitted must
     * answer from the cluster dedup cache). scaler/pool may be null.
     */
    ServeOutcome run(shard::ShardRouter &router,
                     const std::vector<RampPhase> &phases,
                     Autoscaler *scaler, WarmAgentPool *pool);

    /** Calls in one session of tenant `t` (its app model's script). */
    size_t sessionLength(uint32_t tenant) const;

  private:
    /** One concrete call of an app script. */
    struct ScriptCall {
        std::string api;
        bool load = false;
    };

    uint64_t keyOf(uint32_t tenant) const;

    /** Per-model scripts, built once from the workload traces. */
    std::vector<std::vector<ScriptCall>> scripts_;
    TenantWorkloadConfig config_;
};

} // namespace freepart::serve

#endif // FREEPART_SERVE_TENANT_WORKLOAD_HH
