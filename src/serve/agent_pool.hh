/**
 * @file
 * Warm agent pooling for tenant sessions (DESIGN.md §14.3). FreePart
 * pays its isolation cost per agent process, so cold-starting a fresh
 * four-agent partition set for every tenant session is what makes
 * million-user serving implausible: one session would spend ~5x more
 * simulated time spawning processes than executing a short pipeline.
 *
 * The pool keeps per-shard inventories of *warm agent sets* — spawned
 * ahead of time and checkpoint-restored to a clean epoch between
 * tenants, the same machinery the per-runtime warm-standby path uses
 * for crash recovery. A session checkout hands a clean set over at
 * promote cost (channel remap + policy install, no fork); releasing a
 * session schedules the set's clean-epoch reset in the background, so
 * the reset bounds pool turnaround rather than any call's latency.
 * The pool's per-shard target size is governed by the autoscaler from
 * observed lease concurrency.
 *
 * All times are on the open-loop arrival axis; every decision is a
 * pure function of (config, call sequence), so runs replay
 * byte-identically.
 */

#ifndef FREEPART_SERVE_AGENT_POOL_HH
#define FREEPART_SERVE_AGENT_POOL_HH

#include <cstdint>
#include <vector>

#include "osim/types.hh"

namespace freepart::serve {

/** Pool knobs. Cost defaults mirror the CostModel: warmHandoff =
 *  processPromote, epochReset covers the partition set, coldSpawn =
 *  (1 + partitions) x processSpawn. Benches derive them from the
 *  runtime's session*Cost() helpers instead of trusting these. */
struct AgentPoolConfig {
    /** Off = every checkout cold-starts (the comparison baseline). */
    bool enabled = true;

    /** Warm sets ready per shard at time zero. */
    uint32_t initialSize = 2;

    /** Hard per-shard inventory cap (leased + idle). */
    uint32_t maxSize = 16;

    /** Cost of handing a warm clean set to a session. */
    osim::SimTime warmHandoff = 500'000;

    /** Background clean-epoch reset span per released set. */
    osim::SimTime epochReset = 600'000;

    /** Cold fallback: spawn a fresh agent set on the critical path. */
    osim::SimTime coldSpawn = 12'500'000;
};

/** What one checkout cost the session. */
struct PoolCheckout {
    osim::SimTime cost = 0; //!< charge on the owner shard's horizon
    bool warm = false;      //!< served from the warm inventory
    osim::SimTime waited = 0; //!< reset-in-progress wait inside cost
};

struct AgentPoolStats {
    uint64_t warmCheckouts = 0;
    uint64_t coldFallbacks = 0; //!< empty/disabled pool -> fresh spawn
    uint64_t resetWaits = 0;    //!< warm set taken before reset done
    osim::SimTime waitedTotal = 0;
    osim::SimTime costTotal = 0;
    uint64_t releases = 0;
    uint64_t setsRecycled = 0; //!< released sets re-entering the pool
    uint64_t setsDropped = 0;  //!< released sets over target, destroyed
    uint64_t targetGrows = 0;
    uint64_t targetShrinks = 0;
    uint32_t leasesPeak = 0; //!< max concurrent leases on any shard

    /** Mean agent-acquisition cost per session, microseconds. */
    double
    meanCheckoutUs() const
    {
        uint64_t n = warmCheckouts + coldFallbacks;
        if (n == 0)
            return 0.0;
        return static_cast<double>(costTotal) / 1000.0 /
               static_cast<double>(n);
    }
};

/** Per-shard warm agent-set inventory. */
class WarmAgentPool
{
  public:
    explicit WarmAgentPool(AgentPoolConfig config);

    /** Grow the per-shard table (new slots start at initialSize warm
     *  sets, ready immediately). Shrinking never happens. */
    void ensureShards(size_t count);

    /** Check a clean agent set out for a session arriving at `now`. */
    PoolCheckout checkout(uint32_t shard, osim::SimTime now);

    /** Return a session's set; it re-enters the inventory after its
     *  background clean-epoch reset unless the shard is over target. */
    void release(uint32_t shard, osim::SimTime now);

    /** Autoscaler governance: grow spawns sets in the background
     *  (ready after a cold spawn), shrink drops idle sets. */
    void setTarget(uint32_t shard, uint32_t target, osim::SimTime now);

    /** Leases outstanding on a shard right now. */
    uint32_t leases(uint32_t shard) const;

    /** Warm sets whose reset has finished by `now`. */
    uint32_t idleReady(uint32_t shard, osim::SimTime now) const;

    uint32_t target(uint32_t shard) const;

    /** Peak concurrent leases since the last drain — the autoscaler's
     *  per-tick sizing signal. Resets the peak to the current level. */
    uint32_t drainLeasePeak(uint32_t shard);

    const AgentPoolStats &stats() const { return stats_; }

  private:
    struct ShardPool {
        /** Idle sets: time each becomes clean again. Kept unsorted;
         *  checkout scans for the earliest (index order breaks ties),
         *  which is deterministic and tiny at pool sizes. */
        std::vector<osim::SimTime> readyAt;
        uint32_t leases = 0;
        uint32_t leasePeak = 0;
        uint32_t target = 0;
    };

    ShardPool &poolFor(uint32_t shard);

    AgentPoolConfig config_;
    std::vector<ShardPool> pools_;
    AgentPoolStats stats_;
};

} // namespace freepart::serve

#endif // FREEPART_SERVE_AGENT_POOL_HH
