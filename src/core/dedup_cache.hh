/**
 * @file
 * Bounded LRU cache for at-least-once RPC deduplication. Maps a
 * request sequence number to its cached response values so a
 * re-delivered request (its response was lost on the ring, or the
 * agent crashed after executing) is answered without re-executing the
 * API (§4.3 "FreePart as RPC").
 *
 * The cache lives on the host side of the RPC boundary and survives
 * agent restarts. It is bounded so a long run cannot grow host memory
 * without limit: when full, the least-recently-used entry is evicted.
 * A lookup counts as a use — an in-flight retry storm keeps its own
 * sequence numbers resident.
 */

#ifndef FREEPART_CORE_DEDUP_CACHE_HH
#define FREEPART_CORE_DEDUP_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <utility>

#include "ipc/codec.hh"

namespace freepart::core {

/** LRU map: seq -> cached response values. */
class DedupCache
{
  public:
    DedupCache() = default;
    explicit DedupCache(size_t capacity) : cap(capacity) {}

    size_t size() const { return index.size(); }
    size_t capacity() const { return cap; }

    /** Resize the cap; evicts LRU entries if already over it. */
    size_t
    setCapacity(size_t capacity)
    {
        cap = capacity;
        size_t evicted = 0;
        while (index.size() > cap) {
            index.erase(order.back().first);
            order.pop_back();
            ++evicted;
        }
        return evicted;
    }

    /**
     * Look up a sequence number; touches the entry (marks it most
     * recently used). Returns nullptr on miss.
     */
    const ipc::ValueList *
    find(uint64_t seq)
    {
        auto it = index.find(seq);
        if (it == index.end())
            return nullptr;
        order.splice(order.begin(), order, it->second);
        return &it->second->second;
    }

    /**
     * Insert (or refresh) a cached response. Returns the number of
     * entries evicted to stay within capacity (0 or 1).
     */
    size_t
    insert(uint64_t seq, ipc::ValueList values)
    {
        auto it = index.find(seq);
        if (it != index.end()) {
            it->second->second = std::move(values);
            order.splice(order.begin(), order, it->second);
            return 0;
        }
        order.emplace_front(seq, std::move(values));
        index.emplace(seq, order.begin());
        size_t evicted = 0;
        while (index.size() > cap) {
            index.erase(order.back().first);
            order.pop_back();
            ++evicted;
        }
        return evicted;
    }

    /**
     * Drop every entry whose values fail the predicate. Iterates in
     * LRU order (deterministic) without touching recency.
     */
    template <typename Pred>
    void
    pruneIf(Pred pred)
    {
        for (auto it = order.begin(); it != order.end();) {
            if (pred(it->second)) {
                index.erase(it->first);
                it = order.erase(it);
            } else {
                ++it;
            }
        }
    }

  private:
    using Entry = std::pair<uint64_t, ipc::ValueList>;

    size_t cap = 64;
    std::list<Entry> order; //!< most recently used at front
    std::map<uint64_t, std::list<Entry>::iterator> index;
};

} // namespace freepart::core

#endif // FREEPART_CORE_DEDUP_CACHE_HH
