#include "core/agent_supervisor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace freepart::core {

const char *
agentHealthName(AgentHealth health)
{
    switch (health) {
      case AgentHealth::Healthy:
        return "healthy";
      case AgentHealth::Restarting:
        return "restarting";
      case AgentHealth::Backoff:
        return "backoff";
      case AgentHealth::Quarantined:
        return "quarantined";
    }
    return "?";
}

AgentSupervisor::AgentSupervisor(osim::Kernel &kernel,
                                 SupervisionPolicy policy,
                                 uint32_t partition_count)
    : kernel(kernel), policy_(policy), parts(partition_count)
{
}

AgentHealth
AgentSupervisor::health(uint32_t partition) const
{
    return parts.at(partition).health;
}

bool
AgentSupervisor::quarantined(uint32_t partition) const
{
    return health(partition) == AgentHealth::Quarantined;
}

size_t
AgentSupervisor::quarantinedCount() const
{
    size_t count = 0;
    for (const PartitionState &state : parts)
        if (state.health == AgentHealth::Quarantined)
            ++count;
    return count;
}

void
AgentSupervisor::pruneWindow(PartitionState &state) const
{
    // The loop clock runs net of restart machinery: crash times are
    // recorded with machineryTime already subtracted, so the window
    // spans application time and detection does not tighten just
    // because restarts got faster.
    osim::SimTime now = kernel.now() - machineryTime;
    osim::SimTime horizon =
        now > policy_.crashLoopSpan ? now - policy_.crashLoopSpan : 0;
    while (!state.crashTimes.empty() &&
           state.crashTimes.front() < horizon)
        state.crashTimes.pop_front();
}

size_t
AgentSupervisor::windowCrashes(uint32_t partition) const
{
    PartitionState state = parts.at(partition); // copy: prune is const
    pruneWindow(state);
    return state.crashTimes.size();
}

bool
AgentSupervisor::onCrash(uint32_t partition)
{
    PartitionState &state = parts.at(partition);
    ++stats_.crashesObserved;
    if (crashListener_)
        crashListener_(partition);
    if (state.health == AgentHealth::Quarantined)
        return false;
    if (!state.inOutage) {
        state.inOutage = true;
        state.downSince = kernel.now();
        state.attemptsThisOutage = 0;
    }
    state.crashTimes.push_back(kernel.now() - machineryTime);
    pruneWindow(state);
    bool looping =
        state.crashTimes.size() >= policy_.crashLoopThreshold;
    bool exhausted =
        state.attemptsThisOutage >= policy_.maxRestartAttempts;
    if (looping || exhausted) {
        quarantine(partition);
        return false;
    }
    state.health = AgentHealth::Restarting;
    ++state.attemptsThisOutage;
    ++stats_.restartsAllowed;
    return true;
}

void
AgentSupervisor::chargeBackoff(uint32_t partition)
{
    PartitionState &state = parts.at(partition);
    // The first attempt of an outage restarts immediately; attempt n
    // waits base * factor^(n-2), capped.
    if (state.attemptsThisOutage <= 1)
        return;
    state.health = AgentHealth::Backoff;
    double scaled =
        static_cast<double>(policy_.backoffBase) *
        std::pow(policy_.backoffFactor,
                 static_cast<double>(state.attemptsThisOutage - 2));
    osim::SimTime delay = static_cast<osim::SimTime>(std::min(
        scaled, static_cast<double>(policy_.backoffMax)));
    kernel.advance(delay);
    stats_.backoffTime += delay;
    machineryTime += delay;
    state.health = AgentHealth::Restarting;
}

void
AgentSupervisor::onRestartAttempt(uint32_t partition, bool success)
{
    PartitionState &state = parts.at(partition);
    if (!success) {
        ++stats_.restartsFailed;
        return;
    }
    // The agent is up again; the outage closes when a call succeeds.
    state.health = AgentHealth::Healthy;
}

void
AgentSupervisor::onCallSucceeded(uint32_t partition)
{
    PartitionState &state = parts.at(partition);
    if (!state.inOutage)
        return;
    state.inOutage = false;
    state.attemptsThisOutage = 0;
    state.health = AgentHealth::Healthy;
    ++stats_.recoveries;
    stats_.outageTime += kernel.now() - state.downSince;
}

osim::SimTime
AgentSupervisor::standbyReadyAt(uint32_t partition) const
{
    return parts.at(partition).standbyReadyAt;
}

void
AgentSupervisor::noteRestartCharge(osim::SimTime duration)
{
    machineryTime += duration;
}

osim::SimTime
AgentSupervisor::consumeStandby(uint32_t partition)
{
    PartitionState &state = parts.at(partition);
    osim::SimTime now = kernel.now();
    osim::SimTime wait =
        state.standbyReadyAt > now ? state.standbyReadyAt - now : 0;
    // Replenishment starts the moment this standby is taken: the next
    // one is ready a full cold-spawn span after the promotion point.
    state.standbyReadyAt =
        now + wait + kernel.costs().processRestart;
    return wait;
}

void
AgentSupervisor::quarantine(uint32_t partition)
{
    PartitionState &state = parts.at(partition);
    if (state.health == AgentHealth::Quarantined)
        return;
    state.health = AgentHealth::Quarantined;
    ++stats_.quarantines;
    util::inform("supervisor: partition %u quarantined after %zu "
                 "crashes in window",
                 partition, state.crashTimes.size());
    kernel.logEvent(0, osim::EventKind::Custom,
                    "quarantine partition=" +
                        std::to_string(partition));
}

} // namespace freepart::core
