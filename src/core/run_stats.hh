/**
 * @file
 * Runtime statistics: the quantities the paper's evaluation reports —
 * IPC message counts and bytes moved (Table 9), lazy vs non-lazy copy
 * operations (Table 12), permission flips, agent crashes/restarts,
 * and simulated wall-clock time (Fig. 13).
 */

#ifndef FREEPART_CORE_RUN_STATS_HH
#define FREEPART_CORE_RUN_STATS_HH

#include <cstdint>
#include <vector>

#include "osim/types.hh"

namespace freepart::core {

/** Counters accumulated by a runtime across invoke() calls. */
struct RunStats {
    uint64_t apiCalls = 0;        //!< framework API invocations
    uint64_t ipcMessages = 0;     //!< RPC messages (both directions)
    uint64_t bytesTransferred = 0; //!< all cross-process bytes
    uint64_t lazyCopies = 0;      //!< ref passes with no data motion
    uint64_t directCopies = 0;    //!< LDC agent-to-agent data fetches
    uint64_t eagerCopies = 0;     //!< host-mediated object copies
    uint64_t piggybackedFetches = 0; //!< LDC copies ridden on a request
    uint64_t hotSends = 0;        //!< ring sends that skipped the wake
    uint64_t hotWindowGrows = 0;  //!< batching-depth doublings (pressure)
    uint64_t hotWindowDecays = 0; //!< batching-depth steps back (idle)
    uint64_t hotWindowDepthPeak = 1; //!< widest hot window reached
    uint64_t protectionFlips = 0; //!< temporal mprotect applications
    uint64_t stateChanges = 0;    //!< framework state transitions
    uint64_t agentCrashes = 0;    //!< agent processes lost to faults
    uint64_t agentRestarts = 0;   //!< respawns performed
    uint64_t retriedCalls = 0;    //!< at-least-once re-executions
    uint64_t memFaults = 0;       //!< blocked memory accesses
    uint64_t syscallDenials = 0;  //!< seccomp SIGSYS deliveries

    // Recovery metrics (supervision layer).
    uint64_t transientFaults = 0;   //!< retryable injected op failures
    uint64_t channelLosses = 0;     //!< RPC messages lost or corrupted
    uint64_t dedupHits = 0;         //!< duplicate requests served from cache
    uint64_t dedupEvictions = 0;    //!< dedup-cache entries evicted (LRU)
    uint64_t retriesExhausted = 0;  //!< calls that used the whole budget
    uint64_t quarantines = 0;       //!< partitions taken out of service
    uint64_t hostFallbackCalls = 0; //!< quarantined calls run in host
    uint64_t statefulFastFails = 0; //!< quarantined stateful calls failed
    uint64_t checkpointsTaken = 0;      //!< checkpoint generations saved
    uint64_t fullCheckpoints = 0;       //!< full-store generations
    uint64_t incrementalCheckpoints = 0; //!< dirty-epoch generations
    uint64_t checkpointBytesSaved = 0;  //!< serialized checkpoint bytes
    uint64_t checkpointBytesRestored = 0; //!< bytes restored on respawn
    uint64_t checkpointFallbacks = 0;   //!< corrupt gens skipped at restore
    uint64_t standbyPromotions = 0;     //!< restarts served by a warm standby
    osim::SimTime standbyWaitTime = 0;  //!< waited for standby readiness
    uint64_t recoveries = 0;        //!< outages closed by a success
    osim::SimTime recoveryTime = 0; //!< summed outage spans (sim ns)
    osim::SimTime backoffTime = 0;  //!< simulated backoff waited

    // Pipeline-parallel execution (RuntimeConfig::pipelineParallel).
    uint64_t asyncCalls = 0;       //!< calls issued via invokeAsync
    uint64_t pipelineBarriers = 0; //!< full drains forced by agent-side
                                   //!< protection flips
    uint64_t inFlightStalls = 0;   //!< dispatches stalled on queue depth
    uint64_t inFlightPeak = 0;     //!< deepest per-partition queue seen
    uint64_t checkpointSourcedRestores = 0; //!< objects lazily rebuilt
                                            //!< from checkpoint chains

    // Speculative execution past protection flips
    // (RuntimeConfig::speculativeFlips, DESIGN.md §15).
    uint64_t speculationStarts = 0;   //!< calls launched under an epoch
    uint64_t speculationCommits = 0;  //!< speculative calls promoted
    uint64_t speculationRollbacks = 0; //!< conflicting calls squashed
    uint64_t squashedWriteBytes = 0;  //!< bytes restored by squashes
    uint64_t speculativeFetches = 0;  //!< host fetches run off-clock on
                                      //!< the producer's timeline
    osim::SimTime recoveredBarrierTime = 0; //!< host-clock waits the
                                            //!< speculation avoided

    /** Bracketed execution time per partition (index = partition). */
    std::vector<osim::SimTime> partitionBusyTime;

    /** Makespan under pipeline accounting (0 when the gate is off). */
    osim::SimTime criticalPathMakespan = 0;

    osim::SimTime startTime = 0;  //!< sim clock at runtime creation
    osim::SimTime endTime = 0;    //!< sim clock at last snapshot

    /** Simulated time elapsed. */
    osim::SimTime
    elapsed() const
    {
        return endTime >= startTime ? endTime - startTime : 0;
    }

    /** Total data-copy operations (lazy + direct + eager). */
    uint64_t
    copyOps() const
    {
        return lazyCopies + directCopies + eagerCopies;
    }

    /** Fraction of copy operations that avoided the host hop. */
    double
    lazyFraction() const
    {
        uint64_t total = copyOps();
        return total ? static_cast<double>(lazyCopies + directCopies) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Summed per-partition busy time (pipeline accounting). */
    osim::SimTime
    totalBusyTime() const
    {
        osim::SimTime total = 0;
        for (osim::SimTime t : partitionBusyTime)
            total += t;
        return total;
    }

    /**
     * Fraction of agent work hidden by overlap: 1 - makespan / total
     * busy time, clamped at 0. Zero under serialized accounting (the
     * makespan then contains every bracketed nanosecond).
     */
    double
    overlapFraction() const
    {
        osim::SimTime busy = totalBusyTime();
        osim::SimTime span =
            criticalPathMakespan ? criticalPathMakespan : elapsed();
        if (busy == 0 || span == 0 || busy <= span)
            return 0.0;
        return 1.0 - static_cast<double>(span) /
                         static_cast<double>(busy);
    }

    /** Mean simulated time from first crash to next success. */
    osim::SimTime
    meanTimeToRecover() const
    {
        return recoveries ? recoveryTime / recoveries : 0;
    }
};

} // namespace freepart::core

#endif // FREEPART_CORE_RUN_STATS_HH
