/**
 * @file
 * Runtime statistics: the quantities the paper's evaluation reports —
 * IPC message counts and bytes moved (Table 9), lazy vs non-lazy copy
 * operations (Table 12), permission flips, agent crashes/restarts,
 * and simulated wall-clock time (Fig. 13).
 */

#ifndef FREEPART_CORE_RUN_STATS_HH
#define FREEPART_CORE_RUN_STATS_HH

#include <cstdint>

#include "osim/types.hh"

namespace freepart::core {

/** Counters accumulated by a runtime across invoke() calls. */
struct RunStats {
    uint64_t apiCalls = 0;        //!< framework API invocations
    uint64_t ipcMessages = 0;     //!< RPC messages (both directions)
    uint64_t bytesTransferred = 0; //!< all cross-process bytes
    uint64_t lazyCopies = 0;      //!< ref passes with no data motion
    uint64_t directCopies = 0;    //!< LDC agent-to-agent data fetches
    uint64_t eagerCopies = 0;     //!< host-mediated object copies
    uint64_t protectionFlips = 0; //!< temporal mprotect applications
    uint64_t stateChanges = 0;    //!< framework state transitions
    uint64_t agentCrashes = 0;    //!< agent processes lost to faults
    uint64_t agentRestarts = 0;   //!< respawns performed
    uint64_t retriedCalls = 0;    //!< at-least-once re-executions
    uint64_t memFaults = 0;       //!< blocked memory accesses
    uint64_t syscallDenials = 0;  //!< seccomp SIGSYS deliveries
    osim::SimTime startTime = 0;  //!< sim clock at runtime creation
    osim::SimTime endTime = 0;    //!< sim clock at last snapshot

    /** Simulated time elapsed. */
    osim::SimTime
    elapsed() const
    {
        return endTime >= startTime ? endTime - startTime : 0;
    }

    /** Total data-copy operations (lazy + direct + eager). */
    uint64_t
    copyOps() const
    {
        return lazyCopies + directCopies + eagerCopies;
    }

    /** Fraction of copy operations that avoided the host hop. */
    double
    lazyFraction() const
    {
        uint64_t total = copyOps();
        return total ? static_cast<double>(lazyCopies + directCopies) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

} // namespace freepart::core

#endif // FREEPART_CORE_RUN_STATS_HH
