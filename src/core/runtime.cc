#include "core/runtime.hh"

#include <algorithm>
#include <atomic>

#include "util/checksum.hh"
#include "util/logging.hh"

namespace freepart::core {

namespace {

/** Infrastructure syscalls every agent needs regardless of its APIs:
 *  the IPC machinery (shm + futex), allocator traffic, and clean
 *  shutdown. prctl is included so the agent can lock its own filter. */
const std::set<osim::Syscall> kInfraSyscalls = {
    osim::Syscall::Futex,   osim::Syscall::ShmOpen,
    osim::Syscall::Mmap,    osim::Syscall::Munmap,
    osim::Syscall::Brk,     osim::Syscall::Exit,
    osim::Syscall::Prctl,   osim::Syscall::SchedYield,
    osim::Syscall::Getpid,
};

/** Process-unique object-id namespaces for kAutoShardId: the first
 *  runtime in a process keeps namespace 0 (ids unchanged from the
 *  pre-namespacing world), every later one gets the next. */
uint32_t
nextAutoShardId()
{
    static std::atomic<uint32_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) &
           ((1u << fw::kObjectIdShardBits) - 1);
}

} // namespace

const char *
frameworkStateName(FrameworkState state)
{
    switch (state) {
      case FrameworkState::Initialization:
        return "Initialization";
      case FrameworkState::Loading:
        return "Data Loading";
      case FrameworkState::Processing:
        return "Data Processing";
      case FrameworkState::Visualizing:
        return "Visualizing";
      case FrameworkState::Storing:
        return "Data Storing";
    }
    return "?";
}

FrameworkState
stateForType(fw::ApiType type)
{
    switch (type) {
      case fw::ApiType::Loading:
        return FrameworkState::Loading;
      case fw::ApiType::Processing:
        return FrameworkState::Processing;
      case fw::ApiType::Visualizing:
        return FrameworkState::Visualizing;
      case fw::ApiType::Storing:
        return FrameworkState::Storing;
      case fw::ApiType::Neutral:
      case fw::ApiType::Unknown:
        break;
    }
    return FrameworkState::Processing;
}

FreePartRuntime::FreePartRuntime(osim::Kernel &kernel,
                                 const fw::ApiRegistry &registry,
                                 analysis::Categorization categorization,
                                 PartitionPlan plan,
                                 RuntimeConfig config)
    : kernel_(kernel), registry(registry),
      cats(std::move(categorization)), plan_(std::move(plan)),
      config(config),
      supervisor_(kernel, config.supervision, plan_.partitionCount())
{
    // Reject configurations whose only possible behavior is a latent
    // div-by-zero, a stall, or silent data loss — a clear message at
    // construction beats a wrong simulation result later.
    if (config.checkpointInterval == 0)
        util::fatal("RuntimeConfig: checkpointInterval must be >= 1 "
                    "(calls between checkpoints)");
    if (config.checkpointFullEvery == 0)
        util::fatal("RuntimeConfig: checkpointFullEvery must be >= 1 "
                    "(1 = every checkpoint full)");
    if (config.ringBytes < 4096)
        util::fatal("RuntimeConfig: ringBytes %zu is below the 4 KiB "
                    "minimum ring capacity",
                    config.ringBytes);
    if (config.dedupCacheEntries == 0)
        util::fatal("RuntimeConfig: dedupCacheEntries must be >= 1 "
                    "(at-least-once delivery needs the cache)");
    if (config.pipelineParallel && config.maxInFlightPerPartition == 0)
        util::fatal("RuntimeConfig: pipelineParallel needs "
                    "maxInFlightPerPartition >= 1");
    if (config.adaptiveBatching) {
        if (config.hotWindowMaxDepth == 0)
            util::fatal("RuntimeConfig: adaptiveBatching needs "
                        "hotWindowMaxDepth >= 1");
        if (config.batchGrowOccupancy <= 0.0 ||
            config.batchDecayOccupancy < 0.0 ||
            config.batchDecayOccupancy > config.batchGrowOccupancy)
            util::fatal("RuntimeConfig: adaptive batching occupancy "
                        "thresholds must satisfy 0 <= decay <= grow "
                        "and grow > 0");
    }
    if (config.supervision.backoffFactor < 1.0)
        util::fatal("RuntimeConfig: supervision.backoffFactor %.3f "
                    "would shrink backoff delays (must be >= 1)",
                    config.supervision.backoffFactor);
    if (config.supervision.crashLoopThreshold == 0)
        util::fatal("RuntimeConfig: supervision.crashLoopThreshold "
                    "must be >= 1 (0 quarantines before any crash)");

    osim::Process &host = kernel_.spawn("host-program");
    hostPid_ = host.pid();
    shardId_ = config.shardId == kAutoShardId ? nextAutoShardId()
                                              : config.shardId;
    idCounter = fw::objectIdNamespace(shardId_);
    hostStore_ = std::make_unique<fw::ObjectStore>(kernel_, hostPid_,
                                                   &idCounter);
    setupAgents();
    stats_.partitionBusyTime.assign(plan_.partitionCount(), 0);
    stats_.startTime = kernel_.now();
}

void
FreePartRuntime::setupAgents()
{
    agents.resize(plan_.partitionCount());
    for (uint32_t p = 0; p < plan_.partitionCount(); ++p) {
        Agent &agent = agents[p];
        agent.partition = p;
        osim::Process &proc = kernel_.spawn(plan_.partitionName(p));
        agent.pid = proc.pid();
        agent.store = std::make_unique<fw::ObjectStore>(
            kernel_, agent.pid, &idCounter);
        agent.channel = std::make_unique<ipc::Channel>(
            kernel_, "ch:" + plan_.partitionName(p), hostPid_,
            agent.pid, config.ringBytes);
        agent.seqCache.setCapacity(config.dedupCacheEntries);
    }
    // Record which APIs route to which agent (drives the per-agent
    // syscall unions and the lockdown trigger).
    for (const auto &[name, entry] : cats) {
        uint32_t p = plan_.partitionFor(name, entry.type);
        if (p != kHostPartition && p < agents.size())
            agents[p].assignedApis.insert(name);
    }
    for (Agent &agent : agents)
        if (config.restrictSyscalls)
            installPolicy(agent);
}

std::set<osim::Syscall>
FreePartRuntime::buildPolicy(const Agent &agent) const
{
    // Union of the required syscalls of every API assigned to this
    // agent (§4.4.1 "Overlapping System Calls Between APIs").
    std::set<osim::Syscall> allowed = kInfraSyscalls;
    for (const std::string &name : agent.assignedApis) {
        auto it = cats.find(name);
        if (it == cats.end())
            continue;
        allowed.insert(it->second.syscalls.begin(),
                       it->second.syscalls.end());
    }
    return allowed;
}

void
FreePartRuntime::installPolicy(Agent &agent)
{
    agent.policy = buildPolicy(agent);
    osim::Process &proc = kernel_.process(agent.pid);
    proc.filter().install(agent.policy);
    agent.locked = false;
}

void
FreePartRuntime::lockdownAgent(Agent &agent)
{
    if (agent.locked)
        return;
    osim::Process &proc = kernel_.process(agent.pid);
    // Drop the init-only syscalls (mprotect / connect) — they were
    // needed only for first executions (§4.4.1).
    for (osim::Syscall call : osim::allSyscalls())
        if (osim::isInitOnlySyscall(call))
            proc.filter().deny(call);
    // Pin fd-sensitive syscalls to the device fds opened during the
    // grace period ("operate only on the designated files").
    std::set<osim::Fd> device_fds;
    if (agent.devices.camera >= 0)
        device_fds.insert(agent.devices.camera);
    if (agent.devices.gui >= 0)
        device_fds.insert(agent.devices.gui);
    if (agent.devices.net >= 0)
        device_fds.insert(agent.devices.net);
    proc.filter().restrictFds(osim::Syscall::Ioctl, device_fds);
    proc.filter().restrictFds(osim::Syscall::Select, device_fds);
    // Lock with PR_SET_NO_NEW_PRIVS via the agent's own prctl.
    kernel_.sysPrctlNoNewPrivs(proc);
    agent.locked = true;
}

void
FreePartRuntime::maybeAutoLockdown(Agent &agent)
{
    if (!config.restrictSyscalls || !config.lockAfterInit ||
        agent.locked)
        return;
    // All assigned APIs have executed at least once: the grace
    // period is over ("FreePart first executes all the framework
    // APIs and then restricts them afterwards").
    if (agent.executedApis.size() >= agent.assignedApis.size())
        lockdownAgent(agent);
}

void
FreePartRuntime::lockdownAll()
{
    for (Agent &agent : agents)
        if (config.restrictSyscalls)
            lockdownAgent(agent);
}

osim::Process &
FreePartRuntime::hostProcess()
{
    return kernel_.process(hostPid_);
}

bool
FreePartRuntime::hostAlive() const
{
    return kernel_.process(hostPid_).alive();
}

void
FreePartRuntime::annotateData(const std::string &name, osim::Addr addr,
                              size_t len)
{
    vars.push_back({name, hostPid_, addr, len, state_, false});
}

osim::Addr
FreePartRuntime::allocHostData(const std::string &name, size_t len)
{
    osim::Addr addr = kernel_.process(hostPid_).space().alloc(
        len, osim::PermRW, name);
    annotateData(name, addr, len);
    return addr;
}

osim::Addr
FreePartRuntime::allocInPartition(uint32_t partition,
                                  const std::string &name, size_t len)
{
    osim::Pid pid = partition == kHostPartition
                        ? hostPid_
                        : agents.at(partition).pid;
    osim::Addr addr =
        kernel_.process(pid).space().alloc(len, osim::PermRW, name);
    vars.push_back({name, pid, addr, len, state_, false});
    return addr;
}

uint64_t
FreePartRuntime::createHostMat(uint32_t rows, uint32_t cols,
                               uint32_t ch, uint64_t seed,
                               const std::string &label)
{
    osim::AddressSpace &space = kernel_.process(hostPid_).space();
    fw::MatDesc mat;
    mat.rows = rows;
    mat.cols = cols;
    mat.channels = ch;
    mat.addr = space.alloc(mat.byteLen(), osim::PermRW, label);
    std::vector<uint8_t> pixels =
        fw::synthPixels(rows, cols, ch, seed);
    space.write(mat.addr, pixels.data(), pixels.size());
    uint64_t id = hostStore_->putMat(mat, label);
    objectHome[id] = {kHostPartition, fw::ObjKind::Mat};
    vars.push_back({label, hostPid_, mat.addr, mat.byteLen(), state_,
                    false});
    return id;
}

uint64_t
FreePartRuntime::createHostBytes(const std::vector<uint8_t> &bytes,
                                 const std::string &label)
{
    osim::AddressSpace &space = kernel_.process(hostPid_).space();
    osim::Addr addr = space.alloc(bytes.size() ? bytes.size() : 1,
                                  osim::PermRW, label);
    space.write(addr, bytes.data(), bytes.size());
    uint64_t id = hostStore_->putBytes(addr, bytes.size(), label);
    objectHome[id] = {kHostPartition, fw::ObjKind::Bytes};
    vars.push_back({label, hostPid_, addr, bytes.size(), state_,
                    false});
    return id;
}

uint32_t
FreePartRuntime::partitionOfApi(const std::string &api_name) const
{
    auto it = cats.find(api_name);
    fw::ApiType type =
        it != cats.end() ? it->second.type : fw::ApiType::Unknown;
    const fw::ApiDescriptor *desc = registry.byName(api_name);
    bool neutral = (it != cats.end() && it->second.typeNeutral) ||
                   (desc && desc->typeNeutral);
    if (neutral && lastPartition != kHostPartition &&
        plan_.kind() == PlanKind::ByType)
        return lastPartition;
    return plan_.partitionFor(api_name, type);
}

osim::Pid
FreePartRuntime::agentPid(uint32_t partition) const
{
    return agents.at(partition).pid;
}

bool
FreePartRuntime::agentAlive(uint32_t partition) const
{
    return kernel_.process(agents.at(partition).pid).alive();
}

const osim::SyscallFilter &
FreePartRuntime::agentFilter(uint32_t partition) const
{
    return kernel_.process(agents.at(partition).pid).filter();
}

fw::ObjectStore &
FreePartRuntime::storeOf(uint32_t partition)
{
    if (partition == kHostPartition)
        return *hostStore_;
    return *agents.at(partition).store;
}

uint32_t
FreePartRuntime::homeOf(uint64_t object_id) const
{
    auto it = objectHome.find(object_id);
    if (it != objectHome.end())
        return it->second.first;
    // Objects created directly in the host store (e.g. by the
    // workload harness) are adopted lazily as host-homed.
    if (hostStore_->has(object_id)) {
        objectHome[object_id] = {kHostPartition,
                                 hostStore_->get(object_id).kind};
        return kHostPartition;
    }
    util::panic("runtime: object %llu has no recorded home",
                static_cast<unsigned long long>(object_id));
}

bool
FreePartRuntime::hasObject(uint64_t object_id) const
{
    if (objectHome.count(object_id) > 0 || hostStore_->has(object_id))
        return true;
    // Align with the restore path: an object recoverable from a
    // checksum-intact checkpoint chain is not lost, even when no live
    // store currently holds a copy.
    for (const Agent &agent : agents)
        if (checkpointEntryFor(agent, object_id))
            return true;
    return false;
}

const FreePartRuntime::CheckpointEntry *
FreePartRuntime::checkpointEntryFor(const Agent &agent,
                                    uint64_t id) const
{
    // Mirror of restartAgent's restore selection: the newest
    // candidate generation whose whole chain (itself, the
    // incrementals below it, and the full base they extend) passes
    // checksum verification is authoritative. Its liveIds decide
    // whether the object exists at all — a deleted object must not
    // resurrect from an older generation — and the newest copy inside
    // the chain is the one a restore would materialize.
    for (size_t i = 0; i < agent.checkpoints.size(); ++i) {
        size_t base = i;
        while (base < agent.checkpoints.size() &&
               !agent.checkpoints[base].full)
            ++base;
        bool intact = base < agent.checkpoints.size();
        for (size_t j = i; intact && j <= base; ++j) {
            for (const auto &[oid, entry] :
                 agent.checkpoints[j].objects) {
                if (util::fnv1a64(entry.bytes) != entry.checksum) {
                    intact = false;
                    break;
                }
            }
        }
        if (!intact)
            continue; // corrupt chain: fall back to an older one
        const CheckpointGen &candidate = agent.checkpoints[i];
        if (std::find(candidate.liveIds.begin(),
                      candidate.liveIds.end(),
                      id) == candidate.liveIds.end())
            return nullptr; // authoritative snapshot: not live
        for (size_t j = i; j <= base; ++j) {
            auto it = agent.checkpoints[j].objects.find(id);
            if (it != agent.checkpoints[j].objects.end())
                return &it->second;
        }
        return nullptr; // live at the snapshot but never captured
    }
    return nullptr;
}

bool
FreePartRuntime::restoreFromCheckpoint(uint32_t partition,
                                       uint64_t id)
{
    Agent &agent = agents.at(partition);
    const CheckpointEntry *entry = checkpointEntryFor(agent, id);
    if (!entry)
        return false;
    agent.store->materialize(id, entry->kind, entry->bytes,
                             entry->label);
    objectHome[id] = {partition, entry->kind};
    stats_.checkpointBytesRestored += entry->bytes.size();
    ++stats_.checkpointSourcedRestores;
    return true;
}

const RunStats &
FreePartRuntime::stats()
{
    stats_.endTime = kernel_.now();
    if (config.pipelineParallel) {
        // The run is not over until every virtual timeline is: the
        // makespan is the critical path through the issued tasks.
        stats_.endTime =
            std::max(stats_.endTime, kernel_.maxTimeline());
        stats_.criticalPathMakespan =
            stats_.endTime >= stats_.startTime
                ? stats_.endTime - stats_.startTime
                : 0;
    }
    for (const Agent &agent : agents)
        stats_.inFlightPeak = std::max(
            stats_.inFlightPeak, agent.channel->stats().inFlightPeak);
    const SupervisionStats &sup = supervisor_.stats();
    stats_.quarantines = sup.quarantines;
    stats_.recoveries = sup.recoveries;
    stats_.recoveryTime = sup.outageTime;
    stats_.backoffTime = sup.backoffTime;
    return stats_;
}

void
FreePartRuntime::enterState(FrameworkState next)
{
    if (next == state_)
        return;
    FrameworkState previous = state_;
    state_ = next;
    ++stats_.stateChanges;
    kernel_.logEvent(hostPid_, osim::EventKind::StateChange,
                     std::string(frameworkStateName(previous)) +
                         " -> " + frameworkStateName(next));
    if (config.enforceMemoryProtection)
        applyTemporalProtection(previous);
}

void
FreePartRuntime::applyTemporalProtection(FrameworkState previous)
{
    // All data objects defined during the previous state become
    // read-only (Fig. 3).
    for (ProtectedVar &var : vars) {
        if (var.isProtected || var.definedIn != previous)
            continue;
        kernel_.trustedProtect(var.pid, var.addr, var.len,
                               osim::PermRead);
        var.isProtected = true;
        ++stats_.protectionFlips;
    }
}

void
FreePartRuntime::transferObject(uint32_t from, uint32_t to,
                                uint64_t id, bool eager)
{
    if (from == to)
        return;
    // The source store may have lost the bytes (cleared on a restart
    // whose restore skipped this object) while a checkpoint chain
    // still vouches for it — rebuild lazily before copying out.
    if (from != kHostPartition && !storeOf(from).has(id))
        restoreFromCheckpoint(from, id);
    fw::ObjectStore &src = storeOf(from);
    fw::ObjectStore &dst = storeOf(to);
    std::vector<uint8_t> bytes = src.serialize(id);
    fw::ObjKind kind = src.get(id).kind;
    dst.materialize(id, kind, bytes, src.get(id).label);
    kernel_.advance(kernel_.costs().copyCost(bytes.size()));
    stats_.bytesTransferred += bytes.size();
    objectHome[id] = {to, kind};
    if (eager) {
        // Host-mediated copies ride their own request/response pair
        // (Fig. 11-(b)), unlike LDC's piggybacked direct fetches. The
        // detour also ends any hot window: the peer that was spinning
        // on our ring went back to sleep while the host shuffled data.
        kernel_.advance(kernel_.costs().ipcRoundTrip);
        stats_.ipcMessages += 2;
        ++stats_.eagerCopies;
        coolRpcWindow();
    } else {
        ++stats_.directCopies;
    }
}

void
FreePartRuntime::ensureArgsMaterialized(uint32_t partition,
                                        const ipc::ValueList &args)
{
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        uint32_t home = homeOf(id);
        if (home == partition) {
            // Reference pass: no data motion at all.
            ++stats_.lazyCopies;
            continue;
        }
        if (config.lazyDataCopy) {
            // LDC: one direct copy from the owning process into the
            // executing agent, at dereference time (Fig. 11-(a)).
            transferObject(home, partition, id, /*eager=*/false);
        } else {
            // Without LDC the object data flows through the host
            // process (Fig. 11-(b)): owner -> host, host -> agent.
            if (home != kHostPartition)
                transferObject(home, kHostPartition, id,
                               /*eager=*/true);
            transferObject(kHostPartition, partition, id,
                           /*eager=*/true);
        }
    }
}

void
FreePartRuntime::registerResultHomes(uint32_t partition,
                                     const ipc::ValueList &values)
{
    for (const ipc::Value &value : values) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        fw::ObjectStore &store = storeOf(partition);
        if (store.has(id))
            objectHome[id] = {partition, store.get(id).kind};
    }
}

void
FreePartRuntime::fetchToHost(const ipc::ObjectRef &ref)
{
    maybeRetireSpeculation();
    // Speculative fetch (speculativeFlips, DESIGN.md §15): when the
    // producer is still running on its virtual timeline, run the
    // dereference — copy and round trip — on the *host process's*
    // virtual timeline instead of stalling the host clock until the
    // producer's tail: the trusted runtime copies the settled object
    // out of shared memory itself (the LDC data path), so the
    // producer keeps computing. The copy is a snapshot, not a
    // migration — the object stays homed at the producer, so the
    // next consumer on that partition passes it by reference instead
    // of bouncing it back through the host. The host program pays
    // only the issue cost; the fetched copy settles (and the temporal
    // flip of the "fetched:" var is modeled as landing) at the copy's
    // completion, which extends the speculation window so calls
    // issued before then are checkpointed and squashable.
    if (config.pipelineParallel && config.speculativeFlips &&
        !kernel_.taskActive()) {
        auto ready = objectReadyAt_.find(ref.objectId);
        uint32_t home = homeOf(ref.objectId);
        if (ready != objectReadyAt_.end() &&
            ready->second > kernel_.now() && home != kHostPartition) {
            if (!storeOf(home).has(ref.objectId))
                restoreFromCheckpoint(home, ref.objectId);
            fw::ObjectStore &src = storeOf(home);
            osim::SimTime start =
                std::max({ready->second,
                          kernel_.timelineOf(hostPid_),
                          kernel_.now()});
            kernel_.beginTask(hostPid_, start);
            std::vector<uint8_t> bytes =
                src.serialize(ref.objectId);
            hostStore_->materialize(ref.objectId,
                                    src.get(ref.objectId).kind,
                                    bytes,
                                    src.get(ref.objectId).label);
            kernel_.advance(kernel_.costs().copyCost(bytes.size()));
            kernel_.advance(kernel_.costs().ipcRoundTrip);
            stats_.bytesTransferred += bytes.size();
            stats_.ipcMessages += 2;
            ++stats_.eagerCopies;
            coolRpcWindow();
            osim::SimTime done = kernel_.endTask();
            if (home < stats_.partitionBusyTime.size())
                stats_.partitionBusyTime[home] += done - start;
            kernel_.advance(kernel_.costs().ipcPerMessage);
            const fw::StoredObject &obj =
                hostStore_->get(ref.objectId);
            vars.push_back({"fetched:" + obj.label, hostPid_,
                            obj.addr, obj.byteLen, state_, false});
            ++stats_.speculativeFetches;
            extendSpeculation(done);
            return;
        }
    }
    // Pipeline mode: dereferencing a result is a per-object
    // synchronization point — the host clock catches up with the
    // call that produces it (but not with unrelated timelines).
    syncObjectReady(ref.objectId);
    uint32_t home = homeOf(ref.objectId);
    if (home == kHostPartition)
        return;
    // The host program dereferences the data: a non-lazy copy.
    transferObject(home, kHostPartition, ref.objectId, /*eager=*/true);
    // Host-resident copies of framework objects fall under temporal
    // protection from the state they were fetched in.
    const fw::StoredObject &obj = hostStore_->get(ref.objectId);
    vars.push_back({"fetched:" + obj.label, hostPid_, obj.addr,
                    obj.byteLen, state_, false});
}

ApiResult
FreePartRuntime::invoke(const std::string &api_name,
                        ipc::ValueList args)
{
    if (!config.pipelineParallel)
        return invokeSync(api_name, std::move(args));
    return wait(invokeAsync(api_name, std::move(args)));
}

ApiResult
FreePartRuntime::invokeSync(const std::string &api_name,
                            ipc::ValueList args)
{
    const fw::ApiDescriptor *desc = registry.byName(api_name);
    if (!desc) {
        ApiResult res;
        res.error = "unknown API: " + api_name;
        return res;
    }
    if (!hostAlive()) {
        ApiResult res;
        res.error = "host program has crashed";
        return res;
    }
    ++stats_.apiCalls;

    // An argument object can be gone entirely — lost with a crashed
    // agent that had neither a checkpoint of it nor a host copy. That
    // is a typed per-call failure, never a host panic.
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        if (!hasObject(id)) {
            ApiResult res;
            res.error = "argument object " + std::to_string(id) +
                        " was lost in an agent crash";
            return res;
        }
    }

    auto it = cats.find(api_name);
    fw::ApiType type =
        it != cats.end() ? it->second.type : desc->declaredType;
    bool neutral = (it != cats.end() && it->second.typeNeutral) ||
                   desc->typeNeutral;

    // Framework-state machine: concrete API types drive transitions;
    // type-neutral APIs inherit the current state (§4.2).
    if (!neutral && type != fw::ApiType::Unknown)
        enterState(stateForType(type));

    uint32_t partition = plan_.partitionFor(api_name, type);
    if (neutral && lastPartition != kHostPartition &&
        plan_.kind() == PlanKind::ByType)
        partition = lastPartition;

    ApiResult result;
    if (partition == kHostPartition) {
        result = executeInHost(*desc, args);
    } else {
        if (boundaryObserver_)
            boundaryObserver_(api_name, partition, args);
        result = executeOnAgent(partition, *desc, args);
        lastPartition = partition;
    }
    return result;
}

CallTicket
FreePartRuntime::invokeAsync(const std::string &api_name,
                             ipc::ValueList args)
{
    CallTicket ticket{nextTicket_++};
    PendingCall pending;
    if (!config.pipelineParallel) {
        // Gate off: execute synchronously and hand back an
        // already-completed ticket, so async call sites work
        // unchanged under serialized accounting.
        pending.result = invokeSync(api_name, std::move(args));
        pending.readyAt = kernel_.now();
        pending.issuedAt = pending.readyAt;
    } else {
        ++stats_.asyncCalls;
        dispatchPipelined(ticket.id, api_name, std::move(args),
                          pending);
    }
    pendingAsync_.emplace(ticket.id, std::move(pending));
    return ticket;
}

void
FreePartRuntime::dispatchPipelined(uint64_t ticket_id,
                                   const std::string &api_name,
                                   ipc::ValueList args,
                                   PendingCall &out)
{
    out.issuedAt = kernel_.now();
    out.readyAt = kernel_.now();
    maybeRetireSpeculation();

    const fw::ApiDescriptor *desc = registry.byName(api_name);
    if (!desc) {
        out.result.error = "unknown API: " + api_name;
        return;
    }
    if (!hostAlive()) {
        out.result.error = "host program has crashed";
        return;
    }
    ++stats_.apiCalls;
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        if (!hasObject(id)) {
            out.result.error = "argument object " +
                               std::to_string(id) +
                               " was lost in an agent crash";
            return;
        }
    }

    auto it = cats.find(api_name);
    fw::ApiType type =
        it != cats.end() ? it->second.type : desc->declaredType;
    bool neutral = (it != cats.end() && it->second.typeNeutral) ||
                   desc->typeNeutral;

    if (!neutral && type != fw::ApiType::Unknown) {
        FrameworkState next = stateForType(type);
        if (next != state_ && pendingProtectionFlips(state_)) {
            // The transition will mprotect data inside an agent
            // address space. In-flight tasks on the virtual timelines
            // may still be writing it. Conservative reading of §4.4.3
            // under overlap: drain everything before the flip lands.
            // Speculative reading (§15): defer the flip's commit to
            // the quiesce horizon of just the affected timelines and
            // keep dispatching — calls issued before that horizon run
            // checkpointed and are squashed on conflict. Host-resident
            // flips need no barrier either way: the dispatcher itself
            // applies them, synchronously with issuing.
            if (config.speculativeFlips)
                openSpeculation(state_);
            else
                pipelineBarrier();
        }
        enterState(next);
    }

    uint32_t partition = plan_.partitionFor(api_name, type);
    if (neutral && lastPartition != kHostPartition &&
        plan_.kind() == PlanKind::ByType)
        partition = lastPartition;

    if (partition == kHostPartition) {
        // Host execution is its own synchronization point: the host
        // program touches the argument objects directly, so the
        // clock first catches up with their producers.
        for (const ipc::Value &value : args)
            if (value.kind() == ipc::Value::Kind::Ref)
                syncObjectReady(value.asRef().objectId);
        out.result = executeInHost(*desc, args);
        out.readyAt = kernel_.now();
        out.partition = kHostPartition;
        noteObjectsReady(out.result.values, out.readyAt);
        return;
    }

    if (boundaryObserver_)
        boundaryObserver_(api_name, partition, args);

    Agent &agent = agents.at(partition);

    // Bounded in-flight depth: reap completions the host clock has
    // already passed; if the queue is still full, stall the
    // dispatcher until the oldest call retires.
    agent.channel->reapCompleted(kernel_.now());
    while (agent.channel->inFlightDepth() >=
           config.maxInFlightPerPartition) {
        osim::SimTime oldest = agent.channel->oldestInFlightDone();
        if (oldest > kernel_.now())
            kernel_.advance(oldest - kernel_.now());
        ++stats_.inFlightStalls;
        if (agent.channel->reapCompleted(kernel_.now()) == 0)
            break; // defensive: queue cannot drain further
    }

    // The task starts once the host has issued it, the agent has
    // finished its previous task, and every argument object has been
    // produced (the read set) — the object-dependency schedule.
    osim::SimTime start =
        std::max(kernel_.now(), kernel_.timelineOf(agent.pid));
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        auto ready = objectReadyAt_.find(value.asRef().objectId);
        if (ready != objectReadyAt_.end())
            start = std::max(start, ready->second);
    }

    // Speculative launch (§15): the call's bracket starts before a
    // deferred protection flip commits, so the data it touches may be
    // flipped read-only "underneath" it. Checkpoint the argument
    // objects (the call's read set — also its only reachable write
    // set, since in-place mutators return their inputs) so that a
    // conflicting write can be squashed byte-exactly.
    bool speculative = speculation_.active &&
                       start < speculation_.commitAt;
    std::vector<SpecCheckpoint> saved;
    uint64_t preId = idCounter;
    if (speculative) {
        ++stats_.speculationStarts;
        saved = checkpointSpecArgs(args);
    }

    // Execute eagerly (program order) inside a task bracket: every
    // nanosecond the exchange charges — marshalling, ring transfer,
    // agent compute, retries, even a restart — lands on the agent's
    // virtual timeline instead of the global clock.
    kernel_.beginTask(agent.pid, start);
    out.result = executeOnAgent(partition, *desc, args);
    lastPartition = partition;
    osim::SimTime done = kernel_.endTask();
    osim::SimTime busy = done - start;

    if (speculative) {
        if (out.result.ok && specConflict(out.result.values, saved)) {
            // Misprediction: the call wrote an object the deferred
            // flip covers. Restore the checkpointed bytes, discard
            // everything the ticket minted, and re-issue the call
            // after the flip commits. The squashed bracket's time
            // stays on the agent timeline — that work really burned —
            // and the deterministic re-execution recreates identical
            // ids and bytes, keeping replay byte-identical to the
            // synchronous schedule.
            squashSpeculativeCall(saved, preId, partition);
            osim::SimTime restart = std::max(
                {speculation_.commitAt,
                 kernel_.timelineOf(agent.pid), kernel_.now()});
            for (const ipc::Value &value : args) {
                if (value.kind() != ipc::Value::Kind::Ref)
                    continue;
                auto ready =
                    objectReadyAt_.find(value.asRef().objectId);
                if (ready != objectReadyAt_.end())
                    restart = std::max(restart, ready->second);
            }
            kernel_.beginTask(agent.pid, restart);
            out.result = executeOnAgent(partition, *desc, args);
            done = kernel_.endTask();
            busy += done - restart;
            // Re-encoding the request costs the host another message.
            kernel_.advance(kernel_.costs().ipcPerMessage);
            ++stats_.speculationRollbacks;
        } else {
            ++stats_.speculationCommits;
        }
    }

    out.partition = partition;
    out.readyAt = done;
    if (partition < stats_.partitionBusyTime.size())
        stats_.partitionBusyTime[partition] += busy;

    // Conservative read/write sets: argument objects may have been
    // migrated (LDC rehoming) and results were produced — both settle
    // at the call's completion.
    for (const ipc::Value &value : args)
        if (value.kind() == ipc::Value::Kind::Ref)
            noteObjectsReady({value}, done);
    noteObjectsReady(out.result.values, done);

    // Issuing is not free for the host: it encoded the request into
    // the ring. One per-message charge on the real clock.
    kernel_.advance(kernel_.costs().ipcPerMessage);
    agent.channel->noteInFlight(ticket_id, done);
}

ApiResult
FreePartRuntime::wait(CallTicket ticket)
{
    auto it = pendingAsync_.find(ticket.id);
    if (it == pendingAsync_.end()) {
        ApiResult res;
        res.error = "unknown or already-retired call ticket " +
                    std::to_string(ticket.id);
        return res;
    }
    PendingCall pending = std::move(it->second);
    pendingAsync_.erase(it);
    if (pending.readyAt > kernel_.now())
        kernel_.advance(pending.readyAt - kernel_.now());
    if (pending.partition != kHostPartition &&
        pending.partition < agents.size())
        agents[pending.partition].channel->reapCompleted(
            kernel_.now());
    return std::move(pending.result);
}

const ApiResult *
FreePartRuntime::peekResult(CallTicket ticket) const
{
    auto it = pendingAsync_.find(ticket.id);
    return it == pendingAsync_.end() ? nullptr : &it->second.result;
}

void
FreePartRuntime::drainAll()
{
    osim::SimTime target = kernel_.maxTimeline();
    for (const auto &[id, pending] : pendingAsync_)
        target = std::max(target, pending.readyAt);
    if (target > kernel_.now())
        kernel_.advance(target - kernel_.now());
    pendingAsync_.clear();
    for (Agent &agent : agents)
        agent.channel->clearInFlight();
    maybeRetireSpeculation();
}

bool
FreePartRuntime::pendingProtectionFlips(FrameworkState previous) const
{
    if (!config.enforceMemoryProtection)
        return false;
    for (const ProtectedVar &var : vars)
        if (!var.isProtected && var.definedIn == previous &&
            var.pid != hostPid_)
            return true;
    return false;
}

void
FreePartRuntime::pipelineBarrier()
{
    // Object readiness times never exceed their producer's timeline,
    // so catching the clock up to every timeline retires all
    // in-flight work.
    kernel_.syncToTimelines();
    for (Agent &agent : agents)
        agent.channel->reapCompleted(kernel_.now());
    ++stats_.pipelineBarriers;
    maybeRetireSpeculation();
}

void
FreePartRuntime::openSpeculation(FrameworkState previous)
{
    // Quiesce horizon: the flip only touches the address spaces that
    // hold unprotected vars of the outgoing state, so it can land as
    // soon as *those* timelines drain — unrelated partitions keep
    // running past it. That horizon becomes (or extends) the
    // speculation window's commit point.
    std::vector<osim::Pid> pids;
    for (const ProtectedVar &var : vars)
        if (!var.isProtected && var.definedIn == previous &&
            var.pid != hostPid_)
            pids.push_back(var.pid);
    extendSpeculation(kernel_.maxTimelineOf(pids));
}

void
FreePartRuntime::extendSpeculation(osim::SimTime commit_at)
{
    if (commit_at <= kernel_.now())
        return; // already quiesced — the flip lands immediately
    if (!speculation_.active) {
        speculation_.active = true;
        speculation_.commitAt = commit_at;
        speculation_.bornBefore = idCounter;
        stats_.recoveredBarrierTime += commit_at - kernel_.now();
        return;
    }
    // Nested pending flips extend the window monotonically, and each
    // one widens the protected set to every object minted before it:
    // the newest pending flip covers data that may have been created
    // since the window opened. Widening is conservative — a squash is
    // always safe, it only costs the re-execution.
    speculation_.bornBefore =
        std::max(speculation_.bornBefore, idCounter);
    if (commit_at > speculation_.commitAt) {
        stats_.recoveredBarrierTime +=
            commit_at - std::max(speculation_.commitAt, kernel_.now());
        speculation_.commitAt = commit_at;
    }
}

void
FreePartRuntime::maybeRetireSpeculation()
{
    if (speculation_.active && kernel_.now() >= speculation_.commitAt)
        speculation_ = SpeculationEpoch();
}

std::vector<FreePartRuntime::SpecCheckpoint>
FreePartRuntime::checkpointSpecArgs(const ipc::ValueList &args)
{
    std::vector<SpecCheckpoint> saved;
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        bool seen = false;
        for (const SpecCheckpoint &cp : saved)
            if (cp.id == id)
                seen = true;
        if (seen)
            continue;
        auto it = objectHome.find(id);
        if (it == objectHome.end())
            continue;
        uint32_t home = it->second.first;
        fw::ObjectStore &store = storeOf(home);
        if (!store.has(id) && (home == kHostPartition ||
                               !restoreFromCheckpoint(home, id)))
            continue; // unresolvable: nothing to checkpoint
        const fw::StoredObject &obj = store.get(id);
        SpecCheckpoint cp;
        cp.id = id;
        cp.home = home;
        cp.kind = obj.kind;
        cp.label = obj.label;
        cp.bytes = store.serialize(id);
        saved.push_back(std::move(cp));
    }
    return saved;
}

bool
FreePartRuntime::specConflict(const ipc::ValueList &results,
                              const std::vector<SpecCheckpoint> &saved)
{
    // Write set = result refs (in-place mutators return their input).
    // A conflict is a write to an object that predates the epoch —
    // exactly the data a deferred flip could cover — confirmed
    // byte-for-byte so an API that returns its input unchanged does
    // not count as a write. (Dirty epochs alone over-report: LDC
    // materialization marks cross-partition reads dirty.)
    for (const ipc::Value &value : results) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        if (id > speculation_.bornBefore)
            continue; // minted under the epoch: no flip covers it
        for (const SpecCheckpoint &cp : saved) {
            if (cp.id != id)
                continue;
            auto it = objectHome.find(id);
            if (it == objectHome.end())
                break;
            fw::ObjectStore &store = storeOf(it->second.first);
            if (store.has(id) && store.serialize(id) != cp.bytes)
                return true;
            break;
        }
    }
    return false;
}

void
FreePartRuntime::squashSpeculativeCall(
    const std::vector<SpecCheckpoint> &saved, uint64_t pre_id,
    uint32_t partition)
{
    // Restore every checkpointed argument whose bytes moved: the
    // squash must leave exactly the pre-speculation state. Objects
    // restore into their *current* home — an agent restart may have
    // rehomed or dropped them since the checkpoint was cut.
    for (const SpecCheckpoint &cp : saved) {
        auto it = objectHome.find(cp.id);
        if (it == objectHome.end())
            continue; // lost meanwhile: gone in both schedules
        fw::ObjectStore &store = storeOf(it->second.first);
        if (store.has(cp.id) && store.serialize(cp.id) == cp.bytes)
            continue;
        store.materialize(cp.id, cp.kind, cp.bytes, cp.label);
        stats_.squashedWriteBytes += cp.bytes.size();
    }
    // Discard the ticket's effects: objects the squashed execution
    // minted stop resolving, and the id counter rewinds so the
    // re-issue mints identical ids (single-threaded eager execution
    // makes the rewind safe and keeps replay byte-identical).
    for (uint64_t id = pre_id + 1; id <= idCounter; ++id) {
        hostStore_->erase(id);
        objectHome.erase(id);
        objectReadyAt_.erase(id);
        for (Agent &agent : agents) {
            agent.store->erase(id);
            // A checkpoint cut mid-speculation may hold the minted
            // object; scrub it so a post-crash restore cannot
            // resurrect a squashed copy under a re-minted id.
            for (CheckpointGen &gen : agent.checkpoints) {
                gen.objects.erase(id);
                gen.liveIds.erase(std::remove(gen.liveIds.begin(),
                                              gen.liveIds.end(), id),
                                  gen.liveIds.end());
            }
        }
    }
    idCounter = pre_id;
    // The squashed exchange may have cached a response referencing
    // the discarded ids; prune it so a duplicate delivery cannot hand
    // out dangling refs before the re-issue re-mints them.
    pruneSeqCache(agents.at(partition));
}

void
FreePartRuntime::syncObjectReady(uint64_t object_id)
{
    auto it = objectReadyAt_.find(object_id);
    if (it != objectReadyAt_.end() && it->second > kernel_.now())
        kernel_.advance(it->second - kernel_.now());
}

void
FreePartRuntime::noteObjectsReady(const ipc::ValueList &values,
                                  osim::SimTime ready)
{
    for (const ipc::Value &value : values) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        osim::SimTime &slot =
            objectReadyAt_[value.asRef().objectId];
        slot = std::max(slot, ready);
    }
}

ApiResult
FreePartRuntime::executeInHost(const fw::ApiDescriptor &desc,
                               const ipc::ValueList &args)
{
    ApiResult result;
    osim::Process &host = kernel_.process(hostPid_);
    // Host execution means no agent is being exchanged with; any
    // spinning peer times out back to its futex.
    coolRpcWindow();
    // Args may reference objects living in agents (mixed plans):
    // bring them home first.
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        if (homeOf(id) != kHostPartition)
            transferObject(homeOf(id), kHostPartition, id, true);
    }
    fw::ExecContext ctx(kernel_, host, *hostStore_, hostDevices,
                        kHostPartition);
    try {
        result.values = desc.fn(ctx, desc, args);
        result.ok = true;
        registerResultHomes(kHostPartition, result.values);
    } catch (const osim::MemFault &fault) {
        ++stats_.memFaults;
        kernel_.faultProcess(host, fault.what());
        result.error = fault.what();
        result.agentCrashed = true;
    } catch (const osim::SyscallViolation &violation) {
        ++stats_.syscallDenials;
        result.error = violation.what();
        result.agentCrashed = true;
    } catch (const osim::TransientFault &fault) {
        // Retryable by the caller; the host process survives.
        ++stats_.transientFaults;
        result.error = fault.what();
    } catch (const osim::ProcessCrash &crash) {
        if (host.alive())
            kernel_.faultProcess(host, crash.what());
        result.error = crash.what();
        result.agentCrashed = true;
    } catch (const util::FatalError &error) {
        result.error = error.what();
    }
    return result;
}

ApiResult
FreePartRuntime::executeOnAgent(uint32_t partition,
                                const fw::ApiDescriptor &desc,
                                const ipc::ValueList &args)
{
    if (supervisor_.quarantined(partition))
        return quarantinedCall(partition, desc, args);

    // One sequence number per logical call; every re-delivery reuses
    // it so the dedup cache recognizes duplicates (§4.3, §4.4.2).
    uint64_t seq = nextSeq++;
    ApiResult result;
    bool crashed_once = false;
    uint32_t budget = supervisor_.policy().retryBudget;
    for (uint32_t attempt = 0; attempt <= budget; ++attempt) {
        if (attempt)
            ++stats_.retriedCalls;
        if (!agentAlive(partition) && !recoverAgent(partition)) {
            if (supervisor_.quarantined(partition)) {
                // When this very call's attempts crashed the agent,
                // its input is treated as hostile (a poisoned frame
                // crashing the loader is the paper's DoS case) and
                // must never fall back into the host process. Only
                // calls arriving after the quarantine degrade.
                if (crashed_once) {
                    result.ok = false;
                    result.agentCrashed = true;
                    result.quarantined = true;
                    result.error =
                        "partition " + plan_.partitionName(partition) +
                        " quarantined while executing " + desc.name +
                        "; suspect input not re-executed in host";
                    return result;
                }
                result = quarantinedCall(partition, desc, args);
                result.agentCrashed = crashed_once;
                return result;
            }
            result.ok = false;
            result.error = "agent " + plan_.partitionName(partition) +
                           " is dead";
            result.agentCrashed = crashed_once;
            return result;
        }
        // A crash on an earlier attempt may have destroyed an
        // argument object outright (no checkpoint, no host copy);
        // re-delivery cannot succeed, so fail the call typed.
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref ||
                hasObject(value.asRef().objectId))
                continue;
            result.ok = false;
            result.agentCrashed = crashed_once;
            result.error =
                "argument object " +
                std::to_string(value.asRef().objectId) +
                " was lost in an agent crash";
            return result;
        }
        switch (attemptOnAgent(partition, desc, args, seq, result)) {
          case Attempt::Ok:
            supervisor_.onCallSucceeded(partition);
            result.agentCrashed = crashed_once;
            return result;
          case Attempt::AppError:
            // The agent survives an application-level failure; a
            // retry would deterministically fail the same way.
            result.agentCrashed = crashed_once;
            return result;
          case Attempt::Transient:
            ++stats_.transientFaults;
            continue;
          case Attempt::ChannelLost:
            ++stats_.channelLosses;
            continue;
          case Attempt::Crashed:
            ++stats_.agentCrashes;
            crashed_once = true;
            continue; // recoverAgent runs at the top of the loop
        }
    }
    ++stats_.retriesExhausted;
    result.ok = false;
    result.agentCrashed = crashed_once;
    result.error = "retry budget (" + std::to_string(budget) +
                   ") exhausted for " + desc.name +
                   (result.error.empty() ? "" : ": " + result.error);
    return result;
}

void
FreePartRuntime::buildDeliverBatch(uint32_t partition,
                                   const ipc::ValueList &args,
                                   uint64_t seq,
                                   std::vector<ipc::Message> &batch)
{
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        uint32_t home = homeOf(id);
        if (home == partition) {
            // Reference pass: no data motion at all.
            ++stats_.lazyCopies;
            continue;
        }
        // LDC fetch piggybacked on the request batch (Fig. 11-(a),
        // but riding the same round trip instead of its own): the
        // object bytes are encoded straight into the ring frame.
        if (home != kHostPartition && !storeOf(home).has(id))
            restoreFromCheckpoint(home, id);
        fw::ObjectStore &src = storeOf(home);
        ipc::Message deliver;
        deliver.kind = ipc::MsgKind::Deliver;
        deliver.seq = seq;
        deliver.values.emplace_back(id);
        deliver.values.emplace_back(
            static_cast<uint64_t>(src.get(id).kind));
        deliver.values.emplace_back(src.get(id).label);
        deliver.values.emplace_back(src.serialize(id));
        batch.push_back(std::move(deliver));
    }
}

void
FreePartRuntime::absorbDelivers(uint32_t partition,
                                const std::vector<ipc::Message> &batch)
{
    Agent &agent = agents.at(partition);
    for (const ipc::Message &msg : batch) {
        if (msg.kind != ipc::MsgKind::Deliver)
            continue;
        uint64_t id = msg.values.at(0).asU64();
        auto kind = static_cast<fw::ObjKind>(msg.values.at(1).asU64());
        const std::string &label = msg.values.at(2).asStr();
        const std::vector<uint8_t> &bytes = msg.values.at(3).asBlob();
        agent.store->materialize(id, kind, bytes, label);
        objectHome[id] = {partition, kind};
        // In-place rate: the bytes were never staged outside the
        // ring; one memcpy out of shared memory, no re-serialize.
        kernel_.advance(kernel_.costs().copyCostInPlace(bytes.size()));
        ++stats_.directCopies;
        ++stats_.piggybackedFetches;
    }
}

bool
FreePartRuntime::rpcWindowHot(uint32_t partition) const
{
    return std::find(hotWindow_.begin(), hotWindow_.end(),
                     partition) != hotWindow_.end();
}

void
FreePartRuntime::warmRpcWindow(uint32_t partition)
{
    auto it =
        std::find(hotWindow_.begin(), hotWindow_.end(), partition);
    if (it != hotWindow_.end())
        hotWindow_.erase(it);
    hotWindow_.push_front(partition);
    while (hotWindow_.size() > hotDepth_)
        hotWindow_.pop_back();
}

void
FreePartRuntime::adaptHotWindow(const ipc::Channel &channel)
{
    double occupancy =
        static_cast<double>(channel.pendingRequestBytes()) /
        static_cast<double>(channel.ringCapacity());
    if (occupancy >= config.batchGrowOccupancy) {
        // Queueing pressure: data-carrying bursts are stacking up on
        // the ring. Double the window so the partitions feeding the
        // burst all stay in busy-poll.
        if (hotDepth_ < config.hotWindowMaxDepth) {
            hotDepth_ = std::min(hotDepth_ * 2,
                                 config.hotWindowMaxDepth);
            ++stats_.hotWindowGrows;
            stats_.hotWindowDepthPeak = std::max<uint64_t>(
                stats_.hotWindowDepthPeak, hotDepth_);
        }
    } else if (occupancy < config.batchDecayOccupancy &&
               hotDepth_ > 1) {
        // Idle chatter: spinning several agents buys nothing; step
        // the window back toward the binary heuristic.
        --hotDepth_;
        ++stats_.hotWindowDecays;
        while (hotWindow_.size() > hotDepth_)
            hotWindow_.pop_back();
    }
}

void
FreePartRuntime::evictObject(uint64_t object_id)
{
    // Settle any in-flight producer first: the cluster layer is about
    // to serialize the bytes out of this runtime.
    syncObjectReady(object_id);
    objectReadyAt_.erase(object_id);
    hostStore_->erase(object_id);
    objectHome.erase(object_id);
    for (Agent &agent : agents) {
        agent.store->erase(object_id);
        // Scrub checkpoint generations too: a post-crash restore must
        // not resurrect a stale copy of data that now lives (and
        // mutates) in another runtime.
        for (CheckpointGen &gen : agent.checkpoints) {
            gen.objects.erase(object_id);
            gen.liveIds.erase(std::remove(gen.liveIds.begin(),
                                          gen.liveIds.end(),
                                          object_id),
                              gen.liveIds.end());
        }
        // Cached responses referencing the evicted object would hand
        // out a dangling ref on a dedup hit.
        pruneSeqCache(agent);
    }
}

size_t
FreePartRuntime::evictObjects(const std::vector<uint64_t> &object_ids)
{
    size_t dropped = 0;
    for (uint64_t id : object_ids) {
        if (hasObject(id))
            ++dropped;
        syncObjectReady(id);
        objectReadyAt_.erase(id);
        hostStore_->erase(id);
        objectHome.erase(id);
        for (Agent &agent : agents) {
            agent.store->erase(id);
            for (CheckpointGen &gen : agent.checkpoints) {
                gen.objects.erase(id);
                gen.liveIds.erase(std::remove(gen.liveIds.begin(),
                                              gen.liveIds.end(), id),
                                  gen.liveIds.end());
            }
        }
    }
    // One dedup-cache sweep per agent covers every erased id; the
    // per-object evictObject path pays this per call.
    for (Agent &agent : agents)
        pruneSeqCache(agent);
    return dropped;
}

osim::SimTime
FreePartRuntime::sessionColdStartCost() const
{
    return kernel_.costs().processSpawn *
           static_cast<osim::SimTime>(1 + agents.size());
}

osim::SimTime
FreePartRuntime::sessionWarmHandoffCost() const
{
    return kernel_.costs().processPromote;
}

osim::SimTime
FreePartRuntime::sessionEpochResetCost() const
{
    return kernel_.costs().agentEpochReset *
           static_cast<osim::SimTime>(agents.size());
}

FreePartRuntime::Attempt
FreePartRuntime::attemptOnAgent(uint32_t partition,
                                const fw::ApiDescriptor &desc,
                                const ipc::ValueList &args,
                                uint64_t seq, ApiResult &result)
{
    Agent &agent = agents.at(partition);
    result = ApiResult();

    // Hot window: a recent ring exchange was with this partition, so
    // its agent is still busy-polling the request ring (and we will
    // busy-poll the response ring) — both futex wakes are skipped for
    // the whole exchange. With the adaptive controller the window
    // covers the last hotDepth_ distinct partitions, not just the
    // immediately previous one.
    bool hot = config.batchedRpc && rpcWindowHot(partition);

    // Host -> agent request over the shared-memory channel, batched
    // with any piggybacked LDC object deliveries.
    std::vector<ipc::Message> batch;
    if (config.lazyDataCopy && config.batchedRpc)
        buildDeliverBatch(partition, args, seq, batch);
    else
        ensureArgsMaterialized(partition, args);
    ipc::Message request;
    request.kind = ipc::MsgKind::Request;
    request.seq = seq;
    request.apiId = desc.id;
    request.values = args;
    batch.push_back(std::move(request));
    agent.channel->sendRequestBatch(batch, hot);
    ++stats_.ipcMessages; // the Request; Delivers ride along
    if (hot)
        ++stats_.hotSends;
    // The batch is enqueued but not yet popped: the ring shows this
    // exchange's enqueue watermark — the controller's pressure input.
    if (config.adaptiveBatching)
        adaptHotWindow(*agent.channel);

    std::vector<ipc::Message> incomingBatch;
    if (!agent.channel->receiveRequestBatch(incomingBatch)) {
        // The agent never woke up; the next exchange starts cold.
        coolRpcWindow();
        result.error = "request lost on channel to " +
                       plan_.partitionName(partition);
        return Attempt::ChannelLost;
    }
    stats_.bytesTransferred += ipc::batchWireSize(incomingBatch);
    absorbDelivers(partition, incomingBatch);
    ipc::Message incoming;
    bool have_request = false;
    for (ipc::Message &msg : incomingBatch) {
        if (msg.kind == ipc::MsgKind::Deliver)
            continue;
        incoming = std::move(msg);
        have_request = true;
    }
    if (!have_request)
        util::fatal("runtime: request batch without a Request frame");

    // At-least-once dedup: a duplicate sequence number returns the
    // cached response without re-executing the API (§4.3 "FreePart as
    // RPC"). A re-delivered request that is NOT in the cache (the
    // crash interrupted its first execution) re-executes — for
    // stateful APIs this is the paper's accepted double-execution.
    const ipc::ValueList *cached = agent.seqCache.find(incoming.seq);
    bool from_cache = cached != nullptr;
    if (from_cache) {
        ++stats_.dedupHits;
        result.values = *cached;
        result.ok = true;
    } else {
        osim::Process &proc = kernel_.process(agent.pid);
        if (kernel_.queryFault(osim::FaultPoint::AgentCall,
                               agent.pid) ==
            osim::FaultAction::Crash) {
            kernel_.faultProcess(proc,
                                 "injected: crash during " + desc.name);
            result.error = "injected: crash during " + desc.name;
            coolRpcWindow();
            return Attempt::Crashed;
        }
        fw::ExecContext ctx(kernel_, proc, *agent.store,
                            agent.devices, partition);
        try {
            result.values = desc.fn(ctx, desc, incoming.values);
            result.ok = true;
        } catch (const osim::MemFault &fault) {
            ++stats_.memFaults;
            kernel_.faultProcess(proc, fault.what());
            result.error = fault.what();
            coolRpcWindow();
            return Attempt::Crashed;
        } catch (const osim::SyscallViolation &violation) {
            ++stats_.syscallDenials;
            result.error = violation.what();
            coolRpcWindow();
            return Attempt::Crashed;
        } catch (const osim::TransientFault &fault) {
            result.error = fault.what();
            return Attempt::Transient;
        } catch (const osim::ProcessCrash &crash) {
            if (proc.alive())
                kernel_.faultProcess(proc, crash.what());
            result.error = crash.what();
            coolRpcWindow();
            return Attempt::Crashed;
        } catch (const util::FatalError &error) {
            // Application-level failure (bad input, shape mismatch):
            // the agent survives.
            result.error = error.what();
        }

        if (result.ok) {
            agent.executedApis.insert(desc.name);
            registerResultHomes(partition, result.values);
            if (!config.lazyDataCopy) {
                // Without LDC every result object is copied back
                // through the host immediately (Fig. 11-(b)).
                for (const ipc::Value &value : result.values) {
                    if (value.kind() != ipc::Value::Kind::Ref)
                        continue;
                    uint64_t id = value.asRef().objectId;
                    if (homeOf(id) != kHostPartition)
                        transferObject(partition, kHostPartition, id,
                                       true);
                }
            } else {
                // LDC: results stay put; the host gets references.
                for (const ipc::Value &value : result.values)
                    if (value.kind() == ipc::Value::Kind::Ref)
                        ++stats_.lazyCopies;
            }
            stats_.dedupEvictions +=
                agent.seqCache.insert(incoming.seq, result.values);
        }
    }

    // Agent -> host response. One shared path for cached and fresh
    // executions, so loss handling and byte accounting never diverge.
    // The host has been busy-polling the response ring since the send,
    // so the response rides the same hot window as the request.
    ipc::Message response;
    response.kind = ipc::MsgKind::Response;
    response.seq = incoming.seq;
    response.status = result.ok ? 0 : 1;
    response.values = result.values;
    agent.channel->sendResponseBatch({response}, hot);
    ++stats_.ipcMessages;
    std::vector<ipc::Message> doneBatch;
    if (!agent.channel->receiveResponseBatch(doneBatch)) {
        // The API may have executed; the cached seq makes the retry a
        // dedup hit instead of a re-execution.
        coolRpcWindow();
        result.error = "response lost on channel from " +
                       plan_.partitionName(partition);
        return Attempt::ChannelLost;
    }
    stats_.bytesTransferred += ipc::batchWireSize(doneBatch);
    // A complete exchange keeps both sides spinning briefly: the next
    // call to this partition (if it comes right away) starts hot.
    warmRpcWindow(partition);

    if (!from_cache) {
        // Checkpoint stateful state periodically (A.2.4).
        if (++agent.callsSinceCheckpoint >= config.checkpointInterval) {
            checkpointAgent(partition);
            agent.callsSinceCheckpoint = 0;
        }
        maybeAutoLockdown(agent);
    }
    return result.ok ? Attempt::Ok : Attempt::AppError;
}

bool
FreePartRuntime::recoverAgent(uint32_t partition)
{
    if (!config.restartAgents)
        return false;
    // Each failed respawn is itself a crash: it lands in the sliding
    // window and consumes a restart attempt, so a flapping partition
    // converges to quarantine instead of retrying forever.
    while (supervisor_.onCrash(partition)) {
        supervisor_.chargeBackoff(partition);
        bool up = restartAgent(partition);
        supervisor_.onRestartAttempt(partition, up);
        if (up)
            return true;
    }
    return false;
}

ApiResult
FreePartRuntime::quarantinedCall(uint32_t partition,
                                 const fw::ApiDescriptor &desc,
                                 const ipc::ValueList &args)
{
    if (supervisor_.policy().hostFallback && !desc.stateful) {
        // Graceful degradation: run the API in the host process, the
        // baseline no-isolation path. Protection is reduced for this
        // call, but the application keeps making progress. Arguments
        // that died with the quarantined agent fail the call typed.
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref ||
                hasObject(value.asRef().objectId))
                continue;
            ApiResult result;
            result.quarantined = true;
            result.error =
                "argument object " +
                std::to_string(value.asRef().objectId) +
                " was lost in an agent crash";
            return result;
        }
        ++stats_.hostFallbackCalls;
        ApiResult result = executeInHost(desc, args);
        result.quarantined = true;
        return result;
    }
    // Stateful APIs cannot fall back (their agent-side state is the
    // whole point); fail fast with a typed error.
    ++stats_.statefulFastFails;
    ApiResult result;
    result.quarantined = true;
    result.error = "partition " + plan_.partitionName(partition) +
                   " is quarantined; " +
                   (desc.stateful ? "stateful API " : "API ") +
                   desc.name + " fails fast";
    return result;
}

void
FreePartRuntime::checkpointAgent(uint32_t partition)
{
    Agent &agent = agents.at(partition);
    if (!agentAlive(partition))
        return;

    osim::FaultAction action =
        kernel_.queryFault(osim::FaultPoint::Checkpoint, agent.pid);
    if (action == osim::FaultAction::Crash) {
        kernel_.faultProcess(kernel_.process(agent.pid),
                             "injected: crash during checkpoint");
        return;
    }
    if (action == osim::FaultAction::Transient)
        return; // skipped; old gens AND the epoch watermark remain

    // Dirty-epoch incremental checkpoints: a full generation every
    // checkpointFullEvery-th snapshot, incrementals (only objects
    // whose dirtyEpoch moved past the watermark) in between. The
    // first checkpoint of an incarnation is always full — there is
    // no chain to extend.
    bool full = agent.forceFullCheckpoint || agent.checkpoints.empty() ||
                config.checkpointFullEvery <= 1 ||
                agent.incrementalsSinceFull + 1 >=
                    config.checkpointFullEvery;
    // Snapshot the epoch BEFORE serializing: a write racing the
    // checkpoint would then look dirty to the next one (safe side).
    uint64_t snapshotEpoch = agent.store->writeEpoch();

    CheckpointGen gen;
    gen.full = full;
    gen.liveIds = agent.store->ids();
    for (uint64_t id : gen.liveIds) {
        const fw::StoredObject &obj = agent.store->get(id);
        if (!full && obj.dirtyEpoch <= agent.lastCheckpointEpoch)
            continue; // unchanged since the watermark: skip
        CheckpointEntry entry;
        entry.kind = obj.kind;
        entry.bytes = agent.store->serialize(id);
        entry.label = obj.label;
        // Checksum before any corruption: bit-rot after the write is
        // exactly what the restore-time verification must catch.
        entry.checksum = util::fnv1a64(entry.bytes);
        stats_.checkpointBytesSaved += entry.bytes.size();
        if (action == osim::FaultAction::Corrupt &&
            kernel_.faultInjector() && !entry.bytes.empty())
            kernel_.faultInjector()->corrupt(entry.bytes);
        gen.objects.emplace(id, std::move(entry));
    }
    agent.checkpoints.push_front(std::move(gen));
    // Retain enough history for kCheckpointGenerations full chains:
    // everything older than the kCheckpointGenerations-th full
    // generation can never be needed by a reconstruction.
    size_t fulls = 0;
    for (size_t i = 0; i < agent.checkpoints.size(); ++i) {
        if (!agent.checkpoints[i].full)
            continue;
        if (++fulls == kCheckpointGenerations) {
            agent.checkpoints.resize(i + 1);
            break;
        }
    }
    if (full) {
        agent.incrementalsSinceFull = 0;
        agent.forceFullCheckpoint = false;
        ++stats_.fullCheckpoints;
    } else {
        ++agent.incrementalsSinceFull;
        ++stats_.incrementalCheckpoints;
    }
    agent.lastCheckpointEpoch = snapshotEpoch;
    ++stats_.checkpointsTaken;
}

bool
FreePartRuntime::restartAgent(uint32_t partition)
{
    Agent &agent = agents.at(partition);
    if (!config.restartAgents)
        return false;
    if (supervisor_.policy().backgroundRestart) {
        // Background restart: promote the pre-spawned warm standby
        // instead of forking on the critical path. If a crash arrives
        // before the standby finished its background spawn, wait out
        // the remainder — by construction never longer than a cold
        // restart. Queued callers resume when the promotion lands.
        osim::SimTime wait = supervisor_.consumeStandby(partition);
        if (wait) {
            kernel_.advance(wait);
            stats_.standbyWaitTime += wait;
        }
        kernel_.promote(agent.pid);
        ++stats_.standbyPromotions;
        supervisor_.noteRestartCharge(
            wait + kernel_.costs().processPromote);
    } else {
        kernel_.respawn(agent.pid);
        supervisor_.noteRestartCharge(
            kernel_.costs().processRestart);
    }
    ++stats_.agentRestarts;
    coolRpcWindow();
    // Fresh address space: rebuild the store binding (including its
    // dirty-epoch write observer), re-map the channel, reopen devices
    // lazily, reinstall the policy (the new incarnation re-runs its
    // initialization, A.2.4).
    agent.store->clear();
    agent.store->bindObserver();
    agent.devices = fw::DeviceFds();
    agent.channel->remapInto(agent.pid);
    agent.executedApis.clear();
    agent.callsSinceCheckpoint = 0;
    // The rebuilt store has no incremental lineage; the next
    // checkpoint must re-establish a full base.
    agent.forceFullCheckpoint = true;
    if (config.restrictSyscalls)
        installPolicy(agent);
    osim::Process &proc = kernel_.process(agent.pid);
    // An injected respawn fault leaves the incarnation stillborn.
    bool up = proc.alive();
    if (up && kernel_.queryFault(osim::FaultPoint::Restore,
                                 agent.pid) ==
                  osim::FaultAction::Crash) {
        kernel_.faultProcess(
            proc, "injected: crash during checkpoint restore");
        up = false;
    }
    if (up) {
        // Restore from the newest restorable checkpoint. A candidate
        // generation is restorable when its whole chain — itself,
        // the incrementals below it, and the full generation they
        // extend — passes checksum verification; the reconstruction
        // overlays the chain oldest-to-newest and keeps only the ids
        // live at the candidate's snapshot. A candidate with any
        // corrupt link is skipped (one fallback) in favor of the next
        // older one. Values newer than the chosen checkpoint are
        // intentionally NOT restored (§6 "Restoring States of
        // Crashed Process").
        for (size_t i = 0; i < agent.checkpoints.size(); ++i) {
            // Chain of candidate i: indices i..base where base is the
            // nearest full generation at or below it.
            size_t base = i;
            while (base < agent.checkpoints.size() &&
                   !agent.checkpoints[base].full)
                ++base;
            bool intact = base < agent.checkpoints.size();
            for (size_t j = i; intact && j <= base; ++j) {
                for (const auto &[id, entry] :
                     agent.checkpoints[j].objects) {
                    if (util::fnv1a64(entry.bytes) != entry.checksum) {
                        intact = false;
                        break;
                    }
                }
            }
            if (!intact) {
                ++stats_.checkpointFallbacks;
                util::inform("runtime: corrupt checkpoint chain for "
                             "partition %u skipped at restore",
                             partition);
                continue;
            }
            // Overlay oldest-to-newest: the newest copy of each
            // object inside the chain wins.
            std::map<uint64_t, const CheckpointEntry *> merged;
            for (size_t j = base + 1; j-- > i;) {
                for (const auto &[id, entry] :
                     agent.checkpoints[j].objects)
                    merged[id] = &entry;
            }
            for (uint64_t id : agent.checkpoints[i].liveIds) {
                auto it = merged.find(id);
                if (it == merged.end())
                    continue;
                const CheckpointEntry &entry = *it->second;
                agent.store->materialize(id, entry.kind, entry.bytes,
                                         entry.label);
                objectHome[id] = {partition, entry.kind};
                stats_.checkpointBytesRestored += entry.bytes.size();
            }
            break;
        }
    }
    // Objects whose authoritative copy died with the old incarnation
    // fall back to a stale copy elsewhere — the host's if it has one,
    // else any live agent still holding one from an earlier LDC
    // transfer. Only an object with no copy anywhere is gone (the
    // paper's accepted state discrepancy). This runs even when the
    // fresh incarnation is itself dead, so the home map never points
    // at a cleared store.
    std::vector<uint64_t> lost;
    for (auto &[id, home] : objectHome) {
        if (home.first != partition || agent.store->has(id))
            continue;
        if (hostStore_->has(id)) {
            home.first = kHostPartition;
            continue;
        }
        bool found = false;
        for (const Agent &other : agents) {
            if (other.partition == partition ||
                !other.store->has(id) || !agentAlive(other.partition))
                continue;
            home.first = other.partition;
            found = true;
            break;
        }
        if (found)
            continue;
        // Last resort: a checkpoint chain the bulk restore above did
        // not select (e.g. the fresh incarnation is itself dead, or
        // the chosen generation predates the object) may still vouch
        // for it. Rebuild it eagerly so the object keeps resolving —
        // matching what hasObject() now promises.
        if (const CheckpointEntry *entry =
                checkpointEntryFor(agent, id)) {
            agent.store->materialize(id, entry->kind, entry->bytes,
                                     entry->label);
            stats_.checkpointBytesRestored += entry->bytes.size();
            ++stats_.checkpointSourcedRestores;
            continue;
        }
        lost.push_back(id);
    }
    for (uint64_t id : lost)
        objectHome.erase(id);
    // The dedup cache is host-side state and survives the restart
    // (the at-least-once contract needs it to), but cached responses
    // whose object refs no longer resolve are dropped.
    pruneSeqCache(agent);
    return up && proc.alive();
}

size_t
FreePartRuntime::seqCacheSize(uint32_t partition) const
{
    return agents.at(partition).seqCache.size();
}

void
FreePartRuntime::pruneSeqCache(Agent &agent)
{
    agent.seqCache.pruneIf([this](const ipc::ValueList &values) {
        for (const ipc::Value &value : values) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            if (!objectHome.count(value.asRef().objectId))
                return true; // dead ref: drop the cached response
        }
        return false;
    });
}

} // namespace freepart::core
