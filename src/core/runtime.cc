#include "core/runtime.hh"

#include <algorithm>

#include "util/logging.hh"

namespace freepart::core {

namespace {

/** Infrastructure syscalls every agent needs regardless of its APIs:
 *  the IPC machinery (shm + futex), allocator traffic, and clean
 *  shutdown. prctl is included so the agent can lock its own filter. */
const std::set<osim::Syscall> kInfraSyscalls = {
    osim::Syscall::Futex,   osim::Syscall::ShmOpen,
    osim::Syscall::Mmap,    osim::Syscall::Munmap,
    osim::Syscall::Brk,     osim::Syscall::Exit,
    osim::Syscall::Prctl,   osim::Syscall::SchedYield,
    osim::Syscall::Getpid,
};

} // namespace

const char *
frameworkStateName(FrameworkState state)
{
    switch (state) {
      case FrameworkState::Initialization:
        return "Initialization";
      case FrameworkState::Loading:
        return "Data Loading";
      case FrameworkState::Processing:
        return "Data Processing";
      case FrameworkState::Visualizing:
        return "Visualizing";
      case FrameworkState::Storing:
        return "Data Storing";
    }
    return "?";
}

FrameworkState
stateForType(fw::ApiType type)
{
    switch (type) {
      case fw::ApiType::Loading:
        return FrameworkState::Loading;
      case fw::ApiType::Processing:
        return FrameworkState::Processing;
      case fw::ApiType::Visualizing:
        return FrameworkState::Visualizing;
      case fw::ApiType::Storing:
        return FrameworkState::Storing;
      case fw::ApiType::Neutral:
      case fw::ApiType::Unknown:
        break;
    }
    return FrameworkState::Processing;
}

FreePartRuntime::FreePartRuntime(osim::Kernel &kernel,
                                 const fw::ApiRegistry &registry,
                                 analysis::Categorization categorization,
                                 PartitionPlan plan,
                                 RuntimeConfig config)
    : kernel_(kernel), registry(registry),
      cats(std::move(categorization)), plan_(std::move(plan)),
      config(config)
{
    osim::Process &host = kernel_.spawn("host-program");
    hostPid_ = host.pid();
    hostStore_ = std::make_unique<fw::ObjectStore>(kernel_, hostPid_,
                                                   &idCounter);
    setupAgents();
    stats_.startTime = kernel_.now();
}

void
FreePartRuntime::setupAgents()
{
    agents.resize(plan_.partitionCount());
    for (uint32_t p = 0; p < plan_.partitionCount(); ++p) {
        Agent &agent = agents[p];
        agent.partition = p;
        osim::Process &proc = kernel_.spawn(plan_.partitionName(p));
        agent.pid = proc.pid();
        agent.store = std::make_unique<fw::ObjectStore>(
            kernel_, agent.pid, &idCounter);
        agent.channel = std::make_unique<ipc::Channel>(
            kernel_, "ch:" + plan_.partitionName(p), hostPid_,
            agent.pid, config.ringBytes);
    }
    // Record which APIs route to which agent (drives the per-agent
    // syscall unions and the lockdown trigger).
    for (const auto &[name, entry] : cats) {
        uint32_t p = plan_.partitionFor(name, entry.type);
        if (p != kHostPartition && p < agents.size())
            agents[p].assignedApis.insert(name);
    }
    for (Agent &agent : agents)
        if (config.restrictSyscalls)
            installPolicy(agent);
}

std::set<osim::Syscall>
FreePartRuntime::buildPolicy(const Agent &agent) const
{
    // Union of the required syscalls of every API assigned to this
    // agent (§4.4.1 "Overlapping System Calls Between APIs").
    std::set<osim::Syscall> allowed = kInfraSyscalls;
    for (const std::string &name : agent.assignedApis) {
        auto it = cats.find(name);
        if (it == cats.end())
            continue;
        allowed.insert(it->second.syscalls.begin(),
                       it->second.syscalls.end());
    }
    return allowed;
}

void
FreePartRuntime::installPolicy(Agent &agent)
{
    agent.policy = buildPolicy(agent);
    osim::Process &proc = kernel_.process(agent.pid);
    proc.filter().install(agent.policy);
    agent.locked = false;
}

void
FreePartRuntime::lockdownAgent(Agent &agent)
{
    if (agent.locked)
        return;
    osim::Process &proc = kernel_.process(agent.pid);
    // Drop the init-only syscalls (mprotect / connect) — they were
    // needed only for first executions (§4.4.1).
    for (osim::Syscall call : osim::allSyscalls())
        if (osim::isInitOnlySyscall(call))
            proc.filter().deny(call);
    // Pin fd-sensitive syscalls to the device fds opened during the
    // grace period ("operate only on the designated files").
    std::set<osim::Fd> device_fds;
    if (agent.devices.camera >= 0)
        device_fds.insert(agent.devices.camera);
    if (agent.devices.gui >= 0)
        device_fds.insert(agent.devices.gui);
    if (agent.devices.net >= 0)
        device_fds.insert(agent.devices.net);
    proc.filter().restrictFds(osim::Syscall::Ioctl, device_fds);
    proc.filter().restrictFds(osim::Syscall::Select, device_fds);
    // Lock with PR_SET_NO_NEW_PRIVS via the agent's own prctl.
    kernel_.sysPrctlNoNewPrivs(proc);
    agent.locked = true;
}

void
FreePartRuntime::maybeAutoLockdown(Agent &agent)
{
    if (!config.restrictSyscalls || !config.lockAfterInit ||
        agent.locked)
        return;
    // All assigned APIs have executed at least once: the grace
    // period is over ("FreePart first executes all the framework
    // APIs and then restricts them afterwards").
    if (agent.executedApis.size() >= agent.assignedApis.size())
        lockdownAgent(agent);
}

void
FreePartRuntime::lockdownAll()
{
    for (Agent &agent : agents)
        if (config.restrictSyscalls)
            lockdownAgent(agent);
}

osim::Process &
FreePartRuntime::hostProcess()
{
    return kernel_.process(hostPid_);
}

bool
FreePartRuntime::hostAlive() const
{
    return kernel_.process(hostPid_).alive();
}

void
FreePartRuntime::annotateData(const std::string &name, osim::Addr addr,
                              size_t len)
{
    vars.push_back({name, hostPid_, addr, len, state_, false});
}

osim::Addr
FreePartRuntime::allocHostData(const std::string &name, size_t len)
{
    osim::Addr addr = kernel_.process(hostPid_).space().alloc(
        len, osim::PermRW, name);
    annotateData(name, addr, len);
    return addr;
}

osim::Addr
FreePartRuntime::allocInPartition(uint32_t partition,
                                  const std::string &name, size_t len)
{
    osim::Pid pid = partition == kHostPartition
                        ? hostPid_
                        : agents.at(partition).pid;
    osim::Addr addr =
        kernel_.process(pid).space().alloc(len, osim::PermRW, name);
    vars.push_back({name, pid, addr, len, state_, false});
    return addr;
}

uint64_t
FreePartRuntime::createHostMat(uint32_t rows, uint32_t cols,
                               uint32_t ch, uint64_t seed,
                               const std::string &label)
{
    osim::AddressSpace &space = kernel_.process(hostPid_).space();
    fw::MatDesc mat;
    mat.rows = rows;
    mat.cols = cols;
    mat.channels = ch;
    mat.addr = space.alloc(mat.byteLen(), osim::PermRW, label);
    std::vector<uint8_t> pixels =
        fw::synthPixels(rows, cols, ch, seed);
    space.write(mat.addr, pixels.data(), pixels.size());
    uint64_t id = hostStore_->putMat(mat, label);
    objectHome[id] = {kHostPartition, fw::ObjKind::Mat};
    vars.push_back({label, hostPid_, mat.addr, mat.byteLen(), state_,
                    false});
    return id;
}

uint64_t
FreePartRuntime::createHostBytes(const std::vector<uint8_t> &bytes,
                                 const std::string &label)
{
    osim::AddressSpace &space = kernel_.process(hostPid_).space();
    osim::Addr addr = space.alloc(bytes.size() ? bytes.size() : 1,
                                  osim::PermRW, label);
    space.write(addr, bytes.data(), bytes.size());
    uint64_t id = hostStore_->putBytes(addr, bytes.size(), label);
    objectHome[id] = {kHostPartition, fw::ObjKind::Bytes};
    vars.push_back({label, hostPid_, addr, bytes.size(), state_,
                    false});
    return id;
}

uint32_t
FreePartRuntime::partitionOfApi(const std::string &api_name) const
{
    auto it = cats.find(api_name);
    fw::ApiType type =
        it != cats.end() ? it->second.type : fw::ApiType::Unknown;
    const fw::ApiDescriptor *desc = registry.byName(api_name);
    bool neutral = (it != cats.end() && it->second.typeNeutral) ||
                   (desc && desc->typeNeutral);
    if (neutral && lastPartition != kHostPartition &&
        plan_.kind() == PlanKind::ByType)
        return lastPartition;
    return plan_.partitionFor(api_name, type);
}

osim::Pid
FreePartRuntime::agentPid(uint32_t partition) const
{
    return agents.at(partition).pid;
}

bool
FreePartRuntime::agentAlive(uint32_t partition) const
{
    return kernel_.process(agents.at(partition).pid).alive();
}

const osim::SyscallFilter &
FreePartRuntime::agentFilter(uint32_t partition) const
{
    return kernel_.process(agents.at(partition).pid).filter();
}

fw::ObjectStore &
FreePartRuntime::storeOf(uint32_t partition)
{
    if (partition == kHostPartition)
        return *hostStore_;
    return *agents.at(partition).store;
}

uint32_t
FreePartRuntime::homeOf(uint64_t object_id) const
{
    auto it = objectHome.find(object_id);
    if (it != objectHome.end())
        return it->second.first;
    // Objects created directly in the host store (e.g. by the
    // workload harness) are adopted lazily as host-homed.
    if (hostStore_->has(object_id)) {
        objectHome[object_id] = {kHostPartition,
                                 hostStore_->get(object_id).kind};
        return kHostPartition;
    }
    util::panic("runtime: object %llu has no recorded home",
                static_cast<unsigned long long>(object_id));
}

const RunStats &
FreePartRuntime::stats()
{
    stats_.endTime = kernel_.now();
    return stats_;
}

void
FreePartRuntime::enterState(FrameworkState next)
{
    if (next == state_)
        return;
    FrameworkState previous = state_;
    state_ = next;
    ++stats_.stateChanges;
    kernel_.logEvent(hostPid_, osim::EventKind::StateChange,
                     std::string(frameworkStateName(previous)) +
                         " -> " + frameworkStateName(next));
    if (config.enforceMemoryProtection)
        applyTemporalProtection(previous);
}

void
FreePartRuntime::applyTemporalProtection(FrameworkState previous)
{
    // All data objects defined during the previous state become
    // read-only (Fig. 3).
    for (ProtectedVar &var : vars) {
        if (var.isProtected || var.definedIn != previous)
            continue;
        kernel_.trustedProtect(var.pid, var.addr, var.len,
                               osim::PermRead);
        var.isProtected = true;
        ++stats_.protectionFlips;
    }
}

void
FreePartRuntime::transferObject(uint32_t from, uint32_t to,
                                uint64_t id, bool eager)
{
    if (from == to)
        return;
    fw::ObjectStore &src = storeOf(from);
    fw::ObjectStore &dst = storeOf(to);
    std::vector<uint8_t> bytes = src.serialize(id);
    fw::ObjKind kind = src.get(id).kind;
    dst.materialize(id, kind, bytes, src.get(id).label);
    kernel_.advance(kernel_.costs().copyCost(bytes.size()));
    stats_.bytesTransferred += bytes.size();
    objectHome[id] = {to, kind};
    if (eager) {
        // Host-mediated copies ride their own request/response pair
        // (Fig. 11-(b)), unlike LDC's piggybacked direct fetches.
        kernel_.advance(kernel_.costs().ipcRoundTrip);
        stats_.ipcMessages += 2;
        ++stats_.eagerCopies;
    } else {
        ++stats_.directCopies;
    }
}

void
FreePartRuntime::ensureArgsMaterialized(uint32_t partition,
                                        const ipc::ValueList &args)
{
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        uint32_t home = homeOf(id);
        if (home == partition) {
            // Reference pass: no data motion at all.
            ++stats_.lazyCopies;
            continue;
        }
        if (config.lazyDataCopy) {
            // LDC: one direct copy from the owning process into the
            // executing agent, at dereference time (Fig. 11-(a)).
            transferObject(home, partition, id, /*eager=*/false);
        } else {
            // Without LDC the object data flows through the host
            // process (Fig. 11-(b)): owner -> host, host -> agent.
            if (home != kHostPartition)
                transferObject(home, kHostPartition, id,
                               /*eager=*/true);
            transferObject(kHostPartition, partition, id,
                           /*eager=*/true);
        }
    }
}

void
FreePartRuntime::registerResultHomes(uint32_t partition,
                                     const ipc::ValueList &values)
{
    for (const ipc::Value &value : values) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        fw::ObjectStore &store = storeOf(partition);
        if (store.has(id))
            objectHome[id] = {partition, store.get(id).kind};
    }
}

void
FreePartRuntime::fetchToHost(const ipc::ObjectRef &ref)
{
    uint32_t home = homeOf(ref.objectId);
    if (home == kHostPartition)
        return;
    // The host program dereferences the data: a non-lazy copy.
    transferObject(home, kHostPartition, ref.objectId, /*eager=*/true);
    // Host-resident copies of framework objects fall under temporal
    // protection from the state they were fetched in.
    const fw::StoredObject &obj = hostStore_->get(ref.objectId);
    vars.push_back({"fetched:" + obj.label, hostPid_, obj.addr,
                    obj.byteLen, state_, false});
}

ApiResult
FreePartRuntime::invoke(const std::string &api_name,
                        ipc::ValueList args)
{
    const fw::ApiDescriptor *desc = registry.byName(api_name);
    if (!desc) {
        ApiResult res;
        res.error = "unknown API: " + api_name;
        return res;
    }
    if (!hostAlive()) {
        ApiResult res;
        res.error = "host program has crashed";
        return res;
    }
    ++stats_.apiCalls;

    auto it = cats.find(api_name);
    fw::ApiType type =
        it != cats.end() ? it->second.type : desc->declaredType;
    bool neutral = (it != cats.end() && it->second.typeNeutral) ||
                   desc->typeNeutral;

    // Framework-state machine: concrete API types drive transitions;
    // type-neutral APIs inherit the current state (§4.2).
    if (!neutral && type != fw::ApiType::Unknown)
        enterState(stateForType(type));

    uint32_t partition = plan_.partitionFor(api_name, type);
    if (neutral && lastPartition != kHostPartition &&
        plan_.kind() == PlanKind::ByType)
        partition = lastPartition;

    ApiResult result;
    if (partition == kHostPartition) {
        result = executeInHost(*desc, args);
    } else {
        result = executeOnAgent(partition, *desc, args,
                                /*is_retry=*/false);
        lastPartition = partition;
    }
    return result;
}

ApiResult
FreePartRuntime::executeInHost(const fw::ApiDescriptor &desc,
                               const ipc::ValueList &args)
{
    ApiResult result;
    osim::Process &host = kernel_.process(hostPid_);
    // Args may reference objects living in agents (mixed plans):
    // bring them home first.
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        if (homeOf(id) != kHostPartition)
            transferObject(homeOf(id), kHostPartition, id, true);
    }
    fw::ExecContext ctx(kernel_, host, *hostStore_, hostDevices,
                        kHostPartition);
    try {
        result.values = desc.fn(ctx, desc, args);
        result.ok = true;
        registerResultHomes(kHostPartition, result.values);
    } catch (const osim::MemFault &fault) {
        ++stats_.memFaults;
        kernel_.faultProcess(host, fault.what());
        result.error = fault.what();
        result.agentCrashed = true;
    } catch (const osim::SyscallViolation &violation) {
        ++stats_.syscallDenials;
        result.error = violation.what();
        result.agentCrashed = true;
    } catch (const osim::ProcessCrash &crash) {
        if (host.alive())
            kernel_.faultProcess(host, crash.what());
        result.error = crash.what();
        result.agentCrashed = true;
    } catch (const util::FatalError &error) {
        result.error = error.what();
    }
    return result;
}

ApiResult
FreePartRuntime::executeOnAgent(uint32_t partition,
                                const fw::ApiDescriptor &desc,
                                const ipc::ValueList &args,
                                bool is_retry)
{
    ApiResult result;
    Agent &agent = agents.at(partition);

    if (!agentAlive(partition)) {
        if (!config.restartAgents || !restartAgent(partition)) {
            result.error = "agent " + plan_.partitionName(partition) +
                           " is dead";
            return result;
        }
    }

    ensureArgsMaterialized(partition, args);

    // Host -> agent request over the shared-memory channel. Retries
    // re-deliver under the original sequence number so the dedup
    // cache can recognize duplicates.
    uint64_t seq = is_retry ? nextSeq - 1 : nextSeq++;
    ipc::Message request;
    request.kind = ipc::MsgKind::Request;
    request.seq = seq;
    request.apiId = desc.id;
    request.values = args;
    agent.channel->sendRequest(request);
    ++stats_.ipcMessages;

    ipc::Message incoming;
    if (!agent.channel->receiveRequest(incoming))
        util::panic("runtime: request lost on channel");
    stats_.bytesTransferred += ipc::encodeMessage(incoming).size();

    // Exactly-once: a duplicate sequence number returns the cached
    // response without re-executing the API (§4.3 "FreePart as RPC").
    auto cached = agent.seqCache.find(incoming.seq);
    if (cached != agent.seqCache.end()) {
        result.ok = true;
        result.values = cached->second;
        ipc::Message response;
        response.kind = ipc::MsgKind::Response;
        response.seq = incoming.seq;
        response.values = result.values;
        agent.channel->sendResponse(response);
        ++stats_.ipcMessages;
        ipc::Message done;
        agent.channel->receiveResponse(done);
        return result;
    }

    osim::Process &proc = kernel_.process(agent.pid);
    fw::ExecContext ctx(kernel_, proc, *agent.store, agent.devices,
                        partition);
    bool crashed = false;
    try {
        result.values = desc.fn(ctx, desc, incoming.values);
        result.ok = true;
    } catch (const osim::MemFault &fault) {
        ++stats_.memFaults;
        kernel_.faultProcess(proc, fault.what());
        result.error = fault.what();
        crashed = true;
    } catch (const osim::SyscallViolation &violation) {
        ++stats_.syscallDenials;
        result.error = violation.what();
        crashed = true;
    } catch (const osim::ProcessCrash &crash) {
        if (proc.alive())
            kernel_.faultProcess(proc, crash.what());
        result.error = crash.what();
        crashed = true;
    } catch (const util::FatalError &error) {
        // Application-level failure (bad input, shape mismatch):
        // the agent survives.
        result.error = error.what();
    }

    if (crashed) {
        ++stats_.agentCrashes;
        result.agentCrashed = true;
        if (config.restartAgents && !is_retry &&
            restartAgent(partition)) {
            // At-least-once: re-deliver the request once to the
            // fresh incarnation (§4.4.2).
            ++stats_.retriedCalls;
            ApiResult retry =
                executeOnAgent(partition, desc, args, true);
            retry.agentCrashed = true; // surface that a crash happened
            return retry;
        }
        return result;
    }

    if (result.ok) {
        agent.executedApis.insert(desc.name);
        registerResultHomes(partition, result.values);
        if (!config.lazyDataCopy) {
            // Without LDC every result object is copied back through
            // the host immediately (Fig. 11-(b) steps 2/5).
            for (const ipc::Value &value : result.values) {
                if (value.kind() != ipc::Value::Kind::Ref)
                    continue;
                uint64_t id = value.asRef().objectId;
                if (homeOf(id) != kHostPartition)
                    transferObject(partition, kHostPartition, id,
                                   true);
            }
        } else {
            // LDC: results stay put; the host receives references.
            for (const ipc::Value &value : result.values)
                if (value.kind() == ipc::Value::Kind::Ref)
                    ++stats_.lazyCopies;
        }
        agent.seqCache.emplace(incoming.seq, result.values);
        if (agent.seqCache.size() > 64)
            agent.seqCache.erase(agent.seqCache.begin());
    }

    // Agent -> host response.
    ipc::Message response;
    response.kind = ipc::MsgKind::Response;
    response.seq = incoming.seq;
    response.status = result.ok ? 0 : 1;
    response.values = result.values;
    agent.channel->sendResponse(response);
    ++stats_.ipcMessages;
    ipc::Message done;
    if (!agent.channel->receiveResponse(done))
        util::panic("runtime: response lost on channel");
    stats_.bytesTransferred += ipc::encodeMessage(done).size();

    // Checkpoint stateful state periodically (A.2.4).
    if (++agent.callsSinceCheckpoint >= config.checkpointInterval) {
        checkpointAgent(partition);
        agent.callsSinceCheckpoint = 0;
    }

    maybeAutoLockdown(agent);
    return result;
}

void
FreePartRuntime::checkpointAgent(uint32_t partition)
{
    Agent &agent = agents.at(partition);
    if (!agentAlive(partition))
        return;
    agent.checkpoint.clear();
    for (uint64_t id : agent.store->ids()) {
        const fw::StoredObject &obj = agent.store->get(id);
        agent.checkpoint.emplace(
            id, std::make_pair(obj.kind, agent.store->serialize(id)));
    }
}

bool
FreePartRuntime::restartAgent(uint32_t partition)
{
    Agent &agent = agents.at(partition);
    if (!config.restartAgents)
        return false;
    kernel_.respawn(agent.pid);
    ++stats_.agentRestarts;
    // Fresh address space: rebuild the store binding, re-map the
    // channel, reopen devices lazily, reinstall the policy (the new
    // incarnation re-runs its initialization, A.2.4).
    agent.store->clear();
    agent.devices = fw::DeviceFds();
    agent.channel->remapInto(agent.pid);
    agent.executedApis.clear();
    agent.seqCache.clear();
    if (config.restrictSyscalls)
        installPolicy(agent);
    // Restore the checkpointed stateful objects. Values of the
    // crashed incarnation are intentionally NOT restored (§6
    // "Restoring States of Crashed Process") — only the last
    // checkpoint is.
    for (const auto &[id, snap] : agent.checkpoint) {
        agent.store->materialize(id, snap.first, snap.second);
        objectHome[id] = {partition, snap.first};
    }
    // Objects whose authoritative copy died with the old incarnation
    // fall back to their stale host copy when one exists; otherwise
    // they are gone (the paper's accepted state discrepancy).
    std::vector<uint64_t> lost;
    for (auto &[id, home] : objectHome) {
        if (home.first != partition || agent.store->has(id))
            continue;
        if (hostStore_->has(id))
            home.first = kHostPartition;
        else
            lost.push_back(id);
    }
    for (uint64_t id : lost)
        objectHome.erase(id);
    return true;
}

} // namespace freepart::core
