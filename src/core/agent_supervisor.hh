/**
 * @file
 * Agent supervision: the recovery *policy* layered over the paper's
 * bare restart mechanism (§4.4.2). The runtime reports crashes and
 * outcomes here; the supervisor decides whether another restart is
 * allowed, how long (in simulated time) to back off before it, and
 * when a flapping partition must be quarantined instead of retried
 * forever. It also keeps the per-partition health state machine
 *
 *   Healthy -> Restarting -> Backoff -> (Healthy | Quarantined)
 *
 * and the recovery accounting (outage spans, time-to-recover).
 */

#ifndef FREEPART_CORE_AGENT_SUPERVISOR_HH
#define FREEPART_CORE_AGENT_SUPERVISOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "osim/kernel.hh"

namespace freepart::core {

/** Health of one supervised partition. */
enum class AgentHealth : uint8_t {
    Healthy,     //!< serving calls normally
    Restarting,  //!< crashed; a respawn attempt is in progress
    Backoff,     //!< respawn failed; waiting out the backoff delay
    Quarantined, //!< crash-looping; no further restarts attempted
};

/** Display name of a health state. */
const char *agentHealthName(AgentHealth health);

/** Tunable supervision policy (per runtime; applies to every agent). */
struct SupervisionPolicy {
    /** Re-delivery attempts per API call before giving up. */
    uint32_t retryBudget = 3;

    /** Respawn attempts per outage before quarantining. */
    uint32_t maxRestartAttempts = 4;

    /** Simulated backoff before the 2nd, 3rd, ... respawn attempt. */
    osim::SimTime backoffBase = 200'000; // 0.2 ms
    double backoffFactor = 2.0;
    osim::SimTime backoffMax = 20'000'000; // 20 ms

    /** Crash-loop detection: this many crashes inside the sliding
     *  window span quarantines the partition. The span is measured in
     *  application time (wall clock net of restart machinery — see
     *  noteRestartCharge); 70 ms is the historical 100 ms wall-clock
     *  span minus the machinery of a full outage cycle (4 backoffs +
     *  5 cold spawns, ~30 ms). */
    uint32_t crashLoopThreshold = 5;
    osim::SimTime crashLoopSpan = 70'000'000; // 70 ms app time

    /** Route non-stateful APIs of a quarantined partition to host
     *  execution (graceful degradation; stateful APIs fail fast). */
    bool hostFallback = true;

    /** Keep a warm standby process per partition and promote it on
     *  crash instead of forking on the critical path. The fork cost is
     *  paid in background (simulated) time; a crash arriving before
     *  the standby finished spawning waits out the remainder — never
     *  longer than a cold restart would have taken. */
    bool backgroundRestart = true;
};

/** Aggregated recovery accounting across all partitions. */
struct SupervisionStats {
    uint64_t crashesObserved = 0;  //!< crashes reported to the supervisor
    uint64_t restartsAllowed = 0;  //!< respawn attempts granted
    uint64_t restartsFailed = 0;   //!< respawns that died immediately
    uint64_t quarantines = 0;      //!< partitions taken out of service
    uint64_t recoveries = 0;       //!< outages closed by a success
    osim::SimTime backoffTime = 0; //!< simulated time spent backing off
    osim::SimTime outageTime = 0;  //!< summed outage spans (closed ones)

    /** Mean simulated time from first crash to next success. */
    osim::SimTime
    meanTimeToRecover() const
    {
        return recoveries ? outageTime / recoveries : 0;
    }
};

/**
 * The supervisor. Owned by the runtime; one instance covers all of a
 * plan's partitions. Time comes from the simulated kernel clock, so
 * backoff and window arithmetic is exactly reproducible.
 */
class AgentSupervisor
{
  public:
    AgentSupervisor(osim::Kernel &kernel, SupervisionPolicy policy,
                    uint32_t partition_count);

    const SupervisionPolicy &policy() const { return policy_; }

    AgentHealth health(uint32_t partition) const;
    bool quarantined(uint32_t partition) const;

    /** Partitions currently quarantined. The shard router drains a
     *  shard from the cluster ring when this crosses its threshold —
     *  the cluster-level reuse of the health state machine. */
    size_t quarantinedCount() const;

    /**
     * Report a crash of a partition's agent. Records it in the
     * sliding window and opens an outage if none is open. Returns
     * true if a restart attempt is allowed, false if the partition is
     * (now) quarantined — either because the crash count within the
     * window crossed the threshold, or because this outage already
     * used up maxRestartAttempts respawns.
     */
    bool onCrash(uint32_t partition);

    /**
     * Charge the exponential-backoff delay for the upcoming respawn
     * attempt to the simulated clock (first attempt of an outage is
     * immediate) and mark the partition Restarting.
     */
    void chargeBackoff(uint32_t partition);

    /** Record the outcome of a respawn attempt. */
    void onRestartAttempt(uint32_t partition, bool success);

    /** A call on the partition completed: close any open outage. */
    void onCallSucceeded(uint32_t partition);

    /**
     * Force a partition into quarantine (used when restarts are
     * disabled by config but the caller still wants degradation).
     */
    void quarantine(uint32_t partition);

    /**
     * Consume the partition's warm standby for a promotion. Returns
     * the simulated time the caller must still wait before the
     * standby is ready (0 when the background spawn already finished)
     * and schedules the background replenishment — the next standby
     * becomes ready one processRestart span after this promotion.
     * Only meaningful when policy().backgroundRestart is set.
     */
    osim::SimTime consumeStandby(uint32_t partition);

    /** When the partition's current standby becomes promotable. */
    osim::SimTime standbyReadyAt(uint32_t partition) const;

    /**
     * Report simulated time spent on restart machinery (standby
     * waits, promotion or respawn cost). The crash-loop window is
     * measured net of this time, so loop detection tracks how fast
     * the *application* re-crashes, invariant to restart latency —
     * otherwise cheap promotions would pack the same crashes into a
     * tighter wall-clock span and look like a crash loop.
     */
    void noteRestartCharge(osim::SimTime duration);

    const SupervisionStats &stats() const { return stats_; }

    /** Crashes currently inside the partition's sliding window. */
    size_t windowCrashes(uint32_t partition) const;

    /**
     * Observer notified on every reported crash, including crashes of
     * already-quarantined partitions. The cluster health monitor subscribes
     * here so per-runtime crash churn feeds shard-level suspicion
     * without polling quarantinedCount(). One listener per supervisor
     * (latest wins); pass nullptr to unsubscribe.
     */
    void setCrashListener(std::function<void(uint32_t)> listener)
    {
        crashListener_ = std::move(listener);
    }

  private:
    struct PartitionState {
        AgentHealth health = AgentHealth::Healthy;
        std::deque<osim::SimTime> crashTimes; //!< sliding window
        uint32_t attemptsThisOutage = 0;
        bool inOutage = false;
        osim::SimTime downSince = 0;
        /** Background-restart: when the pre-spawned standby is
         *  promotable. The initial standby is spawned alongside the
         *  agent, so it is ready from time 0. */
        osim::SimTime standbyReadyAt = 0;
    };

    void pruneWindow(PartitionState &state) const;

    osim::Kernel &kernel;
    SupervisionPolicy policy_;
    std::vector<PartitionState> parts;
    SupervisionStats stats_;
    std::function<void(uint32_t)> crashListener_;
    /** Cumulative restart-machinery time across ALL partitions
     *  (backoff, standby waits, spawn cost). The crash-loop clock is
     *  kernel.now() minus this, i.e. application time: any
     *  partition's restart stalls the whole workload, so netting
     *  only the crashing partition's share would still let faster
     *  restarts elsewhere tighten this partition's window. */
    osim::SimTime machineryTime = 0;
};

} // namespace freepart::core

#endif // FREEPART_CORE_AGENT_SUPERVISOR_HH
