#include "core/partition_plan.hh"

#include "util/logging.hh"

namespace freepart::core {

PartitionPlan
PartitionPlan::inHost()
{
    PartitionPlan plan;
    plan.kind_ = PlanKind::InHost;
    plan.count_ = 0;
    return plan;
}

PartitionPlan
PartitionPlan::freePartDefault()
{
    PartitionPlan plan;
    plan.kind_ = PlanKind::ByType;
    plan.count_ = fw::kNumApiTypes;
    return plan;
}

PartitionPlan
PartitionPlan::singleAgent()
{
    PartitionPlan plan;
    plan.kind_ = PlanKind::Single;
    plan.count_ = 1;
    return plan;
}

PartitionPlan
PartitionPlan::perApi(const std::vector<std::string> &apis)
{
    PartitionPlan plan;
    plan.kind_ = PlanKind::ByApi;
    uint32_t next = 0;
    for (const std::string &name : apis)
        if (!plan.apiMap.count(name))
            plan.apiMap.emplace(name, next++);
    plan.count_ = next;
    return plan;
}

PartitionPlan
PartitionPlan::custom(std::map<std::string, uint32_t> map,
                      uint32_t count)
{
    PartitionPlan plan;
    plan.kind_ = PlanKind::ByApi;
    plan.apiMap = std::move(map);
    plan.count_ = count;
    for (const auto &[name, part] : plan.apiMap)
        if (part >= count)
            util::fatal("PartitionPlan: '%s' -> %u out of range",
                        name.c_str(), part);
    return plan;
}

uint32_t
PartitionPlan::partitionFor(const std::string &api_name,
                            fw::ApiType type) const
{
    switch (kind_) {
      case PlanKind::InHost:
        return kHostPartition;
      case PlanKind::Single:
        return 0;
      case PlanKind::ByType:
        switch (type) {
          case fw::ApiType::Loading:
            return 0;
          case fw::ApiType::Processing:
          case fw::ApiType::Neutral:
          case fw::ApiType::Unknown:
            return 1;
          case fw::ApiType::Visualizing:
            return 2;
          case fw::ApiType::Storing:
            return 3;
        }
        return 1;
      case PlanKind::ByApi: {
        auto it = apiMap.find(api_name);
        if (it == apiMap.end())
            // Unlisted APIs run in the host (code-based techniques
            // only isolate the annotated call sites).
            return kHostPartition;
        return it->second;
      }
    }
    return kHostPartition;
}

std::string
PartitionPlan::partitionName(uint32_t partition) const
{
    if (partition == kHostPartition)
        return "host";
    if (kind_ == PlanKind::ByType) {
        switch (partition) {
          case 0:
            return "agent:loading";
          case 1:
            return "agent:processing";
          case 2:
            return "agent:visualizing";
          case 3:
            return "agent:storing";
          default:
            break;
        }
    }
    return "agent:" + std::to_string(partition);
}

} // namespace freepart::core
