/**
 * @file
 * FreePartRuntime: the online half of FreePart (§4.3, §4.4). It
 * spawns the host process and one agent process per partition, hooks
 * every framework API call into an RPC over shared-memory channels,
 * moves data objects lazily between agents (LDC, §4.3.2), drives the
 * framework state machine and flips host data read-only on state
 * transitions (§4.4.3), installs per-agent seccomp allowlists with
 * the init-phase grace period (§4.4.1), and restarts crashed agents
 * with at-least-once RPC semantics and periodic state checkpoints
 * (§4.4.2, A.2.4).
 *
 * The same class also runs the baselines: with a different
 * PartitionPlan and RuntimeConfig it behaves as whole-library
 * isolation, per-API isolation, code-based isolation, memory-based
 * protection, or no isolation at all.
 */

#ifndef FREEPART_CORE_RUNTIME_HH
#define FREEPART_CORE_RUNTIME_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/hybrid_categorizer.hh"
#include "core/agent_supervisor.hh"
#include "core/dedup_cache.hh"
#include "core/partition_plan.hh"
#include "core/run_stats.hh"
#include "fw/api_registry.hh"
#include "fw/image_format.hh"
#include "fw/invoker.hh"
#include "ipc/channel.hh"
#include "osim/kernel.hh"

namespace freepart::core {

/** The framework execution state (Fig. 3). */
enum class FrameworkState : uint8_t {
    Initialization = 0,
    Loading,
    Processing,
    Visualizing,
    Storing,
};

/** Display name of a framework state. */
const char *frameworkStateName(FrameworkState state);

/** State entered when an API of the given type executes. */
FrameworkState stateForType(fw::ApiType type);

/** Sentinel: allocate a process-unique object-id namespace. */
constexpr uint32_t kAutoShardId = UINT32_MAX;

/** Feature switches (defaults = full FreePart). */
struct RuntimeConfig {
    bool lazyDataCopy = true;       //!< LDC on (§4.3.2)
    /** FreePart's batched zero-copy RPC transport: piggyback LDC
     *  fetches on the request batch (in-place encode into ring
     *  storage) and skip futex wakes inside a hot window of
     *  consecutive same-partition calls. Prior-technique baselines
     *  turn this off to keep their classic per-message transport. */
    bool batchedRpc = true;
    /**
     * Object-id namespace stamped into the high bits of every id this
     * runtime mints (fw::objectIdNamespace). Two runtimes used to
     * start their id counters at 0 and mint identical ids; the stamp
     * makes ids disjoint across runtimes — the shard router relies on
     * it, and the auto default fixes the collision even for plain
     * single-runtime code that happens to create a second runtime.
     * kAutoShardId draws the next process-unique namespace.
     */
    uint32_t shardId = kAutoShardId;
    /**
     * Adaptive batching-depth controller: widen the hot window from
     * "the one partition of the previous exchange" to the last D
     * distinct partitions when the request ring shows queueing
     * pressure (enqueue watermark above batchGrowOccupancy doubles D
     * up to hotWindowMaxDepth), and decay D by one step on idle
     * (watermark below batchDecayOccupancy). Off by default so every
     * baseline keeps the binary same-partition heuristic.
     */
    bool adaptiveBatching = false;
    uint32_t hotWindowMaxDepth = 8; //!< controller depth ceiling
    double batchGrowOccupancy = 1.0 / 64;   //!< grow threshold
    double batchDecayOccupancy = 1.0 / 1024; //!< decay threshold
    bool restartAgents = true;      //!< respawn crashed agents
    bool enforceMemoryProtection = true; //!< temporal mprotect
    bool restrictSyscalls = true;   //!< install seccomp policies
    bool lockAfterInit = true;      //!< drop init-only syscalls + lock
    uint32_t checkpointInterval = 8; //!< calls between checkpoints
    /** Every Nth checkpoint is a full-store snapshot; the ones in
     *  between are dirty-epoch incrementals that save only objects
     *  mutated since the last checkpoint. 1 = always full (the
     *  pre-incremental behavior, used as the ablation baseline). */
    uint32_t checkpointFullEvery = 4;
    size_t ringBytes = 8 << 20;     //!< per-direction ring capacity
    size_t dedupCacheEntries = 64;  //!< at-least-once LRU cache cap
    /**
     * Pipeline-parallel execution: agents run on per-process virtual
     * timelines, invoke() becomes wait(invokeAsync()), and calls to
     * different partitions with disjoint object sets overlap in
     * simulated time. Off (the default) keeps the classic fully
     * serialized accounting — the Table 9 baseline numbers.
     */
    bool pipelineParallel = false;
    /** Max issued-but-unwaited async calls per partition before the
     *  dispatcher stalls on the oldest completion. */
    uint32_t maxInFlightPerPartition = 4;
    /**
     * Speculate past pending protection flips instead of draining
     * every timeline (DESIGN.md §15). A transition whose flip touches
     * agent address spaces opens a SpeculationEpoch: the flip is
     * modeled as landing at the flipped pids' quiesce horizon, calls
     * issued before that horizon run speculatively (argument objects
     * checkpointed via the dirty-epoch serialize path), and a
     * speculative call that writes pre-epoch data is squashed — its
     * checkpoints restored byte-exact, its minted ids discarded, the
     * call re-issued after the horizon. Host fetches of still-running
     * producers likewise run off-clock on the producer's timeline
     * instead of syncing the host. Off (the default) keeps the hard
     * pipeline barriers and the classic fetch synchronization.
     * Meaningful only with pipelineParallel.
     */
    bool speculativeFlips = false;
    SupervisionPolicy supervision;  //!< recovery policy (§4.4.2 +)
};

/** Result of one framework API invocation. */
struct ApiResult {
    bool ok = false;
    std::string error;       //!< failure description when !ok
    bool agentCrashed = false; //!< the executing process died
    bool quarantined = false;  //!< partition was quarantined (typed
                               //!< fail-fast for stateful APIs)
    ipc::ValueList values;   //!< return values when ok
};

/** Handle to an in-flight asynchronous invocation. */
struct CallTicket {
    uint64_t id = 0;
};

/** An annotated data object under temporal protection (§4.4.3). */
struct ProtectedVar {
    std::string name;
    osim::Pid pid;          //!< process holding the data
    osim::Addr addr;
    size_t len;
    FrameworkState definedIn; //!< state active at definition time
    bool isProtected = false; //!< already flipped read-only
};

/**
 * Callback tapped on every API dispatch that crosses into an agent
 * (partition != kHostPartition), with the marshaled argument list as
 * it will hit the wire. The partition-boundary linter uses this to
 * spot critical data crossing by value; observers must not invoke
 * back into the runtime.
 */
using BoundaryObserver = std::function<void(
    const std::string &api_name, uint32_t partition,
    const ipc::ValueList &args)>;

/** The runtime. */
class FreePartRuntime
{
  public:
    /**
     * Create host + agents and install policies.
     *
     * @param kernel  The simulated kernel to run on.
     * @param registry  Framework API registry (hooked APIs).
     * @param categorization  Offline analysis output (API types +
     *        syscall profiles), from analysis::HybridCategorizer.
     * @param plan  Partitioning layout.
     * @param config  Feature switches.
     */
    FreePartRuntime(osim::Kernel &kernel,
                    const fw::ApiRegistry &registry,
                    analysis::Categorization categorization,
                    PartitionPlan plan,
                    RuntimeConfig config = RuntimeConfig());

    FreePartRuntime(const FreePartRuntime &) = delete;
    FreePartRuntime &operator=(const FreePartRuntime &) = delete;

    // ---- Host-side surface --------------------------------------------

    osim::Pid hostPid() const { return hostPid_; }
    osim::Process &hostProcess();
    bool hostAlive() const;
    fw::ObjectStore &hostStore() { return *hostStore_; }

    /** Invoke a hooked framework API from the host program. Under
     *  pipelineParallel this is wait(invokeAsync(...)). */
    ApiResult invoke(const std::string &api_name, ipc::ValueList args);

    // ---- Asynchronous invocation (pipeline-parallel mode) ------------
    //
    // Execution stays eager and single-threaded in program order, so
    // results and object contents are byte-identical to the sync
    // path; what overlaps is simulated *time*. Each call runs inside
    // a kernel task bracket on its agent's virtual timeline, started
    // at max(host clock, agent timeline, readiness of every ObjectRef
    // argument). Args and results form the call's read/write set:
    // both become ready at its completion, so conflicting calls chain
    // while disjoint calls to different partitions overlap.

    /**
     * Issue a call without synchronizing the host clock to its
     * completion. The host is only charged the dispatch cost. With
     * the gate off this degrades to a completed synchronous call.
     */
    CallTicket invokeAsync(const std::string &api_name,
                           ipc::ValueList args);

    /**
     * Retire a ticket: advances the host clock to the call's
     * completion time and returns (and forgets) its result.
     */
    ApiResult wait(CallTicket ticket);

    /**
     * Peek a ticket's result without synchronizing the host clock
     * (execution is eager, so the result already exists). Used to
     * wire dataflow between async calls. nullptr for unknown/retired
     * tickets; the pointer is invalidated by wait() and drainAll().
     */
    const ApiResult *peekResult(CallTicket ticket) const;

    /**
     * Full barrier: advance the host clock past every outstanding
     * timeline and forget all pending tickets.
     */
    void drainAll();

    /** Tickets issued but not yet retired. */
    size_t pendingAsyncCalls() const { return pendingAsync_.size(); }

    /**
     * Annotate existing host-process data for temporal protection
     * (the user annotation the paper requires for custom structures).
     */
    void annotateData(const std::string &name, osim::Addr addr,
                      size_t len);

    /** Allocate + annotate host data in one step. */
    osim::Addr allocHostData(const std::string &name, size_t len);

    /**
     * Allocate + annotate data inside a *partition's* process (used
     * by baseline layouts where critical data does not live in the
     * host, e.g. code-based API isolation).
     */
    osim::Addr allocInPartition(uint32_t partition,
                                const std::string &name, size_t len);

    /** Create an annotated Mat in the host store; returns object id. */
    uint64_t createHostMat(uint32_t rows, uint32_t cols, uint32_t ch,
                           uint64_t seed, const std::string &label);

    /** Create an annotated byte object in the host store. */
    uint64_t createHostBytes(const std::vector<uint8_t> &bytes,
                             const std::string &label);

    /** Copy an object's current data into the host store (the app
     *  dereferencing a result — a non-lazy copy). */
    void fetchToHost(const ipc::ObjectRef &ref);

    // ---- Introspection -------------------------------------------------

    FrameworkState state() const { return state_; }
    const PartitionPlan &plan() const { return plan_; }
    osim::Kernel &kernel() { return kernel_; }

    /** Object-id namespace this runtime mints from (resolved value
     *  when the config asked for kAutoShardId). */
    uint32_t shardId() const { return shardId_; }

    /** Current adaptive batching-depth (1 = binary heuristic). */
    uint32_t hotWindowDepth() const { return hotDepth_; }

    /** Whether a speculation window is currently open (a deferred
     *  protection flip / speculative fetch has not reached its commit
     *  horizon yet). Always false with speculativeFlips off. */
    bool speculationActive() const { return speculation_.active; }
    const analysis::Categorization &categorization() const
    {
        return cats;
    }

    /** Partition an API would execute in right now. */
    uint32_t partitionOfApi(const std::string &api_name) const;

    osim::Pid agentPid(uint32_t partition) const;
    bool agentAlive(uint32_t partition) const;
    const osim::SyscallFilter &agentFilter(uint32_t partition) const;

    /** Object store of a partition (kHostPartition = host). */
    fw::ObjectStore &storeOf(uint32_t partition);

    /** Partition currently holding an object's data. */
    uint32_t homeOf(uint64_t object_id) const;

    /** Whether an object still resolves anywhere: a live store, the
     *  host store, or a checksum-intact checkpoint chain (the same
     *  generations the restore path would accept). False means it is
     *  genuinely lost — homeOf() would panic on it. */
    bool hasObject(uint64_t object_id) const;

    /** Snapshot stats (sets endTime to the current sim clock and
     *  mirrors the supervisor's recovery accounting). */
    const RunStats &stats();

    /** The supervision layer (health states, recovery policy). */
    const AgentSupervisor &supervisor() const { return supervisor_; }
    AgentSupervisor &supervisor() { return supervisor_; }

    /** Entries in a partition's at-least-once dedup cache. The cache
     *  is host-side state, so it must survive agent restarts. */
    size_t seqCacheSize(uint32_t partition) const;

    /** The annotated/protected variables and their status. */
    const std::vector<ProtectedVar> &protectedVars() const
    {
        return vars;
    }

    /** Install (or clear, with nullptr) the boundary-crossing tap.
     *  Both dispatch paths (sync and pipelined) fire it. */
    void setBoundaryObserver(BoundaryObserver observer)
    {
        boundaryObserver_ = std::move(observer);
    }

    // ---- Lifecycle ------------------------------------------------------

    /**
     * Finish the initialization grace period on every agent: drop
     * init-only syscalls (mprotect/connect), pin fd-sensitive
     * syscalls to the opened device fds, and lock the filters with
     * PR_SET_NO_NEW_PRIVS (§4.4.1).
     */
    void lockdownAll();

    /**
     * Respawn one crashed agent (policy + checkpointed state).
     * Returns false when the fresh incarnation is itself dead (an
     * injected respawn/restore fault — the crash-loop case).
     */
    bool restartAgent(uint32_t partition);

    /**
     * Snapshot an agent's object store (stateful-API checkpoint).
     * Each serialized object carries a checksum; the last
     * kCheckpointGenerations generations are kept so a corrupted
     * checkpoint falls back to the previous good one at restore.
     */
    void checkpointAgent(uint32_t partition);

    /** Checkpoint generations retained per agent. */
    static constexpr size_t kCheckpointGenerations = 2;

    /**
     * Remove an object from every store in this runtime (the cluster
     * layer migrated it to another runtime; stale local copies must
     * stop resolving). Cached responses referencing it are pruned
     * from the dedup caches.
     */
    void evictObject(uint64_t object_id);

    /**
     * Bulk evictObject for tenant-session teardown: erases every
     * listed object, then prunes each agent's dedup cache once at the
     * end instead of once per object. Returns how many of the ids
     * still resolved here (store, host, or checkpoint chain).
     */
    size_t evictObjects(const std::vector<uint64_t> &object_ids);

    // ---- Serving-layer pool accounting ----------------------------

    /** Simulated cost of cold-starting a tenant session's agent set:
     *  one fork + runtime init per partition agent plus the host-side
     *  wiring, charged as one extra spawn. This is what every session
     *  pays when the warm pool is disabled or empty. */
    osim::SimTime sessionColdStartCost() const;

    /** Cost of handing a warm clean-epoch agent set to a session:
     *  channel remap + policy install + role handoff — the same
     *  promote cost the warm-standby path pays, no fork involved. */
    osim::SimTime sessionWarmHandoffCost() const;

    /** Background cost of restoring a released agent set to a clean
     *  epoch (per-agent baseline checkpoint re-install). Bounds warm
     *  pool turnaround, not per-call latency. */
    osim::SimTime sessionEpochResetCost() const;

  private:
    /** One checksummed serialized object inside a checkpoint. */
    struct CheckpointEntry {
        fw::ObjKind kind = fw::ObjKind::Bytes;
        std::vector<uint8_t> bytes;
        uint64_t checksum = 0;
        std::string label;
    };

    /** One checkpoint generation: object id -> entry. A full
     *  generation snapshots every live object; an incremental one
     *  holds only the objects dirtied since the previous checkpoint
     *  and must be overlaid on its chain (the nearest older full
     *  generation plus the incrementals between) to reconstruct the
     *  store. liveIds records the live set at snapshot time so a
     *  reconstruction never resurrects deleted objects. */
    struct CheckpointGen {
        bool full = false;
        std::vector<uint64_t> liveIds;
        std::map<uint64_t, CheckpointEntry> objects;
    };

    struct Agent {
        uint32_t partition = 0;
        osim::Pid pid = 0;
        std::unique_ptr<fw::ObjectStore> store;
        fw::DeviceFds devices;
        std::unique_ptr<ipc::Channel> channel;
        std::set<osim::Syscall> policy; //!< installed allowlist
        bool locked = false;            //!< lockdown applied
        std::set<std::string> executedApis; //!< first-exec tracking
        std::set<std::string> assignedApis; //!< APIs routed here
        uint64_t callsSinceCheckpoint = 0;
        /**
         * At-least-once dedup cache: seq -> response values. Lives on
         * the host side of the RPC boundary, so it survives agent
         * restarts — a re-delivered request whose response was lost
         * is recognized as a duplicate even across a respawn. Bounded
         * (LRU) so long runs cannot grow it without limit.
         */
        DedupCache seqCache;
        /** Checkpoint generations, newest first. Enough are kept to
         *  reconstruct kCheckpointGenerations full chains. */
        std::deque<CheckpointGen> checkpoints;
        /** Store write epoch covered by the newest checkpoint; an
         *  incremental saves only objects dirtied after this. */
        uint64_t lastCheckpointEpoch = 0;
        /** Incremental generations taken since the last full one. */
        uint32_t incrementalsSinceFull = 0;
        /** Next checkpoint must be full (set after restore: the
         *  rebuilt store has no incremental history to chain onto). */
        bool forceFullCheckpoint = false;
    };

    /** A call issued through invokeAsync, awaiting wait()/drainAll().
     *  Execution already happened (eagerly); `readyAt` is where it
     *  lands on the virtual timelines. */
    struct PendingCall {
        ApiResult result;
        osim::SimTime issuedAt = 0;
        osim::SimTime readyAt = 0;
        uint32_t partition = kHostPartition;
    };

    /** Pre-execution snapshot of one argument object of a speculative
     *  call: enough to restore the exact bytes (and home binding) if
     *  the call is squashed. Serialized through the same path the
     *  dirty-epoch checkpoints use (§8.2). */
    struct SpecCheckpoint {
        uint64_t id = 0;
        uint32_t home = kHostPartition;
        fw::ObjKind kind = fw::ObjKind::Bytes;
        std::vector<uint8_t> bytes;
        std::string label;
    };

    /**
     * An open speculation window (speculativeFlips, DESIGN.md §15).
     * Deferred protection flips / speculative fetches are modeled as
     * landing at `commitAt`; calls whose task bracket starts earlier
     * run speculatively. Objects with id <= `bornBefore` (the counter
     * value when the window opened) predate the window — writing one under speculation is the conflict that
     * squashes a call. Nested pending flips extend `commitAt`
     * monotonically instead of opening a second window.
     */
    struct SpeculationEpoch {
        bool active = false;
        osim::SimTime commitAt = 0;
        uint64_t bornBefore = 0;
    };

    /** Outcome of one RPC delivery attempt. */
    enum class Attempt {
        Ok,          //!< API executed (or deduplicated) successfully
        AppError,    //!< application-level failure; agent survives
        Transient,   //!< injected retryable fault; agent survives
        ChannelLost, //!< request/response lost or corrupt on the ring
        Crashed,     //!< the agent process died
    };

    void setupAgents();
    std::set<osim::Syscall> buildPolicy(const Agent &agent) const;
    void installPolicy(Agent &agent);
    void lockdownAgent(Agent &agent);
    void maybeAutoLockdown(Agent &agent);
    void applyTemporalProtection(FrameworkState previous);
    void enterState(FrameworkState next);
    void registerResultHomes(uint32_t partition,
                             const ipc::ValueList &values);
    /** Move object data between partitions; counts bytes + cost. */
    void transferObject(uint32_t from, uint32_t to, uint64_t id,
                        bool eager);
    void ensureArgsMaterialized(uint32_t partition,
                                const ipc::ValueList &args);
    ApiResult executeInHost(const fw::ApiDescriptor &desc,
                            const ipc::ValueList &args);
    /** Supervision loop: attempts, retries, restarts, degradation. */
    ApiResult executeOnAgent(uint32_t partition,
                             const fw::ApiDescriptor &desc,
                             const ipc::ValueList &args);
    /** One request/execute/response cycle under a fixed seq. */
    Attempt attemptOnAgent(uint32_t partition,
                           const fw::ApiDescriptor &desc,
                           const ipc::ValueList &args, uint64_t seq,
                           ApiResult &result);
    /** Encode LDC fetches for out-of-partition ref args as Deliver
     *  messages riding the request batch (zero extra round trips). */
    void buildDeliverBatch(uint32_t partition,
                           const ipc::ValueList &args, uint64_t seq,
                           std::vector<ipc::Message> &batch);
    /** Agent-side intake of a request batch's Deliver messages. */
    void absorbDelivers(uint32_t partition,
                        const std::vector<ipc::Message> &batch);
    /** Forget the hot send window (the peers stopped busy-polling). */
    void coolRpcWindow() { hotWindow_.clear(); }
    /** Is this partition's agent still busy-polling? */
    bool rpcWindowHot(uint32_t partition) const;
    /** Record a completed exchange: the partition joins (or refreshes
     *  its place in) the hot window. */
    void warmRpcWindow(uint32_t partition);
    /** Adaptive batching depth: grow under queueing pressure, decay
     *  on idle (ring enqueue watermark vs the config thresholds). */
    void adaptHotWindow(const ipc::Channel &channel);
    /** Restart (with backoff) until up, quarantined, or disallowed. */
    bool recoverAgent(uint32_t partition);
    /** Graceful degradation for calls on a quarantined partition. */
    ApiResult quarantinedCall(uint32_t partition,
                              const fw::ApiDescriptor &desc,
                              const ipc::ValueList &args);
    /** Drop cached responses whose object refs no longer resolve. */
    void pruneSeqCache(Agent &agent);

    /** The classic fully-serialized invoke path (gate off). */
    ApiResult invokeSync(const std::string &api_name,
                         ipc::ValueList args);
    /** Pipelined dispatch: run the call in a task bracket on its
     *  agent's timeline and fill `out` without syncing the host. */
    void dispatchPipelined(uint64_t ticket_id,
                           const std::string &api_name,
                           ipc::ValueList args, PendingCall &out);
    /** Would entering a new state flip protection on data living in
     *  an *agent* address space? (Host-only flips are applied by the
     *  dispatcher itself and need no barrier.) */
    bool pendingProtectionFlips(FrameworkState previous) const;
    /** Drain every timeline before a protection flip lands under
     *  still-running agent tasks. */
    void pipelineBarrier();
    /** Open (or extend) the speculation window for a transition out
     *  of `previous` whose flip touches agent address spaces: the
     *  flip is modeled as landing at the flipped pids' quiesce
     *  horizon instead of draining every timeline. */
    void openSpeculation(FrameworkState previous);
    /** Fold a deferred completion horizon (a speculative fetch, a
     *  nested flip) into the window, opening it if needed. */
    void extendSpeculation(osim::SimTime commit_at);
    /** Close the window once the host clock has passed its commit
     *  horizon (every speculative call already committed or was
     *  squashed at dispatch time). */
    void maybeRetireSpeculation();
    /** Serialize the argument objects of a speculative call for a
     *  possible squash (the §8.2 checkpoint path, per call). */
    std::vector<SpecCheckpoint>
    checkpointSpecArgs(const ipc::ValueList &args);
    /** Did the speculative call write pre-epoch data? The dispatcher
     *  already observes the write set (result refs); a result that
     *  names an object minted before the window opened — with bytes
     *  that actually changed — conflicts with the deferred flip. */
    bool specConflict(const ipc::ValueList &results,
                      const std::vector<SpecCheckpoint> &saved);
    /** Squash a conflicting speculative call: restore checkpointed
     *  argument bytes, discard objects the call minted, rewind the id
     *  counter so the re-issue mints identical ids. */
    void squashSpeculativeCall(
        const std::vector<SpecCheckpoint> &saved, uint64_t pre_id,
        uint32_t partition);
    /** Advance the host clock to an object's readiness time. */
    void syncObjectReady(uint64_t object_id);
    /** Mark refs in `values` as produced/settled at `ready`. */
    void noteObjectsReady(const ipc::ValueList &values,
                          osim::SimTime ready);
    /** Newest checksum-intact checkpoint entry for an object, using
     *  the same candidate/chain selection as the restore path;
     *  nullptr when no generation can vouch for it. */
    const CheckpointEntry *checkpointEntryFor(const Agent &agent,
                                              uint64_t id) const;
    /** Rebuild a checkpoint-held object into its partition's store
     *  (the lazy restore twin of the restartAgent bulk path). */
    bool restoreFromCheckpoint(uint32_t partition, uint64_t id);

    osim::Kernel &kernel_;
    const fw::ApiRegistry &registry;
    analysis::Categorization cats;
    PartitionPlan plan_;
    RuntimeConfig config;
    AgentSupervisor supervisor_;

    osim::Pid hostPid_ = 0;
    uint32_t shardId_ = 0;  //!< resolved object-id namespace
    uint64_t idCounter = 0;
    std::unique_ptr<fw::ObjectStore> hostStore_;
    fw::DeviceFds hostDevices;
    std::vector<Agent> agents;

    FrameworkState state_ = FrameworkState::Initialization;
    uint32_t lastPartition = kHostPartition; //!< for neutral APIs
    /** Partitions of the most recent ring exchanges, newest first. A
     *  call to any partition in the window finds both sides still
     *  busy-polling (the adaptive-spin hot window) and skips the
     *  futex wakes. Depth 1 (the default) is the classic binary
     *  same-partition heuristic; the adaptive batching controller
     *  widens it under queueing pressure. */
    std::deque<uint32_t> hotWindow_;
    uint32_t hotDepth_ = 1; //!< current controller depth (1..max)
    std::vector<ProtectedVar> vars;
    /** object id -> (home partition, kind). Mutable so homeOf() can
     *  lazily adopt host-store objects created outside invoke(). */
    mutable std::map<uint64_t, std::pair<uint32_t, fw::ObjKind>>
        objectHome;
    uint64_t nextSeq = 1;
    /** Readiness time of each object on the virtual timelines (only
     *  maintained in pipeline mode; absent = ready immediately). */
    std::map<uint64_t, osim::SimTime> objectReadyAt_;
    /** ticket id -> pending call. std::map for pointer stability
     *  (peekResult hands out pointers into it). */
    std::map<uint64_t, PendingCall> pendingAsync_;
    uint64_t nextTicket_ = 1;
    SpeculationEpoch speculation_;
    BoundaryObserver boundaryObserver_;
    RunStats stats_;
};

} // namespace freepart::core

#endif // FREEPART_CORE_RUNTIME_HH
