/**
 * @file
 * Partition plans: how framework APIs map onto isolated agent
 * processes. FreePart's default is one agent per API type (§3.2,
 * "Choice of Four Partitions"); the plan abstraction also expresses
 * the baselines' layouts (whole-library, per-API, code-region) and
 * the random finer-grained plans of the Fig. 4 sweep / A.1.4.
 */

#ifndef FREEPART_CORE_PARTITION_PLAN_HH
#define FREEPART_CORE_PARTITION_PLAN_HH

#include <map>
#include <string>
#include <vector>

#include "fw/api_types.hh"

namespace freepart::core {

/** Sentinel partition meaning "run in the host process". */
constexpr uint32_t kHostPartition = UINT32_MAX;

/** How a plan routes APIs to partitions. */
enum class PlanKind {
    InHost,    //!< no isolation: everything in the host process
    ByType,    //!< FreePart: one agent per API type
    Single,    //!< whole-library isolation: one agent for everything
    ByApi,     //!< explicit per-API map (per-API / code-based /
               //!< random finer-grained plans)
};

/** A partitioning of framework APIs onto agent processes. */
class PartitionPlan
{
  public:
    /** No isolation: all APIs execute in the host process. */
    static PartitionPlan inHost();

    /** FreePart default: 4 agents, one per API type. */
    static PartitionPlan freePartDefault();

    /** Whole-library isolation: one agent runs every API. */
    static PartitionPlan singleAgent();

    /** One agent per API name. */
    static PartitionPlan perApi(const std::vector<std::string> &apis);

    /** Explicit api->partition map with the given partition count. */
    static PartitionPlan custom(std::map<std::string, uint32_t> map,
                                uint32_t count);

    PlanKind kind() const { return kind_; }

    /** Number of agent processes the plan needs. */
    uint32_t partitionCount() const { return count_; }

    /**
     * Partition for an API, given its categorized type.
     * Returns kHostPartition under InHost; for type-neutral APIs the
     * runtime overrides this with the current context's partition.
     */
    uint32_t partitionFor(const std::string &api_name,
                          fw::ApiType type) const;

    /** Human-readable label of a partition. */
    std::string partitionName(uint32_t partition) const;

  private:
    PlanKind kind_ = PlanKind::ByType;
    uint32_t count_ = fw::kNumApiTypes;
    std::map<std::string, uint32_t> apiMap;
};

} // namespace freepart::core

#endif // FREEPART_CORE_PARTITION_PLAN_HH
