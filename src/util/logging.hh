/**
 * @file
 * Status-message and error helpers, modeled after gem5's logging
 * conventions: panic() for internal invariant violations, fatal() for
 * unrecoverable user/configuration errors, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef FREEPART_UTIL_LOGGING_HH
#define FREEPART_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace freepart::util {

/** Verbosity levels for runtime status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Process-wide log verbosity; defaults to Warn so tests stay quiet. */
LogLevel logLevel();

/** Set the process-wide log verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void emit(LogLevel level, const char *prefix, const std::string &msg);

} // namespace detail

/**
 * Raised by panic(): an internal invariant was violated (a FreePart
 * bug, never a user error).
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Raised by fatal(): the run cannot continue because of a user-level
 * error (bad configuration, invalid arguments).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Report an internal invariant violation and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::string msg = detail::vformat(fmt, args...);
    detail::emit(LogLevel::Silent, "panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user-level error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::string msg = detail::vformat(fmt, args...);
    detail::emit(LogLevel::Silent, "fatal", msg);
    throw FatalError(msg);
}

/** Emit a warning: something may not behave as the user expects. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::emit(LogLevel::Warn, "warn", detail::vformat(fmt, args...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::emit(LogLevel::Inform, "info", detail::vformat(fmt, args...));
}

/** Emit a debug-level trace message. */
template <typename... Args>
void
debugLog(const char *fmt, Args... args)
{
    detail::emit(LogLevel::Debug, "debug", detail::vformat(fmt, args...));
}

} // namespace freepart::util

#endif // FREEPART_UTIL_LOGGING_HH
