#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace freepart::util {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    size_t digits = 0;
    for (char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c)))
            ++digits;
        else if (c != '.' && c != ',' && c != '-' && c != '+' &&
                 c != '%' && c != 'x')
            return false;
    }
    return digits > 0;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows.push_back(std::move(cells));
    ++nRows;
}

void
TextTable::addRule()
{
    rows.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        std::string line = "+";
        for (size_t w : width)
            line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            size_t pad = width[c] - cell.size();
            if (looksNumeric(cell))
                line += " " + std::string(pad, ' ') + cell + " |";
            else
                line += " " + cell + std::string(pad, ' ') + " |";
        }
        return line + "\n";
    };

    std::string out = rule();
    out += renderRow(headers_);
    out += rule();
    for (const auto &row : rows) {
        if (row.empty())
            out += rule();
        else
            out += renderRow(row);
    }
    out += rule();
    return out;
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmtDouble(fraction * 100.0, decimals) + "%";
}

std::string
fmtCount(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int n = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (n && n % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++n;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace freepart::util
