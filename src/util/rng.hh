/**
 * @file
 * Deterministic pseudo-random number generation used across the
 * simulator, workload generators, and the Fig. 4 partition sampler.
 * Everything in the repository derives randomness from an Rng seeded
 * explicitly so that experiments are exactly reproducible.
 */

#ifndef FREEPART_UTIL_RNG_HH
#define FREEPART_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace freepart::util {

/**
 * SplitMix64-based deterministic RNG. Small, fast, and stable across
 * platforms (unlike std::mt19937 distributions, whose outputs are not
 * specified identically across standard libraries).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t state;
};

} // namespace freepart::util

#endif // FREEPART_UTIL_RNG_HH
