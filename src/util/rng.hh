/**
 * @file
 * Deterministic pseudo-random number generation used across the
 * simulator, workload generators, and the Fig. 4 partition sampler.
 * Everything in the repository derives randomness from an Rng seeded
 * explicitly so that experiments are exactly reproducible.
 */

#ifndef FREEPART_UTIL_RNG_HH
#define FREEPART_UTIL_RNG_HH

#include <cstdint>
#include <cstring>
#include <vector>

namespace freepart::util {

/**
 * Deterministic natural logarithm for x > 0. libm's log() is not
 * bit-identical across platforms/compilers; serving-layer Poisson
 * arrivals must be, or open-loop replays drift. Decomposes x into
 * mantissa * 2^e via the IEEE-754 bit pattern, then evaluates
 * ln(mantissa) with the atanh series ln(m) = 2(z + z^3/3 + z^5/5 +
 * ...) where z = (m-1)/(m+1); with m in [1,2), |z| <= 1/3 and twelve
 * terms reach full double precision.
 */
inline double
detLog(double x)
{
    if (x <= 0.0)
        return 0.0; // callers guard; keep the function total
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    int exponent = static_cast<int>((bits >> 52) & 0x7ffull) - 1023;
    if (exponent == -1023) {
        // Subnormal: normalize by scaling up 2^64 and retry.
        return detLog(x * 0x1.0p64) - 64.0 * 0.6931471805599453;
    }
    uint64_t mantissaBits =
        (bits & 0xfffffffffffffull) | (1023ull << 52);
    double m;
    std::memcpy(&m, &mantissaBits, sizeof m);
    double z = (m - 1.0) / (m + 1.0);
    double z2 = z * z;
    double term = z;
    double sum = 0.0;
    for (int k = 0; k < 12; ++k) {
        sum += term / static_cast<double>(2 * k + 1);
        term *= z2;
    }
    return 2.0 * sum +
           static_cast<double>(exponent) * 0.6931471805599453;
}

/**
 * SplitMix64-based deterministic RNG. Small, fast, and stable across
 * platforms (unlike std::mt19937 distributions, whose outputs are not
 * specified identically across standard libraries).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed draw with the given mean, via
     *  inverse-CDF over detLog so open-loop Poisson arrival processes
     *  replay bit-identically. Consumes exactly one raw value. */
    double
    exponential(double mean)
    {
        // uniform() is in [0, 1); 1-u is in (0, 1], so detLog's
        // argument is never zero.
        return -mean * detLog(1.0 - uniform());
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t state;
};

/**
 * Zipf-distributed sampler over [0, n): P(k) proportional to
 * 1 / (k+1)^exponent. Built on a precomputed inverse CDF so draws
 * cost one binary search and consume exactly one Rng value — workload
 * generators can interleave it with other draws without perturbing
 * replay. exponent = 0 degenerates to uniform; the Table 6 skewed
 * workloads use exponents around 0.8-1.2.
 */
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double exponent) : cdf_(n)
    {
        double sum = 0.0;
        for (size_t k = 0; k < n; ++k) {
            sum += 1.0 / pow_(static_cast<double>(k + 1), exponent);
            cdf_[k] = sum;
        }
        for (size_t k = 0; k < n; ++k)
            cdf_[k] /= sum;
    }

    /** Draw one rank; rank 0 is the hottest. */
    size_t
    draw(Rng &rng) const
    {
        double u = rng.uniform();
        size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            size_t mid = lo + (hi - lo) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    /** pow via exp/log would drag in libm idiosyncrasies; a simple
     *  repeated-squaring over the binary expansion of the exponent's
     *  fixed-point form keeps draws bit-stable across platforms. */
    static double
    pow_(double base, double exponent)
    {
        // exponent >= 0, resolution 2^-20 is far below any effect a
        // workload could observe.
        double result = 1.0;
        double factor = base;
        auto fixed = static_cast<uint64_t>(exponent * (1ull << 20));
        // Integer part first (bits >= 2^20), then the fraction via
        // successive square roots of the base.
        uint64_t ipart = fixed >> 20;
        while (ipart > 0) {
            if (ipart & 1)
                result *= factor;
            factor *= factor;
            ipart >>= 1;
        }
        double root = base;
        uint64_t fpart = fixed & ((1ull << 20) - 1);
        for (int bit = 19; bit >= 0; --bit) {
            root = sqrt_(root);
            if (fpart & (1ull << bit))
                result *= root;
        }
        return result;
    }

    /** Newton square root — deterministic everywhere, unlike sqrtl. */
    static double
    sqrt_(double x)
    {
        if (x <= 0.0)
            return 0.0;
        double guess = x > 1.0 ? x / 2.0 : x;
        for (int i = 0; i < 32; ++i)
            guess = 0.5 * (guess + x / guess);
        return guess;
    }

    std::vector<double> cdf_;
};

} // namespace freepart::util

#endif // FREEPART_UTIL_RNG_HH
