/**
 * @file
 * Tiny deterministic checksum (FNV-1a 64-bit) used for checkpoint
 * integrity verification and anywhere else a stable, dependency-free
 * digest of a byte buffer is needed.
 */

#ifndef FREEPART_UTIL_CHECKSUM_HH
#define FREEPART_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freepart::util {

/** FNV-1a 64-bit hash of a byte range. */
inline uint64_t
fnv1a64(const uint8_t *data, size_t len)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** FNV-1a 64-bit hash of a byte vector. */
inline uint64_t
fnv1a64(const std::vector<uint8_t> &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

} // namespace freepart::util

#endif // FREEPART_UTIL_CHECKSUM_HH
