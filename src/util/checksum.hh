/**
 * @file
 * Tiny deterministic checksum (FNV-1a 64-bit) used for checkpoint
 * integrity verification and anywhere else a stable, dependency-free
 * digest of a byte buffer is needed.
 */

#ifndef FREEPART_UTIL_CHECKSUM_HH
#define FREEPART_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freepart::util {

/** FNV-1a 64-bit offset basis (initial accumulator state). */
constexpr uint64_t kFnv1a64Init = 0xcbf29ce484222325ull;

/**
 * Fold a byte range into a running FNV-1a state. Streaming form for
 * callers that produce bytes in pieces (e.g. while encoding straight
 * into ring storage) — chaining calls is byte-for-byte equivalent to
 * one fnv1a64() over the concatenation.
 */
inline uint64_t
fnv1a64Accumulate(uint64_t state, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        state ^= data[i];
        state *= 0x100000001b3ull;
    }
    return state;
}

/** FNV-1a 64-bit hash of a byte range. */
inline uint64_t
fnv1a64(const uint8_t *data, size_t len)
{
    return fnv1a64Accumulate(kFnv1a64Init, data, len);
}

/** FNV-1a 64-bit hash of a byte vector. */
inline uint64_t
fnv1a64(const std::vector<uint8_t> &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

} // namespace freepart::util

#endif // FREEPART_UTIL_CHECKSUM_HH
