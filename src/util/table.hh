/**
 * @file
 * Plain-text table rendering used by the benchmark harnesses to print
 * paper-style tables (paper value vs. measured value side by side).
 */

#ifndef FREEPART_UTIL_TABLE_HH
#define FREEPART_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace freepart::util {

/**
 * A simple column-aligned text table. Columns are sized to the widest
 * cell; numeric cells are right-aligned, text cells left-aligned.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; missing cells render empty, extras are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

    /** Number of data rows added so far (rules excluded). */
    size_t rowCount() const { return nRows; }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows;  // empty vector == rule
    size_t nRows = 0;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a value as a percentage string, e.g. "3.68%". */
std::string fmtPercent(double fraction, int decimals = 2);

/** Format an integer with thousands separators, e.g. "12,411". */
std::string fmtCount(uint64_t v);

} // namespace freepart::util

#endif // FREEPART_UTIL_TABLE_HH
