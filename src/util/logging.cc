#include "util/logging.hh"

#include <cstdarg>
#include <vector>

namespace freepart::util {

namespace {

LogLevel g_level = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

std::string
vformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap_copy);
    va_end(ap_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
emit(LogLevel level, const char *prefix, const std::string &msg)
{
    if (level > g_level && level != LogLevel::Silent)
        return;
    std::fprintf(stderr, "[%s] %s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace freepart::util
