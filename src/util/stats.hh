/**
 * @file
 * Small statistics accumulators used by workload harnesses and the
 * evaluation drivers (mean / min / max / stddev over observations).
 */

#ifndef FREEPART_UTIL_STATS_HH
#define FREEPART_UTIL_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace freepart::util {

/** Streaming accumulator: mean, min, max, and sample stddev. */
class RunningStat
{
  public:
    /** Record one observation. */
    void
    add(double x)
    {
        ++n;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n);
        m2 += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    uint64_t count() const { return n; }
    double mean() const { return n ? mean_ : 0.0; }
    double sum() const { return sum_; }
    double min() const { return n ? min_ : 0.0; }
    double max() const { return n ? max_ : 0.0; }

    /** Sample standard deviation (0 for fewer than two samples). */
    double
    stddev() const
    {
        if (n < 2)
            return 0.0;
        return std::sqrt(m2 / static_cast<double>(n - 1));
    }

  private:
    uint64_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace freepart::util

#endif // FREEPART_UTIL_STATS_HH
