#include "osim/syscall_filter.hh"

#include "util/logging.hh"

namespace freepart::osim {

void
SyscallFilter::install(const std::set<Syscall> &allowed)
{
    if (isLocked)
        throw SyscallViolation(0, "install on locked filter");
    allowedSet.reset();
    for (Syscall c : allowed)
        allowedSet.set(static_cast<size_t>(c));
    isInstalled = true;
}

void
SyscallFilter::allow(Syscall call)
{
    if (isLocked)
        throw SyscallViolation(0, "allow on locked filter");
    if (!isInstalled)
        isInstalled = true;
    allowedSet.set(static_cast<size_t>(call));
}

void
SyscallFilter::deny(Syscall call)
{
    // Tightening an installed policy is always legal, even when
    // locked; this mirrors seccomp filter stacking semantics.
    if (!isInstalled) {
        // Denying from a permissive filter means: allow all others.
        allowedSet.set();
        isInstalled = true;
    }
    allowedSet.reset(static_cast<size_t>(call));
}

void
SyscallFilter::restrictFds(Syscall call, const std::set<Fd> &fds)
{
    if (!needsFdRestriction(call))
        util::panic("restrictFds: %s is not an fd-sensitive syscall",
                    syscallName(call));
    size_t idx = static_cast<size_t>(call);
    fdAllow[idx] = fds;
    fdRestricted.set(idx);
}

void
SyscallFilter::lock()
{
    isLocked = true;
}

bool
SyscallFilter::permits(Syscall call) const
{
    if (!isInstalled)
        return true;
    return allowedSet.test(static_cast<size_t>(call));
}

bool
SyscallFilter::permitsFd(Syscall call, Fd fd) const
{
    if (!permits(call))
        return false;
    size_t idx = static_cast<size_t>(call);
    if (!fdRestricted.test(idx))
        return true;
    return fdAllow[idx].count(fd) > 0;
}

size_t
SyscallFilter::allowedCount() const
{
    if (!isInstalled)
        return kNumSyscalls;
    return allowedSet.count();
}

std::vector<std::string>
SyscallFilter::allowedNames() const
{
    std::vector<std::string> out;
    for (size_t i = 0; i < kNumSyscalls; ++i) {
        if (!isInstalled || allowedSet.test(i))
            out.push_back(syscallName(static_cast<Syscall>(i)));
    }
    return out;
}

} // namespace freepart::osim
