/**
 * @file
 * Fundamental types and fault exceptions for the simulated operating
 * system substrate. FreePart's enforcement points on real Linux are
 * page permissions (mprotect) and syscall filters (seccomp-BPF); the
 * simulated kernel reproduces exactly those enforcement points so the
 * paper's attacks succeed or fail for the same structural reasons.
 */

#ifndef FREEPART_OSIM_TYPES_HH
#define FREEPART_OSIM_TYPES_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace freepart::osim {

/** Virtual address within a simulated process address space. */
using Addr = uint64_t;

/** Process identifier. */
using Pid = uint32_t;

/** File descriptor within a simulated process. */
using Fd = int32_t;

/** Simulated time in nanoseconds. */
using SimTime = uint64_t;

/** Size of a simulated page in bytes. */
constexpr size_t kPageSize = 4096;

/** An invalid / null address. */
constexpr Addr kNullAddr = 0;

/** Page permission bits (combine with bitwise or). */
enum Perms : uint8_t {
    PermNone = 0,
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
    PermRW = PermRead | PermWrite,
    PermRX = PermRead | PermExec,
    PermRWX = PermRead | PermWrite | PermExec,
};

/** Round an address down to its page base. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~static_cast<Addr>(kPageSize - 1);
}

/** Index of the page containing an address. */
constexpr uint64_t
pageIndex(Addr a)
{
    return a / kPageSize;
}

/**
 * Memory access fault: the access touched an unmapped page or violated
 * the page's permissions. This is how FreePart's temporal read-only
 * protection stops data-corruption payloads.
 */
class MemFault : public std::runtime_error
{
  public:
    MemFault(Pid pid, Addr addr, bool is_write, const std::string &why)
        : std::runtime_error("mem fault pid=" + std::to_string(pid) +
                             " addr=0x" + toHex(addr) +
                             (is_write ? " write" : " read") + ": " + why),
          pid(pid), addr(addr), isWrite(is_write)
    {
    }

    Pid pid;
    Addr addr;
    bool isWrite;

  private:
    static std::string
    toHex(Addr a)
    {
        static const char *digits = "0123456789abcdef";
        std::string s;
        if (!a)
            return "0";
        while (a) {
            s.insert(s.begin(), digits[a & 0xf]);
            a >>= 4;
        }
        return s;
    }
};

/**
 * Syscall filter violation: the process issued a syscall outside its
 * seccomp allowlist (or with a disallowed fd argument). The kernel
 * delivers SIGSYS, i.e. the process is killed.
 */
class SyscallViolation : public std::runtime_error
{
  public:
    SyscallViolation(Pid pid, const std::string &what)
        : std::runtime_error("syscall violation pid=" +
                             std::to_string(pid) + ": " + what),
          pid(pid)
    {
    }

    Pid pid;
};

/**
 * Transient operation failure (injected EIO/EAGAIN-class fault): the
 * operation did not complete but the process survives. The runtime
 * treats it as retryable without an agent restart.
 */
class TransientFault : public std::runtime_error
{
  public:
    TransientFault(Pid pid, const std::string &what)
        : std::runtime_error("transient fault pid=" +
                             std::to_string(pid) + ": " + what),
          pid(pid)
    {
    }

    Pid pid;
};

/**
 * Explicit process crash (e.g. a DoS payload aborting the process, or
 * an unhandled fault escalated by the kernel).
 */
class ProcessCrash : public std::runtime_error
{
  public:
    ProcessCrash(Pid pid, const std::string &why)
        : std::runtime_error("process crash pid=" + std::to_string(pid) +
                             ": " + why),
          pid(pid)
    {
    }

    Pid pid;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_TYPES_HH
