#include "osim/vfs.hh"

#include "util/logging.hh"

namespace freepart::osim {

bool
Vfs::exists(const std::string &path) const
{
    return files.count(path) > 0;
}

void
Vfs::putFile(const std::string &path, std::vector<uint8_t> data)
{
    files[path] = std::move(data);
}

const std::vector<uint8_t> &
Vfs::getFile(const std::string &path) const
{
    auto it = files.find(path);
    if (it == files.end())
        util::fatal("vfs: no such file '%s'", path.c_str());
    return it->second;
}

std::vector<uint8_t> &
Vfs::openForWrite(const std::string &path)
{
    return files[path];
}

bool
Vfs::remove(const std::string &path)
{
    return files.erase(path) > 0;
}

void
Vfs::addDir(const std::string &path)
{
    dirs[path] = true;
}

size_t
Vfs::sizeOf(const std::string &path) const
{
    auto it = files.find(path);
    return it == files.end() ? 0 : it->second.size();
}

std::vector<std::string>
Vfs::listFiles() const
{
    std::vector<std::string> out;
    out.reserve(files.size());
    for (const auto &[path, data] : files)
        out.push_back(path);
    return out;
}

} // namespace freepart::osim
