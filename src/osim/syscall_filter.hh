/**
 * @file
 * Seccomp-BPF-style syscall filter (§4.4.1). A filter carries an
 * allowlist of syscalls, optional fd-argument restrictions for the
 * fd-sensitive syscalls (ioctl, connect, select, fcntl), and a
 * NO_NEW_PRIVS lock: once locked, the filter can never be relaxed,
 * which is how FreePart stops payloads from re-configuring seccomp.
 */

#ifndef FREEPART_OSIM_SYSCALL_FILTER_HH
#define FREEPART_OSIM_SYSCALL_FILTER_HH

#include <bitset>
#include <set>
#include <string>
#include <vector>

#include "osim/syscalls.hh"
#include "osim/types.hh"

namespace freepart::osim {

/**
 * Per-process syscall allowlist with fd-argument checks.
 *
 * The default-constructed filter is permissive (no filter installed),
 * matching a process before FreePart installs its policy.
 */
class SyscallFilter
{
  public:
    /** Permissive filter: everything allowed, not installed. */
    SyscallFilter() = default;

    /** Install an allowlist; everything else will be denied. */
    void install(const std::set<Syscall> &allowed);

    /** True once install() has been called. */
    bool installed() const { return isInstalled; }

    /** Add one syscall to the allowlist (rejected when locked). */
    void allow(Syscall call);

    /** Remove one syscall from the allowlist (allowed when locked:
     *  tightening is always legal, mirroring seccomp stacking). */
    void deny(Syscall call);

    /**
     * Restrict an fd-sensitive syscall to a set of designated fds
     * (§4.4.1: "FreePart checks their file descriptors to ensure they
     * operate only on the designated files").
     */
    void restrictFds(Syscall call, const std::set<Fd> &fds);

    /**
     * Lock the filter (PR_SET_NO_NEW_PRIVS): after this, allow() and
     * install() throw SyscallViolation — a compromised process cannot
     * relax its own policy.
     */
    void lock();

    /** True once lock() has been called. */
    bool locked() const { return isLocked; }

    /** Check a plain syscall; true = allowed. */
    bool permits(Syscall call) const;

    /** Check an fd-sensitive syscall with its fd argument. */
    bool permitsFd(Syscall call, Fd fd) const;

    /** Number of allowed syscalls (all when not installed). */
    size_t allowedCount() const;

    /** Sorted names of the allowed syscalls (for Table 7). */
    std::vector<std::string> allowedNames() const;

  private:
    bool isInstalled = false;
    bool isLocked = false;
    std::bitset<kNumSyscalls> allowedSet;
    /** For fd-restricted syscalls: allowed fds; empty set = no
     *  restriction registered for that syscall. */
    std::set<Fd> fdAllow[kNumSyscalls];
    std::bitset<kNumSyscalls> fdRestricted;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_SYSCALL_FILTER_HH
