/**
 * @file
 * The simulated kernel: process lifecycle, the filtered syscall
 * surface, shared memory, devices, the VFS, the simulated clock, and
 * a global event log.
 *
 * Two trust domains exist, mirroring the paper's threat model (§2):
 * framework/application code runs *inside* simulated processes and may
 * only touch the world through the filtered sys* calls; the FreePart
 * runtime is "protected via the OS kernel" and uses the trusted*
 * entry points, which bypass per-process seccomp filters (but still
 * respect page permissions and charge simulated time).
 */

#ifndef FREEPART_OSIM_KERNEL_HH
#define FREEPART_OSIM_KERNEL_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osim/cost_model.hh"
#include "osim/devices.hh"
#include "osim/fault_injection.hh"
#include "osim/process.hh"
#include "osim/types.hh"
#include "osim/vfs.hh"

namespace freepart::osim {

/** Ioctl request code: capture one camera frame. */
constexpr uint64_t kIoctlCaptureFrame = 0xc0de0001;

/** A named shared-memory segment mappable into several processes. */
struct ShmSegment {
    uint32_t id;
    std::string name;
    Backing backing;
};

/** Kinds of events recorded in the kernel event log. */
enum class EventKind {
    ProcSpawn,
    ProcExit,
    ProcCrash,
    ProcRestart,
    SyscallDenied,
    MemFaultEvt,
    GuiShow,
    NetSendEvt,
    StateChange,   //!< FreePart framework-state transitions
    Protection,    //!< permission flips applied by the runtime
    AttackBlocked, //!< recorded by the attack driver
    Custom,
};

/** One entry in the kernel event log. */
struct Event {
    SimTime time;
    Pid pid;
    EventKind kind;
    std::string detail;
};

/**
 * The simulated kernel. Single-threaded and deterministic: syscalls
 * execute synchronously and advance the simulated clock according to
 * the CostModel.
 */
class Kernel
{
  public:
    explicit Kernel(CostModel costs = CostModel());

    // ---- Process lifecycle -------------------------------------------

    /** Create a new process; charges spawn cost. */
    Process &spawn(const std::string &name);

    /** Look up a process by pid; panics on unknown pid. */
    Process &process(Pid pid);
    const Process &process(Pid pid) const;

    /** True if the pid exists (crashed processes still exist). */
    bool hasProcess(Pid pid) const;

    /** Number of processes ever spawned (including crashed). */
    size_t processCount() const { return procs.size(); }

    /** Pids of all live processes. */
    std::vector<Pid> livePids() const;

    /**
     * Restart a crashed/exited process in place: fresh address space,
     * fresh (unlocked) filter, same pid, incarnation+1. Used by
     * FreePart's agent-restart support (§4.4.2).
     */
    Process &respawn(Pid pid);

    /**
     * Restart a crashed process by promoting a pre-spawned warm
     * standby into its slot: same reset semantics as respawn(), but
     * only processPromote is charged to the clock — the fork and
     * runtime init were paid in the background while the old
     * incarnation served. The caller is responsible for having a
     * ready standby (see AgentSupervisor::consumeStandby).
     */
    Process &promote(Pid pid);

    /** Mark a process crashed (fault escalation) and log the event. */
    void faultProcess(Process &proc, const std::string &why);

    // ---- Clock and costs ---------------------------------------------

    SimTime now() const { return taskActive_ ? taskClock_ : clock; }

    void
    advance(SimTime ns)
    {
        if (taskActive_)
            taskClock_ += ns;
        else
            clock += ns;
    }

    CostModel &costs() { return costModel; }
    const CostModel &costs() const { return costModel; }

    // ---- Per-process virtual timelines (pipeline accounting) ---------
    //
    // Each Process carries a `readyAt` timeline layered on the kernel
    // clock. While a task bracket is open for pid P, every advance()
    // is charged to P's virtual clock instead of the global one; the
    // global clock only catches up at synchronization points (wait,
    // drain, fetch) by taking the max over the timelines involved.
    // Everything stays single-threaded and deterministic — only the
    // *accounting* of time overlaps.

    /**
     * Open a task bracket for `pid` starting at `start_at` (the caller
     * computes the max of the issuing clock, the pid's timeline, and
     * any data dependencies). Brackets do not nest.
     */
    void beginTask(Pid pid, SimTime start_at);

    /**
     * Close the current bracket: records the bracket clock as the
     * pid's `readyAt` and returns it. The global clock is NOT
     * advanced — that is what lets tasks overlap.
     */
    SimTime endTask();

    bool taskActive() const { return taskActive_; }

    /** Virtual timeline of a pid (0 until it first runs a task). */
    SimTime timelineOf(Pid pid) const;

    /** Max over the global clock and every process timeline. */
    SimTime maxTimeline() const;

    /**
     * Quiesce horizon of a pid subset: max over the global clock and
     * the listed processes' timelines. This is when a protection flip
     * touching only those address spaces can safely land — unrelated
     * timelines keep running past it (the speculative-flip commit
     * point, as opposed to the full syncToTimelines barrier).
     */
    SimTime maxTimelineOf(const std::vector<Pid> &pids) const;

    /** Advance the global clock to maxTimeline() (full barrier). */
    void syncToTimelines();

    // ---- Fault injection ----------------------------------------------

    /**
     * Attach (or detach, with nullptr) a fault injector. The kernel
     * does not own it; the caller keeps it alive for the kernel's
     * lifetime. With no injector attached every fault point is free.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    FaultInjector *faultInjector() { return injector_; }

    /**
     * Consult the attached injector at a fault point; FaultAction::None
     * when no injector is attached or nothing fires.
     */
    FaultAction
    queryFault(FaultPoint point, Pid pid)
    {
        return injector_ ? injector_->query(point, pid)
                         : FaultAction::None;
    }

    // ---- Trusted runtime operations ----------------------------------

    /** Flip page permissions in a process (runtime mprotect path). */
    void trustedProtect(Pid pid, Addr addr, size_t len, Perms perms);

    /**
     * Copy bytes between two processes' address spaces. Respects page
     * permissions on both sides and charges per-byte copy cost. This
     * is the data path for RPC argument marshalling and LDC direct
     * agent-to-agent copies.
     */
    void trustedCopy(Pid src_pid, Addr src, Pid dst_pid, Addr dst,
                     size_t len);

    /** Allocate memory in a process without a syscall (loader path). */
    Addr trustedAlloc(Pid pid, size_t size, Perms perms,
                      const std::string &label);

    // ---- Filtered syscall surface ------------------------------------

    /** openat(2): open a VFS file or device node. */
    Fd sysOpen(Process &proc, const std::string &path, bool writable);

    /** read(2): file/device/socket read into process memory. */
    size_t sysRead(Process &proc, Fd fd, Addr dst, size_t len);

    /** write(2): write from process memory to a file. */
    size_t sysWrite(Process &proc, Fd fd, Addr src, size_t len);

    /** close(2). */
    void sysClose(Process &proc, Fd fd);

    /** lseek(2): set the file cursor; returns new offset. */
    size_t sysLseek(Process &proc, Fd fd, size_t offset);

    /** fstat(2): returns the file size. */
    size_t sysFstat(Process &proc, Fd fd);

    /** unlink(2). */
    void sysUnlink(Process &proc, const std::string &path);

    /** mkdir(2). */
    void sysMkdir(Process &proc, const std::string &path);

    /** mmap(2): anonymous mapping in the process. */
    Addr sysMmap(Process &proc, size_t size, Perms perms,
                 const std::string &label);

    /** munmap(2). */
    void sysMunmap(Process &proc, Addr base);

    /**
     * mprotect(2) issued by *process* code — the code-manipulation
     * attack path (Fig. 2 discussion). Subject to the filter.
     */
    void sysMprotect(Process &proc, Addr addr, size_t len, Perms perms);

    /** brk(2): grows the heap (modeled as a no-op allocation). */
    void sysBrk(Process &proc);

    /** socket(2): create an unconnected socket. */
    Fd sysSocket(Process &proc);

    /** connect(2): connect a socket to a destination (fd-checked). */
    void sysConnect(Process &proc, Fd fd, const std::string &dest);

    /** send(2): transmit process memory to the socket's peer. */
    void sysSend(Process &proc, Fd fd, Addr src, size_t len);

    /** recvfrom(2): modeled as returning no data. */
    size_t sysRecvfrom(Process &proc, Fd fd, Addr dst, size_t len);

    /** ioctl(2) (fd-checked). kIoctlCaptureFrame arms the camera. */
    void sysIoctl(Process &proc, Fd fd, uint64_t request);

    /** select(2) (fd-checked). */
    void sysSelect(Process &proc, Fd fd);

    /** futex(2): cost-accounting only (simulation is synchronous). */
    void sysFutex(Process &proc);

    /** getrandom(2): deterministic pseudo-random value. */
    uint64_t sysGetrandom(Process &proc);

    /** shm_open(2): map a named segment; returns its base address. */
    Addr sysShmOpen(Process &proc, const std::string &name, Perms perms);

    /** prctl(PR_SET_NO_NEW_PRIVS): locks the process filter. */
    void sysPrctlNoNewPrivs(Process &proc);

    /** fork(2): spawns a child (the fork-bomb payload path, A.7). */
    Pid sysFork(Process &proc);

    /** exit(2). */
    void sysExit(Process &proc);

    /**
     * Miscellaneous no-effect syscalls (getpid, gettimeofday, ...):
     * enforced and charged, no state change.
     */
    void sysMisc(Process &proc, Syscall call);

    /**
     * GUI write: sends pixels over a connected GUI socket (select +
     * sendto under the hood) and records a ShowEvent.
     */
    void guiShow(Process &proc, Fd gui_fd, const std::string &window,
                 uint32_t w, uint32_t h, Addr pixels, size_t len);

    // ---- Shared memory -----------------------------------------------

    /** Create a named shared segment of the given size. */
    uint32_t shmCreate(const std::string &name, size_t size);

    /** Map a segment into a process from trusted runtime context. */
    Addr trustedShmMap(Pid pid, uint32_t seg_id, Perms perms);

    /** Backing bytes of a segment. */
    Backing shmBacking(uint32_t seg_id) const;

    // ---- Devices and VFS ---------------------------------------------

    Vfs &vfs() { return vfs_; }
    const Vfs &vfs() const { return vfs_; }
    CameraDevice &camera() { return camera_; }
    DisplayDevice &display() { return display_; }
    NetworkDevice &network() { return network_; }

    // ---- Event log -----------------------------------------------------

    /** Append an event to the log. */
    void logEvent(Pid pid, EventKind kind, const std::string &detail);

    const std::vector<Event> &events() const { return eventLog; }
    size_t countEvents(EventKind kind) const;
    void clearEvents() { eventLog.clear(); }

  private:
    /**
     * Count, filter-check, and charge one syscall. Denial logs an
     * event, kills the process (SIGSYS), and throws SyscallViolation.
     */
    void enforce(Process &proc, Syscall call, Fd fd = -1);

    /** Look up an fd or throw a fault against the process. */
    OpenFile &requireFd(Process &proc, Fd fd);

    CostModel costModel;
    FaultInjector *injector_ = nullptr;
    SimTime clock = 0;
    bool taskActive_ = false;
    Pid taskPid_ = 0;
    SimTime taskClock_ = 0;
    Pid nextPid = 100;
    std::map<Pid, std::unique_ptr<Process>> procs;
    std::vector<ShmSegment> shmSegs;
    Vfs vfs_;
    CameraDevice camera_;
    DisplayDevice display_;
    NetworkDevice network_;
    std::vector<Event> eventLog;
    uint64_t randomState = 0x5eed5eed5eedull;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_KERNEL_HH
