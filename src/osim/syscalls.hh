/**
 * @file
 * The simulated syscall table. The set mirrors the syscalls the paper
 * names in Fig. 12 and Table 7 (openat, close, brk, fstat, read,
 * lseek, ioctl, mmap, select, mprotect, connect, send, ...) plus the
 * surrounding machinery FreePart itself needs (shm_open, futex,
 * prctl for PR_SET_NO_NEW_PRIVS).
 */

#ifndef FREEPART_OSIM_SYSCALLS_HH
#define FREEPART_OSIM_SYSCALLS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace freepart::osim {

/** Identifiers for every syscall the simulated kernel implements. */
enum class Syscall : uint8_t {
    Access,
    Accept,
    Bind,
    Brk,
    ClockGettime,
    Close,
    Connect,
    Dup,
    Eventfd2,
    Execve,
    Exit,
    Fcntl,
    Fork,
    Fstat,
    Futex,
    Getcwd,
    Getpid,
    Getrandom,
    Gettimeofday,
    Getuid,
    Ioctl,
    Listen,
    Lseek,
    Lstat,
    Mkdir,
    Mmap,
    Mprotect,
    Munmap,
    Open,
    Openat,
    Poll,
    Prctl,
    Read,
    Recvfrom,
    SchedYield,
    Select,
    Send,
    Sendto,
    ShmOpen,
    Socket,
    Stat,
    Umask,
    Uname,
    Unlink,
    Write,
    Writev,
    NumSyscalls,
};

/** Number of syscalls in the table. */
constexpr size_t kNumSyscalls =
    static_cast<size_t>(Syscall::NumSyscalls);

/** Human-readable name, matching the Linux spelling ("openat", ...). */
const char *syscallName(Syscall call);

/** Parse a Linux-style name; throws util::FatalError on unknown. */
Syscall syscallFromName(const std::string &name);

/** All syscalls, for iteration. */
std::vector<Syscall> allSyscalls();

/**
 * Syscalls whose arguments reference file descriptors and therefore
 * need the fd-argument restriction the paper describes in §4.4.1
 * (ioctl, connect, select, fcntl).
 */
bool needsFdRestriction(Syscall call);

/**
 * Security-critical syscalls that framework APIs need only during
 * their first execution (§4.4.1 "System Calls Required During the
 * Initialization"): mprotect and connect.
 */
bool isInitOnlySyscall(Syscall call);

} // namespace freepart::osim

#endif // FREEPART_OSIM_SYSCALLS_HH
