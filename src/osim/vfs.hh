/**
 * @file
 * In-memory virtual file system for the simulated kernel. Backs the
 * data-loading and storing syscalls (openat/read/write/...) that the
 * paper's loading/storing API types are defined by.
 */

#ifndef FREEPART_OSIM_VFS_HH
#define FREEPART_OSIM_VFS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace freepart::osim {

/** A simple path-keyed in-memory file store. */
class Vfs
{
  public:
    /** True if a file exists at path. */
    bool exists(const std::string &path) const;

    /** Create or replace a file with the given contents. */
    void putFile(const std::string &path, std::vector<uint8_t> data);

    /** Full contents of a file; throws util::FatalError if missing. */
    const std::vector<uint8_t> &getFile(const std::string &path) const;

    /** Mutable contents (created empty if missing). */
    std::vector<uint8_t> &openForWrite(const std::string &path);

    /** Remove a file; returns false if it did not exist. */
    bool remove(const std::string &path);

    /** Record a directory (mkdir); directories are advisory only. */
    void addDir(const std::string &path);

    /** File size in bytes; 0 if missing. */
    size_t sizeOf(const std::string &path) const;

    /** All file paths, sorted. */
    std::vector<std::string> listFiles() const;

    /** Number of files. */
    size_t fileCount() const { return files.size(); }

  private:
    std::map<std::string, std::vector<uint8_t>> files;
    std::map<std::string, bool> dirs;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_VFS_HH
