#include "osim/syscalls.hh"

#include "util/logging.hh"

namespace freepart::osim {

namespace {

const char *const kNames[kNumSyscalls] = {
    "access",     "accept",       "bind",    "brk",
    "clock_gettime", "close",     "connect", "dup",
    "eventfd2",   "execve",       "exit",    "fcntl",
    "fork",       "fstat",        "futex",   "getcwd",
    "getpid",     "getrandom",    "gettimeofday", "getuid",
    "ioctl",      "listen",       "lseek",   "lstat",
    "mkdir",      "mmap",         "mprotect", "munmap",
    "open",       "openat",       "poll",    "prctl",
    "read",       "recvfrom",     "sched_yield", "select",
    "send",       "sendto",       "shm_open", "socket",
    "stat",       "umask",        "uname",   "unlink",
    "write",      "writev",
};

} // namespace

const char *
syscallName(Syscall call)
{
    auto idx = static_cast<size_t>(call);
    if (idx >= kNumSyscalls)
        util::panic("syscallName: bad syscall id %zu", idx);
    return kNames[idx];
}

Syscall
syscallFromName(const std::string &name)
{
    for (size_t i = 0; i < kNumSyscalls; ++i)
        if (name == kNames[i])
            return static_cast<Syscall>(i);
    util::fatal("unknown syscall name '%s'", name.c_str());
}

std::vector<Syscall>
allSyscalls()
{
    std::vector<Syscall> out;
    out.reserve(kNumSyscalls);
    for (size_t i = 0; i < kNumSyscalls; ++i)
        out.push_back(static_cast<Syscall>(i));
    return out;
}

bool
needsFdRestriction(Syscall call)
{
    switch (call) {
      case Syscall::Ioctl:
      case Syscall::Connect:
      case Syscall::Select:
      case Syscall::Fcntl:
        return true;
      default:
        return false;
    }
}

bool
isInitOnlySyscall(Syscall call)
{
    return call == Syscall::Mprotect || call == Syscall::Connect;
}

} // namespace freepart::osim
