/**
 * @file
 * Simulated devices: a camera (data-loading source, R(DEV)), a display
 * / GUI subsystem (visualizing sink, W(GUI)), and a network endpoint
 * (the exfiltration channel the §5.3 data-exfiltration attacks use).
 */

#ifndef FREEPART_OSIM_DEVICES_HH
#define FREEPART_OSIM_DEVICES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "osim/types.hh"

namespace freepart::osim {

/**
 * Deterministic synthetic camera. Frames are generated from the frame
 * counter so "video" workloads are reproducible.
 */
class CameraDevice
{
  public:
    CameraDevice(uint32_t width = 320, uint32_t height = 240,
                 uint32_t channels = 3)
        : width_(width), height_(height), channels_(channels)
    {
    }

    /** Generate the next frame's pixel bytes (row-major, interleaved). */
    std::vector<uint8_t> captureFrame();

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }
    uint32_t channels() const { return channels_; }
    uint64_t framesCaptured() const { return frameCounter; }

    /** Frame size in bytes. */
    size_t frameBytes() const { return size_t(width_) * height_ * channels_; }

  private:
    uint32_t width_;
    uint32_t height_;
    uint32_t channels_;
    uint64_t frameCounter = 0;
};

/** One imshow()-style display event, recorded by the GUI subsystem. */
struct ShowEvent {
    Pid pid;                 //!< process that displayed
    std::string window;      //!< window name
    uint32_t width;
    uint32_t height;
    uint64_t checksum;       //!< FNV-1a over the displayed pixels
};

/** Simulated display / GUI subsystem. */
class DisplayDevice
{
  public:
    /** Record a displayed image. */
    void show(Pid pid, const std::string &window, uint32_t w,
              uint32_t h, const uint8_t *pixels, size_t len);

    const std::vector<ShowEvent> &events() const { return shows; }
    void clear() { shows.clear(); }

    /** Recently-used window names (GUI state, cf. MComix3 case). */
    const std::vector<std::string> &windowNames() const { return names; }

    /** Queue a key press for pollKey()-style APIs to consume. */
    void pushKey(int key) { keys.push_back(key); }

    /** Pop the next queued key press; -1 when none pending. */
    int
    popKey()
    {
        if (keys.empty())
            return -1;
        int k = keys.front();
        keys.erase(keys.begin());
        return k;
    }

  private:
    std::vector<ShowEvent> shows;
    std::vector<std::string> names;
    std::vector<int> keys;
};

/** One send() to a remote destination, recorded by the network. */
struct NetSendEvent {
    Pid pid;                     //!< sending process
    std::string dest;            //!< connected destination
    size_t length;               //!< payload length
    uint64_t checksum;           //!< FNV-1a over the payload
    std::vector<uint8_t> head;   //!< first bytes (attack forensics)
};

/** Simulated network endpoint. Records all outbound traffic. */
class NetworkDevice
{
  public:
    /** Record an outbound payload. */
    void send(Pid pid, const std::string &dest, const uint8_t *data,
              size_t len);

    const std::vector<NetSendEvent> &sends() const { return sent; }
    void clear() { sent.clear(); }

    /** Total bytes that left the machine. */
    size_t bytesSent() const;

  private:
    std::vector<NetSendEvent> sent;
};

/** FNV-1a 64-bit hash, used for device-side content checksums. */
uint64_t fnv1a(const uint8_t *data, size_t len);

} // namespace freepart::osim

#endif // FREEPART_OSIM_DEVICES_HH
