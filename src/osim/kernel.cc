#include "osim/kernel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace freepart::osim {

Kernel::Kernel(CostModel costs) : costModel(costs)
{
}

Process &
Kernel::spawn(const std::string &name)
{
    Pid pid = nextPid++;
    auto proc = std::make_unique<Process>(pid, name);
    Process &ref = *proc;
    procs.emplace(pid, std::move(proc));
    advance(costModel.processSpawn);
    logEvent(pid, EventKind::ProcSpawn, name);
    return ref;
}

Process &
Kernel::process(Pid pid)
{
    auto it = procs.find(pid);
    if (it == procs.end())
        util::panic("kernel: unknown pid %u", pid);
    return *it->second;
}

const Process &
Kernel::process(Pid pid) const
{
    auto it = procs.find(pid);
    if (it == procs.end())
        util::panic("kernel: unknown pid %u", pid);
    return *it->second;
}

bool
Kernel::hasProcess(Pid pid) const
{
    return procs.count(pid) > 0;
}

std::vector<Pid>
Kernel::livePids() const
{
    std::vector<Pid> out;
    for (const auto &[pid, proc] : procs)
        if (proc->alive())
            out.push_back(pid);
    return out;
}

Process &
Kernel::respawn(Pid pid)
{
    Process &proc = process(pid);
    proc.resetForRespawn();
    advance(costModel.processRestart);
    logEvent(pid, EventKind::ProcRestart,
             proc.name() + " incarnation=" +
                 std::to_string(proc.incarnation()));
    // An injected respawn fault kills the fresh incarnation before it
    // can serve anything — the crash-loop generator. The caller is
    // responsible for checking alive() on the returned process.
    if (queryFault(FaultPoint::Respawn, pid) == FaultAction::Crash)
        faultProcess(proc, "injected: crash during respawn");
    return proc;
}

Process &
Kernel::promote(Pid pid)
{
    Process &proc = process(pid);
    proc.resetForRespawn();
    advance(costModel.processPromote);
    logEvent(pid, EventKind::ProcRestart,
             proc.name() + " incarnation=" +
                 std::to_string(proc.incarnation()) + " (promoted)");
    // The promoted standby is subject to the same stillborn fault as
    // a cold respawn: the injection point models "the replacement
    // process dies before serving", however it was brought up.
    if (queryFault(FaultPoint::Respawn, pid) == FaultAction::Crash)
        faultProcess(proc, "injected: crash during respawn");
    return proc;
}

void
Kernel::faultProcess(Process &proc, const std::string &why)
{
    proc.markCrashed(why);
    logEvent(proc.pid(), EventKind::ProcCrash, why);
}

void
Kernel::trustedProtect(Pid pid, Addr addr, size_t len, Perms perms)
{
    Process &proc = process(pid);
    proc.space().protect(addr, len, perms);
    size_t pages = (len + kPageSize - 1) / kPageSize;
    advance(costModel.syscallBase +
            costModel.protectPerPage * pages);
    logEvent(pid, EventKind::Protection,
             "protect len=" + std::to_string(len) + " perms=" +
                 std::to_string(static_cast<int>(perms)));
}

void
Kernel::trustedCopy(Pid src_pid, Addr src, Pid dst_pid, Addr dst,
                    size_t len)
{
    if (len == 0)
        return;
    Process &sp = process(src_pid);
    Process &dp = process(dst_pid);
    const uint8_t *s = sp.space().checkedSpan(src, len);
    uint8_t *d = dp.space().checkedSpan(dst, len, true);
    std::memcpy(d, s, len);
    advance(costModel.copyCost(len));
}

Addr
Kernel::trustedAlloc(Pid pid, size_t size, Perms perms,
                     const std::string &label)
{
    return process(pid).space().alloc(size, perms, label);
}

void
Kernel::enforce(Process &proc, Syscall call, Fd fd)
{
    if (!proc.alive())
        throw ProcessCrash(proc.pid(),
                           "syscall from dead process: " +
                               std::string(syscallName(call)));
    ++proc.syscallCounts[static_cast<size_t>(call)];
    bool ok = fd >= 0 && needsFdRestriction(call)
                  ? proc.filter().permitsFd(call, fd)
                  : proc.filter().permits(call);
    if (!ok) {
        ++proc.deniedSyscalls;
        advance(costModel.sigsysDeliver);
        std::string what = std::string(syscallName(call)) +
                           (fd >= 0 ? " fd=" + std::to_string(fd) : "");
        logEvent(proc.pid(), EventKind::SyscallDenied, what);
        proc.markCrashed("SIGSYS: " + what);
        logEvent(proc.pid(), EventKind::ProcCrash, "SIGSYS: " + what);
        throw SyscallViolation(proc.pid(), what);
    }
    advance(costModel.syscallCost(call));
    switch (queryFault(FaultPoint::SyscallEntry, proc.pid())) {
      case FaultAction::Crash:
        faultProcess(proc, std::string("injected: crash at ") +
                               syscallName(call));
        throw ProcessCrash(proc.pid(),
                           std::string("injected crash at ") +
                               syscallName(call));
      case FaultAction::Transient:
        throw TransientFault(proc.pid(),
                             std::string("injected EIO at ") +
                                 syscallName(call));
      default:
        break;
    }
}

OpenFile &
Kernel::requireFd(Process &proc, Fd fd)
{
    OpenFile *file = proc.findFd(fd);
    if (!file)
        throw ProcessCrash(proc.pid(), "EBADF fd=" + std::to_string(fd));
    return *file;
}

Fd
Kernel::sysOpen(Process &proc, const std::string &path, bool writable)
{
    enforce(proc, Syscall::Openat);
    OpenFile file;
    if (path.rfind("/dev/camera", 0) == 0) {
        file.kind = FdKind::Camera;
    } else {
        file.kind = FdKind::File;
        if (!writable && !vfs_.exists(path))
            throw ProcessCrash(proc.pid(), "ENOENT: " + path);
    }
    file.path = path;
    file.writable = writable;
    return proc.addFd(std::move(file));
}

size_t
Kernel::sysRead(Process &proc, Fd fd, Addr dst, size_t len)
{
    enforce(proc, Syscall::Read);
    OpenFile &file = requireFd(proc, fd);
    FaultAction fault = FaultAction::None;
    if (file.kind == FdKind::Camera || file.kind == FdKind::File)
        fault = queryFault(FaultPoint::DeviceRead, proc.pid());
    if (fault == FaultAction::Transient)
        throw TransientFault(proc.pid(), "injected EIO: " + file.path);
    if (file.kind == FdKind::Camera) {
        std::vector<uint8_t> frame = camera_.captureFrame();
        if (fault == FaultAction::Corrupt && injector_)
            injector_->corrupt(frame);
        size_t n = std::min(len, frame.size());
        proc.space().write(dst, frame.data(), n);
        advance(costModel.copyCost(n));
        return n;
    }
    if (file.kind == FdKind::File) {
        const auto &data = vfs_.getFile(file.path);
        if (file.offset >= data.size())
            return 0;
        size_t n = std::min(len, data.size() - file.offset);
        std::vector<uint8_t> buf(data.begin() +
                                     static_cast<ptrdiff_t>(file.offset),
                                 data.begin() +
                                     static_cast<ptrdiff_t>(file.offset +
                                                            n));
        if (fault == FaultAction::Corrupt && injector_)
            injector_->corrupt(buf);
        proc.space().write(dst, buf.data(), n);
        file.offset += n;
        advance(costModel.copyCost(n));
        return n;
    }
    return 0;
}

size_t
Kernel::sysWrite(Process &proc, Fd fd, Addr src, size_t len)
{
    enforce(proc, Syscall::Write);
    OpenFile &file = requireFd(proc, fd);
    if (file.kind != FdKind::File || !file.writable)
        throw ProcessCrash(proc.pid(), "EBADF write fd");
    std::vector<uint8_t> buf(len);
    proc.space().read(src, buf.data(), len);
    auto &data = vfs_.openForWrite(file.path);
    if (data.size() < file.offset + len)
        data.resize(file.offset + len);
    std::copy(buf.begin(), buf.end(), data.begin() +
              static_cast<ptrdiff_t>(file.offset));
    file.offset += len;
    advance(costModel.copyCost(len));
    return len;
}

void
Kernel::sysClose(Process &proc, Fd fd)
{
    enforce(proc, Syscall::Close);
    if (!proc.closeFd(fd))
        throw ProcessCrash(proc.pid(), "EBADF close");
}

size_t
Kernel::sysLseek(Process &proc, Fd fd, size_t offset)
{
    enforce(proc, Syscall::Lseek);
    OpenFile &file = requireFd(proc, fd);
    file.offset = offset;
    return offset;
}

size_t
Kernel::sysFstat(Process &proc, Fd fd)
{
    enforce(proc, Syscall::Fstat);
    OpenFile &file = requireFd(proc, fd);
    if (file.kind == FdKind::Camera)
        return camera_.frameBytes();
    return vfs_.sizeOf(file.path);
}

void
Kernel::sysUnlink(Process &proc, const std::string &path)
{
    enforce(proc, Syscall::Unlink);
    vfs_.remove(path);
}

void
Kernel::sysMkdir(Process &proc, const std::string &path)
{
    enforce(proc, Syscall::Mkdir);
    vfs_.addDir(path);
}

Addr
Kernel::sysMmap(Process &proc, size_t size, Perms perms,
                const std::string &label)
{
    enforce(proc, Syscall::Mmap);
    return proc.space().alloc(size, perms, label);
}

void
Kernel::sysMunmap(Process &proc, Addr base)
{
    enforce(proc, Syscall::Munmap);
    proc.space().unmap(base);
}

void
Kernel::sysMprotect(Process &proc, Addr addr, size_t len, Perms perms)
{
    enforce(proc, Syscall::Mprotect);
    proc.space().protect(addr, len, perms);
}

void
Kernel::sysBrk(Process &proc)
{
    enforce(proc, Syscall::Brk);
}

Fd
Kernel::sysSocket(Process &proc)
{
    enforce(proc, Syscall::Socket);
    OpenFile file;
    file.kind = FdKind::Socket;
    return proc.addFd(std::move(file));
}

void
Kernel::sysConnect(Process &proc, Fd fd, const std::string &dest)
{
    enforce(proc, Syscall::Connect, fd);
    OpenFile &file = requireFd(proc, fd);
    if (file.kind != FdKind::Socket && file.kind != FdKind::GuiSocket)
        throw ProcessCrash(proc.pid(), "ENOTSOCK connect");
    file.path = dest;
    file.connected = true;
    if (dest == "gui")
        file.kind = FdKind::GuiSocket;
}

void
Kernel::sysSend(Process &proc, Fd fd, Addr src, size_t len)
{
    enforce(proc, Syscall::Send);
    OpenFile &file = requireFd(proc, fd);
    if (!file.connected)
        throw ProcessCrash(proc.pid(), "ENOTCONN send");
    std::vector<uint8_t> buf(len);
    proc.space().read(src, buf.data(), len);
    advance(costModel.copyCost(len));
    network_.send(proc.pid(), file.path, buf.data(), len);
    logEvent(proc.pid(), EventKind::NetSendEvt,
             "dest=" + file.path + " len=" + std::to_string(len));
}

size_t
Kernel::sysRecvfrom(Process &proc, Fd fd, Addr, size_t)
{
    enforce(proc, Syscall::Recvfrom);
    requireFd(proc, fd);
    return 0;
}

void
Kernel::sysIoctl(Process &proc, Fd fd, uint64_t request)
{
    enforce(proc, Syscall::Ioctl, fd);
    OpenFile &file = requireFd(proc, fd);
    if (request == kIoctlCaptureFrame && file.kind != FdKind::Camera)
        throw ProcessCrash(proc.pid(), "EINVAL ioctl capture");
}

void
Kernel::sysSelect(Process &proc, Fd fd)
{
    enforce(proc, Syscall::Select, fd);
    requireFd(proc, fd);
}

void
Kernel::sysFutex(Process &proc)
{
    enforce(proc, Syscall::Futex);
}

uint64_t
Kernel::sysGetrandom(Process &proc)
{
    enforce(proc, Syscall::Getrandom);
    randomState = randomState * 6364136223846793005ull +
                  1442695040888963407ull;
    return randomState;
}

Addr
Kernel::sysShmOpen(Process &proc, const std::string &name, Perms perms)
{
    enforce(proc, Syscall::ShmOpen);
    for (const auto &seg : shmSegs) {
        if (seg.name == name) {
            enforce(proc, Syscall::Mmap);
            return proc.space().mapShared(seg.backing, perms,
                                          "shm:" + name);
        }
    }
    throw ProcessCrash(proc.pid(), "shm_open: no segment " + name);
}

void
Kernel::sysPrctlNoNewPrivs(Process &proc)
{
    enforce(proc, Syscall::Prctl);
    proc.filter().lock();
}

Pid
Kernel::sysFork(Process &proc)
{
    enforce(proc, Syscall::Fork);
    Process &child = spawn(proc.name() + ":child");
    return child.pid();
}

void
Kernel::sysExit(Process &proc)
{
    enforce(proc, Syscall::Exit);
    proc.markExited();
    logEvent(proc.pid(), EventKind::ProcExit, proc.name());
}

void
Kernel::sysMisc(Process &proc, Syscall call)
{
    enforce(proc, call);
}

void
Kernel::guiShow(Process &proc, Fd gui_fd, const std::string &window,
                uint32_t w, uint32_t h, Addr pixels, size_t len)
{
    OpenFile &file = requireFd(proc, gui_fd);
    if (file.kind != FdKind::GuiSocket || !file.connected)
        throw ProcessCrash(proc.pid(), "gui socket not connected");
    enforce(proc, Syscall::Select, gui_fd);
    enforce(proc, Syscall::Sendto);
    std::vector<uint8_t> buf(len);
    proc.space().read(pixels, buf.data(), len);
    advance(costModel.copyCost(len));
    display_.show(proc.pid(), window, w, h, buf.data(), len);
    logEvent(proc.pid(), EventKind::GuiShow,
             window + " " + std::to_string(w) + "x" + std::to_string(h));
}

uint32_t
Kernel::shmCreate(const std::string &name, size_t size)
{
    size_t rounded = (size + kPageSize - 1) & ~(kPageSize - 1);
    ShmSegment seg;
    seg.id = static_cast<uint32_t>(shmSegs.size());
    seg.name = name;
    seg.backing = std::make_shared<std::vector<uint8_t>>(rounded, 0);
    shmSegs.push_back(std::move(seg));
    return shmSegs.back().id;
}

Addr
Kernel::trustedShmMap(Pid pid, uint32_t seg_id, Perms perms)
{
    if (seg_id >= shmSegs.size())
        util::panic("trustedShmMap: bad segment id %u", seg_id);
    Process &proc = process(pid);
    advance(costModel.syscallCost(Syscall::Mmap));
    return proc.space().mapShared(shmSegs[seg_id].backing, perms,
                                  "shm:" + shmSegs[seg_id].name);
}

Backing
Kernel::shmBacking(uint32_t seg_id) const
{
    if (seg_id >= shmSegs.size())
        util::panic("shmBacking: bad segment id %u", seg_id);
    return shmSegs[seg_id].backing;
}

void
Kernel::logEvent(Pid pid, EventKind kind, const std::string &detail)
{
    // now() so events inside a task bracket carry the bracket's
    // virtual timestamp rather than the (lagging) global clock.
    eventLog.push_back({now(), pid, kind, detail});
}

void
Kernel::beginTask(Pid pid, SimTime start_at)
{
    if (taskActive_)
        util::panic("kernel: nested task bracket (pid %u)", pid);
    taskActive_ = true;
    taskPid_ = pid;
    taskClock_ = std::max(start_at, clock);
}

SimTime
Kernel::endTask()
{
    if (!taskActive_)
        util::panic("kernel: endTask with no open bracket");
    taskActive_ = false;
    if (hasProcess(taskPid_)) {
        Process &proc = process(taskPid_);
        proc.readyAt = std::max(proc.readyAt, taskClock_);
    }
    return taskClock_;
}

SimTime
Kernel::timelineOf(Pid pid) const
{
    return hasProcess(pid) ? process(pid).readyAt : 0;
}

SimTime
Kernel::maxTimeline() const
{
    SimTime t = clock;
    for (const auto &[pid, proc] : procs)
        t = std::max(t, proc->readyAt);
    return t;
}

SimTime
Kernel::maxTimelineOf(const std::vector<Pid> &pids) const
{
    SimTime t = clock;
    for (Pid pid : pids)
        t = std::max(t, timelineOf(pid));
    return t;
}

void
Kernel::syncToTimelines()
{
    clock = maxTimeline();
}

size_t
Kernel::countEvents(EventKind kind) const
{
    return static_cast<size_t>(
        std::count_if(eventLog.begin(), eventLog.end(),
                      [&](const Event &e) { return e.kind == kind; }));
}

} // namespace freepart::osim
