#include "osim/devices.hh"

namespace freepart::osim {

uint64_t
fnv1a(const uint8_t *data, size_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::vector<uint8_t>
CameraDevice::captureFrame()
{
    std::vector<uint8_t> frame(frameBytes());
    uint64_t f = frameCounter++;
    size_t i = 0;
    for (uint32_t y = 0; y < height_; ++y) {
        for (uint32_t x = 0; x < width_; ++x) {
            for (uint32_t c = 0; c < channels_; ++c) {
                frame[i++] = static_cast<uint8_t>(
                    (x * 3 + y * 7 + f * 11 + c * 31) & 0xff);
            }
        }
    }
    return frame;
}

void
DisplayDevice::show(Pid pid, const std::string &window, uint32_t w,
                    uint32_t h, const uint8_t *pixels, size_t len)
{
    shows.push_back({pid, window, w, h, fnv1a(pixels, len)});
    for (const auto &n : names)
        if (n == window)
            return;
    names.push_back(window);
}

void
NetworkDevice::send(Pid pid, const std::string &dest,
                    const uint8_t *data, size_t len)
{
    NetSendEvent ev;
    ev.pid = pid;
    ev.dest = dest;
    ev.length = len;
    ev.checksum = fnv1a(data, len);
    size_t head = len < 64 ? len : 64;
    ev.head.assign(data, data + head);
    sent.push_back(std::move(ev));
}

size_t
NetworkDevice::bytesSent() const
{
    size_t total = 0;
    for (const auto &ev : sent)
        total += ev.length;
    return total;
}

} // namespace freepart::osim
