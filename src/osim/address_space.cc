#include "osim/address_space.hh"

#include "util/logging.hh"

namespace freepart::osim {

AddressSpace::AddressSpace(Pid owner, Addr base)
    : ownerPid(owner), nextAddr(pageBase(base + kPageSize - 1))
{
}

Addr
AddressSpace::alloc(size_t size, Perms perms, const std::string &label)
{
    if (size == 0)
        size = 1;
    size_t rounded = (size + kPageSize - 1) & ~(kPageSize - 1);
    Mapping m;
    m.base = nextAddr;
    m.length = rounded;
    m.backing = std::make_shared<std::vector<uint8_t>>(rounded, 0);
    m.backingOff = 0;
    m.shared = false;
    m.label = label;
    for (uint64_t p = pageIndex(m.base);
         p < pageIndex(m.base) + rounded / kPageSize; ++p)
        pagePerms[p] = perms;
    nextAddr += rounded + kPageSize;  // guard page between mappings
    totalMapped += rounded;
    Addr base = m.base;
    mappings.emplace(base, std::move(m));
    return base;
}

Addr
AddressSpace::mapShared(Backing backing, Perms perms,
                        const std::string &label)
{
    if (!backing)
        util::panic("mapShared: null backing");
    size_t rounded =
        (backing->size() + kPageSize - 1) & ~(kPageSize - 1);
    if (backing->size() < rounded)
        backing->resize(rounded, 0);
    Mapping m;
    m.base = nextAddr;
    m.length = rounded;
    m.backing = std::move(backing);
    m.backingOff = 0;
    m.shared = true;
    m.label = label;
    for (uint64_t p = pageIndex(m.base);
         p < pageIndex(m.base) + rounded / kPageSize; ++p)
        pagePerms[p] = perms;
    nextAddr += rounded + kPageSize;
    totalMapped += rounded;
    Addr base = m.base;
    mappings.emplace(base, std::move(m));
    return base;
}

void
AddressSpace::unmap(Addr base)
{
    auto it = mappings.find(base);
    if (it == mappings.end())
        util::panic("unmap: no mapping at base 0x%llx",
                    static_cast<unsigned long long>(base));
    for (uint64_t p = pageIndex(base);
         p < pageIndex(base) + it->second.length / kPageSize; ++p)
        pagePerms.erase(p);
    totalMapped -= it->second.length;
    mappings.erase(it);
}

void
AddressSpace::protect(Addr addr, size_t len, Perms perms)
{
    if (len == 0)
        return;
    uint64_t first = pageIndex(addr);
    uint64_t last = pageIndex(addr + len - 1);
    for (uint64_t p = first; p <= last; ++p) {
        auto it = pagePerms.find(p);
        if (it == pagePerms.end())
            throw MemFault(ownerPid, p * kPageSize, false,
                           "mprotect of unmapped page");
        it->second = perms;
    }
}

Perms
AddressSpace::permsAt(Addr addr) const
{
    auto it = pagePerms.find(pageIndex(addr));
    if (it == pagePerms.end())
        return PermNone;
    return static_cast<Perms>(it->second);
}

const Mapping *
AddressSpace::findMapping(Addr addr) const
{
    auto it = mappings.upper_bound(addr);
    if (it == mappings.begin())
        return nullptr;
    --it;
    const Mapping &m = it->second;
    if (addr >= m.base && addr < m.base + m.length)
        return &m;
    return nullptr;
}

Mapping *
AddressSpace::findMappingMutable(Addr addr)
{
    return const_cast<Mapping *>(findMapping(addr));
}

bool
AddressSpace::isMapped(Addr addr, size_t len) const
{
    const Mapping *m = findMapping(addr);
    return m && addr + len <= m->base + m->length;
}

void
AddressSpace::checkPages(Addr addr, size_t len, Perms need,
                         bool is_write) const
{
    if (len == 0)
        return;
    uint64_t first = pageIndex(addr);
    uint64_t last = pageIndex(addr + len - 1);
    for (uint64_t p = first; p <= last; ++p) {
        auto it = pagePerms.find(p);
        if (it == pagePerms.end())
            throw MemFault(ownerPid, p * kPageSize, is_write,
                           "unmapped page");
        if ((it->second & need) != need)
            throw MemFault(ownerPid, p * kPageSize, is_write,
                           is_write ? "page not writable"
                                    : "page not readable");
    }
}

void
AddressSpace::read(Addr addr, void *dst, size_t len) const
{
    const Mapping *m = findMapping(addr);
    if (!m || addr + len > m->base + m->length)
        throw MemFault(ownerPid, addr, false, "read outside mapping");
    checkPages(addr, len, PermRead, false);
    std::memcpy(dst, m->backing->data() + m->backingOff +
                         (addr - m->base),
                len);
}

void
AddressSpace::write(Addr addr, const void *src, size_t len)
{
    Mapping *m = findMappingMutable(addr);
    if (!m || addr + len > m->base + m->length)
        throw MemFault(ownerPid, addr, true, "write outside mapping");
    checkPages(addr, len, PermWrite, true);
    std::memcpy(m->backing->data() + m->backingOff + (addr - m->base),
                src, len);
    notifyWrite(addr, len);
}

uint8_t *
AddressSpace::checkedSpan(Addr addr, size_t len, bool for_write)
{
    Mapping *m = findMappingMutable(addr);
    if (!m || addr + len > m->base + m->length)
        throw MemFault(ownerPid, addr, for_write,
                       "span outside mapping");
    checkPages(addr, len, for_write ? PermWrite : PermRead, for_write);
    // A writable span hands out raw bytes, so the actual stores are
    // invisible; conservatively treat the whole span as dirtied (the
    // same over-approximation a page-granular soft-dirty bit makes).
    if (for_write)
        notifyWrite(addr, len);
    return m->backing->data() + m->backingOff + (addr - m->base);
}

const uint8_t *
AddressSpace::checkedSpan(Addr addr, size_t len) const
{
    const Mapping *m = findMapping(addr);
    if (!m || addr + len > m->base + m->length)
        throw MemFault(ownerPid, addr, false, "span outside mapping");
    checkPages(addr, len, PermRead, false);
    return m->backing->data() + m->backingOff + (addr - m->base);
}

} // namespace freepart::osim
