/**
 * @file
 * Per-process virtual address space with page-granular permissions.
 *
 * Each allocation becomes a contiguous mapping backed by private bytes
 * or by a shared-memory segment. All reads and writes are permission
 * checked, which is exactly how FreePart's temporal mprotect-based
 * protection (Fig. 3) stops data-corruption payloads: once a data
 * object's pages are flipped to read-only, any write raises MemFault.
 */

#ifndef FREEPART_OSIM_ADDRESS_SPACE_HH
#define FREEPART_OSIM_ADDRESS_SPACE_HH

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "osim/types.hh"

namespace freepart::osim {

/** Shared backing store for a mapping (private or shm-backed). */
using Backing = std::shared_ptr<std::vector<uint8_t>>;

/**
 * Callback fired after every successful mutating access (write() or a
 * writable checkedSpan()). This is the simulated analogue of the
 * soft-dirty / write-protect tracking the dirty-epoch incremental
 * checkpoints need: the ObjectStore registers one to stamp the
 * touched object with the current write epoch.
 */
using WriteObserver = std::function<void(Addr addr, size_t len)>;

/** One contiguous mapping inside an AddressSpace. */
struct Mapping {
    Addr base = kNullAddr;        //!< first mapped address
    size_t length = 0;            //!< mapped length in bytes
    Backing backing;              //!< backing bytes (length >= length)
    size_t backingOff = 0;        //!< offset of base within backing
    bool shared = false;          //!< true if backed by a shm segment
    std::string label;            //!< debug label ("Mat#3", "shm:ch0")
};

/**
 * A sparse simulated virtual address space.
 *
 * Allocations are page aligned and never reuse addresses (a bump
 * allocator), so a dangling reference to freed memory faults instead
 * of silently aliasing — useful when simulating exploit payloads.
 */
class AddressSpace
{
  public:
    /** Create an address space whose first mapping starts at base. */
    explicit AddressSpace(Pid owner, Addr base = 0x10000);

    /**
     * Allocate a zero-initialized private mapping.
     *
     * @param size   Length in bytes (rounded up to page size).
     * @param perms  Initial page permissions.
     * @param label  Debug label recorded on the mapping.
     * @return Base address of the new mapping.
     */
    Addr alloc(size_t size, Perms perms = PermRW,
               const std::string &label = "");

    /**
     * Map a shared backing (shm segment) into this space.
     *
     * @param backing  Shared bytes; must outlive the mapping.
     * @param perms    Initial page permissions.
     * @param label    Debug label recorded on the mapping.
     * @return Base address of the new mapping.
     */
    Addr mapShared(Backing backing, Perms perms,
                   const std::string &label = "");

    /** Unmap the mapping that starts exactly at base. */
    void unmap(Addr base);

    /**
     * Change page permissions for [addr, addr+len). Rounds outward to
     * page boundaries. All touched pages must be mapped.
     */
    void protect(Addr addr, size_t len, Perms perms);

    /** Permissions of the page containing addr (PermNone if unmapped). */
    Perms permsAt(Addr addr) const;

    /** True if [addr, addr+len) lies fully inside one mapping. */
    bool isMapped(Addr addr, size_t len) const;

    /** Permission-checked read of len bytes at addr. @throws MemFault */
    void read(Addr addr, void *dst, size_t len) const;

    /** Permission-checked write of len bytes at addr. @throws MemFault */
    void write(Addr addr, const void *src, size_t len);

    /** Read a trivially-copyable value. */
    template <typename T>
    T
    readValue(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Write a trivially-copyable value. */
    template <typename T>
    void
    writeValue(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /**
     * Raw pointer into the backing bytes for [addr, addr+len), with
     * permission checks applied once up front. Used by compute kernels
     * that stream over large buffers; the permission semantics are the
     * same as issuing a single big read/write.
     *
     * @param for_write  Check write (true) or read (false) permission.
     */
    uint8_t *checkedSpan(Addr addr, size_t len, bool for_write);
    const uint8_t *checkedSpan(Addr addr, size_t len) const;

    /** Total bytes currently mapped. */
    size_t mappedBytes() const { return totalMapped; }

    /** Number of live mappings. */
    size_t mappingCount() const { return mappings.size(); }

    /** Owning process id (for fault attribution). */
    Pid owner() const { return ownerPid; }

    /** The mapping containing addr, or nullptr. */
    const Mapping *findMapping(Addr addr) const;

    /**
     * Install (or clear, with nullptr) the write observer. At most
     * one; a respawn replaces the whole space, so the new incarnation
     * starts unobserved until the store rebinds.
     */
    void
    setWriteObserver(WriteObserver observer)
    {
        writeObserver = std::move(observer);
    }

  private:
    Mapping *findMappingMutable(Addr addr);
    void checkPages(Addr addr, size_t len, Perms need, bool is_write)
        const;

    void
    notifyWrite(Addr addr, size_t len)
    {
        if (writeObserver)
            writeObserver(addr, len);
    }

    Pid ownerPid;
    Addr nextAddr;
    std::map<Addr, Mapping> mappings;  //!< keyed by base address
    std::unordered_map<uint64_t, uint8_t> pagePerms;
    size_t totalMapped = 0;
    WriteObserver writeObserver;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_ADDRESS_SPACE_HH
