#include "osim/fault_injection.hh"

#include <algorithm>

namespace freepart::osim {

const char *
faultPointName(FaultPoint point)
{
    switch (point) {
      case FaultPoint::SyscallEntry:
        return "syscall-entry";
      case FaultPoint::AgentCall:
        return "agent-call";
      case FaultPoint::DeviceRead:
        return "device-read";
      case FaultPoint::RingTransfer:
        return "ring-transfer";
      case FaultPoint::Respawn:
        return "respawn";
      case FaultPoint::Checkpoint:
        return "checkpoint";
      case FaultPoint::Restore:
        return "restore";
      case FaultPoint::ShardAdmission:
        return "shard-admission";
      case FaultPoint::ClusterTransfer:
        return "cluster-transfer";
    }
    return "?";
}

const char *
faultActionName(FaultAction action)
{
    switch (action) {
      case FaultAction::None:
        return "none";
      case FaultAction::Crash:
        return "crash";
      case FaultAction::Transient:
        return "transient";
      case FaultAction::Corrupt:
        return "corrupt";
      case FaultAction::Stall:
        return "stall";
      case FaultAction::SlowDown:
        return "slow-down";
    }
    return "?";
}

FaultAction
FaultInjector::query(FaultPoint point, Pid pid)
{
    return queryFire(point, pid).action;
}

FaultFire
FaultInjector::queryFire(FaultPoint point, Pid pid)
{
    uint64_t hit = ++hitCounts[static_cast<size_t>(point)];
    for (Armed &a : armed) {
        if (a.spec.point != point)
            continue;
        if (a.spec.pid != kAnyPid && a.spec.pid != pid)
            continue;
        ++a.hits;
        if (a.hits <= a.spec.after)
            continue;
        if (a.spec.count != 0 && a.fired >= a.spec.count)
            continue;
        if (a.spec.probability < 1.0 && !rng.chance(a.spec.probability))
            continue;
        ++a.fired;
        log_.push_back({point, a.spec.action, pid, hit, a.spec.tag});
        return {a.spec.action, a.spec.stallTime, a.spec.slowFactor};
    }
    return {};
}

void
FaultInjector::corrupt(std::vector<uint8_t> &bytes)
{
    if (bytes.empty())
        return;
    // Flip up to 4 bytes inside the framing-heavy prefix so decoders
    // reject the buffer, plus one byte anywhere in the payload.
    size_t header = std::min<size_t>(bytes.size(), 16);
    for (int i = 0; i < 4; ++i)
        bytes[rng.below(header)] ^= static_cast<uint8_t>(
            0x01u << rng.below(8));
    bytes[rng.below(bytes.size())] ^= 0xffu;
}

} // namespace freepart::osim
