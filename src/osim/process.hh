/**
 * @file
 * A simulated process: its own address space (independent stack/heap,
 * cf. §6 "each partitioned process has its independent stack and
 * heap"), a seccomp-style syscall filter, a file-descriptor table,
 * and per-syscall accounting.
 */

#ifndef FREEPART_OSIM_PROCESS_HH
#define FREEPART_OSIM_PROCESS_HH

#include <array>
#include <map>
#include <memory>
#include <string>

#include "osim/address_space.hh"
#include "osim/syscall_filter.hh"
#include "osim/syscalls.hh"
#include "osim/types.hh"

namespace freepart::osim {

/** Lifecycle states of a simulated process. */
enum class ProcState {
    Running,   //!< alive and schedulable
    Crashed,   //!< killed by a fault (SIGSEGV/SIGSYS/abort)
    Exited,    //!< exited voluntarily
};

/** What kind of object an open fd refers to. */
enum class FdKind {
    File,      //!< VFS-backed regular file
    Camera,    //!< capture device (/dev/camera0)
    Socket,    //!< network socket
    GuiSocket, //!< connection to the GUI subsystem
    Eventfd,   //!< eventfd for IPC wakeups
};

/** An entry in a process's fd table. */
struct OpenFile {
    FdKind kind = FdKind::File;
    std::string path;      //!< file path / device name / socket dest
    size_t offset = 0;     //!< file cursor
    bool writable = false; //!< opened for writing
    bool connected = false; //!< socket connected (connect() done)
};

/**
 * A simulated process. Owned by the Kernel; looked up by pid. Not
 * copyable (owns its address space).
 */
class Process
{
  public:
    Process(Pid pid, std::string name)
        : pid_(pid), name_(std::move(name)), space_(pid)
    {
        syscallCounts.fill(0);
    }

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    /** Incarnation counter: bumped each time the kernel respawns. */
    int incarnation() const { return incarnation_; }

    ProcState state() const { return state_; }
    bool alive() const { return state_ == ProcState::Running; }
    const std::string &crashReason() const { return crashReason_; }

    AddressSpace &space() { return space_; }
    const AddressSpace &space() const { return space_; }

    SyscallFilter &filter() { return filter_; }
    const SyscallFilter &filter() const { return filter_; }

    /** Allocate the next fd and bind it to an OpenFile. */
    Fd
    addFd(OpenFile file)
    {
        Fd fd = nextFd++;
        fds_[fd] = std::move(file);
        return fd;
    }

    /** Look up an fd; nullptr if closed/unknown. */
    OpenFile *
    findFd(Fd fd)
    {
        auto it = fds_.find(fd);
        return it == fds_.end() ? nullptr : &it->second;
    }

    /** Close an fd; returns false if it was not open. */
    bool closeFd(Fd fd) { return fds_.erase(fd) > 0; }

    /** Number of open fds. */
    size_t openFdCount() const { return fds_.size(); }

    /** Per-syscall invocation counters (indexed by Syscall). */
    std::array<uint64_t, kNumSyscalls> syscallCounts;

    /** Number of syscalls denied by the filter. */
    uint64_t deniedSyscalls = 0;

    /**
     * Virtual timeline under pipeline accounting: the simulated time
     * at which this process finishes its last task bracket. Survives
     * respawn (time never runs backwards for a pid slot).
     */
    SimTime readyAt = 0;

  private:
    friend class Kernel;

    void
    markCrashed(const std::string &why)
    {
        state_ = ProcState::Crashed;
        crashReason_ = why;
    }

    void markExited() { state_ = ProcState::Exited; }

    /** Kernel-side reset used by respawn(). */
    void
    resetForRespawn()
    {
        state_ = ProcState::Running;
        crashReason_.clear();
        space_ = AddressSpace(pid_);
        filter_ = SyscallFilter();
        fds_.clear();
        nextFd = 3;
        ++incarnation_;
    }

    Pid pid_;
    std::string name_;
    int incarnation_ = 0;
    ProcState state_ = ProcState::Running;
    std::string crashReason_;
    AddressSpace space_;
    SyscallFilter filter_;
    std::map<Fd, OpenFile> fds_;
    Fd nextFd = 3;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_PROCESS_HH
