/**
 * @file
 * Deterministic fault injection for the simulated kernel. A test or
 * bench schedules FaultSpecs against instrumented fault points (the
 * Nth syscall of a pid, an agent API execution, a device read, a
 * respawn, a ring-buffer transfer, checkpoint save/restore); the
 * kernel and runtime consult the injector at those points and apply
 * the returned action. All randomness comes from an explicitly seeded
 * RNG, so a fault plan replays identically: same seed, same crashes,
 * same recovery trace.
 *
 * This is the machinery behind the availability evaluation (§4.4.2,
 * A.2.4): the paper's agent-restart story is only meaningful if
 * crashes can be provoked at every interesting point, repeatedly, and
 * measured.
 */

#ifndef FREEPART_OSIM_FAULT_INJECTION_HH
#define FREEPART_OSIM_FAULT_INJECTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "osim/types.hh"
#include "util/rng.hh"

namespace freepart::osim {

/** Instrumented locations where faults can fire. */
enum class FaultPoint : uint8_t {
    SyscallEntry = 0, //!< Kernel::enforce, after the filter check
    AgentCall,        //!< runtime: about to execute an API on an agent
    DeviceRead,       //!< sysRead from a camera/file device
    RingTransfer,     //!< Channel receive (shm ring message path)
    Respawn,          //!< Kernel::respawn (crash-loop generation)
    Checkpoint,       //!< runtime checkpointAgent serialization
    Restore,          //!< runtime restoring a checkpoint after respawn
    ShardAdmission,   //!< cluster: a routed call admitted to a shard
    ClusterTransfer,  //!< cluster: cross-shard object transfer
};

constexpr size_t kNumFaultPoints = 9;

/** Display name of a fault point. */
const char *faultPointName(FaultPoint point);

/** What happens when a fault fires. */
enum class FaultAction : uint8_t {
    None = 0,  //!< nothing fired
    Crash,     //!< kill the process at the point (SIGSEGV-like)
    Transient, //!< fail the operation; the process survives
    Corrupt,   //!< corrupt the data flowing through the point
    Stall,     //!< freeze the target for FaultSpec::stallTime sim ns
    SlowDown,  //!< multiply the operation's cost by FaultSpec::slowFactor
};

/** Display name of a fault action. */
const char *faultActionName(FaultAction action);

/** Matches any pid in a FaultSpec. */
constexpr Pid kAnyPid = 0;

/**
 * One scheduled fault. The spec keeps its own hit counter: it fires
 * on matching hits number `after+1` .. `after+count` (each firing
 * additionally gated by `probability` through the seeded RNG).
 */
struct FaultSpec {
    FaultPoint point = FaultPoint::SyscallEntry;
    FaultAction action = FaultAction::Crash;
    Pid pid = kAnyPid;        //!< limit to one process (kAnyPid = all)
    uint64_t after = 0;       //!< skip the first N matching hits
    uint32_t count = 1;       //!< firings allowed (0 = unlimited)
    double probability = 1.0; //!< per-hit firing probability
    std::string tag;          //!< label recorded in the injection log

    /** Magnitudes for the cluster fault actions. At the cluster
     *  points the Pid field selects a shard slot (shard id + 1, so
     *  kAnyPid keeps meaning "every shard"). */
    SimTime stallTime = 0;    //!< FaultAction::Stall freeze length
    double slowFactor = 1.0;  //!< FaultAction::SlowDown multiplier
};

/** A fired fault plus the magnitudes its spec carried. */
struct FaultFire {
    FaultAction action = FaultAction::None;
    SimTime stallTime = 0;
    double slowFactor = 1.0;
};

/** One fault that actually fired. */
struct FaultRecord {
    FaultPoint point;
    FaultAction action;
    Pid pid;      //!< pid the fault was applied to
    uint64_t hit; //!< global hit index of the point when it fired
    std::string tag;
};

/**
 * The injector: owns the scheduled specs, the per-point hit counters,
 * and the log of fired faults. Attached to a Kernel via
 * setFaultInjector(); a null injector means every query is free of
 * faults (the default, zero-overhead path).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed = 0x5eedfa17ull) : rng(seed)
    {
        hitCounts.fill(0);
    }

    /** Schedule a fault; returns *this so plans chain fluently. */
    FaultInjector &
    schedule(FaultSpec spec)
    {
        armed.push_back({std::move(spec), 0, 0});
        return *this;
    }

    /** Drop all scheduled specs (hit counters and log are kept). */
    void clearSchedule() { armed.clear(); }

    /**
     * Consult the injector at a fault point. Every call counts as one
     * hit for matching specs; the first spec whose trigger condition
     * is met fires and its action is returned.
     */
    FaultAction query(FaultPoint point, Pid pid);

    /**
     * Like query(), but also returns the firing spec's magnitudes
     * (stall length, slow-down factor) — the cluster fault points
     * need more than the action tag.
     */
    FaultFire queryFire(FaultPoint point, Pid pid);

    /** Total hits observed at a point (fired or not). */
    uint64_t
    hits(FaultPoint point) const
    {
        return hitCounts[static_cast<size_t>(point)];
    }

    /** Number of faults that fired so far. */
    uint64_t injectedCount() const { return log_.size(); }

    /** Every fault that fired, in firing order. */
    const std::vector<FaultRecord> &log() const { return log_; }

    /**
     * Deterministically corrupt a byte buffer in place (flips a few
     * bytes chosen by the seeded RNG, biased toward the header so
     * framed messages fail to decode rather than silently carrying
     * flipped payload bits).
     */
    void corrupt(std::vector<uint8_t> &bytes);

  private:
    struct Armed {
        FaultSpec spec;
        uint64_t hits = 0;  //!< matching hits seen by this spec
        uint64_t fired = 0; //!< times this spec fired
    };

    util::Rng rng;
    std::array<uint64_t, kNumFaultPoints> hitCounts;
    std::vector<Armed> armed;
    std::vector<FaultRecord> log_;
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_FAULT_INJECTION_HH
