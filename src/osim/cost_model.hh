/**
 * @file
 * Calibrated simulated-time cost model.
 *
 * The paper reports wall-clock numbers from an i7-9750H testbed
 * (Table 9: 54.1 s baseline, FreePart 55.6 s with 12,411 IPCs moving
 * 0.4 GB; per-API isolation 121.8 s moving 42.7 GB). The constants
 * below are calibrated so the *shape* of those results — overhead
 * ratios, crossovers between techniques, the Fig. 4 partition-count
 * cliff — reproduces. EXPERIMENTS.md records paper-vs-measured for
 * every row.
 */

#ifndef FREEPART_OSIM_COST_MODEL_HH
#define FREEPART_OSIM_COST_MODEL_HH

#include "osim/syscalls.hh"
#include "osim/types.hh"

namespace freepart::osim {

/** Tunable cost constants, all in simulated nanoseconds. */
struct CostModel {
    /** Fixed cost of entering the kernel for any syscall. */
    SimTime syscallBase = 300;

    /** Per-byte cost of copying data across processes (serialize +
     *  memcpy + deserialize, ~1.7 GB/s effective). Calibrated so the
     *  per-API-isolation baseline's full-object copies dominate its
     *  runtime the way Table 9's 42.7 GB row does, while FreePart's
     *  rare LDC crossings stay cheap (0.4 GB row). */
    double copyPerByte = 0.15;

    /** Fixed cost of one cross-process request/response round trip
     *  (ring-buffer enqueue, futex wake, context switch, dequeue).
     *  Calibrated against Table 9: FreePart's 12,411 IPCs add ~1.5 s
     *  to a 54 s run, i.e. ~100 us per call pair including copies. */
    SimTime ipcRoundTrip = 40000;

    /** Futex wake + context switch to a sleeping peer: the fixed part
     *  of one directed send when the receiver is parked. Together
     *  with ipcPerMessage this decomposes ipcRoundTrip/2, so a single
     *  cold send costs exactly what the undecomposed model charged. */
    SimTime ipcWake = 15000;

    /** Ring enqueue/dequeue work per message. Inside a hot window
     *  (the peer is still busy-polling after a just-completed
     *  exchange on the same channel) a send costs only this — the
     *  adaptive-spin fast path of the batched RPC transport. */
    SimTime ipcPerMessage = 5000;

    /** Per-byte cost of moving object bytes that are encoded straight
     *  into ring storage (reserve/commit path): one memcpy, no
     *  staging serialize/deserialize, ~2.8 GB/s effective. Charged
     *  for LDC delivers piggybacked on batched requests; eager
     *  host-mediated copies keep paying copyPerByte. */
    double copyPerByteInPlace = 0.09;

    /** Cost of an mprotect permission flip, per page touched. */
    SimTime protectPerPage = 450;

    /** Cost of spawning a process (fork + runtime init). */
    SimTime processSpawn = 2500000;

    /** Cost of restarting a crashed agent (spawn + rehook). */
    SimTime processRestart = 5000000;

    /** Cost of promoting a pre-spawned warm standby into a crashed
     *  agent's slot: channel remap + policy install + role handoff,
     *  no fork or runtime init on the critical path. The fork cost is
     *  paid in the background while the old incarnation serves. */
    SimTime processPromote = 500000;

    /** Cost of restoring one pooled agent to a clean epoch between
     *  tenant sessions: discard the tenant's dirty pages, re-install
     *  the partition's baseline checkpoint generation, and re-arm the
     *  syscall policy. Paid off the critical path (the warm pool
     *  resets released agent sets in the background), so it bounds
     *  pool turnaround rather than per-call latency. */
    SimTime agentEpochReset = 150000;

    /** Per-element cost of compute kernels (framework APIs), used by
     *  MiniCV/MiniDNN bodies to charge simulated compute time.
     *  2.5 ns/element reproduces the paper's regime of ~4.4 ms of
     *  framework compute per API call on 1.7 MB images (54 s / 12.4k
     *  calls in Table 9). */
    double computePerElement = 2.5;

    /** Cost charged for a denied syscall (SIGSYS delivery). */
    SimTime sigsysDeliver = 1200;

    /** Base cost for a specific syscall (uniform base for now; the
     *  per-byte component dominates for data syscalls). */
    SimTime
    syscallCost(Syscall call) const
    {
        switch (call) {
          case Syscall::Mmap:
          case Syscall::Munmap:
            return syscallBase * 4;
          case Syscall::Fork:
            return processSpawn;
          case Syscall::Mprotect:
            return syscallBase + protectPerPage;
          default:
            return syscallBase;
        }
    }

    /** Cost of copying n bytes. */
    SimTime
    copyCost(size_t n) const
    {
        return static_cast<SimTime>(copyPerByte *
                                    static_cast<double>(n));
    }

    /** Cost of moving n bytes via the zero-copy ring encode path. */
    SimTime
    copyCostInPlace(size_t n) const
    {
        return static_cast<SimTime>(copyPerByteInPlace *
                                    static_cast<double>(n));
    }

    /** Cost of sending n messages in one directed burst. */
    SimTime
    ipcSendCost(size_t n, bool hot) const
    {
        return (hot ? 0 : ipcWake) +
               ipcPerMessage * static_cast<SimTime>(n);
    }

    /** Cost of compute over n elements. */
    SimTime
    computeCost(size_t n) const
    {
        return static_cast<SimTime>(computePerElement *
                                    static_cast<double>(n));
    }
};

} // namespace freepart::osim

#endif // FREEPART_OSIM_COST_MODEL_HH
