/**
 * @file
 * Cluster-level roll-up: what the shard router counts on top of the
 * per-runtime RunStats. Shards run conceptually in parallel (each on
 * its own simulated kernel), so cluster makespan is the *maximum*
 * per-shard elapsed time, not the sum — aggregate throughput is
 * routed calls divided by that makespan.
 */

#ifndef FREEPART_SHARD_CLUSTER_STATS_HH
#define FREEPART_SHARD_CLUSTER_STATS_HH

#include <cstdint>
#include <vector>

#include "core/run_stats.hh"
#include "osim/types.hh"

namespace freepart::shard {

/** Counters accumulated by a ShardRouter across routed calls. */
struct ClusterStats {
    uint64_t routedCalls = 0;   //!< invoke() calls accepted by the router
    uint64_t callsOk = 0;       //!< calls acknowledged to the client
    uint64_t callsFailed = 0;   //!< calls returned with an error
    uint64_t dedupHits = 0;     //!< duplicate tokens served from cache
    uint64_t localInputs = 0;   //!< ref inputs already on the target shard
    uint64_t migrations = 0;    //!< objects moved between shards
    uint64_t migratedBytes = 0; //!< payload bytes moved by migrations
    uint64_t proxiedCalls = 0;  //!< calls executed on the input's owner
    uint64_t proxiedBytes = 0;  //!< input bytes served in place by proxying
    uint64_t crossShardCalls = 0; //!< calls that touched another shard
                                  //!< (migrated/restored inputs, proxy,
                                  //!< hedged or degraded execution)
    uint64_t replicaSaves = 0;  //!< result replicas captured
    uint64_t replicaBytes = 0;  //!< bytes held by the replica store
    uint64_t replicaRestores = 0; //!< objects rebuilt from a replica
    uint64_t failovers = 0;     //!< calls retried on a new ring owner
    uint64_t shardsDrained = 0; //!< shards removed for quarantine pressure
    uint64_t shardsKilled = 0;  //!< shards removed for host death
    uint64_t lostObjects = 0;   //!< inputs unrecoverable after shard loss
    uint64_t shardsJoined = 0;  //!< shards added after construction
    uint64_t proactivePushes = 0; //!< objects eagerly pushed to a joiner
    uint64_t proactivePushBytes = 0; //!< payload bytes of those pushes

    // ---- Chaos / health-era counters (open-loop invokeAt path) ----
    uint64_t hedgedCalls = 0;   //!< calls served by a hedge target
    uint64_t degradedCalls = 0; //!< overload calls served degraded
    uint64_t shedCalls = 0;     //!< calls rejected by admission control
    uint64_t deadlineMisses = 0; //!< acked calls finishing past deadline
    uint64_t retriesSpent = 0;  //!< retry-budget attempts consumed
    uint64_t suspectTransitions = 0; //!< healthy -> suspect edges
    uint64_t deadTransitions = 0;    //!< -> dead edges
    uint64_t probesSent = 0;    //!< heartbeat probes issued
    uint64_t probesMissed = 0;  //!< probes an unresponsive shard missed
    uint64_t shardsRejoined = 0; //!< drained/killed shards re-admitted
    uint64_t chaosStalls = 0;   //!< injected shard-freeze episodes
    uint64_t chaosSlowCalls = 0; //!< calls under an injected slow-down
    uint64_t messagesDropped = 0;   //!< injected cross-shard drops
    uint64_t messagesCorrupted = 0; //!< injected cross-shard corruptions
    uint64_t replicaStaleReads = 0; //!< hedge/degraded replica stagings
    uint64_t queueDepthPeak = 0; //!< max admission queue depth seen

    // ---- Placement-era counters (optimized object placement) ----
    uint64_t repartitions = 0;  //!< placement epochs computed + applied
    uint64_t placementMoves = 0; //!< objects moved by placement epochs
    uint64_t placementMovedBytes = 0; //!< payload bytes of those moves
    /** Max bytes any single epoch moved — the bounded-migration
     *  witness benches and tests assert stays <= migrationMaxBytes. */
    uint64_t placementEpochBytesPeak = 0;
    uint64_t placementDeferrals = 0; //!< group moves deferred by budget
    uint64_t placementOverrides = 0; //!< override entries resolving live
    uint64_t placementCut = 0;  //!< last solution: weighted hyperedge cut
    double placementImbalance = 0.0; //!< last solution: weight imbalance
    /** Summed time from last good contact to dead classification —
     *  divide by deadTransitions for mean failover detection time. */
    osim::SimTime detectionTime = 0;

    // ---- Serving-era counters (multi-tenant sessions + autoscale) ----
    uint64_t sessionsStarted = 0; //!< tenant sessions opened
    uint64_t sessionsEnded = 0;   //!< tenant sessions torn down
    uint64_t warmCheckouts = 0;   //!< sessions served by a warm agent set
    uint64_t coldStarts = 0;      //!< sessions that cold-started agents
    /** Summed simulated agent-start cost charged to shards by
     *  sessions (warm handoffs + cold spawns + pool waits). */
    osim::SimTime sessionStartCost = 0;
    uint64_t sessionObjectsScrubbed = 0; //!< objects evicted at session end
    uint64_t shardsRetired = 0; //!< shards permanently scaled down
    uint64_t retireEvacuations = 0; //!< objects evacuated by retirements
    uint64_t overridesScrubbed = 0; //!< override entries dropped at retire
    uint64_t dedupScrubbed = 0; //!< dangling dedup entries pruned at retire

    /** Calls landed per shard (indexed by shard slot). */
    std::vector<uint64_t> callsPerShard;

    /** Per-runtime counters summed across all shards. */
    core::RunStats shardTotals;

    /** Max per-shard elapsed simulated time (parallel shards). */
    osim::SimTime makespan = 0;

    /** Aggregate throughput over the cluster makespan. */
    double
    throughputCallsPerSec() const
    {
        if (makespan == 0)
            return 0.0;
        return static_cast<double>(callsOk) * 1e9 /
               static_cast<double>(makespan);
    }

    /** Load imbalance: max over mean of callsPerShard (1.0 = even). */
    double
    imbalance() const
    {
        uint64_t max = 0, sum = 0;
        size_t live = 0;
        for (uint64_t calls : callsPerShard) {
            if (calls > max)
                max = calls;
            sum += calls;
            if (calls > 0)
                ++live;
        }
        if (live == 0 || sum == 0)
            return 1.0;
        double mean = static_cast<double>(sum) /
                      static_cast<double>(live);
        return static_cast<double>(max) / mean;
    }
};

} // namespace freepart::shard

#endif // FREEPART_SHARD_CLUSTER_STATS_HH
