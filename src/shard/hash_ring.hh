/**
 * @file
 * Consistent-hash ring over shard ids: the placement function of the
 * cluster layer. Each shard contributes a configurable number of
 * virtual nodes, hashed to deterministic points on a 64-bit ring; a
 * key is owned by the shard of the first vnode at or clockwise after
 * the key's point. Placement is a pure function of (membership,
 * vnodes-per-shard), so it reproduces bit-for-bit across process
 * restarts, and membership changes move a bounded fraction of keys:
 * removing one of N shards remaps only the keys that shard owned
 * (~1/N), leaving every other key untouched.
 */

#ifndef FREEPART_SHARD_HASH_RING_HH
#define FREEPART_SHARD_HASH_RING_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace freepart::shard {

/** Sentinel: no shard (empty ring, lost object, ...). */
constexpr uint32_t kInvalidShard = UINT32_MAX;

/** The consistent-hash ring. */
class HashRing
{
  public:
    explicit HashRing(uint32_t vnodes_per_shard = 64);

    uint32_t vnodesPerShard() const { return vnodes; }
    size_t shardCount() const { return members.size(); }
    bool empty() const { return members.empty(); }
    bool contains(uint32_t shard_id) const
    {
        return members.count(shard_id) > 0;
    }

    /** Current members, ascending. */
    std::vector<uint32_t> shards() const;

    /** Add a shard's vnodes to the ring (idempotent). */
    void addShard(uint32_t shard_id);

    /** Drain a shard: its vnodes leave the ring and its keys remap
     *  to the clockwise successors (idempotent). */
    void removeShard(uint32_t shard_id);

    /** Owner of a routing key; kInvalidShard on an empty ring. */
    uint32_t ownerOf(uint64_t key) const;

    /**
     * Fraction of `keys` whose owner differs between two rings — the
     * bounded-movement measure benches and tests assert on (removing
     * one of N shards must stay near 1/N).
     */
    static double remappedFraction(const HashRing &before,
                                   const HashRing &after,
                                   const std::vector<uint64_t> &keys);

    /** Ring point of a routing key (exposed for tests). */
    static uint64_t keyPoint(uint64_t key);

    /** Ring point of one virtual node (exposed for tests). */
    static uint64_t vnodePoint(uint32_t shard_id, uint32_t vnode);

  private:
    uint32_t vnodes;
    std::set<uint32_t> members;
    /** ring position -> shard id. On the (astronomically rare) point
     *  collision the first inserter keeps the point; removal only
     *  erases points mapping to the leaving shard, so placement stays
     *  consistent either way. */
    std::map<uint64_t, uint32_t> points;
};

} // namespace freepart::shard

#endif // FREEPART_SHARD_HASH_RING_HH
