#include "shard/shard_router.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace freepart::shard {

namespace {

/** Sum one shard's runtime counters into the cluster roll-up.
 *  Time-window fields (startTime/endTime) stay per-shard — the
 *  cluster aggregates them as makespan, not a sum. */
void
accumulate(core::RunStats &into, const core::RunStats &s)
{
    into.apiCalls += s.apiCalls;
    into.ipcMessages += s.ipcMessages;
    into.bytesTransferred += s.bytesTransferred;
    into.lazyCopies += s.lazyCopies;
    into.directCopies += s.directCopies;
    into.eagerCopies += s.eagerCopies;
    into.piggybackedFetches += s.piggybackedFetches;
    into.hotSends += s.hotSends;
    into.hotWindowGrows += s.hotWindowGrows;
    into.hotWindowDecays += s.hotWindowDecays;
    into.hotWindowDepthPeak =
        std::max(into.hotWindowDepthPeak, s.hotWindowDepthPeak);
    into.protectionFlips += s.protectionFlips;
    into.stateChanges += s.stateChanges;
    into.agentCrashes += s.agentCrashes;
    into.agentRestarts += s.agentRestarts;
    into.retriedCalls += s.retriedCalls;
    into.memFaults += s.memFaults;
    into.syscallDenials += s.syscallDenials;
    into.transientFaults += s.transientFaults;
    into.channelLosses += s.channelLosses;
    into.dedupHits += s.dedupHits;
    into.dedupEvictions += s.dedupEvictions;
    into.retriesExhausted += s.retriesExhausted;
    into.quarantines += s.quarantines;
    into.hostFallbackCalls += s.hostFallbackCalls;
    into.statefulFastFails += s.statefulFastFails;
    into.checkpointsTaken += s.checkpointsTaken;
    into.fullCheckpoints += s.fullCheckpoints;
    into.incrementalCheckpoints += s.incrementalCheckpoints;
    into.checkpointBytesSaved += s.checkpointBytesSaved;
    into.checkpointBytesRestored += s.checkpointBytesRestored;
    into.checkpointFallbacks += s.checkpointFallbacks;
    into.standbyPromotions += s.standbyPromotions;
    into.standbyWaitTime += s.standbyWaitTime;
    into.recoveries += s.recoveries;
    into.recoveryTime += s.recoveryTime;
    into.backoffTime += s.backoffTime;
    into.asyncCalls += s.asyncCalls;
    into.pipelineBarriers += s.pipelineBarriers;
    into.inFlightStalls += s.inFlightStalls;
    into.inFlightPeak = std::max(into.inFlightPeak, s.inFlightPeak);
    into.checkpointSourcedRestores += s.checkpointSourcedRestores;
    if (into.partitionBusyTime.size() < s.partitionBusyTime.size())
        into.partitionBusyTime.resize(s.partitionBusyTime.size(), 0);
    for (size_t p = 0; p < s.partitionBusyTime.size(); ++p)
        into.partitionBusyTime[p] += s.partitionBusyTime[p];
    into.criticalPathMakespan =
        std::max(into.criticalPathMakespan, s.criticalPathMakespan);
}

} // namespace

ShardRouter::ShardRouter(const fw::ApiRegistry &registry,
                         analysis::Categorization categorization,
                         core::PartitionPlan plan,
                         ShardRouterConfig config_in, SeedFn seed)
    : registry(registry), cats(std::move(categorization)),
      plan_(std::move(plan)), config(std::move(config_in)),
      ring_(config.vnodesPerShard), dedup_(config.dedupEntries)
{
    if (config.shardCount == 0)
        config.shardCount = 1;
    shards_.reserve(config.shardCount);
    for (uint32_t s = 0; s < config.shardCount; ++s) {
        Shard shard;
        shard.id = s;
        shard.kernel = std::make_unique<osim::Kernel>();
        if (seed)
            seed(*shard.kernel);
        core::RuntimeConfig rc = config.runtime;
        // Namespace s+1: every shard mints from disjoint high bits,
        // and namespace 0 (an unconfigured standalone runtime) can
        // never alias a cluster id.
        rc.shardId = s + 1;
        shard.runtime = std::make_unique<core::FreePartRuntime>(
            *shard.kernel, registry, cats, plan_, rc);
        ring_.addShard(s);
        shards_.push_back(std::move(shard));
    }
}

ShardRouter::~ShardRouter() = default;

uint32_t
ShardRouter::shardCount() const
{
    return static_cast<uint32_t>(shards_.size());
}

size_t
ShardRouter::liveShardCount() const
{
    size_t live = 0;
    for (const Shard &shard : shards_)
        if (shard.live && ring_.contains(shard.id))
            ++live;
    return live;
}

bool
ShardRouter::shardLive(uint32_t shard) const
{
    return shards_.at(shard).live;
}

uint32_t
ShardRouter::ownerShardOf(uint64_t routing_key) const
{
    return ring_.ownerOf(routing_key);
}

core::FreePartRuntime &
ShardRouter::runtime(uint32_t shard)
{
    return *shards_.at(shard).runtime;
}

osim::Kernel &
ShardRouter::kernel(uint32_t shard)
{
    return *shards_.at(shard).kernel;
}

uint32_t
ShardRouter::lookupShard(uint64_t object_id) const
{
    auto it = objectShard_.find(object_id);
    if (it != objectShard_.end())
        return it->second;
    // Lazy adoption: the object was minted by direct runtime access
    // (createHostMat on a runtime handle, a test fixture, ...).
    for (const Shard &shard : shards_) {
        if (shard.live && shard.runtime->hasObject(object_id)) {
            objectShard_[object_id] = shard.id;
            return shard.id;
        }
    }
    return kInvalidShard;
}

uint32_t
ShardRouter::homeShardOf(uint64_t object_id) const
{
    return lookupShard(object_id);
}

void
ShardRouter::killShard(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    if (!shard.live)
        return;
    shard.live = false;
    ring_.removeShard(shard_id);
    ++stats_.shardsKilled;
    util::inform("cluster: shard %u killed; %zu shards remain in ring",
                 shard_id, ring_.shardCount());
}

void
ShardRouter::drainShard(uint32_t shard_id)
{
    if (!ring_.contains(shard_id))
        return;
    ring_.removeShard(shard_id);
    ++stats_.shardsDrained;
    util::inform("cluster: shard %u drained; %zu shards remain in ring",
                 shard_id, ring_.shardCount());
}

bool
ShardRouter::checkShardHealth(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    bool wasInRing = ring_.contains(shard_id);
    if (!shard.runtime->hostAlive()) {
        killShard(shard_id);
        return wasInRing;
    }
    if (shard.runtime->supervisor().quarantinedCount() >=
        config.drainQuarantineThreshold) {
        drainShard(shard_id);
        return wasInRing;
    }
    return false;
}

void
ShardRouter::migrateObject(uint32_t from, uint32_t to,
                           uint64_t object_id)
{
    if (from == to)
        return;
    Shard &src = shards_.at(from);
    Shard &dst = shards_.at(to);
    core::FreePartRuntime &srcRt = *src.runtime;
    fw::ObjectStore &srcStore = srcRt.storeOf(srcRt.homeOf(object_id));
    std::vector<uint8_t> bytes = srcStore.serialize(object_id);
    fw::ObjKind kind = srcStore.get(object_id).kind;
    std::string label = srcStore.get(object_id).label;
    // Source pays the serialize; destination pays the network hop.
    // The two shards run on separate simulated kernels, so each side's
    // clock advances by its own share.
    src.kernel->advance(src.kernel->costs().copyCost(bytes.size()));
    dst.kernel->advance(
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte * static_cast<double>(bytes.size())));
    dst.runtime->hostStore().materialize(object_id, kind, bytes, label);
    // Exactly one shard stays authoritative: stale copies on the
    // source stop resolving (and its dedup caches drop responses that
    // referenced the object).
    srcRt.evictObject(object_id);
    objectShard_[object_id] = to;
    ++stats_.migrations;
    stats_.migrationBytes += bytes.size();
}

bool
ShardRouter::restoreReplica(uint32_t to, uint64_t object_id)
{
    auto it = replicas_.find(object_id);
    if (it == replicas_.end())
        return false;
    Shard &dst = shards_.at(to);
    const Replica &replica = it->second;
    dst.kernel->advance(
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte *
            static_cast<double>(replica.bytes.size())));
    dst.runtime->hostStore().materialize(object_id, replica.kind,
                                         replica.bytes, replica.label);
    objectShard_[object_id] = to;
    ++stats_.replicaRestores;
    return true;
}

void
ShardRouter::saveReplica(uint32_t shard_id, uint64_t object_id)
{
    Shard &shard = shards_.at(shard_id);
    core::FreePartRuntime &rt = *shard.runtime;
    if (!rt.hasObject(object_id))
        return;
    fw::ObjectStore &store = rt.storeOf(rt.homeOf(object_id));
    if (!store.has(object_id))
        return;
    Replica replica;
    replica.kind = store.get(object_id).kind;
    replica.label = store.get(object_id).label;
    replica.bytes = store.serialize(object_id);
    // Capture rides the result path while the data is hot: in-place
    // copy rate, charged to the owning shard.
    shard.kernel->advance(
        shard.kernel->costs().copyCostInPlace(replica.bytes.size()));
    auto it = replicas_.find(object_id);
    if (it != replicas_.end())
        stats_.replicaBytes -= it->second.bytes.size();
    stats_.replicaBytes += replica.bytes.size();
    replicas_[object_id] = std::move(replica);
    ++stats_.replicaSaves;
}

void
ShardRouter::noteResults(uint32_t shard_id, uint64_t routing_key,
                         const ipc::ValueList &values)
{
    for (const ipc::Value &value : values) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        objectShard_[id] = shard_id;
        objectKey_[id] = routing_key;
        if (config.replicateObjects)
            saveReplica(shard_id, id);
    }
}

uint64_t
ShardRouter::createMat(uint64_t routing_key, uint32_t rows,
                       uint32_t cols, uint32_t ch, uint64_t seed,
                       const std::string &label)
{
    uint32_t owner = ring_.ownerOf(routing_key);
    if (owner == kInvalidShard)
        util::panic("createMat: no live shards in the ring");
    Shard &shard = shards_.at(owner);
    uint64_t id =
        shard.runtime->createHostMat(rows, cols, ch, seed, label);
    objectShard_[id] = owner;
    objectKey_[id] = routing_key;
    if (config.replicateObjects)
        saveReplica(owner, id);
    return id;
}

void
ShardRouter::drainAll()
{
    for (Shard &shard : shards_)
        if (shard.live)
            shard.runtime->drainAll();
}

uint32_t
ShardRouter::addShard(SeedFn seed)
{
    uint32_t id = static_cast<uint32_t>(shards_.size());
    Shard shard;
    shard.id = id;
    shard.kernel = std::make_unique<osim::Kernel>();
    if (seed)
        seed(*shard.kernel);
    core::RuntimeConfig rc = config.runtime;
    rc.shardId = id + 1;
    shard.runtime = std::make_unique<core::FreePartRuntime>(
        *shard.kernel, registry, cats, plan_, rc);
    shards_.push_back(std::move(shard));
    ring_.addShard(id);
    ++stats_.shardsJoined;

    // Proactive push: keys whose ring slot remapped to the joiner get
    // their objects sent over now, while the join is the only traffic,
    // instead of as a first-touch migration stall inside some later
    // call. Large objects still move lazily (or draw the call to
    // themselves via the proxy path).
    std::vector<std::pair<uint64_t, uint64_t>> snapshot(
        objectKey_.begin(), objectKey_.end());
    for (const auto &[object_id, routing_key] : snapshot) {
        if (ring_.ownerOf(routing_key) != id)
            continue;
        uint32_t owner = lookupShard(object_id);
        if (owner == kInvalidShard || owner == id)
            continue;
        const Shard &src = shards_.at(owner);
        if (!src.live)
            continue;
        core::FreePartRuntime &rt = *src.runtime;
        uint32_t home = rt.homeOf(object_id);
        if (!rt.storeOf(home).has(object_id))
            continue;
        size_t bytes = rt.storeOf(home).get(object_id).byteLen;
        if (bytes > config.migrationMaxBytes)
            continue;
        migrateObject(owner, id, object_id);
        ++stats_.proactivePushes;
        stats_.proactivePushBytes += bytes;
    }
    util::inform("cluster: shard %u joined; %zu shards in ring, "
                 "%llu objects pushed",
                 id, ring_.shardCount(),
                 static_cast<unsigned long long>(
                     stats_.proactivePushes));
    return id;
}

RoutedCall
ShardRouter::invoke(uint64_t routing_key, const std::string &api_name,
                    ipc::ValueList args, uint64_t dedup_token)
{
    ++stats_.routedCalls;
    RoutedCall out;

    // At-least-once dedup: a token already acknowledged is answered
    // from the cluster cache — the client may resubmit after a shard
    // failure without double-executing.
    if (dedup_token != 0) {
        if (const ipc::ValueList *hit = dedup_.find(dedup_token)) {
            ++stats_.dedupHits;
            out.result.ok = true;
            out.result.values = *hit;
            out.deduped = true;
            out.shard = ring_.ownerOf(routing_key);
            return out;
        }
    }

    // Failover loop: each iteration routes against the current ring;
    // a shard that leaves the ring mid-call sends us back here with
    // the keys already remapped to the survivors.
    for (uint32_t attempt = 0; attempt <= config.shardCount;
         ++attempt) {
        uint32_t target = ring_.ownerOf(routing_key);
        if (target == kInvalidShard) {
            out.result.error = "cluster: no live shards in the ring";
            ++stats_.callsFailed;
            return out;
        }

        // Migrate-vs-proxy: a large input on another live, serving
        // shard pulls the call to itself instead of moving its bytes.
        uint32_t exec = target;
        bool proxied = false;
        size_t largest = config.migrationMaxBytes;
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            uint64_t id = value.asRef().objectId;
            uint32_t owner = lookupShard(id);
            if (owner == kInvalidShard || owner == target)
                continue;
            const Shard &shard = shards_.at(owner);
            if (!shard.live || !ring_.contains(owner))
                continue;
            core::FreePartRuntime &rt = *shard.runtime;
            size_t bytes =
                rt.storeOf(rt.homeOf(id)).get(id).byteLen;
            if (bytes > largest) {
                largest = bytes;
                exec = owner;
                proxied = true;
            }
        }

        // Stage inputs onto the executing shard: local refs stay put,
        // remote ones migrate, dead owners fall back to replicas.
        bool lost = false;
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            uint64_t id = value.asRef().objectId;
            uint32_t owner = lookupShard(id);
            if (owner == exec) {
                ++stats_.localInputs;
                continue;
            }
            if (owner != kInvalidShard && shards_.at(owner).live) {
                migrateObject(owner, exec, id);
                continue;
            }
            if (restoreReplica(exec, id))
                continue;
            out.result = core::ApiResult();
            out.result.error =
                "cluster: object " + std::to_string(id) +
                " lost with its shard (no replica)";
            ++stats_.lostObjects;
            lost = true;
            break;
        }
        if (lost) {
            out.shard = exec;
            ++stats_.callsFailed;
            return out;
        }

        Shard &shard = shards_.at(exec);
        core::ApiResult result;
        if (config.runtime.pipelineParallel) {
            // Async-per-shard: issue without waiting so consecutive
            // calls landing on the same shard overlap on its agent
            // timelines. invoke() would sync the shard's host clock
            // per call and serialize everything the ring co-located.
            // args stays intact: a failed call may retry on the next
            // ring owner after this shard leaves the ring.
            core::CallTicket ticket =
                shard.runtime->invokeAsync(api_name, args);
            if (const core::ApiResult *peeked =
                    shard.runtime->peekResult(ticket))
                result = *peeked;
            else
                result.error = "async ticket vanished";
        } else {
            result = shard.runtime->invoke(api_name, args);
        }
        ++shard.calls;

        if (result.ok) {
            noteResults(exec, routing_key, result.values);
            if (dedup_token != 0)
                dedup_.insert(dedup_token, result.values);
            ++stats_.callsOk;
            if (proxied)
                ++stats_.proxiedCalls;
            out.result = std::move(result);
            out.shard = exec;
            out.proxied = proxied;
            return out;
        }

        // Health integration: host death kills the shard, quarantine
        // pressure drains it. Either way the ring loses its vnodes
        // and this call retries on the new owner of the key.
        if (checkShardHealth(exec)) {
            ++out.failovers;
            ++stats_.failovers;
            continue;
        }
        out.result = std::move(result);
        out.shard = exec;
        out.proxied = proxied;
        ++stats_.callsFailed;
        return out;
    }

    if (out.result.error.empty())
        out.result.error = "cluster: failover budget exhausted";
    ++stats_.callsFailed;
    return out;
}

const ClusterStats &
ShardRouter::stats()
{
    stats_.callsPerShard.assign(shards_.size(), 0);
    core::RunStats totals;
    osim::SimTime makespan = 0;
    for (Shard &shard : shards_) {
        stats_.callsPerShard[shard.id] = shard.calls;
        const core::RunStats &rs = shard.runtime->stats();
        accumulate(totals, rs);
        makespan = std::max(makespan, rs.elapsed());
    }
    stats_.shardTotals = totals;
    stats_.makespan = makespan;
    return stats_;
}

} // namespace freepart::shard
