#include "shard/shard_router.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "util/logging.hh"

namespace freepart::shard {

namespace {

/** Sum one shard's runtime counters into the cluster roll-up.
 *  Time-window fields (startTime/endTime) stay per-shard — the
 *  cluster aggregates them as makespan, not a sum. */
void
accumulate(core::RunStats &into, const core::RunStats &s)
{
    into.apiCalls += s.apiCalls;
    into.ipcMessages += s.ipcMessages;
    into.bytesTransferred += s.bytesTransferred;
    into.lazyCopies += s.lazyCopies;
    into.directCopies += s.directCopies;
    into.eagerCopies += s.eagerCopies;
    into.piggybackedFetches += s.piggybackedFetches;
    into.hotSends += s.hotSends;
    into.hotWindowGrows += s.hotWindowGrows;
    into.hotWindowDecays += s.hotWindowDecays;
    into.hotWindowDepthPeak =
        std::max(into.hotWindowDepthPeak, s.hotWindowDepthPeak);
    into.protectionFlips += s.protectionFlips;
    into.stateChanges += s.stateChanges;
    into.agentCrashes += s.agentCrashes;
    into.agentRestarts += s.agentRestarts;
    into.retriedCalls += s.retriedCalls;
    into.memFaults += s.memFaults;
    into.syscallDenials += s.syscallDenials;
    into.transientFaults += s.transientFaults;
    into.channelLosses += s.channelLosses;
    into.dedupHits += s.dedupHits;
    into.dedupEvictions += s.dedupEvictions;
    into.retriesExhausted += s.retriesExhausted;
    into.quarantines += s.quarantines;
    into.hostFallbackCalls += s.hostFallbackCalls;
    into.statefulFastFails += s.statefulFastFails;
    into.checkpointsTaken += s.checkpointsTaken;
    into.fullCheckpoints += s.fullCheckpoints;
    into.incrementalCheckpoints += s.incrementalCheckpoints;
    into.checkpointBytesSaved += s.checkpointBytesSaved;
    into.checkpointBytesRestored += s.checkpointBytesRestored;
    into.checkpointFallbacks += s.checkpointFallbacks;
    into.standbyPromotions += s.standbyPromotions;
    into.standbyWaitTime += s.standbyWaitTime;
    into.recoveries += s.recoveries;
    into.recoveryTime += s.recoveryTime;
    into.backoffTime += s.backoffTime;
    into.asyncCalls += s.asyncCalls;
    into.pipelineBarriers += s.pipelineBarriers;
    into.inFlightStalls += s.inFlightStalls;
    into.inFlightPeak = std::max(into.inFlightPeak, s.inFlightPeak);
    into.checkpointSourcedRestores += s.checkpointSourcedRestores;
    into.speculationStarts += s.speculationStarts;
    into.speculationCommits += s.speculationCommits;
    into.speculationRollbacks += s.speculationRollbacks;
    into.squashedWriteBytes += s.squashedWriteBytes;
    into.speculativeFetches += s.speculativeFetches;
    into.recoveredBarrierTime += s.recoveredBarrierTime;
    if (into.partitionBusyTime.size() < s.partitionBusyTime.size())
        into.partitionBusyTime.resize(s.partitionBusyTime.size(), 0);
    for (size_t p = 0; p < s.partitionBusyTime.size(); ++p)
        into.partitionBusyTime[p] += s.partitionBusyTime[p];
    into.criticalPathMakespan =
        std::max(into.criticalPathMakespan, s.criticalPathMakespan);
}

} // namespace

const char *
routeErrorName(RouteError error)
{
    switch (error) {
      case RouteError::None:
        return "none";
      case RouteError::NoLiveShards:
        return "no-live-shards";
      case RouteError::ObjectLost:
        return "object-lost";
      case RouteError::Overloaded:
        return "overloaded";
      case RouteError::DeadlineExceeded:
        return "deadline-exceeded";
      case RouteError::ExecutionFailed:
        return "execution-failed";
      case RouteError::RetriesExhausted:
        return "retries-exhausted";
    }
    return "?";
}

ShardRouter::ShardRouter(const fw::ApiRegistry &registry,
                         analysis::Categorization categorization,
                         core::PartitionPlan plan,
                         ShardRouterConfig config_in, SeedFn seed)
    : registry(registry), cats(std::move(categorization)),
      plan_(std::move(plan)), config(std::move(config_in)),
      ring_(config.vnodesPerShard), dedup_(config.dedupEntries),
      trace_(config.trace), seed_(std::move(seed)),
      monitor_(config.health, 0)
{
    // Reject configurations whose only possible behavior is silent
    // data loss, a guaranteed stall, or a div-by-zero downstream.
    if (config.vnodesPerShard == 0)
        util::fatal("ShardRouterConfig: vnodesPerShard must be >= 1");
    if (config.dedupEntries == 0)
        util::fatal("ShardRouterConfig: dedupEntries must be >= 1 "
                    "(at-least-once failover needs the cluster cache)");
    if (config.migrationMaxBytes == 0 && !config.replicateObjects)
        util::fatal("ShardRouterConfig: migrationMaxBytes 0 with "
                    "replicateObjects off makes every cross-shard "
                    "input unrecoverable after a shard loss");
    if (config.hedgeRequests && config.retryBudget == 0)
        util::fatal("ShardRouterConfig: hedgeRequests needs "
                    "retryBudget >= 1 (the hedge rides a retry slot)");
    if (config.maxQueueDepth == 0)
        util::fatal("ShardRouterConfig: maxQueueDepth must be >= 1 "
                    "(0 would shed every admission)");
    if (config.netPerByte < 0.0)
        util::fatal("ShardRouterConfig: netPerByte must be >= 0");
    if (config.health.ewmaAlpha <= 0.0 || config.health.ewmaAlpha > 1.0)
        util::fatal("ShardRouterConfig: health.ewmaAlpha %.3f outside "
                    "(0, 1]",
                    config.health.ewmaAlpha);
    if (config.health.missedForSuspect == 0 ||
        config.health.missedForSuspect > config.health.missedForDead)
        util::fatal("ShardRouterConfig: health thresholds need "
                    "1 <= missedForSuspect (%u) <= missedForDead (%u)",
                    config.health.missedForSuspect,
                    config.health.missedForDead);
    if (config.health.suspectLatencyFactor < 1.0)
        util::fatal("ShardRouterConfig: health.suspectLatencyFactor "
                    "must be >= 1");
    if (config.placementBalanceEpsilon < 0.0)
        util::fatal("ShardRouterConfig: placementBalanceEpsilon must "
                    "be >= 0");
    if (config.repartitionEveryCalls > 0 &&
        config.placementPolicy != PlacementPolicy::Optimized)
        util::fatal("ShardRouterConfig: repartitionEveryCalls needs "
                    "placementPolicy Optimized (the Hash policy never "
                    "re-partitions)");

    if (config.shardCount == 0)
        config.shardCount = 1;
    shards_.reserve(config.shardCount);
    for (uint32_t s = 0; s < config.shardCount; ++s) {
        Shard shard;
        shard.id = s;
        shard.kernel = std::make_unique<osim::Kernel>();
        if (seed_)
            seed_(*shard.kernel);
        core::RuntimeConfig rc = config.runtime;
        // Namespace s+1: every shard mints from disjoint high bits,
        // and namespace 0 (an unconfigured standalone runtime) can
        // never alias a cluster id.
        rc.shardId = s + 1;
        shard.runtime = std::make_unique<core::FreePartRuntime>(
            *shard.kernel, registry, cats, plan_, rc);
        shard.runtime->supervisor().setCrashListener(
            [this, s](uint32_t) { monitor_.recordCrash(s); });
        ring_.addShard(s);
        shards_.push_back(std::move(shard));
        monitor_.addShard(0);
        busyUntil_.push_back(0);
        stalledUntil_.push_back(0);
        monitorDrained_.push_back(0);
    }
}

ShardRouter::~ShardRouter() = default;

uint32_t
ShardRouter::shardCount() const
{
    return static_cast<uint32_t>(shards_.size());
}

size_t
ShardRouter::liveShardCount() const
{
    size_t live = 0;
    for (const Shard &shard : shards_)
        if (shard.live && ring_.contains(shard.id))
            ++live;
    return live;
}

bool
ShardRouter::shardLive(uint32_t shard) const
{
    return shards_.at(shard).live;
}

uint32_t
ShardRouter::placeKey(uint64_t routing_key) const
{
    auto it = override_.find(routing_key);
    if (it != override_.end()) {
        uint32_t shard = it->second;
        // An override whose target is dead or drained is bypassed
        // (ring fallback) but kept: it re-applies when the shard
        // rejoins, and reviveShard's proactive push restores the
        // group's objects there.
        if (shard < shards_.size() && shards_[shard].live &&
            ring_.contains(shard))
            return shard;
    }
    return ring_.ownerOf(routing_key);
}

uint32_t
ShardRouter::ownerShardOf(uint64_t routing_key) const
{
    return placeKey(routing_key);
}

core::FreePartRuntime &
ShardRouter::runtime(uint32_t shard)
{
    return *shards_.at(shard).runtime;
}

osim::Kernel &
ShardRouter::kernel(uint32_t shard)
{
    return *shards_.at(shard).kernel;
}

uint32_t
ShardRouter::lookupShard(uint64_t object_id) const
{
    auto it = objectShard_.find(object_id);
    if (it != objectShard_.end())
        return it->second;
    // Lazy adoption: the object was minted by direct runtime access
    // (createHostMat on a runtime handle, a test fixture, ...).
    for (const Shard &shard : shards_) {
        if (shard.live && shard.runtime->hasObject(object_id)) {
            objectShard_[object_id] = shard.id;
            return shard.id;
        }
    }
    return kInvalidShard;
}

uint32_t
ShardRouter::homeShardOf(uint64_t object_id) const
{
    return lookupShard(object_id);
}

void
ShardRouter::killShard(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    if (!shard.live)
        return;
    shard.live = false;
    ring_.removeShard(shard_id);
    ++stats_.shardsKilled;
    util::inform("cluster: shard %u killed; %zu shards remain in ring",
                 shard_id, ring_.shardCount());
}

void
ShardRouter::drainShard(uint32_t shard_id)
{
    if (!ring_.contains(shard_id))
        return;
    ring_.removeShard(shard_id);
    ++stats_.shardsDrained;
    util::inform("cluster: shard %u drained; %zu shards remain in ring",
                 shard_id, ring_.shardCount());
}

bool
ShardRouter::checkShardHealth(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    bool wasInRing = ring_.contains(shard_id);
    if (!shard.runtime->hostAlive()) {
        killShard(shard_id);
        return wasInRing;
    }
    if (shard.runtime->supervisor().quarantinedCount() >=
        config.drainQuarantineThreshold) {
        drainShard(shard_id);
        return wasInRing;
    }
    return false;
}

void
ShardRouter::migrateObject(uint32_t from, uint32_t to,
                           uint64_t object_id)
{
    if (from == to)
        return;
    Shard &src = shards_.at(from);
    Shard &dst = shards_.at(to);
    core::FreePartRuntime &srcRt = *src.runtime;
    fw::ObjectStore &srcStore = srcRt.storeOf(srcRt.homeOf(object_id));
    std::vector<uint8_t> bytes = srcStore.serialize(object_id);
    fw::ObjKind kind = srcStore.get(object_id).kind;
    std::string label = srcStore.get(object_id).label;
    // Source pays the serialize; destination pays the network hop.
    // The two shards run on separate simulated kernels, so each side's
    // clock advances by its own share.
    src.kernel->advance(src.kernel->costs().copyCost(bytes.size()));
    dst.kernel->advance(
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte * static_cast<double>(bytes.size())) +
        transferChaosCost(to, bytes.size()));
    dst.runtime->hostStore().materialize(object_id, kind, bytes, label);
    // Exactly one shard stays authoritative: stale copies on the
    // source stop resolving (and its dedup caches drop responses that
    // referenced the object).
    srcRt.evictObject(object_id);
    objectShard_[object_id] = to;
    ++stats_.migrations;
    stats_.migratedBytes += bytes.size();
}

bool
ShardRouter::restoreReplica(uint32_t to, uint64_t object_id)
{
    auto it = replicas_.find(object_id);
    if (it == replicas_.end())
        return false;
    Shard &dst = shards_.at(to);
    const Replica &replica = it->second;
    dst.kernel->advance(
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte *
            static_cast<double>(replica.bytes.size())) +
        transferChaosCost(to, replica.bytes.size()));
    dst.runtime->hostStore().materialize(object_id, replica.kind,
                                         replica.bytes, replica.label);
    objectShard_[object_id] = to;
    ++stats_.replicaRestores;
    return true;
}

bool
ShardRouter::stageReplicaRead(uint32_t to, uint64_t object_id)
{
    Shard &dst = shards_.at(to);
    if (dst.runtime->hasObject(object_id))
        return true;
    auto it = replicas_.find(object_id);
    if (it == replicas_.end())
        return false;
    const Replica &replica = it->second;
    dst.kernel->advance(
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte *
            static_cast<double>(replica.bytes.size())) +
        transferChaosCost(to, replica.bytes.size()));
    // Deliberately NOT moving authority: the directory keeps pointing
    // at the primary copy; this shard serves from a possibly stale
    // replica snapshot (the hedged/degraded read contract).
    dst.runtime->hostStore().materialize(object_id, replica.kind,
                                         replica.bytes, replica.label);
    ++stats_.replicaStaleReads;
    return true;
}

osim::SimTime
ShardRouter::transferChaosCost(uint32_t dest, size_t bytes)
{
    if (!chaos_)
        return 0;
    osim::SimTime resend =
        config.netRoundTrip +
        static_cast<osim::SimTime>(
            config.netPerByte * static_cast<double>(bytes));
    osim::SimTime extra = 0;
    // A dropped or corrupted transfer costs a wasted send and gets
    // retried; stop re-rolling after a few so even a 100%-drop plan
    // terminates (the transfer then just goes through expensive).
    for (int attempt = 0; attempt < 4; ++attempt) {
        osim::FaultFire fire = chaos_->queryFire(
            osim::FaultPoint::ClusterTransfer,
            static_cast<osim::Pid>(dest + 1));
        if (fire.action == osim::FaultAction::Transient) {
            ++stats_.messagesDropped;
            extra += resend;
            continue;
        }
        if (fire.action == osim::FaultAction::Corrupt) {
            // Checksummed framing: the receiver detects the flip and
            // asks for a resend, same cost shape as a drop.
            ++stats_.messagesCorrupted;
            extra += resend;
            continue;
        }
        if (fire.action == osim::FaultAction::SlowDown &&
            fire.slowFactor > 1.0)
            extra += static_cast<osim::SimTime>(
                static_cast<double>(resend) * (fire.slowFactor - 1.0));
        break;
    }
    return extra;
}

void
ShardRouter::saveReplica(uint32_t shard_id, uint64_t object_id)
{
    Shard &shard = shards_.at(shard_id);
    core::FreePartRuntime &rt = *shard.runtime;
    if (!rt.hasObject(object_id))
        return;
    fw::ObjectStore &store = rt.storeOf(rt.homeOf(object_id));
    if (!store.has(object_id))
        return;
    Replica replica;
    replica.kind = store.get(object_id).kind;
    replica.label = store.get(object_id).label;
    replica.bytes = store.serialize(object_id);
    // Capture rides the result path while the data is hot: in-place
    // copy rate, charged to the owning shard.
    shard.kernel->advance(
        shard.kernel->costs().copyCostInPlace(replica.bytes.size()));
    auto it = replicas_.find(object_id);
    if (it != replicas_.end())
        stats_.replicaBytes -= it->second.bytes.size();
    stats_.replicaBytes += replica.bytes.size();
    replicas_[object_id] = std::move(replica);
    ++stats_.replicaSaves;
}

void
ShardRouter::noteResults(uint32_t shard_id, uint64_t routing_key,
                         const ipc::ValueList &values)
{
    for (const ipc::Value &value : values) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        objectShard_[id] = shard_id;
        objectKey_[id] = routing_key;
        if (config.replicateObjects)
            saveReplica(shard_id, id);
    }
}

uint64_t
ShardRouter::createMat(uint64_t routing_key, uint32_t rows,
                       uint32_t cols, uint32_t ch, uint64_t seed,
                       const std::string &label)
{
    uint32_t owner = placeKey(routing_key);
    if (owner == kInvalidShard)
        util::panic("createMat: no live shards in the ring");
    Shard &shard = shards_.at(owner);
    uint64_t id =
        shard.runtime->createHostMat(rows, cols, ch, seed, label);
    objectShard_[id] = owner;
    objectKey_[id] = routing_key;
    if (config.replicateObjects)
        saveReplica(owner, id);
    return id;
}

void
ShardRouter::drainAll()
{
    for (Shard &shard : shards_)
        if (shard.live)
            shard.runtime->drainAll();
}

void
ShardRouter::proactivePush(uint32_t target)
{
    // Proactive push: keys whose ring slot remapped to the joiner get
    // their objects sent over now, while the join is the only traffic,
    // instead of as a first-touch migration stall inside some later
    // call. Large objects still move lazily (or draw the call to
    // themselves via the proxy path).
    std::vector<std::pair<uint64_t, uint64_t>> snapshot(
        objectKey_.begin(), objectKey_.end());
    for (const auto &[object_id, routing_key] : snapshot) {
        if (placeKey(routing_key) != target)
            continue;
        uint32_t owner = lookupShard(object_id);
        if (owner == kInvalidShard || owner == target)
            continue;
        const Shard &src = shards_.at(owner);
        if (!src.live)
            continue;
        core::FreePartRuntime &rt = *src.runtime;
        uint32_t home = rt.homeOf(object_id);
        if (!rt.storeOf(home).has(object_id))
            continue;
        size_t bytes = rt.storeOf(home).get(object_id).byteLen;
        if (bytes > config.migrationMaxBytes)
            continue;
        migrateObject(owner, target, object_id);
        ++stats_.proactivePushes;
        stats_.proactivePushBytes += bytes;
    }
}

uint32_t
ShardRouter::addShard(SeedFn seed)
{
    uint32_t id = static_cast<uint32_t>(shards_.size());
    Shard shard;
    shard.id = id;
    shard.kernel = std::make_unique<osim::Kernel>();
    if (seed)
        seed(*shard.kernel);
    core::RuntimeConfig rc = config.runtime;
    rc.shardId = id + 1;
    shard.runtime = std::make_unique<core::FreePartRuntime>(
        *shard.kernel, registry, cats, plan_, rc);
    shard.runtime->supervisor().setCrashListener(
        [this, id](uint32_t) { monitor_.recordCrash(id); });
    shards_.push_back(std::move(shard));
    ring_.addShard(id);
    ++stats_.shardsJoined;
    monitor_.addShard(0);
    busyUntil_.push_back(0);
    stalledUntil_.push_back(0);
    monitorDrained_.push_back(0);

    proactivePush(id);
    util::inform("cluster: shard %u joined; %zu shards in ring, "
                 "%llu objects pushed",
                 id, ring_.shardCount(),
                 static_cast<unsigned long long>(
                     stats_.proactivePushes));
    return id;
}

void
ShardRouter::reviveShard(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    if (shard.live && ring_.contains(shard_id))
        return;
    if (!shard.live) {
        // Host death: the old incarnation's stores are gone. Scrub
        // directory entries still pointing at it so staging falls
        // through to replicas, then bring up a fresh incarnation on
        // the same slot (same id namespace).
        for (auto it = objectShard_.begin();
             it != objectShard_.end();) {
            if (it->second == shard_id)
                it = objectShard_.erase(it);
            else
                ++it;
        }
        // Tear down the old incarnation before its kernel: the runtime
        // (and its object stores) unmap through the kernel on
        // destruction, so the kernel must outlive it.
        shard.runtime.reset();
        shard.kernel = std::make_unique<osim::Kernel>();
        if (seed_)
            seed_(*shard.kernel);
        core::RuntimeConfig rc = config.runtime;
        rc.shardId = shard_id + 1;
        shard.runtime = std::make_unique<core::FreePartRuntime>(
            *shard.kernel, registry, cats, plan_, rc);
        shard.runtime->supervisor().setCrashListener(
            [this, shard_id](uint32_t) {
                monitor_.recordCrash(shard_id);
            });
        shard.live = true;
    }
    // A drained shard keeps its runtime (and its objects); either way
    // the slot re-enters the ring with a clean health history.
    shard.retired = false;
    if (!ring_.contains(shard_id))
        ring_.addShard(shard_id);
    stalledUntil_[shard_id] = 0;
    monitorDrained_[shard_id] = 0;
    monitor_.reset(shard_id, busyUntil_[shard_id]);
    ++stats_.shardsRejoined;
    proactivePush(shard_id);
    util::inform("cluster: shard %u rejoined; %zu shards in ring",
                 shard_id, ring_.shardCount());
}

bool
ShardRouter::retireShard(uint32_t shard_id)
{
    Shard &shard = shards_.at(shard_id);
    if (!shard.live || !ring_.contains(shard_id))
        return false;
    if (ring_.shardCount() <= 1)
        return false; // never retire the last serving shard

    // Leave the ring first so placeKey resolves the evacuation
    // targets among the survivors.
    ring_.removeShard(shard_id);

    // Scrub overrides before evacuating: an overridden group must
    // evacuate to its ring fallback, and the override table must not
    // steer keys back here if the slot is later revived for scale-up
    // (contrast killShard, whose overrides deliberately survive so a
    // rebuilt host picks its load back up).
    for (auto it = override_.begin(); it != override_.end();) {
        if (it->second == shard_id) {
            it = override_.erase(it);
            ++stats_.overridesScrubbed;
        } else {
            ++it;
        }
    }

    // Evacuate every object this shard still owns so no acknowledged
    // result is lost: serializable copies migrate (authority moves,
    // source evicts), checkpoint-only stragglers restore from their
    // replica on the new owner, anything else just drops out of the
    // directory.
    std::vector<uint64_t> owned;
    for (const auto &[object_id, owner] : objectShard_)
        if (owner == shard_id)
            owned.push_back(object_id);
    core::FreePartRuntime &rt = *shard.runtime;
    std::set<uint64_t> lostIds;
    for (uint64_t id : owned) {
        auto keyIt = objectKey_.find(id);
        uint64_t key = keyIt != objectKey_.end() ? keyIt->second : id;
        uint32_t dest = placeKey(key);
        if (dest == kInvalidShard || dest == shard_id) {
            objectShard_.erase(id);
            lostIds.insert(id);
            continue;
        }
        if (rt.hasObject(id) &&
            rt.storeOf(rt.homeOf(id)).has(id)) {
            migrateObject(shard_id, dest, id);
            ++stats_.retireEvacuations;
            continue;
        }
        objectShard_.erase(id);
        if (restoreReplica(dest, id))
            ++stats_.retireEvacuations;
        else
            lostIds.insert(id);
    }

    // Dedup scrub, scoped to this retirement's casualties: a cached
    // response referencing an object the retirement could not
    // evacuate must not answer a late duplicate with a dangling ref —
    // prune it so the duplicate re-executes. Entries whose objects
    // were scrubbed *deliberately* (endSession) stay: those must keep
    // answering `deduped`, and dedup hits never dereference refs.
    if (!lostIds.empty()) {
        uint64_t pruned = 0;
        dedup_.pruneIf([&lostIds,
                        &pruned](const ipc::ValueList &values) {
            for (const ipc::Value &value : values) {
                if (value.kind() == ipc::Value::Kind::Ref &&
                    lostIds.count(value.asRef().objectId) != 0) {
                    ++pruned;
                    return true;
                }
            }
            return false;
        });
        stats_.dedupScrubbed += pruned;
    }

    // The slot keeps its (now empty) runtime frozen — stats() still
    // rolls it up, and reviveShard can bring a fresh incarnation back
    // for scale-up.
    shard.live = false;
    shard.retired = true;
    stalledUntil_[shard_id] = 0;
    monitorDrained_[shard_id] = 0;
    ++stats_.shardsRetired;
    util::inform("cluster: shard %u retired; %zu shards remain in "
                 "ring, %llu objects evacuated",
                 shard_id, ring_.shardCount(),
                 static_cast<unsigned long long>(
                     stats_.retireEvacuations));
    return true;
}

bool
ShardRouter::shardRetired(uint32_t shard) const
{
    return shard < shards_.size() && shards_[shard].retired;
}

void
ShardRouter::chargeSessionStart(uint64_t routing_key,
                                osim::SimTime arrival,
                                osim::SimTime cost, bool warm)
{
    uint32_t owner = placeKey(routing_key);
    ++stats_.sessionsStarted;
    if (warm)
        ++stats_.warmCheckouts;
    else
        ++stats_.coldStarts;
    stats_.sessionStartCost += cost;
    if (owner == kInvalidShard)
        return;
    // The session's first call queues behind its own agent
    // acquisition, exactly as it would behind real process spawns.
    busyUntil_[owner] = std::max(busyUntil_[owner], arrival) + cost;
    shards_.at(owner).kernel->advance(cost);
}

size_t
ShardRouter::endSession(uint64_t routing_key)
{
    // Collect the session's objects per owning shard so each runtime
    // gets one bulk eviction pass.
    std::map<uint32_t, std::vector<uint64_t>> perShard;
    std::vector<uint64_t> ids;
    for (const auto &[object_id, key] : objectKey_) {
        if (key != routing_key)
            continue;
        ids.push_back(object_id);
        auto it = objectShard_.find(object_id);
        if (it != objectShard_.end() && it->second < shards_.size() &&
            shards_[it->second].live)
            perShard[it->second].push_back(object_id);
    }
    for (const auto &[shard_id, objects] : perShard)
        shards_[shard_id].runtime->evictObjects(objects);
    for (uint64_t id : ids) {
        objectShard_.erase(id);
        objectKey_.erase(id);
        auto it = replicas_.find(id);
        if (it != replicas_.end()) {
            stats_.replicaBytes -= it->second.bytes.size();
            replicas_.erase(it);
        }
    }
    // Cluster-dedup entries for the session's tokens are deliberately
    // NOT pruned: a late duplicate must answer `deduped` rather than
    // re-execute against freed state. Dedup hits never dereference
    // the cached refs, so they stay safe after the scrub.
    ++stats_.sessionsEnded;
    stats_.sessionObjectsScrubbed += ids.size();
    return ids.size();
}

double
ShardRouter::queueDepthAt(uint32_t shard, osim::SimTime now) const
{
    if (shard >= shards_.size() || !shards_[shard].live ||
        !ring_.contains(shard))
        return 0.0;
    osim::SimTime busy =
        std::max(busyUntil_[shard], stalledUntil_[shard]);
    if (busy <= now)
        return 0.0;
    osim::SimTime serviceEst =
        std::max(monitor_.latencyEwma(shard),
                 config.health.latencyBaselineFloor);
    return static_cast<double>(busy - now) /
           static_cast<double>(std::max<osim::SimTime>(serviceEst, 1));
}

void
ShardRouter::applyChaosSchedule(const ChaosSchedule &plan)
{
    chaos_ = std::make_unique<osim::FaultInjector>(plan.seed);
    for (const osim::FaultSpec &spec : plan.specs)
        chaos_->schedule(spec);
    chaosEvents_ = plan.events;
    chaosCursor_ = 0;
}

void
ShardRouter::applyChaosEvents()
{
    while (chaosCursor_ < chaosEvents_.size() &&
           chaosEvents_[chaosCursor_].atCall <= openLoopCalls_) {
        const ChaosEvent &event = chaosEvents_[chaosCursor_++];
        if (event.shard >= shards_.size())
            continue;
        if (event.kind == ChaosEventKind::ShardKill) {
            // Never take out the last serving shard: one-survivor
            // floors are a different experiment.
            if (liveShardCount() > 1)
                killShard(event.shard);
        } else {
            reviveShard(event.shard);
        }
    }
}

bool
ShardRouter::stalledAt(uint32_t shard, osim::SimTime now) const
{
    return stalledUntil_[shard] > now;
}

uint32_t
ShardRouter::pickAlternative(uint32_t avoid) const
{
    uint32_t best = kInvalidShard;
    osim::SimTime bestBusy = 0;
    for (const Shard &shard : shards_) {
        uint32_t s = shard.id;
        if (s == avoid || !shard.live || !ring_.contains(s))
            continue;
        if (monitor_.classify(s) != ShardHealth::Healthy)
            continue;
        osim::SimTime busy =
            std::max(busyUntil_[s], stalledUntil_[s]);
        if (best == kInvalidShard || busy < bestBusy) {
            best = s;
            bestBusy = busy;
        }
    }
    return best;
}

void
ShardRouter::healthTick(osim::SimTime now)
{
    if (config.health.heartbeatInterval == 0)
        return;
    for (Shard &shard : shards_) {
        uint32_t s = shard.id;
        if (!shard.live)
            continue; // killed slots rejoin only via reviveShard
        bool inRing = ring_.contains(s);
        if (!inRing && !monitorDrained_[s])
            continue; // quarantine-drained: the legacy signal owns it
        if (!monitor_.probeDue(s, now))
            continue;
        bool responsive =
            shard.runtime->hostAlive() && !stalledAt(s, now);
        ++stats_.probesSent;
        if (!responsive)
            ++stats_.probesMissed;
        monitor_.recordProbe(s, now, responsive);
        ShardHealth health = monitor_.classify(s);
        if (inRing && health == ShardHealth::Dead) {
            // Detection latency: the dead threshold's worth of missed
            // heartbeats is how long the stall went unnoticed.
            stats_.detectionTime +=
                static_cast<osim::SimTime>(monitor_.missedHeartbeats(s)) *
                config.health.heartbeatInterval;
            if (!shard.runtime->hostAlive()) {
                killShard(s);
            } else {
                drainShard(s);
                monitorDrained_[s] = 1;
            }
        } else if (!inRing && monitorDrained_[s] && responsive &&
                   health == ShardHealth::Healthy) {
            // The stall passed: re-admit the drained shard.
            ring_.addShard(s);
            monitorDrained_[s] = 0;
            monitor_.reset(s, now);
            ++stats_.shardsRejoined;
        }
    }
}

// ---- Load-aware placement (DESIGN.md §13) ----------------------------

uint64_t
ShardRouter::objectBytesOf(uint64_t object_id) const
{
    uint32_t owner = lookupShard(object_id);
    if (owner != kInvalidShard) {
        const Shard &shard = shards_.at(owner);
        if (shard.live && shard.runtime->hasObject(object_id)) {
            core::FreePartRuntime &rt = *shard.runtime;
            fw::ObjectStore &store = rt.storeOf(rt.homeOf(object_id));
            if (store.has(object_id))
                return store.get(object_id).byteLen;
        }
    }
    auto it = replicas_.find(object_id);
    return it != replicas_.end() ? it->second.bytes.size() : 0;
}

void
ShardRouter::notePlacementCall(uint64_t routing_key,
                               const ipc::ValueList &args)
{
    if (config.placementPolicy != PlacementPolicy::Optimized)
        return;
    // Host-side bookkeeping only: recording advances no kernel and
    // consumes no randomness, so Hash-policy runs (which skip it
    // entirely) and Optimized runs share identical simulated costs
    // until a re-partition actually moves data.
    std::vector<placement::ObjectAccess> inputs;
    for (const ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        placement::ObjectAccess access;
        access.objectId = value.asRef().objectId;
        auto it = objectKey_.find(access.objectId);
        access.group =
            it != objectKey_.end() ? it->second : routing_key;
        access.bytes = objectBytesOf(access.objectId);
        inputs.push_back(access);
    }
    trace_.recordCall(routing_key, inputs);
    if (config.repartitionEveryCalls > 0 &&
        ++callsSinceRepartition_ >= config.repartitionEveryCalls) {
        callsSinceRepartition_ = 0;
        repartitionNow();
    }
}

void
ShardRouter::repartitionNow()
{
    if (config.placementPolicy != PlacementPolicy::Optimized ||
        trace_.empty())
        return;
    std::vector<uint32_t> live;
    for (const Shard &shard : shards_)
        if (shard.live && ring_.contains(shard.id))
            live.push_back(shard.id);
    if (live.size() < 2) {
        trace_.reset(); // nothing to balance against
        return;
    }
    placement::GroupHypergraph hypergraph = trace_.contractByGroup();
    if (hypergraph.vertices.empty()) {
        trace_.reset();
        return;
    }

    placement::PartitionConfig pc;
    pc.parts = static_cast<uint32_t>(live.size());
    pc.balanceEpsilon = config.placementBalanceEpsilon;
    pc.seed = config.placementSeed;
    placement::PartitionResult solution =
        placement::partitionGroups(hypergraph, pc);

    // Map solution parts onto shard slots so the labels line up with
    // where the mass already sits: greedy maximum-overlap matching,
    // which keeps a near-no-op solution a near-no-op application.
    const size_t k = live.size();
    std::map<uint64_t, uint64_t> groupWeight;
    for (const auto &vertex : hypergraph.vertices)
        groupWeight[vertex.group] = std::max<uint64_t>(vertex.weight, 1);
    std::vector<std::vector<uint64_t>> overlap(
        k, std::vector<uint64_t>(k, 0));
    for (const auto &[group, part] : solution.groupPart) {
        uint32_t current = placeKey(group);
        for (size_t slot = 0; slot < k; ++slot)
            if (live[slot] == current) {
                overlap[part][slot] += groupWeight[group];
                break;
            }
    }
    std::vector<uint32_t> partShard(k, kInvalidShard);
    std::vector<uint8_t> partDone(k, 0), slotDone(k, 0);
    for (size_t round = 0; round < k; ++round) {
        size_t bestPart = k, bestSlot = k;
        uint64_t bestOverlap = 0;
        for (size_t part = 0; part < k; ++part) {
            if (partDone[part])
                continue;
            for (size_t slot = 0; slot < k; ++slot) {
                if (slotDone[slot])
                    continue;
                if (bestPart == k || overlap[part][slot] > bestOverlap) {
                    bestPart = part;
                    bestSlot = slot;
                    bestOverlap = overlap[part][slot];
                }
            }
        }
        partShard[bestPart] = live[bestSlot];
        partDone[bestPart] = 1;
        slotDone[bestSlot] = 1;
    }

    ++stats_.repartitions;
    stats_.placementCut = solution.cut;
    stats_.placementImbalance = solution.imbalance;
    applyPlacement(solution, partShard);
    trace_.reset(); // next epoch sees a fresh window
}

void
ShardRouter::applyPlacement(const placement::PartitionResult &solution,
                            const std::vector<uint32_t> &targets)
{
    struct GroupMove {
        uint64_t bytes = 0;
        uint64_t group = 0;
        uint32_t to = 0;
        std::vector<std::pair<uint32_t, uint64_t>> objects; // from, id
    };
    std::vector<GroupMove> moves;
    for (const auto &[group, part] : solution.groupPart) {
        uint32_t to = targets.at(part);
        if (placeKey(group) == to) {
            // Already in place: pin it against ring churn for free.
            override_[group] = to;
            continue;
        }
        GroupMove move;
        move.group = group;
        move.to = to;
        for (uint64_t id : trace_.objectsOf(group)) {
            uint32_t owner = lookupShard(id);
            if (owner == kInvalidShard || owner == to ||
                !shards_.at(owner).live)
                continue;
            uint64_t bytes = objectBytesOf(id);
            if (bytes == 0 || bytes > config.migrationMaxBytes)
                continue; // oversized: stays put, the proxy path owns it
            move.objects.emplace_back(owner, id);
            move.bytes += bytes;
        }
        moves.push_back(std::move(move));
    }

    // Cheapest groups first, so the epoch budget relocates as many
    // keys as possible; groups that do not fit are deferred — the
    // next epoch recomputes from a fresh trace and retries.
    std::sort(moves.begin(), moves.end(),
              [](const GroupMove &a, const GroupMove &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes < b.bytes;
                  return a.group < b.group;
              });
    uint64_t moved = 0;
    for (const GroupMove &move : moves) {
        if (moved + move.bytes > config.migrationMaxBytes) {
            ++stats_.placementDeferrals;
            continue;
        }
        override_[move.group] = move.to;
        for (const auto &[from, id] : move.objects) {
            migrateObject(from, move.to, id);
            ++stats_.placementMoves;
        }
        moved += move.bytes;
    }
    stats_.placementMovedBytes += moved;
    stats_.placementEpochBytesPeak =
        std::max(stats_.placementEpochBytesPeak, moved);
    if (moved > 0)
        util::inform("cluster: placement epoch moved %llu bytes "
                     "(%llu overrides active)",
                     static_cast<unsigned long long>(moved),
                     static_cast<unsigned long long>(override_.size()));
}

RoutedCall
ShardRouter::invoke(uint64_t routing_key, const std::string &api_name,
                    ipc::ValueList args, uint64_t dedup_token)
{
    ++stats_.routedCalls;
    notePlacementCall(routing_key, args);
    RoutedCall out;

    // At-least-once dedup: a token already acknowledged is answered
    // from the cluster cache — the client may resubmit after a shard
    // failure without double-executing.
    if (dedup_token != 0) {
        if (const ipc::ValueList *hit = dedup_.find(dedup_token)) {
            ++stats_.dedupHits;
            out.result.ok = true;
            out.result.values = *hit;
            out.deduped = true;
            out.shard = placeKey(routing_key);
            return out;
        }
    }

    // Failover loop: each iteration routes against the current ring;
    // a shard that leaves the ring mid-call sends us back here with
    // the keys already remapped to the survivors.
    for (uint32_t attempt = 0; attempt <= config.shardCount;
         ++attempt) {
        uint32_t target = placeKey(routing_key);
        if (target == kInvalidShard) {
            out.result.error = "cluster: no live shards in the ring";
            out.errorKind = RouteError::NoLiveShards;
            ++stats_.callsFailed;
            return out;
        }

        // Migrate-vs-proxy: a large input on another live, serving
        // shard pulls the call to itself instead of moving its bytes.
        uint32_t exec = target;
        bool proxied = false;
        size_t largest = config.migrationMaxBytes;
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            uint64_t id = value.asRef().objectId;
            uint32_t owner = lookupShard(id);
            if (owner == kInvalidShard || owner == target)
                continue;
            const Shard &shard = shards_.at(owner);
            if (!shard.live || !ring_.contains(owner))
                continue;
            core::FreePartRuntime &rt = *shard.runtime;
            size_t bytes =
                rt.storeOf(rt.homeOf(id)).get(id).byteLen;
            if (bytes > largest) {
                largest = bytes;
                exec = owner;
                proxied = true;
            }
        }

        // Stage inputs onto the executing shard: local refs stay put,
        // remote ones migrate, dead owners fall back to replicas.
        bool lost = false;
        bool cross = proxied;
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            uint64_t id = value.asRef().objectId;
            uint32_t owner = lookupShard(id);
            if (owner == exec) {
                ++stats_.localInputs;
                if (proxied)
                    stats_.proxiedBytes += objectBytesOf(id);
                continue;
            }
            if (owner != kInvalidShard && shards_.at(owner).live) {
                migrateObject(owner, exec, id);
                cross = true;
                continue;
            }
            if (restoreReplica(exec, id)) {
                cross = true;
                continue;
            }
            out.result = core::ApiResult();
            out.result.error =
                "cluster: object " + std::to_string(id) +
                " lost with its shard (no replica)";
            out.errorKind = RouteError::ObjectLost;
            out.lostObjectId = id;
            ++stats_.lostObjects;
            lost = true;
            break;
        }
        if (lost) {
            out.shard = exec;
            ++stats_.callsFailed;
            return out;
        }

        Shard &shard = shards_.at(exec);
        core::ApiResult result;
        if (config.runtime.pipelineParallel) {
            // Async-per-shard: issue without waiting so consecutive
            // calls landing on the same shard overlap on its agent
            // timelines. invoke() would sync the shard's host clock
            // per call and serialize everything the ring co-located.
            // args stays intact: a failed call may retry on the next
            // ring owner after this shard leaves the ring.
            core::CallTicket ticket =
                shard.runtime->invokeAsync(api_name, args);
            if (const core::ApiResult *peeked =
                    shard.runtime->peekResult(ticket))
                result = *peeked;
            else
                result.error = "async ticket vanished";
        } else {
            result = shard.runtime->invoke(api_name, args);
        }
        ++shard.calls;

        if (result.ok) {
            noteResults(exec, routing_key, result.values);
            if (dedup_token != 0)
                dedup_.insert(dedup_token, result.values);
            ++stats_.callsOk;
            if (proxied)
                ++stats_.proxiedCalls;
            if (cross)
                ++stats_.crossShardCalls;
            out.result = std::move(result);
            out.shard = exec;
            out.proxied = proxied;
            return out;
        }

        // Health integration: host death kills the shard, quarantine
        // pressure drains it. Either way the ring loses its vnodes
        // and this call retries on the new owner of the key.
        if (checkShardHealth(exec)) {
            ++out.failovers;
            ++stats_.failovers;
            continue;
        }
        out.result = std::move(result);
        out.shard = exec;
        out.proxied = proxied;
        out.errorKind = RouteError::ExecutionFailed;
        ++stats_.callsFailed;
        return out;
    }

    if (out.result.error.empty())
        out.result.error = "cluster: failover budget exhausted";
    out.errorKind = RouteError::RetriesExhausted;
    ++stats_.callsFailed;
    return out;
}

RoutedCall
ShardRouter::invokeAt(uint64_t routing_key, const std::string &api_name,
                      ipc::ValueList args, const CallOptions &opts)
{
    ++stats_.routedCalls;
    notePlacementCall(routing_key, args);
    ++openLoopCalls_;
    applyChaosEvents();

    const osim::SimTime arrival = opts.arrival;
    healthTick(arrival);

    RoutedCall out;
    osim::SimTime deadline =
        opts.deadline != 0 ? opts.deadline : config.defaultDeadline;

    if (opts.dedupToken != 0) {
        if (const ipc::ValueList *hit = dedup_.find(opts.dedupToken)) {
            ++stats_.dedupHits;
            out.result.ok = true;
            out.result.values = *hit;
            out.deduped = true;
            out.shard = placeKey(routing_key);
            return out;
        }
    }

    auto startAt = [&](uint32_t s) {
        return std::max({busyUntil_[s], stalledUntil_[s], arrival});
    };

    uint32_t budget = std::max<uint32_t>(config.retryBudget, 1);
    for (uint32_t attempt = 0; attempt < budget; ++attempt) {
        if (attempt > 0)
            ++stats_.retriesSpent;
        uint32_t target = placeKey(routing_key);
        if (target == kInvalidShard) {
            out.result.error = "cluster: no live shards in the ring";
            out.errorKind = RouteError::NoLiveShards;
            ++stats_.callsFailed;
            return out;
        }

        // Injected admission chaos against the ring owner.
        double slowFactor = 1.0;
        if (chaos_) {
            osim::FaultFire fire = chaos_->queryFire(
                osim::FaultPoint::ShardAdmission,
                static_cast<osim::Pid>(target + 1));
            switch (fire.action) {
              case osim::FaultAction::Stall:
                stalledUntil_[target] =
                    std::max(stalledUntil_[target], arrival) +
                    fire.stallTime;
                ++stats_.chaosStalls;
                break;
              case osim::FaultAction::SlowDown:
                slowFactor = std::max(fire.slowFactor, 1.0);
                if (slowFactor > 1.0)
                    ++stats_.chaosSlowCalls;
                break;
              case osim::FaultAction::Transient:
                // The routed request is dropped on the wire before
                // the shard sees it: burn the attempt and retry.
                ++stats_.messagesDropped;
                monitor_.recordFailure(target, arrival);
                continue;
              case osim::FaultAction::Crash:
              case osim::FaultAction::Corrupt:
              case osim::FaultAction::None:
                break;
            }
        }

        // Hedge: a stalled or suspect primary loses the attempt to a
        // healthy peer serving from replica snapshots; a duplicate
        // answer from the primary later collapses in the dedup cache.
        uint32_t exec = target;
        bool hedged = false;
        if (config.hedgeRequests && config.replicateObjects &&
            (stalledAt(target, arrival) ||
             monitor_.classify(target) != ShardHealth::Healthy)) {
            uint32_t alt = pickAlternative(target);
            if (alt != kInvalidShard) {
                exec = alt;
                hedged = true;
            }
        }

        bool proxied = false;
        if (!hedged) {
            // Migrate-vs-proxy, as on the closed-loop path.
            size_t largest = config.migrationMaxBytes;
            for (const ipc::Value &value : args) {
                if (value.kind() != ipc::Value::Kind::Ref)
                    continue;
                uint64_t id = value.asRef().objectId;
                uint32_t owner = lookupShard(id);
                if (owner == kInvalidShard || owner == target)
                    continue;
                const Shard &shard = shards_.at(owner);
                if (!shard.live || !ring_.contains(owner))
                    continue;
                core::FreePartRuntime &rt = *shard.runtime;
                size_t bytes =
                    rt.storeOf(rt.homeOf(id)).get(id).byteLen;
                if (bytes > largest) {
                    largest = bytes;
                    exec = owner;
                    proxied = true;
                }
            }
        }

        // Admission control before any data moves: the call would
        // start after the queue ahead of it and any injected stall.
        osim::SimTime start = startAt(exec);
        osim::SimTime wait = start - arrival;
        osim::SimTime serviceEst =
            std::max(monitor_.latencyEwma(exec),
                     config.health.latencyBaselineFloor);
        uint64_t depth = wait / std::max<osim::SimTime>(serviceEst, 1);
        stats_.queueDepthPeak = std::max(stats_.queueDepthPeak, depth);
        bool infeasible =
            deadline != 0 && wait + serviceEst > deadline;
        bool degraded = false;
        if (depth > config.maxQueueDepth || infeasible) {
            // Degraded fallback: serve from the least-loaded healthy
            // shard via stale replica reads rather than queueing
            // without bound — shed only when no shard can take it.
            uint32_t alt =
                (config.degradedReads && config.replicateObjects)
                    ? pickAlternative(exec)
                    : kInvalidShard;
            bool altOk = false;
            if (alt != kInvalidShard) {
                osim::SimTime altWait = startAt(alt) - arrival;
                uint64_t altDepth =
                    altWait / std::max<osim::SimTime>(serviceEst, 1);
                altOk = altDepth <= config.maxQueueDepth &&
                        (deadline == 0 ||
                         altWait + serviceEst <= deadline);
            }
            if (altOk) {
                exec = alt;
                degraded = true;
                proxied = false;
                start = startAt(exec);
                wait = start - arrival;
            } else {
                out.result = core::ApiResult();
                out.result.error =
                    infeasible
                        ? "cluster: deadline infeasible at admission"
                        : "cluster: shard admission queue full";
                out.errorKind = infeasible
                                    ? RouteError::DeadlineExceeded
                                    : RouteError::Overloaded;
                out.shed = true;
                out.shard = exec;
                out.queueWait = wait;
                ++stats_.shedCalls;
                ++stats_.callsFailed;
                return out;
            }
        }

        // Stage inputs onto the executing shard. Hedged/degraded
        // attempts read replica snapshots without moving authority.
        Shard &shard = shards_.at(exec);
        osim::SimTime before = shard.kernel->now();
        bool staged = true;
        bool cross = proxied || hedged || degraded;
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            uint64_t id = value.asRef().objectId;
            if (hedged || degraded) {
                if (stageReplicaRead(exec, id))
                    continue;
            } else {
                uint32_t owner = lookupShard(id);
                if (owner == exec) {
                    ++stats_.localInputs;
                    if (proxied)
                        stats_.proxiedBytes += objectBytesOf(id);
                    continue;
                }
                if (owner != kInvalidShard && shards_.at(owner).live) {
                    migrateObject(owner, exec, id);
                    cross = true;
                    continue;
                }
                if (restoreReplica(exec, id)) {
                    cross = true;
                    continue;
                }
            }
            out.result = core::ApiResult();
            out.result.error =
                "cluster: object " + std::to_string(id) +
                " lost with its shard (no replica)";
            out.errorKind = RouteError::ObjectLost;
            out.lostObjectId = id;
            ++stats_.lostObjects;
            staged = false;
            break;
        }
        if (!staged) {
            out.shard = exec;
            ++stats_.callsFailed;
            return out;
        }

        core::ApiResult result;
        if (config.runtime.pipelineParallel) {
            core::CallTicket ticket =
                shard.runtime->invokeAsync(api_name, args);
            if (const core::ApiResult *peeked =
                    shard.runtime->peekResult(ticket))
                result = *peeked;
            else
                result.error = "async ticket vanished";
        } else {
            result = shard.runtime->invoke(api_name, args);
        }
        osim::SimTime span = shard.kernel->now() - before;
        if (slowFactor > 1.0 && exec == target && span > 0) {
            // The injected slow-down stretches everything this call
            // did on the shard (staging + execution).
            auto extra = static_cast<osim::SimTime>(
                static_cast<double>(span) * (slowFactor - 1.0));
            shard.kernel->advance(extra);
            span += extra;
        }
        ++shard.calls;

        if (result.ok) {
            busyUntil_[exec] = start + span;
            out.latency = busyUntil_[exec] - arrival;
            out.queueWait = wait;
            monitor_.recordSuccess(exec, arrival, span);
            noteResults(exec, routing_key, result.values);
            if (opts.dedupToken != 0)
                dedup_.insert(opts.dedupToken, result.values);
            ++stats_.callsOk;
            if (proxied)
                ++stats_.proxiedCalls;
            if (cross)
                ++stats_.crossShardCalls;
            if (hedged)
                ++stats_.hedgedCalls;
            if (degraded)
                ++stats_.degradedCalls;
            if (deadline != 0 && out.latency > deadline) {
                out.deadlineMissed = true;
                ++stats_.deadlineMisses;
            }
            out.result = std::move(result);
            out.shard = exec;
            out.proxied = proxied;
            out.hedged = hedged;
            out.degraded = degraded;
            return out;
        }

        // Failure: the shard still ran (and burned) simulated time.
        busyUntil_[exec] = start + span;
        monitor_.recordFailure(exec, arrival);
        out.result = std::move(result);
        out.shard = exec;
        out.errorKind = RouteError::ExecutionFailed;
        if (checkShardHealth(exec)) {
            ++out.failovers;
            ++stats_.failovers;
        }
    }

    if (out.result.error.empty())
        out.result.error = "cluster: retry budget exhausted";
    out.errorKind = RouteError::RetriesExhausted;
    ++stats_.callsFailed;
    return out;
}

const ClusterStats &
ShardRouter::stats()
{
    stats_.suspectTransitions = monitor_.suspectTransitions();
    stats_.deadTransitions = monitor_.deadTransitions();
    stats_.callsPerShard.assign(shards_.size(), 0);
    core::RunStats totals;
    osim::SimTime makespan = 0;
    for (Shard &shard : shards_) {
        stats_.callsPerShard[shard.id] = shard.calls;
        const core::RunStats &rs = shard.runtime->stats();
        accumulate(totals, rs);
        makespan = std::max(makespan, rs.elapsed());
    }
    stats_.shardTotals = totals;
    stats_.makespan = makespan;
    stats_.placementOverrides = 0;
    for (const auto &[group, target] : override_)
        if (target < shards_.size() && shards_[target].live &&
            ring_.contains(target))
            ++stats_.placementOverrides;
    return stats_;
}

} // namespace freepart::shard
