/**
 * @file
 * Cluster health monitoring: per-shard heartbeats and call-latency
 * EWMAs on the simulated clock, classified into a three-state machine
 *
 *   Healthy -> Suspect -> Dead
 *
 * Suspicion is *timeout-driven*: a shard that stops answering probes
 * (stalled, frozen, or dead) accumulates missed heartbeats, and a
 * shard whose service-time EWMA drifts far above the cluster baseline
 * turns Suspect even while it still answers — the slow-shard case the
 * quarantine-count signal of PR 4 could never see. Agent crashes
 * reported by the per-runtime supervisors feed in as a third
 * suspicion source (the crash-listener hook on AgentSupervisor).
 *
 * The monitor only *classifies*; the ShardRouter reacts (drain, kill,
 * hedge, rejoin). All time comes from the router's arrival clock, so
 * every transition is deterministic and replayable.
 */

#ifndef FREEPART_SHARD_HEALTH_MONITOR_HH
#define FREEPART_SHARD_HEALTH_MONITOR_HH

#include <cstdint>
#include <vector>

#include "osim/types.hh"

namespace freepart::shard {

/** Health of one shard as seen from the router. */
enum class ShardHealth : uint8_t {
    Healthy, //!< answering probes, latency near the cluster baseline
    Suspect, //!< missed heartbeats, slow EWMA, or crash-looping agents
    Dead,    //!< unresponsive past the dead threshold (or host death)
};

/** Display name of a shard health state. */
const char *shardHealthName(ShardHealth health);

/** Tunable health policy (per router; applies to every shard). */
struct HealthPolicy {
    /** Probe cadence on the arrival clock. A shard not contacted
     *  (call or probe) for this long gets probed on the next router
     *  tick. 0 disables probing entirely. */
    osim::SimTime heartbeatInterval = 200'000; // 0.2 ms

    /** Missed consecutive heartbeats before Suspect / Dead. */
    uint32_t missedForSuspect = 2;
    uint32_t missedForDead = 5;

    /** Service-time EWMA smoothing factor (0 < alpha <= 1). */
    double ewmaAlpha = 0.2;

    /** A shard whose EWMA exceeds this multiple of the cluster
     *  baseline (mean over its *peers* — the shard itself is excluded
     *  so one slow shard cannot drag the baseline up) turns Suspect. */
    double suspectLatencyFactor = 6.0;

    /** Floor for the baseline so a near-idle cluster does not flag
     *  normal jitter as slowness. */
    osim::SimTime latencyBaselineFloor = 20'000; // 20 us

    /** Supervisor-reported agent crashes since the last successful
     *  call before the shard turns Suspect. */
    uint32_t crashesForSuspect = 3;
};

/** The monitor. Owned by the ShardRouter; one entry per shard slot. */
class HealthMonitor
{
  public:
    HealthMonitor(HealthPolicy policy, uint32_t shard_count);

    const HealthPolicy &policy() const { return policy_; }

    /** Track one more shard slot (router addShard). */
    void addShard(osim::SimTime now);

    /** Reset a slot to Healthy (shard revived / rejoined). */
    void reset(uint32_t shard, osim::SimTime now);

    /** A call on the shard completed OK; `service` is the execution
     *  span on the shard's clock (queueing excluded — the EWMA tracks
     *  how fast the shard works, not how loaded it is). */
    void recordSuccess(uint32_t shard, osim::SimTime now,
                       osim::SimTime service);

    /** A call on the shard failed (error, timeout, stall). Counts as
     *  a missed contact: repeated failures raise suspicion even
     *  between probe ticks. */
    void recordFailure(uint32_t shard, osim::SimTime now);

    /** An agent crash inside the shard's runtime (supervisor hook). */
    void recordCrash(uint32_t shard);

    /** Is a heartbeat probe due for this shard at `now`? */
    bool probeDue(uint32_t shard, osim::SimTime now) const;

    /** Outcome of a heartbeat probe. */
    void recordProbe(uint32_t shard, osim::SimTime now,
                     bool responsive);

    /** Current classification (pure function of recorded signals). */
    ShardHealth classify(uint32_t shard) const;

    /** Service-time EWMA of a shard (0 until its first success). */
    osim::SimTime latencyEwma(uint32_t shard) const;

    /** Mean EWMA over shards with samples, floored by policy.
     *  `exclude` (a shard slot) is left out of the mean so a shard is
     *  always judged against its peers; pass kExcludeNone for the
     *  whole-cluster mean. */
    static constexpr uint32_t kExcludeNone = UINT32_MAX;
    osim::SimTime clusterBaseline(uint32_t exclude = kExcludeNone) const;

    uint32_t missedHeartbeats(uint32_t shard) const;
    osim::SimTime lastContact(uint32_t shard) const;

    /** Health-state transition counters (for ClusterStats roll-up). */
    uint64_t suspectTransitions() const { return suspectTransitions_; }
    uint64_t deadTransitions() const { return deadTransitions_; }

  private:
    struct ShardState {
        osim::SimTime lastContact = 0; //!< last success or good probe
        uint32_t missed = 0;           //!< consecutive missed contacts
        uint32_t crashes = 0;          //!< agent crashes since success
        double ewma = 0.0;             //!< service-time EWMA (ns)
        bool hasSamples = false;
        ShardHealth reported = ShardHealth::Healthy;
    };

    /** Re-classify shard `shard` and count state transitions. */
    void noteTransition(uint32_t shard);

    HealthPolicy policy_;
    std::vector<ShardState> shards_;
    uint64_t suspectTransitions_ = 0;
    uint64_t deadTransitions_ = 0;
};

} // namespace freepart::shard

#endif // FREEPART_SHARD_HEALTH_MONITOR_HH
