/**
 * @file
 * Load-aware object placement for the shard cluster. Consistent
 * hashing places routing keys blindly; under skewed Table 6 workloads
 * hot keys collide on a shard and co-accessed objects land apart, so
 * every crossing pays migrate-or-proxy. This module models the
 * observed call trace as a hypergraph — objects are vertices weighted
 * by bytes x access frequency, calls are hyperedges spanning the
 * objects they touch — and computes a placement of *placement groups*
 * (routing keys, the unit the router can actually place) that
 * minimizes the weighted hyperedge cut under a configurable balance
 * constraint.
 *
 * The algorithm is a small, deterministic, seeded take on the
 * mt-kahypar recipe (community-detection coarsening + boundary
 * refinement), with no external dependencies:
 *
 *   1. contract object vertices into their placement groups (a key's
 *      objects always move together);
 *   2. coarsen by label-propagation community clustering: each pass
 *      visits vertices in a seeded order and adopts the neighboring
 *      community with the highest connectivity score
 *      sum_e w(e)/(|pins(e)|-1), capped so a community stays
 *      placeable under the balance constraint;
 *   3. place communities greedily, heaviest first, onto the part
 *      with the highest hyperedge affinity that still fits;
 *   4. uncoarsen and refine with FM-style passes: move boundary
 *      groups along their best positive-gain (or balance-improving
 *      zero-gain) direction until a pass makes no move, then repair
 *      any residual overweight part with minimum-loss moves.
 *
 * Everything is integer-weighted and visits vertices in orders fully
 * determined by (trace, seed), so a fixed trace and seed reproduce
 * the same placement bit-for-bit on every platform.
 */

#ifndef FREEPART_SHARD_PLACEMENT_HH
#define FREEPART_SHARD_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace freepart::shard::placement {

/** Memory bounds of the online trace collector. */
struct TraceConfig {
    /** Distinct objects tracked; later new objects still add weight
     *  to their group but are not individually recorded. */
    size_t maxObjects = 65536;
    /** Distinct hyperedges (deduplicated pin sets). When full, a new
     *  pin set evicts the lowest-weight recorded edge. */
    size_t maxEdges = 4096;
    /** Pins kept per hyperedge (sorted; the tail is dropped). */
    size_t maxPinsPerEdge = 16;
};

/** One object touched by a recorded call. */
struct ObjectAccess {
    uint64_t objectId = 0;
    /** Placement group (routing key the object was created under). */
    uint64_t group = 0;
    /** Serialized payload size at access time. */
    uint64_t bytes = 0;
};

/** Group-granularity hypergraph (objects contracted into groups). */
struct GroupHypergraph {
    struct Vertex {
        uint64_t group = 0; //!< routing key
        uint64_t weight = 0; //!< calls + KiB-scaled object access mass
    };
    struct Edge {
        std::vector<uint32_t> pins; //!< vertex indices, ascending
        uint64_t weight = 0;        //!< co-access multiplicity
    };
    std::vector<Vertex> vertices;
    std::vector<Edge> edges;
};

/**
 * Online per-call object-access recorder with bounded memory. The
 * router feeds it every routed call (under the Optimized policy);
 * each re-partition epoch consumes the window and resets it.
 */
class TraceCollector
{
  public:
    explicit TraceCollector(TraceConfig config = {});

    /** Record one call: the routing key it was submitted under and
     *  the objects its ref inputs resolved to. */
    void recordCall(uint64_t routing_key,
                    const std::vector<ObjectAccess> &inputs);

    bool empty() const { return calls_ == 0; }
    uint64_t calls() const { return calls_; }
    size_t objectCount() const { return vertices_.size(); }
    size_t edgeCount() const { return edges_.size(); }
    /** Distinct edges that had to evict a recorded one. */
    uint64_t edgeEvictions() const { return edgeEvictions_; }

    /** Contract object vertices into their placement groups. */
    GroupHypergraph contractByGroup() const;

    /** Objects of a group seen this window, ascending — the move set
     *  a re-partition epoch migrates when the group changes shard. */
    std::vector<uint64_t> objectsOf(uint64_t group) const;

    /** Start a fresh window (epoch boundary). */
    void reset();

  private:
    struct Vertex {
        uint64_t id = 0;
        uint64_t group = 0;
        uint64_t weight = 0; //!< sum over accesses of 1 + bytes/1KiB
    };
    struct Edge {
        std::vector<uint64_t> pins; //!< sorted distinct groups
        uint64_t weight = 0;
    };

    TraceConfig config_;
    std::map<uint64_t, size_t> vertexIndex_; //!< object id -> slot
    std::vector<Vertex> vertices_;
    /** Per-group call count (+ overflow weight of untracked objects). */
    std::map<uint64_t, uint64_t> groupWeight_;
    std::map<std::vector<uint64_t>, size_t> edgeIndex_;
    std::vector<Edge> edges_;
    uint64_t calls_ = 0;
    uint64_t edgeEvictions_ = 0;
};

/** Partitioner knobs. */
struct PartitionConfig {
    uint32_t parts = 2;
    /** Max part weight = (1 + epsilon) * total / parts (never below
     *  the heaviest single vertex — a group is indivisible). */
    double balanceEpsilon = 0.10;
    uint64_t seed = 1;
    uint32_t coarsenPasses = 4;
    /** Stop coarsening once this many communities remain. */
    uint32_t coarsenTarget = 64;
    uint32_t refinementPasses = 8;
};

/** A computed placement of groups onto parts. */
struct PartitionResult {
    /** routing key -> part index in [0, parts). */
    std::map<uint64_t, uint32_t> groupPart;
    std::vector<uint64_t> partWeight;
    /** Weighted connectivity cut: sum_e w(e) * (lambda(e) - 1). */
    uint64_t cut = 0;
    uint64_t totalEdgeWeight = 0;
    /** Max part weight over the ideal total/parts average. */
    double imbalance = 1.0;
};

/** Partition a group hypergraph into `config.parts` balanced parts
 *  minimizing the weighted hyperedge cut. Deterministic for a fixed
 *  (hypergraph, seed). */
PartitionResult partitionGroups(const GroupHypergraph &hypergraph,
                                const PartitionConfig &config);

} // namespace freepart::shard::placement

#endif // FREEPART_SHARD_PLACEMENT_HH
