#include "shard/chaos.hh"

#include <algorithm>

#include "util/rng.hh"

namespace freepart::shard {

const char *
chaosEventKindName(ChaosEventKind kind)
{
    switch (kind) {
      case ChaosEventKind::ShardKill:
        return "shard-kill";
      case ChaosEventKind::ShardRejoin:
        return "shard-rejoin";
    }
    return "?";
}

ChaosSchedule
ChaosSchedule::generate(uint64_t seed, uint32_t shard_count,
                        uint64_t total_calls, double chaos_rate)
{
    ChaosSchedule plan;
    plan.seed = seed;
    if (shard_count == 0 || total_calls == 0 || chaos_rate <= 0.0)
        return plan;
    util::Rng rng(seed ^ 0xc4a05c4a05c4a05ull);

    // Degradation specs, one set per shard. The per-hit probabilities
    // split the chaos rate across the fault classes so the *total*
    // fraction of degraded admissions per shard tracks chaos_rate:
    // stalls are rare but long, slow-downs common but mild.
    for (uint32_t s = 0; s < shard_count; ++s) {
        auto slot = static_cast<osim::Pid>(s + 1);

        osim::FaultSpec stall;
        stall.point = osim::FaultPoint::ShardAdmission;
        stall.action = osim::FaultAction::Stall;
        stall.pid = slot;
        stall.after = rng.below(std::max<uint64_t>(
            total_calls / (4 * shard_count), 1));
        stall.count = 0; // unlimited; probability gates the rate
        stall.probability = chaos_rate * 0.2;
        stall.stallTime = static_cast<osim::SimTime>(
            rng.range(300'000, 1'500'000)); // 0.3 - 1.5 ms freezes
        stall.tag = "chaos-stall";
        plan.specs.push_back(std::move(stall));

        osim::FaultSpec slow;
        slow.point = osim::FaultPoint::ShardAdmission;
        slow.action = osim::FaultAction::SlowDown;
        slow.pid = slot;
        slow.count = 0;
        slow.probability = chaos_rate * 0.8;
        slow.slowFactor = 2.0 + rng.uniform() * 4.0; // 2x - 6x
        slow.tag = "chaos-slow";
        plan.specs.push_back(std::move(slow));

        osim::FaultSpec drop;
        drop.point = osim::FaultPoint::ClusterTransfer;
        drop.action = osim::FaultAction::Transient;
        drop.pid = slot;
        drop.count = 0;
        drop.probability = chaos_rate * 0.5;
        drop.tag = "chaos-drop";
        plan.specs.push_back(std::move(drop));

        osim::FaultSpec corrupt;
        corrupt.point = osim::FaultPoint::ClusterTransfer;
        corrupt.action = osim::FaultAction::Corrupt;
        corrupt.pid = slot;
        corrupt.count = 0;
        corrupt.probability = chaos_rate * 0.25;
        corrupt.tag = "chaos-corrupt";
        plan.specs.push_back(std::move(corrupt));
    }

    // Kill/rejoin windows: serialized in call-index time so at most
    // one *generated* window is open at once — with replication on,
    // one lost shard is recoverable; losing several at once is a
    // different experiment and deserves a hand-written plan.
    if (shard_count > 1) {
        auto windows = static_cast<uint32_t>(
            std::max<double>(1.0, chaos_rate * shard_count * 2.5));
        uint64_t span = total_calls / (windows + 1);
        if (span < 8)
            span = 8;
        uint64_t cursor = span / 2;
        for (uint32_t w = 0; w < windows; ++w) {
            if (cursor + 4 >= total_calls)
                break;
            ChaosEvent kill;
            kill.atCall = cursor + rng.below(std::max<uint64_t>(
                span / 4, 1));
            kill.shard = static_cast<uint32_t>(rng.below(shard_count));
            kill.kind = ChaosEventKind::ShardKill;
            ChaosEvent rejoin;
            rejoin.atCall = kill.atCall + 2 +
                rng.below(std::max<uint64_t>(span / 2, 2));
            rejoin.shard = kill.shard;
            rejoin.kind = ChaosEventKind::ShardRejoin;
            plan.events.push_back(kill);
            plan.events.push_back(rejoin);
            cursor = std::max(cursor + span, rejoin.atCall + 1);
        }
        std::stable_sort(plan.events.begin(), plan.events.end(),
                         [](const ChaosEvent &a, const ChaosEvent &b) {
                             return a.atCall < b.atCall;
                         });
    }
    return plan;
}

} // namespace freepart::shard
