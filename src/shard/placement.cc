#include "shard/placement.hh"

#include <algorithm>

#include "util/rng.hh"

namespace freepart::shard::placement {

// ---- TraceCollector --------------------------------------------------

TraceCollector::TraceCollector(TraceConfig config) : config_(config) {}

void
TraceCollector::recordCall(uint64_t routing_key,
                           const std::vector<ObjectAccess> &inputs)
{
    ++calls_;
    // Every call loads its own group's shard even with no ref inputs.
    groupWeight_[routing_key] += 1;

    std::vector<uint64_t> pins;
    pins.push_back(routing_key);
    for (const ObjectAccess &access : inputs) {
        pins.push_back(access.group);
        uint64_t weight = 1 + access.bytes / 1024;
        auto it = vertexIndex_.find(access.objectId);
        if (it != vertexIndex_.end()) {
            vertices_[it->second].weight += weight;
            continue;
        }
        if (vertices_.size() < config_.maxObjects) {
            vertexIndex_[access.objectId] = vertices_.size();
            vertices_.push_back({access.objectId, access.group, weight});
        } else {
            // Over the object cap the access mass still lands on the
            // group (placement stays load-aware), only the per-object
            // move set loses the id.
            groupWeight_[access.group] += weight;
        }
    }

    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2)
        return; // single-group call: no cut contribution
    if (pins.size() > config_.maxPinsPerEdge)
        pins.resize(config_.maxPinsPerEdge);

    auto it = edgeIndex_.find(pins);
    if (it != edgeIndex_.end()) {
        edges_[it->second].weight += 1;
        return;
    }
    if (edges_.size() < config_.maxEdges) {
        edgeIndex_[pins] = edges_.size();
        edges_.push_back({pins, 1});
        return;
    }
    // Full: evict the lowest-weight edge (lowest slot on ties) so a
    // shifting workload can still register new co-access patterns.
    size_t victim = 0;
    for (size_t e = 1; e < edges_.size(); ++e)
        if (edges_[e].weight < edges_[victim].weight)
            victim = e;
    edgeIndex_.erase(edges_[victim].pins);
    edgeIndex_[pins] = victim;
    edges_[victim] = {std::move(pins), 1};
    ++edgeEvictions_;
}

GroupHypergraph
TraceCollector::contractByGroup() const
{
    GroupHypergraph out;
    // Group weight = call count (+ overflow) + object access mass.
    std::map<uint64_t, uint64_t> weight = groupWeight_;
    for (const Vertex &vertex : vertices_)
        weight[vertex.group] += vertex.weight;

    std::map<uint64_t, uint32_t> slot;
    out.vertices.reserve(weight.size());
    for (const auto &[group, w] : weight) {
        slot[group] = static_cast<uint32_t>(out.vertices.size());
        out.vertices.push_back({group, w});
    }

    std::map<std::vector<uint32_t>, uint64_t> merged;
    for (const Edge &edge : edges_) {
        std::vector<uint32_t> pins;
        pins.reserve(edge.pins.size());
        for (uint64_t group : edge.pins) {
            auto it = slot.find(group);
            if (it != slot.end())
                pins.push_back(it->second);
        }
        std::sort(pins.begin(), pins.end());
        pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        if (pins.size() < 2)
            continue;
        merged[pins] += edge.weight;
    }
    out.edges.reserve(merged.size());
    for (const auto &[pins, w] : merged)
        out.edges.push_back({pins, w});
    return out;
}

std::vector<uint64_t>
TraceCollector::objectsOf(uint64_t group) const
{
    std::vector<uint64_t> out;
    for (const Vertex &vertex : vertices_)
        if (vertex.group == group)
            out.push_back(vertex.id);
    std::sort(out.begin(), out.end());
    return out;
}

void
TraceCollector::reset()
{
    vertexIndex_.clear();
    vertices_.clear();
    groupWeight_.clear();
    edgeIndex_.clear();
    edges_.clear();
    calls_ = 0;
    edgeEvictions_ = 0;
}

// ---- Partitioner -----------------------------------------------------

namespace {

/** Integer connectivity score of one shared edge: scaled weight over
 *  fan-out, so tight pairs beat broad co-occurrence. Integer math
 *  keeps tie-breaking identical across platforms. */
uint64_t
edgeScore(const GroupHypergraph::Edge &edge)
{
    return edge.weight * 1024 / (edge.pins.size() - 1);
}

} // namespace

PartitionResult
partitionGroups(const GroupHypergraph &hypergraph,
                const PartitionConfig &config)
{
    const size_t n = hypergraph.vertices.size();
    const uint32_t k = std::max<uint32_t>(config.parts, 1);
    PartitionResult out;
    out.partWeight.assign(k, 0);
    if (n == 0)
        return out;

    std::vector<uint64_t> weight(n);
    uint64_t total = 0, heaviest = 0;
    for (size_t v = 0; v < n; ++v) {
        weight[v] = std::max<uint64_t>(hypergraph.vertices[v].weight, 1);
        total += weight[v];
        heaviest = std::max(heaviest, weight[v]);
    }
    const uint64_t ideal = (total + k - 1) / k;
    const uint64_t maxPart = std::max<uint64_t>(
        heaviest,
        static_cast<uint64_t>(
            (1.0 + config.balanceEpsilon) *
            static_cast<double>(total) / static_cast<double>(k)) +
            1);

    std::vector<std::vector<uint32_t>> incident(n);
    for (size_t e = 0; e < hypergraph.edges.size(); ++e) {
        for (uint32_t pin : hypergraph.edges[e].pins)
            incident[pin].push_back(static_cast<uint32_t>(e));
        out.totalEdgeWeight += hypergraph.edges[e].weight;
    }

    // ---- 1. Community coarsening (label propagation) ----------------
    // A community may not outgrow half a part: placement needs room
    // to balance, and an indivisible mega-community would pin the
    // heaviest keys together no matter what refinement wants.
    const uint64_t communityCap =
        std::max(heaviest, maxPart / 2 + 1);
    std::vector<uint32_t> label(n);
    std::vector<uint64_t> labelWeight(n);
    for (size_t v = 0; v < n; ++v) {
        label[v] = static_cast<uint32_t>(v);
        labelWeight[v] = weight[v];
    }
    util::Rng rng(config.seed);
    std::vector<uint32_t> order(n);
    for (size_t v = 0; v < n; ++v)
        order[v] = static_cast<uint32_t>(v);
    for (uint32_t pass = 0; pass < config.coarsenPasses; ++pass) {
        rng.shuffle(order);
        size_t moves = 0;
        for (uint32_t v : order) {
            // Score every neighboring community by summed edge pull.
            std::map<uint32_t, uint64_t> score;
            for (uint32_t e : incident[v]) {
                const GroupHypergraph::Edge &edge = hypergraph.edges[e];
                uint64_t s = edgeScore(edge);
                for (uint32_t pin : edge.pins)
                    if (pin != v)
                        score[label[pin]] += s;
            }
            uint32_t best = label[v];
            uint64_t bestScore = score.count(label[v])
                                     ? score[label[v]]
                                     : 0;
            for (const auto &[candidate, s] : score) {
                if (candidate == label[v])
                    continue;
                if (labelWeight[candidate] + weight[v] > communityCap)
                    continue;
                if (s > bestScore) {
                    best = candidate;
                    bestScore = s;
                }
            }
            if (best != label[v]) {
                labelWeight[label[v]] -= weight[v];
                labelWeight[best] += weight[v];
                label[v] = best;
                ++moves;
            }
        }
        if (moves == 0)
            break;
    }

    // Compact community ids.
    std::map<uint32_t, uint32_t> compact;
    for (size_t v = 0; v < n; ++v)
        if (!compact.count(label[v])) {
            uint32_t id = static_cast<uint32_t>(compact.size());
            compact[label[v]] = id;
        }
    const size_t communities = compact.size();
    std::vector<uint32_t> community(n);
    std::vector<uint64_t> communityWeight(communities, 0);
    for (size_t v = 0; v < n; ++v) {
        community[v] = compact[label[v]];
        communityWeight[community[v]] += weight[v];
    }
    std::map<std::vector<uint32_t>, uint64_t> coarseEdges;
    for (const GroupHypergraph::Edge &edge : hypergraph.edges) {
        std::vector<uint32_t> pins;
        pins.reserve(edge.pins.size());
        for (uint32_t pin : edge.pins)
            pins.push_back(community[pin]);
        std::sort(pins.begin(), pins.end());
        pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        if (pins.size() < 2)
            continue;
        coarseEdges[pins] += edge.weight;
    }

    // ---- 2. Greedy initial placement of communities ------------------
    std::vector<std::vector<std::pair<uint64_t, const std::vector<uint32_t> *>>>
        coarseIncident(communities);
    for (const auto &[pins, w] : coarseEdges)
        for (uint32_t pin : pins)
            coarseIncident[pin].emplace_back(w, &pins);

    std::vector<uint32_t> byWeight(communities);
    for (size_t c = 0; c < communities; ++c)
        byWeight[c] = static_cast<uint32_t>(c);
    std::sort(byWeight.begin(), byWeight.end(),
              [&](uint32_t a, uint32_t b) {
                  if (communityWeight[a] != communityWeight[b])
                      return communityWeight[a] > communityWeight[b];
                  return a < b;
              });

    constexpr uint32_t kUnassigned = UINT32_MAX;
    std::vector<uint32_t> communityPart(communities, kUnassigned);
    std::vector<uint64_t> partWeight(k, 0);
    for (uint32_t c : byWeight) {
        std::vector<uint64_t> affinity(k, 0);
        for (const auto &[w, pins] : coarseIncident[c])
            for (uint32_t pin : *pins)
                if (pin != c && communityPart[pin] != kUnassigned)
                    affinity[communityPart[pin]] += w;
        uint32_t best = kUnassigned;
        for (uint32_t p = 0; p < k; ++p) {
            if (partWeight[p] + communityWeight[c] > maxPart)
                continue;
            if (best == kUnassigned || affinity[p] > affinity[best] ||
                (affinity[p] == affinity[best] &&
                 partWeight[p] < partWeight[best]))
                best = p;
        }
        if (best == kUnassigned) {
            // Nothing fits (huge community): take the lightest part.
            best = 0;
            for (uint32_t p = 1; p < k; ++p)
                if (partWeight[p] < partWeight[best])
                    best = p;
        }
        communityPart[c] = best;
        partWeight[best] += communityWeight[c];
    }

    // ---- 3. Uncoarsen + FM-style boundary refinement -----------------
    std::vector<uint32_t> part(n);
    for (size_t v = 0; v < n; ++v)
        part[v] = communityPart[community[v]];

    // Pin counts per (edge, part) drive O(1) gain evaluation.
    std::vector<std::vector<uint32_t>> phi(hypergraph.edges.size(),
                                           std::vector<uint32_t>(k, 0));
    for (size_t e = 0; e < hypergraph.edges.size(); ++e)
        for (uint32_t pin : hypergraph.edges[e].pins)
            ++phi[e][part[pin]];

    auto gainOf = [&](uint32_t v, uint32_t from, uint32_t to) {
        int64_t gain = 0;
        for (uint32_t e : incident[v]) {
            const uint64_t w = hypergraph.edges[e].weight;
            if (phi[e][from] == 1)
                gain += static_cast<int64_t>(w); // `from` leaves the edge
            if (phi[e][to] == 0)
                gain -= static_cast<int64_t>(w); // `to` joins the edge
        }
        return gain;
    };
    auto applyMove = [&](uint32_t v, uint32_t to) {
        uint32_t from = part[v];
        for (uint32_t e : incident[v]) {
            --phi[e][from];
            ++phi[e][to];
        }
        partWeight[from] -= weight[v];
        partWeight[to] += weight[v];
        part[v] = to;
    };

    for (uint32_t pass = 0; pass < config.refinementPasses; ++pass) {
        size_t moves = 0;
        for (uint32_t v = 0; v < n; ++v) {
            uint32_t from = part[v];
            uint32_t best = from;
            int64_t bestGain = 0;
            for (uint32_t to = 0; to < k; ++to) {
                if (to == from ||
                    partWeight[to] + weight[v] > maxPart)
                    continue;
                int64_t gain = gainOf(v, from, to);
                bool better =
                    gain > bestGain ||
                    (gain == bestGain && best != from &&
                     partWeight[to] < partWeight[best]) ||
                    // Zero-gain move that strictly improves balance.
                    (gain == 0 && best == from &&
                     partWeight[from] > partWeight[to] + weight[v]);
                if (better) {
                    best = to;
                    bestGain = gain;
                }
            }
            if (best != from) {
                applyMove(v, best);
                ++moves;
            }
        }
        if (moves == 0)
            break;
    }

    // Balance repair: an overweight part sheds its minimum-loss
    // vertices until it fits (or no move still shrinks the maximum).
    for (size_t guard = 0; guard < 4 * n; ++guard) {
        uint32_t worst = 0;
        for (uint32_t p = 1; p < k; ++p)
            if (partWeight[p] > partWeight[worst])
                worst = p;
        if (partWeight[worst] <= maxPart)
            break;
        uint32_t bestV = UINT32_MAX, bestTo = UINT32_MAX;
        int64_t bestGain = 0;
        for (uint32_t v = 0; v < n; ++v) {
            if (part[v] != worst)
                continue;
            for (uint32_t to = 0; to < k; ++to) {
                if (to == worst ||
                    partWeight[to] + weight[v] >= partWeight[worst])
                    continue; // must strictly shrink the maximum
                int64_t gain = gainOf(v, worst, to);
                if (bestV == UINT32_MAX || gain > bestGain) {
                    bestV = v;
                    bestTo = to;
                    bestGain = gain;
                }
            }
        }
        if (bestV == UINT32_MAX)
            break;
        applyMove(bestV, bestTo);
    }

    // ---- 4. Report ---------------------------------------------------
    for (size_t e = 0; e < hypergraph.edges.size(); ++e) {
        uint32_t lambda = 0;
        for (uint32_t p = 0; p < k; ++p)
            if (phi[e][p] > 0)
                ++lambda;
        out.cut += hypergraph.edges[e].weight * (lambda - 1);
    }
    out.partWeight = partWeight;
    uint64_t maxSeen = 0;
    for (uint32_t p = 0; p < k; ++p)
        maxSeen = std::max(maxSeen, partWeight[p]);
    out.imbalance = ideal > 0 ? static_cast<double>(maxSeen) /
                                    static_cast<double>(ideal)
                              : 1.0;
    for (size_t v = 0; v < n; ++v)
        out.groupPart[hypergraph.vertices[v].group] = part[v];
    return out;
}

} // namespace freepart::shard::placement
