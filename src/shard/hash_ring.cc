#include "shard/hash_ring.hh"

#include <cstring>

#include "util/checksum.hh"

namespace freepart::shard {

namespace {

/**
 * splitmix64 finalizer: routing keys are often small sequential
 * integers (object ids, session numbers), so they must be whitened
 * before landing on the ring or consecutive keys would cluster on
 * adjacent points and defeat the uniformity the vnodes buy.
 */
uint64_t
mixKey(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(uint32_t vnodes_per_shard)
    : vnodes(vnodes_per_shard == 0 ? 1 : vnodes_per_shard)
{
}

uint64_t
HashRing::keyPoint(uint64_t key)
{
    return mixKey(key);
}

uint64_t
HashRing::vnodePoint(uint32_t shard_id, uint32_t vnode)
{
    uint8_t bytes[16];
    uint64_t s = shard_id;
    uint64_t v = vnode;
    std::memcpy(bytes, &s, 8);
    std::memcpy(bytes + 8, &v, 8);
    // FNV alone clusters on small structured inputs (consecutive
    // shard/vnode integers); the finalizer spreads the points.
    return mixKey(util::fnv1a64(bytes, sizeof(bytes)));
}

std::vector<uint32_t>
HashRing::shards() const
{
    return {members.begin(), members.end()};
}

void
HashRing::addShard(uint32_t shard_id)
{
    if (!members.insert(shard_id).second)
        return;
    for (uint32_t v = 0; v < vnodes; ++v)
        points.emplace(vnodePoint(shard_id, v), shard_id);
}

void
HashRing::removeShard(uint32_t shard_id)
{
    if (members.erase(shard_id) == 0)
        return;
    for (uint32_t v = 0; v < vnodes; ++v) {
        auto it = points.find(vnodePoint(shard_id, v));
        if (it != points.end() && it->second == shard_id)
            points.erase(it);
    }
}

uint32_t
HashRing::ownerOf(uint64_t key) const
{
    if (points.empty())
        return kInvalidShard;
    auto it = points.lower_bound(keyPoint(key));
    if (it == points.end())
        it = points.begin(); // clockwise wrap
    return it->second;
}

double
HashRing::remappedFraction(const HashRing &before,
                           const HashRing &after,
                           const std::vector<uint64_t> &keys)
{
    if (keys.empty())
        return 0.0;
    size_t moved = 0;
    for (uint64_t key : keys)
        if (before.ownerOf(key) != after.ownerOf(key))
            ++moved;
    return static_cast<double>(moved) /
           static_cast<double>(keys.size());
}

} // namespace freepart::shard
