/**
 * @file
 * Seeded cluster chaos plans. A ChaosSchedule bundles everything a
 * chaos run needs: FaultSpecs armed on the router's injector (shard
 * stalls, slow-agent multipliers, cross-shard message drop/corrupt at
 * the new ShardAdmission / ClusterTransfer fault points) plus a list
 * of membership events (shard kill, shard rejoin) pinned to routed
 * call indices. Everything derives from one seed through util::Rng,
 * so a schedule replays byte-identically: same seed, same stalls,
 * same kills, same recovery trace — the property the determinism
 * gates in bench_chaos_cluster and test_chaos rely on.
 */

#ifndef FREEPART_SHARD_CHAOS_HH
#define FREEPART_SHARD_CHAOS_HH

#include <cstdint>
#include <vector>

#include "osim/fault_injection.hh"

namespace freepart::shard {

/** Cluster membership chaos. */
enum class ChaosEventKind : uint8_t {
    ShardKill,   //!< host death: shard leaves the ring, objects only
                 //!< survive as replicas
    ShardRejoin, //!< fresh incarnation of the slot rejoins the ring
};

/** Display name of a chaos event kind. */
const char *chaosEventKindName(ChaosEventKind kind);

/** One membership event, applied when the router has accepted
 *  `atCall` open-loop calls. */
struct ChaosEvent {
    uint64_t atCall = 0;
    uint32_t shard = 0;
    ChaosEventKind kind = ChaosEventKind::ShardKill;
};

/**
 * A complete chaos plan for one run. `specs` go to a FaultInjector
 * seeded with `seed` (at the cluster fault points the spec's Pid
 * selects a shard: slot + 1); `events` are applied by the router at
 * the given call indices, in order.
 */
struct ChaosSchedule {
    uint64_t seed = 0;
    std::vector<osim::FaultSpec> specs;
    std::vector<ChaosEvent> events; //!< sorted by atCall

    /** Total degradation specs + membership events (plan size). */
    size_t planSize() const { return specs.size() + events.size(); }

    /**
     * Generate a plan deterministically from a seed. `chaos_rate` is
     * the target fraction of each shard's admissions that run
     * degraded (stalled / slowed / dropped); at rate > 0 the plan
     * additionally schedules one kill+rejoin window per ~1/rate/4
     * shards (at least one), kills spaced so at most one generated
     * kill window is open at a time. `total_calls` scales the event
     * placement; rate 0 returns an empty plan.
     */
    static ChaosSchedule generate(uint64_t seed, uint32_t shard_count,
                                  uint64_t total_calls,
                                  double chaos_rate);
};

} // namespace freepart::shard

#endif // FREEPART_SHARD_CHAOS_HH
