#include "shard/health_monitor.hh"

#include <algorithm>

namespace freepart::shard {

const char *
shardHealthName(ShardHealth health)
{
    switch (health) {
      case ShardHealth::Healthy:
        return "healthy";
      case ShardHealth::Suspect:
        return "suspect";
      case ShardHealth::Dead:
        return "dead";
    }
    return "?";
}

HealthMonitor::HealthMonitor(HealthPolicy policy, uint32_t shard_count)
    : policy_(policy)
{
    shards_.resize(shard_count);
}

void
HealthMonitor::addShard(osim::SimTime now)
{
    ShardState state;
    state.lastContact = now;
    shards_.push_back(state);
}

void
HealthMonitor::reset(uint32_t shard, osim::SimTime now)
{
    if (shard >= shards_.size())
        return;
    ShardState fresh;
    fresh.lastContact = now;
    shards_[shard] = fresh;
}

void
HealthMonitor::recordSuccess(uint32_t shard, osim::SimTime now,
                             osim::SimTime service)
{
    if (shard >= shards_.size())
        return;
    ShardState &state = shards_[shard];
    state.lastContact = std::max(state.lastContact, now);
    state.missed = 0;
    state.crashes = 0;
    if (!state.hasSamples) {
        state.ewma = static_cast<double>(service);
        state.hasSamples = true;
    } else {
        state.ewma += policy_.ewmaAlpha
                      * (static_cast<double>(service) - state.ewma);
    }
    noteTransition(shard);
}

void
HealthMonitor::recordFailure(uint32_t shard, osim::SimTime now)
{
    if (shard >= shards_.size())
        return;
    ShardState &state = shards_[shard];
    // A failure is evidence of *unresponsiveness*, so it advances the
    // missed-contact counter but does not move lastContact forward:
    // a shard that only ever fails keeps accumulating suspicion.
    (void)now;
    ++state.missed;
    noteTransition(shard);
}

void
HealthMonitor::recordCrash(uint32_t shard)
{
    if (shard >= shards_.size())
        return;
    ShardState &state = shards_[shard];
    ++state.crashes;
    noteTransition(shard);
}

bool
HealthMonitor::probeDue(uint32_t shard, osim::SimTime now) const
{
    if (shard >= shards_.size() || policy_.heartbeatInterval == 0)
        return false;
    const ShardState &state = shards_[shard];
    return now >= state.lastContact + policy_.heartbeatInterval;
}

void
HealthMonitor::recordProbe(uint32_t shard, osim::SimTime now,
                           bool responsive)
{
    if (shard >= shards_.size())
        return;
    ShardState &state = shards_[shard];
    if (responsive) {
        state.lastContact = std::max(state.lastContact, now);
        state.missed = 0;
    } else {
        // Advance lastContact by one interval so the next tick can
        // miss again instead of re-missing the same stale window.
        state.lastContact += policy_.heartbeatInterval;
        ++state.missed;
    }
    noteTransition(shard);
}

ShardHealth
HealthMonitor::classify(uint32_t shard) const
{
    if (shard >= shards_.size())
        return ShardHealth::Dead;
    const ShardState &state = shards_[shard];
    if (state.missed >= policy_.missedForDead)
        return ShardHealth::Dead;
    if (state.missed >= policy_.missedForSuspect)
        return ShardHealth::Suspect;
    if (state.crashes >= policy_.crashesForSuspect)
        return ShardHealth::Suspect;
    if (state.hasSamples) {
        double baseline = static_cast<double>(clusterBaseline(shard));
        if (state.ewma > policy_.suspectLatencyFactor * baseline)
            return ShardHealth::Suspect;
    }
    return ShardHealth::Healthy;
}

osim::SimTime
HealthMonitor::latencyEwma(uint32_t shard) const
{
    if (shard >= shards_.size() || !shards_[shard].hasSamples)
        return 0;
    return static_cast<osim::SimTime>(shards_[shard].ewma);
}

osim::SimTime
HealthMonitor::clusterBaseline(uint32_t exclude) const
{
    double sum = 0.0;
    uint32_t sampled = 0;
    for (uint32_t s = 0; s < shards_.size(); ++s) {
        const ShardState &state = shards_[s];
        if (s == exclude || !state.hasSamples)
            continue;
        sum += state.ewma;
        ++sampled;
    }
    if (sampled == 0)
        return policy_.latencyBaselineFloor;
    auto mean = static_cast<osim::SimTime>(sum / sampled);
    return std::max(mean, policy_.latencyBaselineFloor);
}

uint32_t
HealthMonitor::missedHeartbeats(uint32_t shard) const
{
    return shard < shards_.size() ? shards_[shard].missed : 0;
}

osim::SimTime
HealthMonitor::lastContact(uint32_t shard) const
{
    return shard < shards_.size() ? shards_[shard].lastContact : 0;
}

void
HealthMonitor::noteTransition(uint32_t shard)
{
    // Recompute the externally visible classification and count edges.
    ShardState &state = shards_[shard];
    ShardHealth now = classify(shard);
    if (now == state.reported)
        return;
    if (now == ShardHealth::Suspect
        && state.reported == ShardHealth::Healthy)
        ++suspectTransitions_;
    if (now == ShardHealth::Dead && state.reported != ShardHealth::Dead)
        ++deadTransitions_;
    state.reported = now;
}

} // namespace freepart::shard
