/**
 * @file
 * ShardRouter: the cluster layer that fans FreePart out across N
 * independent runtime shards. Each shard is a full FreePart stack —
 * its own simulated kernel, host process, agents, supervisor and
 * checkpoints — and the router places every API call on the shard
 * that owns the call's routing key under a consistent-hash ring.
 *
 * Cross-shard inputs are handled LDC-style at cluster scope: a ref
 * argument living on another shard is either migrated to the
 * executing shard (small objects; the source runtime evicts its copy
 * so exactly one shard stays authoritative) or the whole call is
 * proxied to the input's owner (large objects, where moving the call
 * is cheaper than moving the data). Object ids are namespaced per
 * shard (fw::objectIdNamespace) so shard-local id counters can never
 * collide.
 *
 * Failure handling reuses the per-runtime supervision signals: a
 * shard whose host dies is killed, one whose supervisor quarantined
 * too many partitions is drained. Either way its vnodes leave the
 * ring, keys remap to the survivors (bounded movement), and in-flight
 * calls fail over to the new owner under at-least-once semantics — a
 * cluster-level dedup cache answers re-submitted tokens of already
 * acknowledged calls without re-executing.
 */

#ifndef FREEPART_SHARD_SHARD_ROUTER_HH
#define FREEPART_SHARD_SHARD_ROUTER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dedup_cache.hh"
#include "core/partition_plan.hh"
#include "core/runtime.hh"
#include "osim/fault_injection.hh"
#include "osim/kernel.hh"
#include "shard/chaos.hh"
#include "shard/cluster_stats.hh"
#include "shard/hash_ring.hh"
#include "shard/health_monitor.hh"
#include "shard/placement.hh"

namespace freepart::shard {

/** How routing keys are placed on shards. */
enum class PlacementPolicy : uint8_t {
    /** Pure consistent hashing (the pre-placement behavior; runs are
     *  byte-identical to a router built before this policy existed). */
    Hash,
    /** Hash placement plus a load-aware override table computed by
     *  hypergraph partitioning over the observed call trace, applied
     *  incrementally under the migrationMaxBytes epoch budget. */
    Optimized,
};

/** Cluster knobs. */
struct ShardRouterConfig {
    uint32_t shardCount = 4;
    uint32_t vnodesPerShard = 64;

    /**
     * Migrate-vs-proxy threshold: a cross-shard ref input at or below
     * this many bytes is migrated to the routing-key owner; above it
     * the call is proxied to the (largest) input's shard instead.
     */
    size_t migrationMaxBytes = 4 << 20;

    /** Capture a serialized replica of every result object so a
     *  shard's objects survive its death (restored on the failover
     *  owner). Off = objects on a killed shard are lost. */
    bool replicateObjects = true;

    /** Drain a shard from the ring once its supervisor has this many
     *  partitions quarantined (the health integration signal). */
    size_t drainQuarantineThreshold = 2;

    /** Simulated cross-shard network: per-byte and per-transfer
     *  fixed cost, charged to the receiving shard's kernel. Distinct
     *  from (and above) the intra-shard shared-memory costs. */
    double netPerByte = 0.25;
    osim::SimTime netRoundTrip = 80'000;

    /** Cluster-level at-least-once dedup cache capacity (tokens). */
    size_t dedupEntries = 1024;

    /** Heartbeat/EWMA failure detection (the invokeAt path). */
    HealthPolicy health;

    /** Default per-call deadline for invokeAt, relative to arrival.
     *  0 = no deadline (CallOptions::deadline overrides per call). */
    osim::SimTime defaultDeadline = 0;

    /** Attempts per invokeAt call across failovers and chaos drops
     *  (the legacy invoke path keeps its shardCount-bounded loop). */
    uint32_t retryBudget = 3;

    /** When the primary turns suspect, run the attempt on a healthy
     *  replica-capable shard instead (inputs staged as stale replica
     *  reads; duplicates collapse through the cluster dedup). */
    bool hedgeRequests = true;

    /** Admission control: shed when a shard's queue (in units of its
     *  service-time EWMA) is deeper than this. */
    uint64_t maxQueueDepth = 64;

    /** On overload/infeasible deadline, serve from the least-loaded
     *  healthy shard via stale replica reads instead of shedding. */
    bool degradedReads = true;

    // ---- Load-aware placement (DESIGN.md §13) ----

    PlacementPolicy placementPolicy = PlacementPolicy::Hash;

    /** Re-partition period in accepted calls (Optimized only; 0 =
     *  re-partition only on explicit repartitionNow() calls). */
    uint64_t repartitionEveryCalls = 0;

    /** Balance constraint of the optimizer: max shard load factor
     *  over the ideal average the solution may plan for. */
    double placementBalanceEpsilon = 0.10;

    /** Seed of the (deterministic) partitioner. */
    uint64_t placementSeed = 1;

    /** Memory bounds of the online trace collector. */
    placement::TraceConfig trace;

    /** Per-shard runtime feature switches. The router overrides
     *  RuntimeConfig::shardId per shard (namespace s+1). */
    core::RuntimeConfig runtime;
};

/** Structured failure cause of a routed call (error string stays the
 *  human-readable detail; this is the machine-checkable kind). */
enum class RouteError : uint8_t {
    None = 0,
    NoLiveShards,     //!< the ring is empty
    ObjectLost,       //!< a ref input died with its shard, no replica
    Overloaded,       //!< shed: admission queue over maxQueueDepth
    DeadlineExceeded, //!< shed: deadline infeasible before execution
    ExecutionFailed,  //!< the runtime returned an error
    RetriesExhausted, //!< budget spent without an acknowledgment
};

/** Display name of a route error. */
const char *routeErrorName(RouteError error);

/** Per-call options for the open-loop invokeAt path. */
struct CallOptions {
    uint64_t dedupToken = 0;

    /** Arrival time on the open-loop axis (ns since run start).
     *  Callers submit nondecreasing arrivals; the router queues the
     *  call behind the target shard's busy horizon. */
    osim::SimTime arrival = 0;

    /** Deadline relative to arrival; 0 = router default. */
    osim::SimTime deadline = 0;
};

/** Outcome of one routed call. */
struct RoutedCall {
    core::ApiResult result;
    uint32_t shard = kInvalidShard; //!< shard that executed the call
    uint32_t failovers = 0; //!< ring re-routes taken by this call
    bool proxied = false;   //!< executed on an input's owner shard
    bool deduped = false;   //!< answered from the cluster dedup cache

    /** Machine-checkable failure cause (None when result.ok). */
    RouteError errorKind = RouteError::None;
    /** The unrecoverable input when errorKind == ObjectLost. */
    uint64_t lostObjectId = 0;

    // ---- invokeAt (open-loop) extras ----
    bool hedged = false;   //!< served by a hedge target, not the owner
    bool degraded = false; //!< served degraded (stale replica reads)
    bool shed = false;     //!< rejected by admission control
    bool deadlineMissed = false; //!< acked, but past its deadline
    osim::SimTime latency = 0;   //!< completion - arrival
    osim::SimTime queueWait = 0; //!< time queued before execution
};

/** The cluster front end. */
class ShardRouter
{
  public:
    /** Per-shard kernel preparation (fixture seeding etc.), run
     *  before the shard's runtime is created. */
    using SeedFn = std::function<void(osim::Kernel &)>;

    ShardRouter(const fw::ApiRegistry &registry,
                analysis::Categorization categorization,
                core::PartitionPlan plan, ShardRouterConfig config,
                SeedFn seed = nullptr);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    // ---- Client surface ----------------------------------------------

    /**
     * Route one API call. The routing key (a session/object grouping
     * chosen by the caller) picks the executing shard via the ring;
     * ref arguments are resolved cluster-wide and migrated or proxied
     * as needed. A nonzero dedup_token makes the call at-least-once
     * across failovers: a token already acknowledged is answered from
     * the cluster dedup cache.
     */
    RoutedCall invoke(uint64_t routing_key, const std::string &api_name,
                      ipc::ValueList args, uint64_t dedup_token = 0);

    /**
     * Open-loop variant: the call *arrives* at opts.arrival on a
     * shared timeline and queues behind the target shard's busy
     * horizon. This is where the chaos-era machinery lives — health
     * probing, deadline-aware budgeted retries, one hedged attempt
     * when the primary is suspect, and queue-depth / deadline
     * admission control with degraded fallback. Arrivals must be
     * nondecreasing across calls.
     */
    RoutedCall invokeAt(uint64_t routing_key,
                        const std::string &api_name,
                        ipc::ValueList args, const CallOptions &opts);

    /** Create a Mat on the routing key's owner shard. */
    uint64_t createMat(uint64_t routing_key, uint32_t rows,
                       uint32_t cols, uint32_t ch, uint64_t seed,
                       const std::string &label);

    /**
     * Barrier across the cluster: settle every shard's virtual
     * timelines (a no-op unless the per-shard runtimes run with
     * pipelineParallel on). Call before reading makespans that must
     * include in-flight async work.
     */
    void drainAll();

    // ---- Membership and failure --------------------------------------

    /**
     * Add a fresh shard (own kernel + runtime) to the cluster and the
     * ring. Routing keys that remap to the joiner have their objects
     * pushed over eagerly when they fit migrationMaxBytes — instead
     * of migrating lazily on first touch. Returns the new shard slot.
     */
    uint32_t addShard(SeedFn seed = nullptr);

    /** Shard slots configured (live or not). */
    uint32_t shardCount() const;

    /** Shards still serving (live and in the ring). */
    size_t liveShardCount() const;

    bool shardLive(uint32_t shard) const;

    /** Kill a shard outright (host death): it leaves the ring and can
     *  no longer serve as migration source; its objects survive only
     *  as replicas. Used by benches to model machine loss. */
    void killShard(uint32_t shard);

    /** Drain a shard: vnodes leave the ring so no new keys land on
     *  it, but the runtime stays up (migration source, in-flight
     *  completion). The quarantine-pressure path. */
    void drainShard(uint32_t shard);

    /**
     * Revive a killed shard slot with a fresh incarnation (new kernel
     * + runtime, same slot and namespace). Directory entries pointing
     * into the dead incarnation are scrubbed so staging falls through
     * to replicas; keys remapping back get their small objects pushed
     * proactively, like addShard.
     */
    void reviveShard(uint32_t shard);

    /**
     * Permanently retire a live shard — planned scale-down, distinct
     * from killShard (host loss) and drainShard (quarantine): the
     * slot's vnodes leave the ring, every object it still owns is
     * evacuated to its surviving ring owner (so zero acknowledged
     * results are lost), placement overrides pointing at the slot are
     * scrubbed (kill deliberately keeps them for the revive path),
     * and cluster-dedup entries whose cached result objects no longer
     * resolve anywhere are pruned. The slot keeps its runtime frozen
     * and can rejoin later via reviveShard (the autoscaler's
     * scale-up fast path). Returns false — and does nothing — when
     * the shard is not a live ring member or is the last one.
     */
    bool retireShard(uint32_t shard);

    /** Was this slot removed by retireShard (and not yet revived)? */
    bool shardRetired(uint32_t shard) const;

    // ---- Tenant sessions (serving layer) -----------------------------

    /**
     * Charge a session's agent-acquisition cost to the routing key's
     * owner shard on the open-loop axis: the shard's busy horizon and
     * kernel clock advance by `cost`, so calls arriving behind a cold
     * start queue exactly as they would behind real process spawns.
     * `warm` only selects which counter the charge lands in.
     */
    void chargeSessionStart(uint64_t routing_key,
                            osim::SimTime arrival, osim::SimTime cost,
                            bool warm);

    /**
     * Tear down a tenant session: evict every object created under
     * the routing key from the runtimes still holding one, drop the
     * directory and replica entries, and return how many objects were
     * scrubbed. Cluster-dedup entries for the session's tokens are
     * deliberately retained — a late duplicate submission must still
     * answer `deduped` rather than re-execute against freed state.
     */
    size_t endSession(uint64_t routing_key);

    // ---- Autoscaler signals ------------------------------------------

    /**
     * Queue-depth estimate of a shard at `now` on the open-loop axis,
     * in units of its service-time EWMA — the same quantity admission
     * control sheds on. 0 for idle or out-of-ring shards.
     */
    double queueDepthAt(uint32_t shard, osim::SimTime now) const;

    /** Router counters without the per-shard RunStats roll-up: the
     *  autoscaler polls this every tick, and stats() walks every
     *  runtime. Per-shard totals/makespan in here are stale. */
    const ClusterStats &quickStats() const { return stats_; }

    /**
     * Arm a chaos plan: the specs go to a router-owned FaultInjector
     * consulted at ShardAdmission / ClusterTransfer, the membership
     * events fire as invokeAt accepts calls. Replaces any previous
     * plan. With no plan armed the chaos paths consume no randomness,
     * so pre-existing runs stay byte-identical.
     */
    void applyChaosSchedule(const ChaosSchedule &plan);

    /** The armed injector (null when no chaos plan is active). */
    const osim::FaultInjector *chaosInjector() const
    {
        return chaos_.get();
    }

    // ---- Load-aware placement ----------------------------------------

    /**
     * Compute and apply a placement epoch now (Optimized policy):
     * contract the current trace window into a group hypergraph,
     * partition it across the live ring shards, install overrides for
     * the groups whose move set fits the remaining migrationMaxBytes
     * epoch budget (migrating their recently-accessed objects), and
     * reset the trace window. Groups that do not fit are deferred to
     * a later epoch. No-op under the Hash policy, with fewer than two
     * live shards, or on an empty trace window.
     */
    void repartitionNow();

    /** Active placement-override table (routing key -> shard). */
    const std::map<uint64_t, uint32_t> &placementOverrides() const
    {
        return override_;
    }

    /** The online trace collector (read-only introspection). */
    const placement::TraceCollector &traceCollector() const
    {
        return trace_;
    }

    // ---- Introspection -----------------------------------------------

    const HashRing &ring() const { return ring_; }

    /** Effective owner of a routing key right now: the placement
     *  override when one points at a live in-ring shard, else the
     *  consistent-hash ring (always the ring under the Hash policy). */
    uint32_t ownerShardOf(uint64_t routing_key) const;

    /** Shard currently holding an object (directory + lazy scan);
     *  kInvalidShard when the object resolves nowhere. */
    uint32_t homeShardOf(uint64_t object_id) const;

    /** A shard's runtime (live or dead — introspection only). */
    core::FreePartRuntime &runtime(uint32_t shard);

    /** A shard's simulated kernel. */
    osim::Kernel &kernel(uint32_t shard);

    /** The failure detector (read-only introspection). */
    const HealthMonitor &healthMonitor() const { return monitor_; }

    /** Current classification of a shard. */
    ShardHealth shardHealth(uint32_t shard) const
    {
        return monitor_.classify(shard);
    }

    /** Roll-up: routing counters + per-shard RunStats totals +
     *  cluster makespan (max per-shard elapsed — shards are
     *  conceptually parallel machines). */
    const ClusterStats &stats();

  private:
    struct Shard {
        uint32_t id = 0;
        std::unique_ptr<osim::Kernel> kernel;
        std::unique_ptr<core::FreePartRuntime> runtime;
        bool live = true;
        bool retired = false; //!< removed by retireShard, revivable
        uint64_t calls = 0;   //!< calls executed here
    };

    /** Serialized copy of an object for cross-shard failover. */
    struct Replica {
        fw::ObjKind kind = fw::ObjKind::Bytes;
        std::vector<uint8_t> bytes;
        std::string label;
    };

    /** Directory lookup with lazy adoption of unknown ids. */
    uint32_t lookupShard(uint64_t object_id) const;

    /** Override-aware placement of a routing key (falls back to the
     *  ring when the override target is dead or out of the ring). */
    uint32_t placeKey(uint64_t routing_key) const;

    /** Record one call into the trace window (Optimized policy) and
     *  fire the periodic re-partition when the epoch fills. */
    void notePlacementCall(uint64_t routing_key,
                           const ipc::ValueList &args);

    /** Serialized size of an object wherever it currently lives
     *  (authoritative store, else replica; 0 when unresolvable). */
    uint64_t objectBytesOf(uint64_t object_id) const;

    /** Install the solution's overrides and migrate the moved groups'
     *  recent objects, bounded by migrationMaxBytes for this epoch.
     *  `targets` maps part index -> live shard id. */
    void applyPlacement(const placement::PartitionResult &solution,
                        const std::vector<uint32_t> &targets);

    /** Move an object's data between two live shards' runtimes. */
    void migrateObject(uint32_t from, uint32_t to, uint64_t object_id);

    /** Rebuild an object from its replica on a live shard. Returns
     *  false when no replica exists (the object is lost). */
    bool restoreReplica(uint32_t to, uint64_t object_id);

    /** Record result objects: directory entries + replicas + the
     *  routing key they were created under (drives proactive push). */
    void noteResults(uint32_t shard, uint64_t routing_key,
                     const ipc::ValueList &values);

    /** Capture (or refresh) an object's replica from its shard. */
    void saveReplica(uint32_t shard, uint64_t object_id);

    /** Post-failure health check: kill on host death, drain on
     *  quarantine pressure. Returns true if the shard left the ring
     *  (the caller should fail over). */
    bool checkShardHealth(uint32_t shard);

    // ---- invokeAt (open-loop / chaos) machinery ----

    /** Fire chaos membership events due at the current call count. */
    void applyChaosEvents();

    /** Heartbeat pass at `now`: probe stale shards, take Dead ones
     *  out of the ring, re-admit recovered monitor-drained ones. */
    void healthTick(osim::SimTime now);

    /** Is the shard frozen by an injected stall at `now`? */
    bool stalledAt(uint32_t shard, osim::SimTime now) const;

    /** Healthiest least-busy live ring shard != avoid (kInvalidShard
     *  when there is no healthy alternative). */
    uint32_t pickAlternative(uint32_t avoid) const;

    /** Stage an input onto `to` from its replica WITHOUT moving
     *  authority — the stale-read path of hedged/degraded attempts. */
    bool stageReplicaRead(uint32_t to, uint64_t object_id);

    /** Eagerly migrate small objects whose routing key now maps to
     *  `target` (shared by addShard and reviveShard). */
    void proactivePush(uint32_t target);

    /** Extra simulated cost of injected drop/corrupt/slow-down on a
     *  cross-shard transfer of `bytes` to shard `dest` (0 with no
     *  chaos armed; consumes no randomness then either). */
    osim::SimTime transferChaosCost(uint32_t dest, size_t bytes);

    const fw::ApiRegistry &registry;
    analysis::Categorization cats;
    core::PartitionPlan plan_;
    ShardRouterConfig config;

    HashRing ring_;
    std::vector<Shard> shards_;
    /** Cluster object directory: object id -> shard slot. Mutable so
     *  homeShardOf()/lookupShard() can lazily adopt ids minted by
     *  direct runtime access (mirrors FreePartRuntime::objectHome). */
    mutable std::map<uint64_t, uint32_t> objectShard_;
    /** object id -> routing key it was created under. Ring ownership
     *  is keyed by routing keys, not object ids, so a joiner's push
     *  set is exactly the objects whose key now maps to it. */
    std::map<uint64_t, uint64_t> objectKey_;
    std::map<uint64_t, Replica> replicas_;
    core::DedupCache dedup_;
    ClusterStats stats_;

    /** Placement-override table layered over the ring: routing key ->
     *  shard. Entries survive the target's death (bypassed while it
     *  is out of the ring, effective again after reviveShard). */
    std::map<uint64_t, uint32_t> override_;
    placement::TraceCollector trace_;
    uint64_t callsSinceRepartition_ = 0;

    SeedFn seed_; //!< kept for reviveShard's fresh incarnations
    HealthMonitor monitor_;
    std::unique_ptr<osim::FaultInjector> chaos_;
    std::vector<ChaosEvent> chaosEvents_; //!< sorted by atCall
    size_t chaosCursor_ = 0;
    uint64_t openLoopCalls_ = 0; //!< invokeAt calls accepted
    /** Per-shard open-loop state on the shared arrival axis. */
    std::vector<osim::SimTime> busyUntil_;    //!< queue busy horizon
    std::vector<osim::SimTime> stalledUntil_; //!< injected freeze end
    std::vector<uint8_t> monitorDrained_;     //!< drained by detector
};

} // namespace freepart::shard

#endif // FREEPART_SHARD_SHARD_ROUTER_HH
