#include "analysis/partition_lint.hh"

#include <algorithm>
#include <sstream>

#include "analysis/static_analyzer.hh"
#include "apps/app_models.hh"
#include "apps/workload.hh"
#include "core/partition_plan.hh"
#include "core/runtime.hh"
#include "util/checksum.hh"
#include "util/logging.hh"

namespace freepart::analysis {

namespace {

/** Render a syscall set as "close,openat,read" (sorted by name). */
std::string
syscallListName(const std::set<osim::Syscall> &calls)
{
    std::vector<std::string> names;
    names.reserve(calls.size());
    for (osim::Syscall call : calls)
        names.push_back(osim::syscallName(call));
    std::sort(names.begin(), names.end());
    std::string out;
    for (const std::string &name : names)
        out += (out.empty() ? "" : ",") + name;
    return out;
}

/** JSON string escaping for the deterministic writers. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char *
lintDefectCode(LintDefect defect)
{
    switch (defect) {
    case LintDefect::ByValueCrossing: return "L1";
    case LintDefect::WideAllowlist: return "L2";
    case LintDefect::MiscategorizedApi: return "L3";
    case LintDefect::RegistryInconsistency: return "L4";
    }
    return "L?";
}

const char *
lintDefectName(LintDefect defect)
{
    switch (defect) {
    case LintDefect::ByValueCrossing: return "by-value-crossing";
    case LintDefect::WideAllowlist: return "wide-allowlist";
    case LintDefect::MiscategorizedApi: return "miscategorized-api";
    case LintDefect::RegistryInconsistency:
        return "registry-inconsistency";
    }
    return "unknown";
}

const char *
lintSeverityName(LintSeverity severity)
{
    switch (severity) {
    case LintSeverity::Info: return "info";
    case LintSeverity::Warning: return "warning";
    case LintSeverity::Error: return "error";
    }
    return "unknown";
}

LintSeverity
lintSeverityFromName(const std::string &name)
{
    if (name == "info")
        return LintSeverity::Info;
    if (name == "warning")
        return LintSeverity::Warning;
    if (name == "error")
        return LintSeverity::Error;
    util::fatal("unknown lint severity: %s", name.c_str());
}

const char *
lintRepairKindName(LintRepairKind kind)
{
    switch (kind) {
    case LintRepairKind::None: return "none";
    case LintRepairKind::ForceLdcRef: return "force-ldc-ref";
    case LintRepairKind::NarrowAllowlist: return "narrow-allowlist";
    case LintRepairKind::RecategorizeApi: return "recategorize-api";
    case LintRepairKind::DropStaleEntry: return "drop-stale-entry";
    case LintRepairKind::AdoptCategorization:
        return "adopt-categorization";
    }
    return "unknown";
}

std::string
LintRepair::describe() const
{
    switch (kind) {
    case LintRepairKind::None:
        return "no mechanical repair";
    case LintRepairKind::ForceLdcRef:
        return "pass " + api + " arg " + std::to_string(argIndex) +
               " as an LDC ObjectRef instead of Blob bytes";
    case LintRepairKind::NarrowAllowlist:
        return "narrow partition " + std::to_string(partition) +
               " allowlist to the " +
               std::to_string(narrowedAllowlist.size()) +
               " observed+slack syscalls";
    case LintRepairKind::RecategorizeApi:
        return "recategorize " + api + " as " +
               fw::apiTypeName(newType);
    case LintRepairKind::DropStaleEntry:
        return "drop stale categorization entry " + api;
    case LintRepairKind::AdoptCategorization:
        return "categorize " + api + " as " + fw::apiTypeName(newType);
    }
    return "unknown repair";
}

std::set<osim::Syscall>
LintConfig::defaultAllowlistSlack()
{
    // The runtime-infrastructure set (mirrors the runtime's
    // kInfraSyscalls, plus close: agents may hold fds across calls a
    // short replay never closes).
    return {osim::Syscall::Futex,      osim::Syscall::ShmOpen,
            osim::Syscall::Mmap,       osim::Syscall::Munmap,
            osim::Syscall::Brk,        osim::Syscall::Exit,
            osim::Syscall::Prctl,      osim::Syscall::SchedYield,
            osim::Syscall::Getpid,     osim::Syscall::Close};
}

bool
isDangerousSurplusSyscall(osim::Syscall call)
{
    switch (call) {
    case osim::Syscall::Write:
    case osim::Syscall::Writev:
    case osim::Syscall::Send:
    case osim::Syscall::Sendto:
    case osim::Syscall::Connect:
    case osim::Syscall::Socket:
    case osim::Syscall::Fork:
    case osim::Syscall::Execve:
    case osim::Syscall::Mprotect:
        return true;
    default:
        return false;
    }
}

size_t
LintReport::countByDefect(LintDefect defect) const
{
    size_t n = 0;
    for (const LintFinding &finding : findings)
        if (finding.defect == defect)
            ++n;
    return n;
}

size_t
LintReport::countAtLeast(LintSeverity severity) const
{
    size_t n = 0;
    for (const LintFinding &finding : findings)
        if (finding.severity >= severity)
            ++n;
    return n;
}

size_t
LintReport::repairableCount() const
{
    size_t n = 0;
    for (const LintFinding &finding : findings)
        if (finding.repairable())
            ++n;
    return n;
}

const LintFinding *
LintReport::findByKey(const std::string &key) const
{
    for (const LintFinding &finding : findings)
        if (finding.key == key)
            return &finding;
    return nullptr;
}

PartitionLinter::PartitionLinter(LintConfig config)
    : config_(std::move(config))
{
}

// ---- L1: critical data crossing by value ----------------------------

void
PartitionLinter::lintCrossings(const LintInput &input,
                               LintReport &out) const
{
    std::set<std::string> emitted; // one finding per key: the same
                                   // call site recurs in every app
                                   // that replays it
    for (size_t i = 0; i < input.crossings.size(); ++i) {
        const ValueCrossing &crossing = input.crossings[i];
        if (crossing.byRef)
            continue; // already (or repaired to) an LDC reference
        if (!crossing.critical &&
            crossing.bytes < config_.byValueMinBytes)
            continue; // small scalar-ish blob, not bulk data
        LintFinding finding;
        finding.defect = LintDefect::ByValueCrossing;
        finding.severity = crossing.critical ? LintSeverity::Error
                                             : LintSeverity::Warning;
        finding.subject = crossing.api;
        std::string what =
            crossing.critical
                ? "critical object '" + crossing.label + "'"
                : std::to_string(crossing.bytes) + " bytes";
        finding.key = "L1:" + crossing.api + ":arg" +
                      std::to_string(crossing.argIndex) + ":" +
                      (crossing.critical ? crossing.label : "blob");
        if (!emitted.insert(finding.key).second)
            continue;
        finding.message =
            what + " crossed into partition " +
            std::to_string(crossing.toPartition) + " by value (Blob) "
            "in arg " + std::to_string(crossing.argIndex) + " of " +
            crossing.api + "; the boundary must carry an LDC "
            "reference so the data never leaves its agent";
        finding.repair.kind = LintRepairKind::ForceLdcRef;
        finding.repair.api = crossing.api;
        finding.repair.argIndex = crossing.argIndex;
        out.findings.push_back(std::move(finding));
    }
}

// ---- L2: allowlists wider than observed + slack ---------------------

void
PartitionLinter::lintAllowlists(const LintInput &input,
                                LintReport &out) const
{
    for (const AgentSnapshot &agent : input.agents) {
        std::set<osim::Syscall> extra;
        for (osim::Syscall call : agent.allowlist)
            if (!agent.observed.count(call) &&
                !config_.allowlistSlack.count(call))
                extra.insert(call);
        if (extra.empty())
            continue;
        bool dangerous = std::any_of(extra.begin(), extra.end(),
                                     isDangerousSurplusSyscall);
        LintFinding finding;
        finding.defect = LintDefect::WideAllowlist;
        finding.severity = dangerous ? LintSeverity::Error
                                     : LintSeverity::Warning;
        finding.subject = agent.name;
        // The key encodes the surplus *content*: widening an
        // already-baselined filter further produces a new key, so
        // the CI gate still fires.
        finding.key = "L2:" + agent.name + ":extra:" +
                      syscallListName(extra);
        finding.message =
            "agent '" + agent.name + "' allows " +
            std::to_string(agent.allowlist.size()) +
            " syscalls but only " +
            std::to_string(agent.observed.size()) +
            " were observed across " +
            std::to_string(input.appsReplayed) +
            " app replays; surplus beyond slack: " +
            syscallListName(extra) +
            (dangerous ? " (includes exfiltration/code-manipulation "
                         "syscalls)"
                       : "");
        finding.repair.kind = LintRepairKind::NarrowAllowlist;
        finding.repair.partition = agent.partition;
        for (osim::Syscall call : agent.allowlist)
            if (!extra.count(call))
                finding.repair.narrowedAllowlist.insert(call);
        out.findings.push_back(std::move(finding));
    }
}

// ---- L3: category contradicts the API's data flow -------------------

fw::ApiType
PartitionLinter::referenceType(const fw::ApiDescriptor &api) const
{
    // The full IR — including the indirect ops only the dynamic
    // tracer can see at runtime — is the ground-truth flow set; apply
    // the §4.2.1 file-copy reduction, then the Fig. 9 rules.
    return fw::classifyFlowOps(reduceFileCopies(api.ir));
}

void
PartitionLinter::lintCategories(const LintInput &input,
                                LintReport &out) const
{
    if (!input.registry)
        return;
    for (const auto &[name, entry] : input.categorization) {
        const fw::ApiDescriptor *desc = input.registry->byName(name);
        if (!desc)
            continue; // stale entry: L4's department
        if (entry.typeNeutral || desc->typeNeutral)
            continue; // context-typed utilities have no fixed home
        if (entry.type == fw::ApiType::Unknown)
            continue; // uncategorized: L4's department
        fw::ApiType flow_type = referenceType(*desc);
        if (flow_type == fw::ApiType::Unknown ||
            flow_type == entry.type)
            continue;
        LintFinding finding;
        finding.defect = LintDefect::MiscategorizedApi;
        finding.severity = LintSeverity::Error;
        finding.subject = name;
        finding.key = "L3:" + name + ":" +
                      fw::apiTypeShortName(entry.type) + "->" +
                      fw::apiTypeShortName(flow_type);
        finding.message =
            name + " is categorized as " +
            fw::apiTypeName(entry.type) + " but its data flow (" +
            std::to_string(desc->ir.size()) +
            " IR ops after file-copy reduction) implies " +
            fw::apiTypeName(flow_type) +
            "; it would execute in an agent whose temporal "
            "protections do not match the data it touches";
        finding.repair.kind = LintRepairKind::RecategorizeApi;
        finding.repair.api = name;
        finding.repair.newType = flow_type;
        out.findings.push_back(std::move(finding));
    }
}

// ---- L4: registry / categorization drift ----------------------------

void
PartitionLinter::lintRegistry(const LintInput &input,
                              LintReport &out) const
{
    if (!input.registry)
        return;
    const fw::ApiRegistry &registry = *input.registry;

    // Duplicate registrations: two descriptors sharing one name make
    // byName() (and therefore partition routing) ambiguous.
    std::map<std::string, size_t> name_counts;
    for (const fw::ApiDescriptor &api : registry.all())
        ++name_counts[api.name];
    for (const auto &[name, count] : name_counts) {
        if (count < 2)
            continue;
        LintFinding finding;
        finding.defect = LintDefect::RegistryInconsistency;
        finding.severity = LintSeverity::Error;
        finding.subject = name;
        finding.key = "L4:duplicate:" + name;
        finding.message = name + " is registered " +
                          std::to_string(count) +
                          " times; routing by name is ambiguous";
        out.findings.push_back(std::move(finding));
    }

    // Stale categorization entries: the categorization names an API
    // the registry no longer has — the runtime would never route it,
    // but its syscalls still widen an agent's policy union.
    for (const auto &[name, entry] : input.categorization) {
        if (registry.byName(name))
            continue;
        LintFinding finding;
        finding.defect = LintDefect::RegistryInconsistency;
        finding.severity = LintSeverity::Error;
        finding.subject = name;
        finding.key = "L4:stale:" + name;
        finding.message =
            "categorization entry '" + name +
            "' matches no registered API" +
            (entry.syscalls.empty()
                 ? std::string()
                 : "; its " + std::to_string(entry.syscalls.size()) +
                       " profiled syscalls still widen the agent "
                       "policy union");
        finding.repair.kind = LintRepairKind::DropStaleEntry;
        finding.repair.api = name;
        out.findings.push_back(std::move(finding));
    }

    // Uncategorized registry APIs: no categorization entry (or an
    // Unknown type) means the runtime falls back to declaredType with
    // no syscall profile — the API runs on ground-truth trust.
    for (const fw::ApiDescriptor &api : registry.all()) {
        auto it = input.categorization.find(api.name);
        bool missing = it == input.categorization.end();
        bool unknown = !missing &&
                       it->second.type == fw::ApiType::Unknown &&
                       !it->second.typeNeutral;
        if (!missing && !unknown)
            continue;
        LintFinding finding;
        finding.defect = LintDefect::RegistryInconsistency;
        finding.severity = LintSeverity::Warning;
        finding.subject = api.name;
        finding.key = "L4:uncategorized:" + api.name;
        finding.message =
            api.name +
            (missing ? " has no categorization entry"
                     : " is categorized as Unknown") +
            "; it would route on declared type with no profiled "
            "syscall set";
        fw::ApiType flow_type = referenceType(api);
        if (flow_type != fw::ApiType::Unknown) {
            finding.repair.kind = LintRepairKind::AdoptCategorization;
            finding.repair.api = api.name;
            finding.repair.newType = flow_type;
        }
        out.findings.push_back(std::move(finding));
    }

    // Unreachable implemented APIs: nothing in the 23 Table 6 traces
    // can ever exercise them, so their syscall profiles inflate the
    // agent allowlists without any replay able to justify them.
    if (config_.flagUnreachable && !input.reachableApis.empty()) {
        for (const fw::ApiDescriptor &api : registry.all()) {
            if (!api.implemented() ||
                input.reachableApis.count(api.name))
                continue;
            LintFinding finding;
            finding.defect = LintDefect::RegistryInconsistency;
            finding.severity = LintSeverity::Info;
            finding.subject = api.name;
            finding.key = "L4:unreachable:" + api.name;
            finding.message =
                api.name + " is implemented but unreachable from "
                "every replayed app trace; its syscall profile "
                "widens its agent's allowlist unexercised";
            out.findings.push_back(std::move(finding));
        }
    }
}

LintReport
PartitionLinter::lint(const LintInput &input) const
{
    LintReport report;
    lintCrossings(input, report);
    lintAllowlists(input, report);
    lintCategories(input, report);
    lintRegistry(input, report);
    std::sort(report.findings.begin(), report.findings.end(),
              [](const LintFinding &a, const LintFinding &b) {
                  if (a.defect != b.defect)
                      return a.defect < b.defect;
                  return a.key < b.key;
              });
    return report;
}

size_t
PartitionLinter::applyRepairs(LintInput &input,
                              const LintReport &report) const
{
    size_t applied = 0;
    for (const LintFinding &finding : report.findings) {
        const LintRepair &repair = finding.repair;
        switch (repair.kind) {
        case LintRepairKind::None:
            break;
        case LintRepairKind::ForceLdcRef:
            for (ValueCrossing &crossing : input.crossings)
                if (!crossing.byRef && crossing.api == repair.api &&
                    crossing.argIndex == repair.argIndex) {
                    crossing.byRef = true;
                    ++applied;
                }
            break;
        case LintRepairKind::NarrowAllowlist:
            for (AgentSnapshot &agent : input.agents)
                if (agent.partition == repair.partition) {
                    agent.allowlist = repair.narrowedAllowlist;
                    ++applied;
                }
            break;
        case LintRepairKind::RecategorizeApi: {
            auto it = input.categorization.find(repair.api);
            if (it != input.categorization.end()) {
                it->second.type = repair.newType;
                ++applied;
            }
            break;
        }
        case LintRepairKind::DropStaleEntry:
            applied += input.categorization.erase(repair.api);
            break;
        case LintRepairKind::AdoptCategorization: {
            CategoryEntry entry;
            entry.type = repair.newType;
            entry.staticType = repair.newType;
            if (const fw::ApiDescriptor *desc =
                    input.registry
                        ? input.registry->byName(repair.api)
                        : nullptr)
                entry.syscalls = desc->syscalls;
            input.categorization[repair.api] = std::move(entry);
            ++applied;
            break;
        }
        }
    }
    return applied;
}

LintReport
PartitionLinter::fixToConvergence(LintInput &input, size_t max_iters,
                                  size_t *iterations) const
{
    LintReport report = lint(input);
    size_t rounds = 0;
    while (report.repairableCount() > 0 && rounds < max_iters) {
        applyRepairs(input, report);
        ++rounds;
        report = lint(input);
    }
    if (iterations)
        *iterations = rounds;
    return report;
}

// ---- Serialization --------------------------------------------------

std::string
reportToJson(const LintReport &report, const LintInput &input,
             const LintBaseline *baseline)
{
    size_t by_defect[kNumLintDefects] = {0, 0, 0, 0};
    size_t by_severity[3] = {0, 0, 0};
    size_t fresh = 0;
    for (const LintFinding &finding : report.findings) {
        ++by_defect[static_cast<size_t>(finding.defect)];
        ++by_severity[static_cast<size_t>(finding.severity)];
        if (!baseline || !baseline->acceptedKeys.count(finding.key))
            ++fresh;
    }

    std::ostringstream out;
    out << "{\n"
        << "  \"tool\": \"freepart_lint\",\n"
        << "  \"version\": 1,\n"
        << "  \"apps_replayed\": " << input.appsReplayed << ",\n"
        << "  \"counts\": {\n";
    for (size_t d = 0; d < kNumLintDefects; ++d)
        out << "    \""
            << lintDefectCode(static_cast<LintDefect>(d))
            << "\": " << by_defect[d] << ",\n";
    out << "    \"error\": " << by_severity[2] << ",\n"
        << "    \"warning\": " << by_severity[1] << ",\n"
        << "    \"info\": " << by_severity[0] << ",\n"
        << "    \"total\": " << report.findings.size() << ",\n"
        << "    \"new\": " << fresh << "\n"
        << "  },\n"
        << "  \"findings\": [";
    for (size_t i = 0; i < report.findings.size(); ++i) {
        const LintFinding &finding = report.findings[i];
        bool accepted = baseline &&
                        baseline->acceptedKeys.count(finding.key);
        out << (i ? ",\n" : "\n")
            << "    {\n"
            << "      \"key\": \"" << jsonEscape(finding.key)
            << "\",\n"
            << "      \"defect\": \""
            << lintDefectCode(finding.defect) << "\",\n"
            << "      \"class\": \"" << lintDefectName(finding.defect)
            << "\",\n"
            << "      \"severity\": \""
            << lintSeverityName(finding.severity) << "\",\n"
            << "      \"subject\": \"" << jsonEscape(finding.subject)
            << "\",\n"
            << "      \"message\": \"" << jsonEscape(finding.message)
            << "\",\n"
            << "      \"repair\": \""
            << jsonEscape(finding.repair.describe()) << "\",\n"
            << "      \"repair_kind\": \""
            << lintRepairKindName(finding.repair.kind) << "\",\n"
            << "      \"baselined\": " << (accepted ? "true" : "false")
            << "\n    }";
    }
    out << (report.findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::string
baselineToJson(const LintReport &report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"tool\": \"freepart_lint\",\n"
        << "  \"version\": 1,\n"
        << "  \"accepted\": [";
    for (size_t i = 0; i < report.findings.size(); ++i) {
        const LintFinding &finding = report.findings[i];
        out << (i ? ",\n" : "\n")
            << "    {\"key\": \"" << jsonEscape(finding.key)
            << "\", \"severity\": \""
            << lintSeverityName(finding.severity)
            << "\", \"subject\": \"" << jsonEscape(finding.subject)
            << "\"}";
    }
    out << (report.findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

LintBaseline
parseBaseline(const std::string &json_text)
{
    // Minimal extraction of every "key" string field. The writer
    // above never emits escaped quotes inside keys (they are built
    // from API/syscall names), so a plain scan is exact for the
    // files this tool writes.
    LintBaseline baseline;
    const std::string marker = "\"key\":";
    size_t pos = 0;
    while ((pos = json_text.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        size_t open = json_text.find('"', pos);
        if (open == std::string::npos)
            break;
        size_t close = json_text.find('"', open + 1);
        if (close == std::string::npos)
            break;
        baseline.acceptedKeys.insert(
            json_text.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return baseline;
}

std::vector<const LintFinding *>
newFindings(const LintReport &report, const LintBaseline &baseline)
{
    std::vector<const LintFinding *> fresh;
    for (const LintFinding &finding : report.findings)
        if (!baseline.acceptedKeys.count(finding.key))
            fresh.push_back(&finding);
    return fresh;
}

// ---- Collector ------------------------------------------------------

LintInput
collectLintInput(const fw::ApiRegistry &registry,
                 const Categorization &categorization,
                 const CollectOptions &options)
{
    LintInput input;
    input.registry = &registry;
    input.categorization = categorization;

    core::PartitionPlan plan = core::PartitionPlan::freePartDefault();
    input.agents.resize(plan.partitionCount());
    for (uint32_t p = 0; p < plan.partitionCount(); ++p) {
        input.agents[p].partition = p;
        input.agents[p].name = plan.partitionName(p);
    }

    apps::WorkloadGenerator::Config wl_config;
    wl_config.imageRows = options.imageRows;
    wl_config.imageCols = options.imageCols;
    wl_config.tensorDim = options.tensorDim;
    wl_config.maxRounds = options.maxRounds;
    apps::WorkloadGenerator generator(registry, wl_config);

    const std::vector<apps::AppModel> &models = apps::appModels();
    size_t limit = options.maxApps
                       ? std::min(options.maxApps, models.size())
                       : models.size();

    for (size_t m = 0; m < limit; ++m) {
        const apps::AppModel &model = models[m];
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(
            kernel, registry, categorization,
            core::PartitionPlan::freePartDefault());

        // Tap the boundary: every Blob argument bound for an agent is
        // a by-value crossing. Criticality = the bytes are an exact
        // serialized copy of an annotated (protected) host object.
        runtime.setBoundaryObserver(
            [&](const std::string &api, uint32_t partition,
                const ipc::ValueList &args) {
                for (size_t i = 0; i < args.size(); ++i) {
                    if (args[i].kind() != ipc::Value::Kind::Blob)
                        continue;
                    const std::vector<uint8_t> &blob =
                        args[i].asBlob();
                    ValueCrossing crossing;
                    crossing.api = api;
                    crossing.argIndex = i;
                    crossing.toPartition = partition;
                    crossing.bytes = blob.size();
                    uint64_t blob_sum = util::fnv1a64(blob);
                    for (uint64_t id :
                         runtime.hostStore().ids()) {
                        const fw::StoredObject &obj =
                            runtime.hostStore().get(id);
                        bool annotated = false;
                        for (const core::ProtectedVar &var :
                             runtime.protectedVars())
                            if (var.name == obj.label) {
                                annotated = true;
                                break;
                            }
                        if (!annotated)
                            continue;
                        std::vector<uint8_t> wire =
                            runtime.hostStore().serialize(id);
                        if (wire.size() == blob.size() &&
                            util::fnv1a64(wire) == blob_sum) {
                            crossing.critical = true;
                            crossing.label = obj.label;
                            crossing.objectId = id;
                            break;
                        }
                    }
                    input.crossings.push_back(std::move(crossing));
                }
            });

        generator.run(runtime, model);
        // End the grace period so the captured allowlists are the
        // steady-state (post-lockdown) filters the agents actually
        // run under.
        runtime.lockdownAll();

        for (uint32_t p = 0; p < plan.partitionCount(); ++p) {
            const osim::SyscallFilter &filter =
                runtime.agentFilter(p);
            const osim::Process &proc =
                runtime.kernel().process(runtime.agentPid(p));
            AgentSnapshot &agent = input.agents[p];
            for (osim::Syscall call : osim::allSyscalls()) {
                if (filter.permits(call))
                    agent.allowlist.insert(call);
                if (proc.syscallCounts[static_cast<size_t>(call)] >
                    0)
                    agent.observed.insert(call);
            }
        }
        for (const apps::WorkloadCall &call : generator.trace(model))
            input.reachableApis.insert(call.api);
    }
    input.appsReplayed = limit;
    return input;
}

// ---- Defect planting ------------------------------------------------

void
plantByValueCrossing(LintInput &input)
{
    ValueCrossing crossing;
    crossing.api = "cv2.matchTemplate";
    crossing.argIndex = 1;
    crossing.toPartition = 1; // Processing agent
    crossing.bytes = 256 * 1024;
    crossing.critical = true;
    crossing.label = "planted:omr-template";
    crossing.objectId = 0xbad0bad0;
    input.crossings.push_back(std::move(crossing));
}

void
plantWideAllowlist(LintInput &input)
{
    if (input.agents.empty()) {
        AgentSnapshot agent;
        agent.partition = 0;
        agent.name = "Loading";
        agent.observed = {osim::Syscall::Openat, osim::Syscall::Read,
                          osim::Syscall::Close};
        agent.allowlist = agent.observed;
        input.agents.push_back(std::move(agent));
    }
    input.agents[0].allowlist.insert(osim::Syscall::Send);
    input.agents[0].allowlist.insert(osim::Syscall::Write);
    input.agents[0].observed.erase(osim::Syscall::Send);
    input.agents[0].observed.erase(osim::Syscall::Write);
}

void
plantMiscategorization(LintInput &input)
{
    for (auto &[name, entry] : input.categorization) {
        if (entry.type != fw::ApiType::Loading || entry.typeNeutral)
            continue;
        if (input.registry) {
            const fw::ApiDescriptor *desc =
                input.registry->byName(name);
            if (!desc || desc->typeNeutral)
                continue;
        }
        entry.type = fw::ApiType::Processing;
        return;
    }
    util::fatal("plantMiscategorization: no loading entry to flip");
}

void
plantRegistryInconsistency(LintInput &input)
{
    CategoryEntry stale;
    stale.type = fw::ApiType::Storing;
    stale.syscalls = {osim::Syscall::Openat, osim::Syscall::Write};
    input.categorization["cv2.removedInRefactor"] = std::move(stale);
    if (!input.categorization.empty() && input.registry)
        for (const fw::ApiDescriptor &api : input.registry->all())
            if (input.categorization.erase(api.name)) {
                // One registry API is now uncategorized.
                break;
            }
}

void
plantAllDefects(LintInput &input)
{
    plantByValueCrossing(input);
    plantWideAllowlist(input);
    plantMiscategorization(input);
    plantRegistryInconsistency(input);
}

} // namespace freepart::analysis
