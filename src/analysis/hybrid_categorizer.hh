/**
 * @file
 * The hybrid (static + dynamic) API-type categorizer of §4.2.2:
 * static analysis first; when it cannot see all flows (indirect
 * dispatch), the dynamic tracer fills the gap. Also detects
 * type-neutral utilities from call-sequence context and extracts
 * per-API syscall profiles for the seccomp policy builder.
 */

#ifndef FREEPART_ANALYSIS_HYBRID_CATEGORIZER_HH
#define FREEPART_ANALYSIS_HYBRID_CATEGORIZER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dynamic_tracer.hh"
#include "analysis/static_analyzer.hh"
#include "fw/api_registry.hh"

namespace freepart::analysis {

/** Final categorization of one API. */
struct CategoryEntry {
    fw::ApiType type = fw::ApiType::Unknown;   //!< final decision
    fw::ApiType staticType = fw::ApiType::Unknown;
    bool usedDynamic = false; //!< dynamic pass was needed
    bool typeNeutral = false; //!< detected context-typed utility
    std::set<osim::Syscall> syscalls; //!< required syscalls observed
};

/** Complete categorization result for a set of APIs. */
using Categorization = std::map<std::string, CategoryEntry>;

/** The hybrid categorizer. */
class HybridCategorizer
{
  public:
    explicit HybridCategorizer(const fw::ApiRegistry &registry);

    /** Categorize a specific API list (a program's API set). */
    Categorization
    categorize(const std::vector<std::string> &api_names);

    /** Categorize every API in the registry. */
    Categorization categorizeAll();

    /**
     * Mark type-neutral APIs given a program's dynamic call sequence:
     * an API is neutral when it is memory-to-memory only and appears
     * directly adjacent to two or more distinct API types (§4.2
     * "Type-neutral Framework APIs"). Updates entries in place.
     */
    void detectNeutral(Categorization &cats,
                       const std::vector<std::string> &call_sequence);

    /** Count APIs of each concrete type in a categorization. */
    static std::map<fw::ApiType, size_t>
    countByType(const Categorization &cats);

    /** Access the tracer (for coverage reports). */
    DynamicTracer &tracer() { return tracer_; }

  private:
    const fw::ApiRegistry &registry;
    StaticAnalyzer staticPass;
    DynamicTracer tracer_;
};

} // namespace freepart::analysis

#endif // FREEPART_ANALYSIS_HYBRID_CATEGORIZER_HH
