#include "analysis/hybrid_categorizer.hh"

#include "util/logging.hh"

namespace freepart::analysis {

HybridCategorizer::HybridCategorizer(const fw::ApiRegistry &registry)
    : registry(registry)
{
}

Categorization
HybridCategorizer::categorize(const std::vector<std::string> &api_names)
{
    Categorization out;
    for (const std::string &name : api_names) {
        if (out.count(name))
            continue;
        const fw::ApiDescriptor *api = registry.byName(name);
        if (!api) {
            util::warn("categorizer: unknown API '%s'", name.c_str());
            continue;
        }
        CategoryEntry entry;
        StaticResult sres = staticPass.analyze(*api);
        entry.staticType = sres.type;

        if (sres.complete && sres.type != fw::ApiType::Unknown) {
            entry.type = sres.type;
        } else {
            // Static pass was blind (indirect flows) or inconclusive:
            // fall back to the dynamic tracer.
            entry.usedDynamic = true;
            TraceResult tres = tracer_.trace(*api, /*runs=*/2);
            if (tres.executed) {
                std::vector<fw::FlowOp> ops =
                    reduceFileCopies(tres.ops);
                entry.type = fw::classifyFlowOps(ops);
            } else {
                entry.type = sres.type; // best effort
            }
        }

        // Syscall profile: dynamic observation is ground truth; the
        // declared profile fills in for modeled-only APIs.
        TraceResult tres = tracer_.trace(*api);
        if (tres.executed)
            entry.syscalls = tres.syscalls;
        else
            entry.syscalls = api->syscalls;

        out.emplace(name, std::move(entry));
    }
    return out;
}

Categorization
HybridCategorizer::categorizeAll()
{
    std::vector<std::string> names;
    names.reserve(registry.size());
    for (const fw::ApiDescriptor &api : registry.all())
        names.push_back(api.name);
    return categorize(names);
}

void
HybridCategorizer::detectNeutral(
    Categorization &cats,
    const std::vector<std::string> &call_sequence)
{
    for (auto &[name, entry] : cats) {
        if (entry.type != fw::ApiType::Processing)
            continue;
        // An API is "frequently used together with different types
        // of APIs" when the majority of its call sites are directly
        // adjacent to a non-processing API (imread -> cvtColor,
        // cvtColor -> imshow, ...). Plain compute kernels sit inside
        // processing chains and only occasionally border another
        // type, so they stay concrete.
        size_t occurrences = 0;
        size_t mixed_context = 0;
        for (size_t i = 0; i < call_sequence.size(); ++i) {
            if (call_sequence[i] != name)
                continue;
            ++occurrences;
            bool non_processing_neighbour = false;
            for (size_t j : {i - 1, i + 1}) {
                if (j >= call_sequence.size() ||
                    call_sequence[j] == name)
                    continue;
                auto it = cats.find(call_sequence[j]);
                if (it != cats.end() &&
                    it->second.type != fw::ApiType::Processing)
                    non_processing_neighbour = true;
            }
            if (non_processing_neighbour)
                ++mixed_context;
        }
        if (occurrences >= 2 && mixed_context * 2 > occurrences)
            entry.typeNeutral = true;
    }
}

std::map<fw::ApiType, size_t>
HybridCategorizer::countByType(const Categorization &cats)
{
    std::map<fw::ApiType, size_t> out;
    for (const auto &[name, entry] : cats)
        ++out[entry.type];
    return out;
}

} // namespace freepart::analysis
