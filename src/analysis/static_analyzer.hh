/**
 * @file
 * Static data-flow analysis over API IR (§4.2.2). Walks the declared
 * operations of each framework API, applying the "memory copy via
 * files" reduction of §4.2.1, and classifies per the Fig. 9 rules.
 * Operations flagged `indirect` (dynamically allocated objects,
 * indirect calls — the language constructs the paper says defeat
 * static analysis) are invisible to this pass; APIs whose visible ops
 * are incomplete are flagged so the hybrid driver falls back to the
 * dynamic tracer.
 */

#ifndef FREEPART_ANALYSIS_STATIC_ANALYZER_HH
#define FREEPART_ANALYSIS_STATIC_ANALYZER_HH

#include <vector>

#include "fw/api_registry.hh"

namespace freepart::analysis {

/** Outcome of statically analyzing one API. */
struct StaticResult {
    fw::ApiType type = fw::ApiType::Unknown; //!< classified type
    bool complete = true;  //!< false if indirect ops were hidden
    std::vector<fw::FlowOp> visibleOps; //!< ops after reduction
};

/**
 * Collapse file-mediated memory copies: a spill W(FILE, R(MEM))
 * followed by a reload W(MEM, R(FILE)) is rewritten to a single
 * W(MEM, R(MEM)) — the tf.keras.utils.get_file pattern (§4.2.1).
 */
std::vector<fw::FlowOp>
reduceFileCopies(std::vector<fw::FlowOp> ops);

/** Static analyzer over a registry's declared IR. */
class StaticAnalyzer
{
  public:
    /** Analyze one API's IR. */
    StaticResult analyze(const fw::ApiDescriptor &api) const;
};

} // namespace freepart::analysis

#endif // FREEPART_ANALYSIS_STATIC_ANALYZER_HH
