/**
 * @file
 * Dynamic analysis: execute framework APIs in an instrumented scratch
 * process, replaying test-suite-style fixture inputs (§4.2.2), and
 * record the *actual* data-flow operations and syscalls. Catches the
 * flows the static pass misses (indirect ops) and produces the
 * per-API syscall profiles the seccomp policy builder consumes
 * (§4.4.1 "Identifying Required System Calls").
 */

#ifndef FREEPART_ANALYSIS_DYNAMIC_TRACER_HH
#define FREEPART_ANALYSIS_DYNAMIC_TRACER_HH

#include <map>
#include <memory>
#include <set>

#include "fw/api_registry.hh"
#include "fw/invoker.hh"
#include "osim/kernel.hh"

namespace freepart::analysis {

/** Observations from tracing one API. */
struct TraceResult {
    bool executed = false;           //!< body ran to completion
    std::vector<fw::FlowOp> ops;     //!< observed flow operations
    std::set<osim::Syscall> syscalls; //!< syscalls actually issued
};

/** Per-framework coverage of the dynamic pass (Table 11). */
struct CoverageReport {
    size_t apisTotal = 0;
    size_t apisExecuted = 0;
    size_t irOpsTotal = 0;
    size_t irOpsObserved = 0;

    double
    apiCoverage() const
    {
        return apisTotal
                   ? static_cast<double>(apisExecuted) / apisTotal
                   : 0.0;
    }

    double
    irCoverage() const
    {
        return irOpsTotal
                   ? static_cast<double>(irOpsObserved) / irOpsTotal
                   : 0.0;
    }
};

/**
 * The tracer. Owns a private scratch kernel and process so tracing
 * never perturbs the system under test.
 */
class DynamicTracer
{
  public:
    DynamicTracer();

    /** Execute and observe one API with fixture inputs. */
    TraceResult trace(const fw::ApiDescriptor &api, int runs = 1);

    /** Trace every implemented API in a registry. */
    std::map<std::string, TraceResult>
    traceAll(const fw::ApiRegistry &registry);

    /** Coverage over one framework's APIs (Table 11 rows). */
    CoverageReport coverFramework(const fw::ApiRegistry &registry,
                                  fw::Framework framework);

  private:
    std::unique_ptr<osim::Kernel> kernel;
    osim::Pid tracerPid;
    uint64_t idCounter = 0;
    std::unique_ptr<fw::ObjectStore> store;
    std::unique_ptr<fw::Invoker> invoker;
};

} // namespace freepart::analysis

#endif // FREEPART_ANALYSIS_DYNAMIC_TRACER_HH
