#include "analysis/static_analyzer.hh"

namespace freepart::analysis {

using fw::FlowOp;
using fw::StorageKind;

std::vector<FlowOp>
reduceFileCopies(std::vector<FlowOp> ops)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < ops.size() && !changed; ++i) {
            if (ops[i].dst != StorageKind::File ||
                ops[i].src != StorageKind::Mem)
                continue;
            for (size_t j = i + 1; j < ops.size(); ++j) {
                if (ops[j].dst == StorageKind::Mem &&
                    ops[j].src == StorageKind::File) {
                    // Spill at i + reload at j collapse into one
                    // memory-to-memory move at position i.
                    FlowOp merged{StorageKind::Mem, StorageKind::Mem,
                                  ops[i].indirect || ops[j].indirect};
                    ops.erase(ops.begin() +
                              static_cast<ptrdiff_t>(j));
                    ops[i] = merged;
                    changed = true;
                    break;
                }
            }
        }
    }
    return ops;
}

StaticResult
StaticAnalyzer::analyze(const fw::ApiDescriptor &api) const
{
    StaticResult result;
    for (const FlowOp &op : api.ir) {
        if (op.indirect) {
            // Hidden behind indirect dispatch: static pass can't see
            // it (false negative by construction).
            result.complete = false;
            continue;
        }
        result.visibleOps.push_back(op);
    }
    result.visibleOps = reduceFileCopies(result.visibleOps);
    result.type = fw::classifyFlowOps(result.visibleOps);
    if (result.type == fw::ApiType::Unknown)
        result.complete = false;
    return result;
}

} // namespace freepart::analysis
