/**
 * @file
 * Partition-boundary linter (DESIGN.md §12). FreePart's security
 * argument rests on the partitioning being *good*: critical data
 * stays behind LDC references, per-agent seccomp allowlists are
 * minimal, and every API runs in the agent its data flow demands.
 * Nothing enforced that until now — a scaling PR could silently widen
 * a filter or start copying critical objects by value and every test
 * would still pass. This pass consumes the API registry, the hybrid
 * categorizer output, and dynamic observations from replaying the 23
 * Table 6 app models, and emits typed findings across four
 * bad-partitioning defect classes (in the spirit of DITING's
 * defect taxonomy and compartmentalization-aware program repair):
 *
 *  - L1 by-value boundary crossing: a critical (annotated) object's
 *    bytes crossed into an agent as a Blob argument instead of an
 *    LDC ObjectRef — the exact leak the §5.3 exfiltration study
 *    assumes cannot happen.
 *  - L2 wide allowlist: an agent's installed syscall allowlist is
 *    strictly wider than the union of syscalls observed across the
 *    replayed apps plus a configurable slack set.
 *  - L3 miscategorized API: an API's categorized type contradicts
 *    the type its own data-flow IR implies (Fig. 9 rules), e.g. a
 *    "processing" API whose flows read a device.
 *  - L4 registry inconsistency: stale categorization entries,
 *    uncategorized registry APIs, duplicate registrations, and
 *    implemented APIs unreachable from every Table 6 trace.
 *
 * Every finding carries a machine-applicable repair (force-LDC the
 * argument, narrow the filter to observed+slack, recategorize, drop
 * the stale entry); applyRepairs() + re-lint converges to a fixed
 * point. tools/freepart_lint wraps this as a CI gate with a seeded
 * baseline so only *new* findings fail a PR.
 */

#ifndef FREEPART_ANALYSIS_PARTITION_LINT_HH
#define FREEPART_ANALYSIS_PARTITION_LINT_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/hybrid_categorizer.hh"
#include "fw/api_registry.hh"
#include "osim/syscalls.hh"

namespace freepart::analysis {

/** The four bad-partitioning defect classes. */
enum class LintDefect : uint8_t {
    ByValueCrossing = 0,   //!< L1: critical data crossed by value
    WideAllowlist,         //!< L2: filter wider than observed+slack
    MiscategorizedApi,     //!< L3: category contradicts data flow
    RegistryInconsistency, //!< L4: registry/categorization drift
};

/** Number of defect classes. */
constexpr size_t kNumLintDefects = 4;

/** Short code of a defect class ("L1".."L4"). */
const char *lintDefectCode(LintDefect defect);

/** Kebab-case class name ("by-value-crossing", ...). */
const char *lintDefectName(LintDefect defect);

/** Finding severities, ordered: Info < Warning < Error. */
enum class LintSeverity : uint8_t { Info = 0, Warning, Error };

/** Severity name ("info", "warning", "error"). */
const char *lintSeverityName(LintSeverity severity);

/** Parse a severity name; throws util::FatalError on unknown. */
LintSeverity lintSeverityFromName(const std::string &name);

/** Machine-applicable repair kinds. */
enum class LintRepairKind : uint8_t {
    None = 0,            //!< no mechanical fix (advice only)
    ForceLdcRef,         //!< pass the argument as an ObjectRef
    NarrowAllowlist,     //!< reinstall filter as observed + slack
    RecategorizeApi,     //!< set the entry's type to the flow type
    DropStaleEntry,      //!< remove a categorization entry with no API
    AdoptCategorization, //!< categorize a registry API that has none
};

/** Repair-kind name ("force-ldc-ref", ...). */
const char *lintRepairKindName(LintRepairKind kind);

/** A proposed repair, concrete enough to apply mechanically. */
struct LintRepair {
    LintRepairKind kind = LintRepairKind::None;
    std::string api;       //!< target API (L1/L3/L4 repairs)
    size_t argIndex = 0;   //!< Blob argument to turn into a Ref (L1)
    uint32_t partition = 0; //!< agent whose filter narrows (L2)
    fw::ApiType newType = fw::ApiType::Unknown; //!< recategorize target
    std::set<osim::Syscall> narrowedAllowlist;  //!< L2 replacement set

    /** One-line human rendering ("narrow filter to 14 syscalls"). */
    std::string describe() const;
};

/** One typed lint finding. */
struct LintFinding {
    LintDefect defect = LintDefect::RegistryInconsistency;
    LintSeverity severity = LintSeverity::Warning;
    /** Stable identity used by the CI baseline: encodes the defect
     *  *content* (e.g. the extra syscall names), so widening an
     *  already-baselined allowlist further yields a NEW key. */
    std::string key;
    std::string subject; //!< API name or agent name
    std::string message;
    LintRepair repair;

    bool repairable() const
    {
        return repair.kind != LintRepairKind::None;
    }
};

/** One agent's syscall posture, unioned across the app replays. */
struct AgentSnapshot {
    uint32_t partition = 0;
    std::string name;                    //!< "Loading", ...
    std::set<osim::Syscall> allowlist;   //!< installed (post-lockdown)
    std::set<osim::Syscall> observed;    //!< actually issued in replays
};

/** One Blob argument observed crossing into an agent. */
struct ValueCrossing {
    std::string api;
    size_t argIndex = 0;
    uint32_t toPartition = 0;
    size_t bytes = 0;
    bool critical = false; //!< matched an annotated host object
    std::string label;     //!< matched object's label ("" if none)
    uint64_t objectId = 0; //!< matched object id (0 if none)
    bool byRef = false;    //!< repaired: crossing now uses a Ref
};

/** Everything the linter consumes, as plain data so fixtures can
 *  plant defects and repairs can be applied without re-replaying. */
struct LintInput {
    const fw::ApiRegistry *registry = nullptr;
    Categorization categorization;
    std::vector<AgentSnapshot> agents;
    std::vector<ValueCrossing> crossings;
    /** APIs reachable from the replayed app traces (empty disables
     *  the unreachable-API check). */
    std::set<std::string> reachableApis;
    size_t appsReplayed = 0;
};

/** Linter knobs. */
struct LintConfig {
    /** Syscalls tolerated in an allowlist even when never observed
     *  (the runtime-infrastructure set the agents need regardless of
     *  which APIs a trace happens to exercise). */
    std::set<osim::Syscall> allowlistSlack;
    /** Blob arguments below this size are ignored by L1 unless they
     *  match a critical object (scalar-ish payloads, not bulk data). */
    size_t byValueMinBytes = 4096;
    /** Emit L4 unreachable-API findings (Info severity). */
    bool flagUnreachable = true;

    LintConfig() : allowlistSlack(defaultAllowlistSlack()) {}

    /** The default slack: FreePart's own infra syscalls. */
    static std::set<osim::Syscall> defaultAllowlistSlack();
};

/** Syscalls whose surplus presence in an allowlist is an Error, not
 *  a Warning: the exfiltration / code-manipulation set (§5.3). */
bool isDangerousSurplusSyscall(osim::Syscall call);

/** A lint run's result. */
struct LintReport {
    std::vector<LintFinding> findings; //!< sorted by (defect, key)

    size_t countByDefect(LintDefect defect) const;
    size_t countAtLeast(LintSeverity severity) const;
    size_t repairableCount() const;
    const LintFinding *findByKey(const std::string &key) const;
};

/** Keys accepted by the checked-in baseline file. */
struct LintBaseline {
    std::set<std::string> acceptedKeys;
};

/** The linter. */
class PartitionLinter
{
  public:
    explicit PartitionLinter(LintConfig config = LintConfig());

    /** Run all four detectors; findings sorted by (defect, key). */
    LintReport lint(const LintInput &input) const;

    /** Apply every repairable finding's repair to the input; returns
     *  the number of repairs applied. */
    size_t applyRepairs(LintInput &input,
                        const LintReport &report) const;

    /**
     * Repair/re-lint loop: apply repairs and re-run until no
     * repairable finding remains (the fixed point) or max_iters is
     * hit. Returns the final report; *iterations (optional) gets the
     * number of repair rounds executed.
     */
    LintReport fixToConvergence(LintInput &input, size_t max_iters = 8,
                                size_t *iterations = nullptr) const;

    const LintConfig &config() const { return config_; }

  private:
    void lintCrossings(const LintInput &input, LintReport &out) const;
    void lintAllowlists(const LintInput &input, LintReport &out) const;
    void lintCategories(const LintInput &input, LintReport &out) const;
    void lintRegistry(const LintInput &input, LintReport &out) const;
    /** Type an API's full data-flow IR implies (Fig. 9 rules after
     *  the §4.2.1 file-copy reduction). */
    fw::ApiType referenceType(const fw::ApiDescriptor &api) const;

    LintConfig config_;
};

// ---- Report / baseline serialization --------------------------------

/**
 * Deterministic JSON rendering of a report: findings sorted, no
 * floats, stable field order. When `baseline` is given, findings
 * whose key it accepts are marked `"baselined": true` and excluded
 * from the `"new"` count.
 */
std::string reportToJson(const LintReport &report,
                         const LintInput &input,
                         const LintBaseline *baseline = nullptr);

/** Render a report's finding keys as a baseline file. */
std::string baselineToJson(const LintReport &report);

/** Parse a baseline file's accepted keys (writer-format tolerant:
 *  extracts every "key" string field). */
LintBaseline parseBaseline(const std::string &json_text);

/** New findings = findings whose key the baseline does not accept. */
std::vector<const LintFinding *>
newFindings(const LintReport &report, const LintBaseline &baseline);

// ---- Collector (replays the Table 6 apps) ---------------------------

/** Collector knobs. */
struct CollectOptions {
    size_t maxApps = 0;      //!< 0 = all 23 Table 6 models
    uint32_t imageRows = 96; //!< fixture frame size (small: the lint
    uint32_t imageCols = 96; //!< cares about *which* syscalls/flows
    uint32_t tensorDim = 32; //!< happen, not how many bytes move)
    uint32_t maxRounds = 2;  //!< replay rounds per app
};

/**
 * Replay the Table 6 app models against fresh FreePart runtimes
 * (default 4-agent plan) and harvest the linter's dynamic inputs:
 * per-agent installed allowlists (post-lockdown) and observed
 * syscall unions, Blob boundary crossings (tapped via the runtime's
 * boundary observer, checksum-matched against annotated host
 * objects), and the set of trace-reachable APIs. Deterministic.
 */
LintInput collectLintInput(const fw::ApiRegistry &registry,
                           const Categorization &categorization,
                           const CollectOptions &options = {});

// ---- Defect planting (fixtures / CLI self-check) --------------------
//
// Each helper injects one synthetic defect of the named class into a
// collected (or hand-built) input, so the detector set and the
// --fix round trip can be exercised against known-bad partitionings.

/** L1: a critical host object's bytes crossing into agent 1. */
void plantByValueCrossing(LintInput &input);

/** L2: add send+write to agent 0's installed allowlist. */
void plantWideAllowlist(LintInput &input);

/** L3: flip the first loading-typed entry to Processing. */
void plantMiscategorization(LintInput &input);

/** L4: add a stale categorization entry for a nonexistent API and
 *  drop one registry API's categorization. */
void plantRegistryInconsistency(LintInput &input);

/** All four, in one call. */
void plantAllDefects(LintInput &input);

} // namespace freepart::analysis

#endif // FREEPART_ANALYSIS_PARTITION_LINT_HH
