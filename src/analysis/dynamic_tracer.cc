#include "analysis/dynamic_tracer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace freepart::analysis {

DynamicTracer::DynamicTracer()
    : kernel(std::make_unique<osim::Kernel>())
{
    osim::Process &proc = kernel->spawn("dynamic-tracer");
    tracerPid = proc.pid();
    fw::seedFixtureFiles(*kernel);
    store = std::make_unique<fw::ObjectStore>(*kernel, tracerPid,
                                              &idCounter);
    invoker = std::make_unique<fw::Invoker>(*kernel, *store,
                                            /*partition=*/0);
}

TraceResult
DynamicTracer::trace(const fw::ApiDescriptor &api, int runs)
{
    TraceResult result;
    if (!api.implemented())
        return result;

    osim::Process &proc = kernel->process(tracerPid);
    // Fresh device-connection state per API: init-only syscalls
    // (socket/connect/open) must show up in EVERY API's profile,
    // not just the first GUI/camera API traced (§4.4.1 derives the
    // per-API required-syscall sets from these traces).
    fw::DeviceFds fresh_devices;
    for (int run = 0; run < runs; ++run) {
        fw::FlowTrace sink;
        fw::ExecContext ctx(*kernel, proc, *store, fresh_devices,
                            /*partition=*/0);
        ctx.setTraceSink(&sink);
        auto counts_before = proc.syscallCounts;
        try {
            ipc::ValueList args = invoker->prepareArgs(
                api, static_cast<uint64_t>(run));
            api.fn(ctx, api, args);
            result.executed = true;
        } catch (const std::exception &e) {
            util::warn("tracer: %s raised: %s", api.name.c_str(),
                       e.what());
        }
        for (const fw::FlowOp &op : sink.ops) {
            if (std::find(result.ops.begin(), result.ops.end(), op) ==
                result.ops.end())
                result.ops.push_back(op);
        }
        for (size_t i = 0; i < osim::kNumSyscalls; ++i)
            if (proc.syscallCounts[i] > counts_before[i])
                result.syscalls.insert(
                    static_cast<osim::Syscall>(i));
    }
    return result;
}

std::map<std::string, TraceResult>
DynamicTracer::traceAll(const fw::ApiRegistry &registry)
{
    std::map<std::string, TraceResult> out;
    for (const fw::ApiDescriptor &api : registry.all())
        out.emplace(api.name, trace(api));
    return out;
}

CoverageReport
DynamicTracer::coverFramework(const fw::ApiRegistry &registry,
                              fw::Framework framework)
{
    CoverageReport report;
    for (const fw::ApiDescriptor *api :
         registry.byFramework(framework)) {
        ++report.apisTotal;
        report.irOpsTotal += api->ir.size();
        TraceResult t = trace(*api);
        if (!t.executed)
            continue;
        ++report.apisExecuted;
        // IR ops observed: declared ops matched by an observed op
        // (ignoring the indirect flag — dynamic analysis sees through
        // indirection).
        for (const fw::FlowOp &declared : api->ir) {
            bool seen =
                std::find(t.ops.begin(), t.ops.end(), declared) !=
                t.ops.end();
            // The file-copy reduction may have merged a declared
            // spill/reload pair into a MEM->MEM op at runtime.
            if (!seen) {
                fw::FlowOp mem_mem{fw::StorageKind::Mem,
                                   fw::StorageKind::Mem, false};
                seen = std::find(t.ops.begin(), t.ops.end(),
                                 mem_mem) != t.ops.end();
            }
            if (seen)
                ++report.irOpsObserved;
        }
    }
    return report;
}

} // namespace freepart::analysis
