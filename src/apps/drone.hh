/**
 * @file
 * Autonomous object-tracking drone (case study §5.4.1, Fig. 14):
 * fetches frames, loads them through the vulnerable imread() path,
 * recognizes the tracked object, and steers toward it. The speed
 * configuration variable (self.speed) is annotated critical data in
 * the target-program process.
 */

#ifndef FREEPART_APPS_DRONE_HH
#define FREEPART_APPS_DRONE_HH

#include <string>
#include <vector>

#include "core/runtime.hh"

namespace freepart::apps {

/** The drone controller application. */
class DroneTracker
{
  public:
    explicit DroneTracker(core::FreePartRuntime &runtime);

    /** Initialization: config variables + classifier. */
    void setup();

    /**
     * Process one camera frame supplied as an image file (the drone
     * writes camera frames to a spool the loader reads, so the
     * vulnerable imread() handles untrusted data, per the paper).
     * @return true if the frame was processed and the drone moved.
     */
    bool processFrame(const std::string &frame_path);

    /** Seed `count` benign frame files; returns their paths. */
    static std::vector<std::string>
    seedFrames(osim::Kernel &kernel, int count);

    /** Current drone state. */
    double positionX() const { return posX; }
    double positionY() const { return posY; }
    int framesProcessed() const { return frames; }
    int framesDropped() const { return dropped; }

    /** The self.speed critical variable (attack target §5.4.1). */
    osim::Addr speedAddr() const { return speedAddr_; }

    /** Read the live speed value from (simulated) memory. */
    double speed() const;

    /** True while the drone can still be controlled. */
    bool operable() const { return runtime.hostAlive(); }

  private:
    core::FreePartRuntime &runtime;
    osim::Addr speedAddr_ = 0;
    double posX = 0.0;
    double posY = 0.0;
    int frames = 0;
    int dropped = 0;
};

} // namespace freepart::apps

#endif // FREEPART_APPS_DRONE_HH
