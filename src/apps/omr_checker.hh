/**
 * @file
 * OMRChecker: the paper's motivating example (§3) — an optical-mark-
 * recognition auto-grader built on MiniCV through the FreePart
 * public API. It loads a grading template (critical data!), scans
 * submission images, recognizes marked answers, draws per-question
 * annotations (the cv2.rectangle / cv2.putText hot loop that drives
 * the Fig. 4 partition-count cliff), displays progress, and stores
 * scores to a CSV.
 */

#ifndef FREEPART_APPS_OMR_CHECKER_HH
#define FREEPART_APPS_OMR_CHECKER_HH

#include <string>
#include <vector>

#include "core/runtime.hh"

namespace freepart::apps {

/** Grading output for one submission. */
struct GradeResult {
    std::string image;        //!< submission image path
    std::vector<int> answers; //!< recognized answer per question
    int score = 0;            //!< matches against the master key
    bool ok = false;          //!< pipeline completed
};

/** The OMR auto-grader. */
class OmrChecker
{
  public:
    struct Config {
        uint32_t imageRows = 96;
        uint32_t imageCols = 96;
        uint32_t questions = 8;  //!< answer rows on the sheet
        bool showGui = true;     //!< display annotated sheets
        std::string outputCsv = "/out/results.csv";
    };

    /** Bind the app to a runtime (any plan / config). */
    OmrChecker(core::FreePartRuntime &runtime, Config config);
    explicit OmrChecker(core::FreePartRuntime &runtime);

    /**
     * Seed a kernel's VFS with a template file and `count` benign
     * submission images the grader can process.
     * @return The submission image paths.
     */
    static std::vector<std::string>
    seedInputs(osim::Kernel &kernel, int count,
               const Config &config);
    static std::vector<std::string> seedInputs(osim::Kernel &kernel,
                                               int count);

    /**
     * Initialization phase: load the grading template into host
     * memory (annotated critical data) and the master answer key.
     */
    void setup();

    /** Grade one submission image; appends to results. */
    GradeResult gradeSubmission(const std::string &image_path);

    /** Finish: write the results CSV and show a summary frame. */
    void finish();

    /** Address/length of the template critical data (attack target). */
    osim::Addr templateAddr() const { return templateAddr_; }
    size_t templateLen() const { return templateLen_; }

    /** Address of the last fetched input image in the host
     *  (the "OMRCrop" critical variable). */
    osim::Addr omrCropAddr() const { return omrCropAddr_; }
    size_t omrCropLen() const { return omrCropLen_; }

    const std::vector<GradeResult> &results() const { return grades; }

    /** Names of every framework API the app has invoked, in order. */
    const std::vector<std::string> &callSequence() const
    {
        return calls;
    }

    /** The distinct API names this app uses (for partition plans). */
    std::vector<std::string> usedApis() const;

  private:
    core::ApiResult call(const std::string &api,
                         ipc::ValueList args);

    core::FreePartRuntime &runtime;
    Config config;
    uint64_t templateId = 0;
    osim::Addr templateAddr_ = 0;
    size_t templateLen_ = 0;
    osim::Addr omrCropAddr_ = 0;
    size_t omrCropLen_ = 0;
    std::vector<int> masterKey;
    std::vector<GradeResult> grades;
    std::vector<std::string> calls;
};

} // namespace freepart::apps

#endif // FREEPART_APPS_OMR_CHECKER_HH
