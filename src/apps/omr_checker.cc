#include "apps/omr_checker.hh"

#include <algorithm>
#include <cstring>

#include "fw/image_format.hh"
#include "util/logging.hh"

namespace freepart::apps {

namespace {

using ipc::Value;

} // namespace

OmrChecker::OmrChecker(core::FreePartRuntime &runtime, Config config)
    : runtime(runtime), config(config)
{
}

OmrChecker::OmrChecker(core::FreePartRuntime &runtime)
    : OmrChecker(runtime, Config())
{
}

std::vector<std::string>
OmrChecker::seedInputs(osim::Kernel &kernel, int count)
{
    return seedInputs(kernel, count, Config());
}

std::vector<std::string>
OmrChecker::seedInputs(osim::Kernel &kernel, int count,
                       const Config &config)
{
    std::vector<std::string> paths;
    for (int i = 0; i < count; ++i) {
        std::string path = "/data/omr_" + std::to_string(i) +
                           ".fpim";
        kernel.vfs().putFile(
            path, fw::encodeImageFile(
                      config.imageRows, config.imageCols, 3,
                      fw::synthPixels(config.imageRows,
                                      config.imageCols, 3,
                                      static_cast<uint64_t>(i) + 7)));
        paths.push_back(std::move(path));
    }
    return paths;
}

core::ApiResult
OmrChecker::call(const std::string &api, ipc::ValueList args)
{
    calls.push_back(api);
    return runtime.invoke(api, std::move(args));
}

void
OmrChecker::setup()
{
    // The grading template: coordinates of the answer-mark areas
    // (Fig. 1's template.QBlocks.orig). Created during the
    // Initialization state so the first loading API flips it
    // read-only.
    uint64_t template_id =
        runtime.createHostMat(24, 24, 1, /*seed=*/99, "template");
    const fw::MatDesc &tmpl = runtime.hostStore().mat(template_id);
    templateAddr_ = tmpl.addr;
    templateLen_ = tmpl.byteLen();
    templateId = template_id;

    // Master answer key derived from the template content: grading
    // depends on the (protected) template bytes, so corrupting the
    // template corrupts every grade — the Fig. 1 attack goal.
    masterKey.clear();
    osim::AddressSpace &host = runtime.hostProcess().space();
    for (uint32_t q = 0; q < config.questions; ++q) {
        uint8_t byte = host.readValue<uint8_t>(
            templateAddr_ + q * 7 % templateLen_);
        masterKey.push_back(byte % 4);
    }
}

GradeResult
OmrChecker::gradeSubmission(const std::string &image_path)
{
    GradeResult result;
    result.image = image_path;

    // --- Data loading -------------------------------------------------
    core::ApiResult img = call("cv2.imread",
                               {Value(image_path)});
    if (!img.ok) {
        grades.push_back(result);
        return grades.back();
    }
    // The host keeps a copy of the submission: the OMRCrop critical
    // variable of the motivating example.
    ipc::ObjectRef img_ref = img.values[0].asRef();
    runtime.fetchToHost(img_ref);
    const fw::MatDesc &crop = runtime.hostStore().mat(
        img_ref.objectId);
    omrCropAddr_ = crop.addr;
    omrCropLen_ = crop.byteLen();

    // --- Data processing ------------------------------------------------
    core::ApiResult gray = call("cv2.cvtColor", {img.values[0]});
    if (!gray.ok) {
        grades.push_back(result);
        return grades.back();
    }
    core::ApiResult sized = call(
        "cv2.resize", {gray.values[0],
                       Value(uint64_t(config.imageRows)),
                       Value(uint64_t(config.imageCols))});
    core::ApiResult blurred =
        call("cv2.GaussianBlur", {sized.values[0]});
    core::ApiResult eq =
        call("cv2.equalizeHist", {blurred.values[0]});
    core::ApiResult binary = call(
        "cv2.threshold", {eq.values[0], Value(uint64_t(128)),
                          Value(uint64_t(255))});
    core::ApiResult cleaned =
        call("cv2.morphologyEx", {binary.values[0]});
    ipc::ValueList warp_args = {cleaned.values[0]};
    const double identity[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    for (double h : identity)
        warp_args.emplace_back(h);
    core::ApiResult aligned =
        call("cv2.warpPerspective", warp_args);
    core::ApiResult contours =
        call("cv2.findContours", {aligned.values[0]});
    core::ApiResult hist = call("cv2.calcHist", {eq.values[0]});
    // Template match localizes the answer grid against the
    // (protected) grading template.
    core::ApiResult match = call(
        "cv2.matchTemplate",
        {sized.values[0],
         ipc::Value(ipc::ObjectRef{core::kHostPartition,
                                   templateId})});
    if (!contours.ok || !hist.ok || !match.ok) {
        grades.push_back(result);
        return grades.back();
    }

    // --- Host-side answer recognition -----------------------------------
    const std::vector<uint8_t> &hist_blob = hist.values[0].asBlob();
    uint32_t bins[256] = {};
    std::memcpy(bins, hist_blob.data(),
                std::min(hist_blob.size(), sizeof(bins)));
    osim::AddressSpace &host = runtime.hostProcess().space();
    for (uint32_t q = 0; q < config.questions; ++q) {
        uint32_t bin = bins[(q * 29 + 3) % 256];
        result.answers.push_back(static_cast<int>(bin % 4));
        // Grade against the template-derived key, re-read from the
        // protected template memory each time.
        uint8_t key_byte = host.readValue<uint8_t>(
            templateAddr_ + q * 7 % templateLen_);
        if (static_cast<int>(bin % 4) ==
            static_cast<int>(key_byte % 4))
            ++result.score;
    }

    // --- Annotation hot loop (Fig. 4's rectangle/putText pair) ----------
    for (uint32_t q = 0; q < config.questions; ++q) {
        uint32_t row =
            4 + q * (config.imageRows - 12) / config.questions;
        core::ApiResult rect = call(
            "cv2.rectangle",
            {img.values[0], Value(uint64_t(row)),
             Value(uint64_t(4)), Value(uint64_t(8)),
             Value(uint64_t(config.imageCols - 12)),
             Value(uint64_t(255))});
        if (!rect.ok)
            break;
        call("cv2.putText",
             {img.values[0],
              Value(std::to_string(result.answers[q])),
              Value(uint64_t(row + 1)), Value(uint64_t(8)),
              Value(uint64_t(0))});
    }

    // --- Visualizing / storing ------------------------------------------
    if (config.showGui)
        call("cv2.imshow",
             {Value(std::string("grading")), img.values[0]});
    call("cv2.imwrite",
         {Value("/out/graded_" +
                std::to_string(grades.size()) + ".fpim"),
          img.values[0]});

    result.ok = true;
    grades.push_back(result);
    return grades.back();
}

void
OmrChecker::finish()
{
    // Build the scores CSV in host memory and store it via the
    // hooked pandas API (Fig. 1's .csv output).
    std::string csv = "image,score\n";
    for (const GradeResult &grade : grades)
        csv += grade.image + "," + std::to_string(grade.score) +
               "\n";
    uint64_t id = runtime.createHostBytes(
        std::vector<uint8_t>(csv.begin(), csv.end()), "results-csv");
    call("pd.DataFrame.to_csv",
         {Value(config.outputCsv),
          ipc::Value(ipc::ObjectRef{core::kHostPartition, id})});
    if (config.showGui)
        call("cv2.destroyAllWindows", {});
}

std::vector<std::string>
OmrChecker::usedApis() const
{
    std::vector<std::string> out;
    for (const std::string &name : calls)
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    return out;
}

} // namespace freepart::apps
