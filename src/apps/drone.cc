#include "apps/drone.hh"

#include <cstring>

#include "fw/image_format.hh"

namespace freepart::apps {

namespace {

using ipc::Value;

constexpr double kDefaultSpeed = 0.3;

} // namespace

DroneTracker::DroneTracker(core::FreePartRuntime &runtime)
    : runtime(runtime)
{
}

std::vector<std::string>
DroneTracker::seedFrames(osim::Kernel &kernel, int count)
{
    std::vector<std::string> paths;
    for (int i = 0; i < count; ++i) {
        std::string path =
            "/spool/frame_" + std::to_string(i) + ".fpim";
        kernel.vfs().putFile(
            path,
            fw::encodeImageFile(
                48, 64, 1,
                fw::synthPixels(48, 64, 1,
                                static_cast<uint64_t>(i) * 3 + 1)));
        paths.push_back(std::move(path));
    }
    return paths;
}

void
DroneTracker::setup()
{
    // self.speed: the configuration variable the §5.4.1 corruption
    // attack flips to -0.3 to reverse the drone.
    speedAddr_ = runtime.allocHostData("self.speed", sizeof(double));
    runtime.hostProcess().space().writeValue(speedAddr_,
                                             kDefaultSpeed);
}

double
DroneTracker::speed() const
{
    return const_cast<core::FreePartRuntime &>(runtime)
        .hostProcess()
        .space()
        .readValue<double>(speedAddr_);
}

bool
DroneTracker::processFrame(const std::string &frame_path)
{
    // Data loading: the vulnerable imread() handles the frame.
    core::ApiResult img =
        runtime.invoke("cv2.imread", {Value(frame_path)});
    if (!img.ok) {
        ++dropped;
        // Crash contained to the loading agent: the drone is still
        // operable, it just skipped a frame (Fig. 14).
        return false;
    }

    // Data processing: recognize the tracked object.
    core::ApiResult detect = runtime.invoke(
        "cv2.CascadeClassifier.detectMultiScale", {img.values[0]});
    if (!detect.ok) {
        ++dropped;
        return false;
    }

    // Host control logic: steer toward the first detected box with
    // the configured speed.
    uint64_t boxes = detect.values[0].asU64();
    const std::vector<uint8_t> &blob = detect.values[1].asBlob();
    double v = speed();
    if (boxes > 0 && blob.size() >= 16) {
        uint32_t box[4];
        std::memcpy(box, blob.data(), sizeof(box));
        double target_x = box[1] + box[3] / 2.0;
        double target_y = box[0] + box[2] / 2.0;
        posX += v * (target_x > 32 ? 1 : -1);
        posY += v * (target_y > 24 ? 1 : -1);
    }
    ++frames;
    return true;
}

} // namespace freepart::apps
