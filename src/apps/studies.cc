#include "apps/studies.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"

namespace freepart::apps {

namespace {

using fw::ApiType;

size_t
fwIdx(StudyFramework fw)
{
    return static_cast<size_t>(fw);
}

size_t
typeIdx(ApiType type)
{
    return static_cast<size_t>(type);
}

/**
 * Build the 56-app census so that the Table 3 aggregates fall out:
 *
 *   framework  type        avg   max  distinct   construction
 *   OpenCV     loading     0.6    1      1       34 apps use API#0
 *   OpenCV     processing  0.2    1      1       11 apps use API#0
 *   TensorFlow loading     0.3    2      2       3 apps use both,
 *                                                11 apps use one
 *   TensorFlow processing  2.3   12     24       heavy-tailed
 *   Pillow     loading     0.4    2      2       2 use both, 18 one
 *   Pillow     visualizing 0.5    1      1       28 apps use API#0
 *   NumPy      loading     0.1    1      1       6 apps
 *   NumPy      processing  0.4    1      1       22 apps
 *
 * App 0 stacks loading APIs (1+2+2 = 5, the Table 3 per-type max)
 * and app 1 stacks processing APIs (12+1+1 = 14).
 */
std::vector<StudyApp>
buildCensus()
{
    std::vector<StudyApp> apps(56);
    for (int i = 0; i < 56; ++i) {
        apps[static_cast<size_t>(i)].id = i;
        // Roughly a third of the apps are video-style loops; apps
        // alternate between visualizing and storing sinks (some do
        // both). Every app follows the Fig. 6 pipeline.
        apps[static_cast<size_t>(i)].loops = i % 3 == 0;
        apps[static_cast<size_t>(i)].hasVisualizing = i % 2 == 0;
        apps[static_cast<size_t>(i)].hasStoring = i % 2 == 1 ||
                                                  i % 5 == 0;
    }

    auto use = [&](int app, StudyFramework fw, ApiType type,
                   std::vector<int> ids) {
        apps[static_cast<size_t>(app)]
            .vulnApis[fwIdx(fw)][typeIdx(type)] = std::move(ids);
    };

    // OpenCV loading: apps 0..33 use vulnerable API #0 (imread).
    for (int i = 0; i < 34; ++i)
        use(i, StudyFramework::OpenCV, ApiType::Loading, {0});
    // OpenCV processing: apps 1..11 use vulnerable API #0.
    for (int i = 1; i <= 11; ++i)
        use(i, StudyFramework::OpenCV, ApiType::Processing, {0});
    // TensorFlow loading: apps 0..2 use both APIs, 3..13 use one.
    for (int i = 0; i < 3; ++i)
        use(i, StudyFramework::TensorFlow, ApiType::Loading, {0, 1});
    for (int i = 3; i < 14; ++i)
        use(i, StudyFramework::TensorFlow, ApiType::Loading, {0});
    // TensorFlow processing: heavy-tailed; 24 distinct APIs; the
    // per-app counts sum to 129 (avg 2.30) with max 12 at app 1.
    {
        const int counts[] = {8, 12, 10, 8, 7, 6, 6, 5, 5, 4, 4, 4,
                              4,  3,  3,  3, 3, 3, 3, 2, 2, 2, 2, 2,
                              2,  2,  2,  2, 1, 1, 1, 1, 1, 1, 1, 1,
                              1,  1};
        int app = 0;
        for (int c : counts) {
            std::vector<int> ids;
            for (int k = 0; k < c; ++k)
                ids.push_back((app * 3 + k) % 24);
            std::sort(ids.begin(), ids.end());
            ids.erase(std::unique(ids.begin(), ids.end()),
                      ids.end());
            // Keep exactly c ids by extending deterministically.
            int next = 0;
            while (static_cast<int>(ids.size()) < c) {
                if (std::find(ids.begin(), ids.end(), next) ==
                    ids.end())
                    ids.push_back(next);
                ++next;
            }
            use(app, StudyFramework::TensorFlow,
                ApiType::Processing, ids);
            ++app;
        }
    }
    // Pillow loading: apps 0,1 use both; 2..19 use one.
    use(0, StudyFramework::Pillow, ApiType::Loading, {0, 1});
    use(1, StudyFramework::Pillow, ApiType::Loading, {0, 1});
    for (int i = 2; i < 20; ++i)
        use(i, StudyFramework::Pillow, ApiType::Loading, {0});
    // Pillow visualizing: apps 0..27.
    for (int i = 0; i < 28; ++i)
        use(i, StudyFramework::Pillow, ApiType::Visualizing, {0});
    // NumPy loading: apps 20..25. NumPy processing: apps 1..22
    // (including app 1 so the per-type processing max reaches 14:
    // 12 TensorFlow + 1 OpenCV + 1 NumPy).
    for (int i = 20; i < 26; ++i)
        use(i, StudyFramework::NumPy, ApiType::Loading, {0});
    for (int i = 1; i <= 22; ++i)
        use(i, StudyFramework::NumPy, ApiType::Processing, {0});

    return apps;
}

} // namespace

const char *
studyFrameworkName(StudyFramework fw)
{
    switch (fw) {
      case StudyFramework::OpenCV:
        return "OpenCV";
      case StudyFramework::TensorFlow:
        return "TensorFlow";
      case StudyFramework::Pillow:
        return "Pillow";
      case StudyFramework::NumPy:
        return "NumPy";
      case StudyFramework::NumStudyFrameworks:
        break;
    }
    return "?";
}

std::vector<ApiType>
StudyApp::phaseSequence() const
{
    std::vector<ApiType> seq;
    int rounds = loops ? 3 : 1;
    for (int i = 0; i < rounds; ++i) {
        seq.push_back(ApiType::Loading);
        seq.push_back(ApiType::Processing);
    }
    if (hasVisualizing)
        seq.push_back(ApiType::Visualizing);
    if (hasStoring)
        seq.push_back(ApiType::Storing);
    return seq;
}

const std::vector<StudyApp> &
studyApps()
{
    static const std::vector<StudyApp> census = buildCensus();
    return census;
}

std::map<std::pair<StudyFramework, ApiType>, VulnUsageAgg>
computeVulnUsage()
{
    std::map<std::pair<StudyFramework, ApiType>, VulnUsageAgg> out;
    const auto &apps = studyApps();
    for (size_t f = 0; f < kNumStudyFrameworks; ++f) {
        for (size_t t = 0; t < fw::kNumApiTypes; ++t) {
            auto fw_id = static_cast<StudyFramework>(f);
            auto type = static_cast<ApiType>(t);
            VulnUsageAgg agg;
            std::set<int> distinct;
            uint64_t sum = 0;
            for (const StudyApp &app : apps) {
                size_t n = app.vulnCount(fw_id, type);
                sum += n;
                agg.max = std::max<uint32_t>(
                    agg.max, static_cast<uint32_t>(n));
                for (int id : app.vulnApis[f][t])
                    distinct.insert(id);
            }
            agg.avg = static_cast<double>(sum) /
                      static_cast<double>(apps.size());
            agg.total = static_cast<uint32_t>(distinct.size());
            out.emplace(std::make_pair(fw_id, type), agg);
        }
    }
    return out;
}

std::array<VulnUsageAgg, fw::kNumApiTypes>
computeVulnUsageTotals()
{
    std::array<VulnUsageAgg, fw::kNumApiTypes> totals{};
    const auto &apps = studyApps();
    for (size_t t = 0; t < fw::kNumApiTypes; ++t) {
        uint64_t sum = 0;
        std::set<std::pair<size_t, int>> distinct;
        for (const StudyApp &app : apps) {
            size_t per_app = 0;
            for (size_t f = 0; f < kNumStudyFrameworks; ++f) {
                per_app += app.vulnApis[f][t].size();
                for (int id : app.vulnApis[f][t])
                    distinct.insert({f, id});
            }
            sum += per_app;
            totals[t].max = std::max<uint32_t>(
                totals[t].max, static_cast<uint32_t>(per_app));
        }
        totals[t].avg = static_cast<double>(sum) /
                        static_cast<double>(apps.size());
        totals[t].total = static_cast<uint32_t>(distinct.size());
    }
    return totals;
}

bool
followsPipelinePattern(const StudyApp &app)
{
    std::vector<ApiType> seq = app.phaseSequence();
    if (seq.empty() || seq.front() != ApiType::Loading)
        return false;
    // Accept (L P)+ followed by optional V and/or S.
    size_t i = 0;
    while (i + 1 < seq.size() && seq[i] == ApiType::Loading &&
           seq[i + 1] == ApiType::Processing)
        i += 2;
    if (i == 0)
        return false;
    if (i < seq.size() && seq[i] == ApiType::Visualizing)
        ++i;
    if (i < seq.size() && seq[i] == ApiType::Storing)
        ++i;
    return i == seq.size();
}

const char *
vulnClassName(VulnClass cls)
{
    switch (cls) {
      case VulnClass::UnauthorizedMemWrite:
        return "Unauthorized memory write";
      case VulnClass::UnauthorizedMemRead:
        return "Unauthorized memory read";
      case VulnClass::DenialOfService:
        return "DoS (Denial of Service)";
      case VulnClass::UnauthorizedFileRead:
        return "Unauthorized file read";
      case VulnClass::NumVulnClasses:
        break;
    }
    return "?";
}

const std::vector<CveBucket> &
cveStudyBuckets()
{
    using F = StudyFramework;
    using V = VulnClass;
    // Reconstructed to the reported per-framework totals (172 / 44 /
    // 22 / 3, sum 241) with the loading+processing-dominant shape of
    // Fig. 7 (peaks in TensorFlow's loading and processing bars).
    static const std::vector<CveBucket> buckets = {
        // Data loading (101 total).
        {ApiType::Loading, F::TensorFlow, V::UnauthorizedMemRead, 10},
        {ApiType::Loading, F::TensorFlow, V::UnauthorizedMemWrite, 12},
        {ApiType::Loading, F::TensorFlow, V::DenialOfService, 30},
        {ApiType::Loading, F::TensorFlow, V::UnauthorizedFileRead, 7},
        {ApiType::Loading, F::Pillow, V::UnauthorizedMemRead, 6},
        {ApiType::Loading, F::Pillow, V::UnauthorizedMemWrite, 8},
        {ApiType::Loading, F::Pillow, V::DenialOfService, 14},
        {ApiType::Loading, F::Pillow, V::UnauthorizedFileRead, 2},
        {ApiType::Loading, F::OpenCV, V::UnauthorizedMemWrite, 6},
        {ApiType::Loading, F::OpenCV, V::DenialOfService, 4},
        {ApiType::Loading, F::OpenCV, V::UnauthorizedMemRead, 1},
        {ApiType::Loading, F::NumPy, V::DenialOfService, 1},
        // Data processing (116 total).
        {ApiType::Processing, F::TensorFlow, V::DenialOfService, 54},
        {ApiType::Processing, F::TensorFlow, V::UnauthorizedMemRead,
         18},
        {ApiType::Processing, F::TensorFlow, V::UnauthorizedMemWrite,
         20},
        {ApiType::Processing, F::TensorFlow, V::UnauthorizedFileRead,
         3},
        {ApiType::Processing, F::Pillow, V::DenialOfService, 6},
        {ApiType::Processing, F::Pillow, V::UnauthorizedMemWrite, 3},
        {ApiType::Processing, F::Pillow, V::UnauthorizedMemRead, 1},
        {ApiType::Processing, F::OpenCV, V::UnauthorizedMemWrite, 4},
        {ApiType::Processing, F::OpenCV, V::DenialOfService, 5},
        {ApiType::Processing, F::NumPy, V::DenialOfService, 2},
        // Storing (18 total).
        {ApiType::Storing, F::TensorFlow, V::DenialOfService, 8},
        {ApiType::Storing, F::TensorFlow, V::UnauthorizedFileRead, 4},
        {ApiType::Storing, F::TensorFlow, V::UnauthorizedMemWrite, 2},
        {ApiType::Storing, F::Pillow, V::DenialOfService, 2},
        {ApiType::Storing, F::Pillow, V::UnauthorizedFileRead, 1},
        {ApiType::Storing, F::OpenCV, V::DenialOfService, 1},
        // Visualizing (6 total).
        {ApiType::Visualizing, F::TensorFlow, V::DenialOfService, 3},
        {ApiType::Visualizing, F::TensorFlow, V::UnauthorizedMemRead,
         1},
        {ApiType::Visualizing, F::Pillow, V::DenialOfService, 1},
        {ApiType::Visualizing, F::OpenCV, V::DenialOfService, 1},
    };
    return buckets;
}

std::map<StudyFramework, uint32_t>
cveTotalsByFramework()
{
    std::map<StudyFramework, uint32_t> out;
    for (const CveBucket &bucket : cveStudyBuckets())
        out[bucket.framework] += bucket.count;
    return out;
}

std::map<ApiType, uint32_t>
cveTotalsByType()
{
    std::map<ApiType, uint32_t> out;
    for (const CveBucket &bucket : cveStudyBuckets())
        out[bucket.apiType] += bucket.count;
    return out;
}

StatefulCensus
statefulCensus()
{
    return StatefulCensus();
}

} // namespace freepart::apps
