/**
 * @file
 * The 23 evaluation applications of Table 6, transcribed as workload
 * models: framework, SLOC, data size, and the unique/total API call
 * counts per API type. The workload generator turns these into
 * concrete call traces with the pipeline structure of Fig. 6.
 */

#ifndef FREEPART_APPS_APP_MODELS_HH
#define FREEPART_APPS_APP_MODELS_HH

#include <string>
#include <vector>

#include "fw/api_types.hh"

namespace freepart::apps {

/** Unique/total API-call counts for one API type (Table 6 columns). */
struct TypeUsage {
    uint32_t unique = 0; //!< distinct APIs of this type used
    uint32_t total = 0;  //!< call sites of this type
};

/** One evaluation application (one row of Table 6). */
struct AppModel {
    int id;                  //!< paper sample id (1..23)
    std::string name;        //!< project name
    fw::Framework framework; //!< main framework
    std::string lang;        //!< implementation language
    uint32_t sloc;           //!< source lines of code
    uint64_t sizeBytes;      //!< input data size
    TypeUsage loading;
    TypeUsage processing;
    TypeUsage visualizing;
    TypeUsage storing;
    std::string description;

    /** Total call sites across all types. */
    uint32_t
    totalCalls() const
    {
        return loading.total + processing.total + visualizing.total +
               storing.total;
    }

    /** Total unique APIs across all types. */
    uint32_t
    uniqueApis() const
    {
        return loading.unique + processing.unique +
               visualizing.unique + storing.unique;
    }
};

/** All 23 applications (Table 6 rows, in paper order). */
const std::vector<AppModel> &appModels();

/** Look up one application by its paper sample id. */
const AppModel &appModel(int id);

} // namespace freepart::apps

#endif // FREEPART_APPS_APP_MODELS_HH
