#include "apps/app_models.hh"

#include "util/logging.hh"

namespace freepart::apps {

namespace {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;

using fw::Framework;

/**
 * Table 6 transcription. Rows whose visualizing column is blank in
 * the paper (headless training pipelines) carry 0/0 there.
 */
const std::vector<AppModel> kModels = {
    {1, "Face_classification", Framework::OpenCV, "Python", 7082,
     280 * kKiB, {4, 4}, {5, 10}, {4, 4}, {1, 1},
     "Face, emotion, gender detection"},
    {2, "FaceTracker", Framework::OpenCV, "C/C++", 3012, 588 * kKiB,
     {2, 5}, {19, 99}, {3, 3}, {3, 6},
     "Real-time deformable face tracking"},
    {3, "Face_Recognition", Framework::OpenCV, "Python", 3205,
     14800 * kKiB, {1, 8}, {5, 26}, {3, 15}, {2, 3},
     "Face recognition application"},
    {4, "lbpcascade_anime", Framework::OpenCV, "Python", 6671,
     224 * kKiB, {1, 1}, {4, 4}, {3, 3}, {1, 1},
     "Image classification/object detection"},
    {5, "EyeLike", Framework::OpenCV, "C/C++", 742, 44 * kKiB,
     {5, 5}, {21, 100}, {4, 18}, {1, 2},
     "Webcam based pupil tracking"},
    {6, "Video-to-ascii", Framework::OpenCV, "Python", 483,
     48 * kKiB, {4, 7}, {2, 2}, {1, 1}, {0, 0},
     "Plays videos in terminal"},
    {7, "Libfacedetection", Framework::OpenCV, "C/C++", 14016,
     8800 * kKiB, {4, 6}, {14, 62}, {4, 4}, {1, 1},
     "Library for face detection"},
    {8, "OMRChecker", Framework::OpenCV, "Python", 1797,
     6200 * kKiB, {2, 4}, {42, 88}, {4, 5}, {1, 1},
     "Grading application"},
    {9, "EmoRecon", Framework::Caffe, "Python", 1773, 53 * kKiB,
     {6, 10}, {11, 32}, {5, 6}, {1, 1},
     "Real-time emotion recognition"},
    {10, "Openpose", Framework::Caffe, "C/C++", 459373, 6800 * kKiB,
     {10, 12}, {44, 171}, {2, 2}, {0, 0},
     "Real-time person keypoint detection"},
    {11, "MTCNN", Framework::Caffe, "Python", 425, 129 * kKiB,
     {1, 1}, {11, 18}, {2, 2}, {0, 0}, "MTCNN face detector"},
    {12, "SiamMask", Framework::PyTorch, "Python", 39999,
     1400 * kKiB, {2, 9}, {19, 103}, {4, 10}, {2, 11},
     "Object tracking and segmentation"},
    {13, "CycleGAN-pix2pix", Framework::PyTorch, "Python", 1963,
     7640 * kKiB, {5, 7}, {50, 103}, {0, 0}, {1, 2},
     "Image-to-image translation"},
    {14, "FAIRSEQ", Framework::PyTorch, "Python", 39800,
     5900 * kKiB, {8, 19}, {20, 65}, {0, 0}, {4, 4},
     "Sequence modeling toolkit"},
    {15, "PyTorch-GAN", Framework::PyTorch, "Python", 6199,
     31 * kMiB + 100 * kKiB, {3, 105}, {41, 1747}, {0, 0}, {1, 37},
     "PyTorch implementation of GANs"},
    {16, "YOLO-V3", Framework::PyTorch, "Python", 2759,
     1980 * kKiB, {3, 9}, {68, 254}, {3, 3}, {2, 6},
     "PyTorch implementation of YOLOv3"},
    {17, "StarGAN", Framework::PyTorch, "Python", 740, 2070 * kKiB,
     {1, 2}, {32, 105}, {0, 0}, {1, 4},
     "PyTorch implementation of StarGAN"},
    {18, "EfficientNet", Framework::PyTorch, "Python", 2554,
     2480 * kKiB, {4, 8}, {37, 86}, {0, 0}, {2, 2},
     "PyTorch implementation of EfficientNet"},
    {19, "Semantic-Seg.", Framework::PyTorch, "Python", 3699,
     5530 * kKiB, {2, 2}, {136, 304}, {0, 0}, {1, 3},
     "Semantic segmentation/scene parsing"},
    {20, "DCGAN-TensorFlow", Framework::TensorFlow, "Python", 3142,
     67 * kMiB + 400 * kKiB, {3, 6}, {54, 137}, {0, 0}, {1, 1},
     "TensorFlow implementation of DCGAN"},
    {21, "See in the Dark", Framework::TensorFlow, "Python", 610,
     836 * kKiB, {1, 8}, {31, 244}, {0, 0}, {2, 10},
     "Learning-to-See-in-the-Dark (CVPR'18)"},
    {22, "CapsNet", Framework::TensorFlow, "Python", 679,
     486 * kKiB, {1, 8}, {43, 108}, {0, 0}, {4, 6},
     "TensorFlow implementation of CapsNet"},
    {23, "Style-Transfer", Framework::TensorFlow, "Python", 731,
     1 * kMiB, {3, 4}, {37, 61}, {0, 0}, {3, 5},
     "Add styles from images to any photo"},
};

} // namespace

const std::vector<AppModel> &
appModels()
{
    return kModels;
}

const AppModel &
appModel(int id)
{
    for (const AppModel &model : kModels)
        if (model.id == id)
            return model;
    util::fatal("appModel: no application with id %d", id);
}

} // namespace freepart::apps
