/**
 * @file
 * MComix3-style image viewer (case study §5.4.2, Fig. 15). Opening a
 * file goes through the vulnerable Pillow loader; the recently-opened
 * file names live both in the target program process
 * (self._window.uimanager.recent, annotated critical data) and in
 * the visualizing process (Gtk::RecentManager state). The §5.4.2
 * attack tries to leak them.
 */

#ifndef FREEPART_APPS_IMAGE_VIEWER_HH
#define FREEPART_APPS_IMAGE_VIEWER_HH

#include <string>
#include <vector>

#include "core/runtime.hh"

namespace freepart::apps {

/** The comic/image viewer application. */
class ImageViewer
{
  public:
    explicit ImageViewer(core::FreePartRuntime &runtime);

    /** Initialization: allocate the recent-files list in the host. */
    void setup();

    /** Open and display one image file. */
    bool openImage(const std::string &path);

    /** Seed `count` benign image files; returns their paths. */
    static std::vector<std::string>
    seedImages(osim::Kernel &kernel, int count);

    /** The host-side recent-file-names buffer (attack target). */
    osim::Addr recentListAddr() const { return recentAddr; }
    size_t recentListLen() const { return recentLen; }

    /** Names currently recorded in the host-side list. */
    std::string recentNames() const;

    int imagesShown() const { return shown; }

  private:
    core::FreePartRuntime &runtime;
    osim::Addr recentAddr = 0;
    size_t recentLen = 0;
    size_t recentUsed = 0;
    int shown = 0;
};

} // namespace freepart::apps

#endif // FREEPART_APPS_IMAGE_VIEWER_HH
