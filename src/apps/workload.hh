/**
 * @file
 * Workload generator: turns a Table 6 application model into a
 * concrete, deterministic call trace following the Fig. 6 pipeline
 * (load -> process-chain -> visualize/store, repeated), and replays
 * it against a runtime. Drives Fig. 13 (per-app overhead), the LDC
 * ablation (§5.2), and Table 12 (copy-operation statistics).
 */

#ifndef FREEPART_APPS_WORKLOAD_HH
#define FREEPART_APPS_WORKLOAD_HH

#include <string>
#include <vector>

#include "apps/app_models.hh"
#include "core/runtime.hh"
#include "util/rng.hh"

namespace freepart::apps {

/** One generated API call (object slots filled at replay time). */
struct WorkloadCall {
    std::string api;     //!< API name
    bool chainInput;     //!< feed the current pipeline object in
    bool startsRound;    //!< loading call opening a new round
};

/** Outcome of replaying a workload. */
struct WorkloadResult {
    uint64_t callsOk = 0;
    uint64_t callsFailed = 0;
    bool hasFinalObject = false; //!< a pipeline object survived to the end
    /** FNV-1a of the final pipeline object's serialized bytes — the
     *  byte-identity witness between sync and async replays. */
    uint64_t finalDigest = 0;
    core::RunStats stats;     //!< runtime counters after the replay
};

/**
 * Generates and replays application workloads.
 */
class WorkloadGenerator
{
  public:
    struct Config {
        uint32_t imageRows = 768;  //!< ImageNet-scale frames (§5.2)
        uint32_t imageCols = 768;
        uint32_t tensorDim = 512;  //!< fixture tensor side length
        uint32_t maxRounds = 4;    //!< load/process rounds replayed
        uint32_t maxCallsPerRound = 64; //!< cap per round
    };

    WorkloadGenerator(const fw::ApiRegistry &registry, Config config);
    explicit WorkloadGenerator(const fw::ApiRegistry &registry);

    /**
     * The distinct API names chosen for an app (matching its
     * unique-per-type counts from Table 6 as far as the registry
     * allows). Deterministic per app.
     */
    std::vector<std::string> apisFor(const AppModel &model) const;

    /** Build the call trace for one app model. */
    std::vector<WorkloadCall> trace(const AppModel &model) const;

    /**
     * Replay a model's trace against a runtime. The runtime's kernel
     * must already have fixture files seeded (seedWorkloadInputs).
     */
    WorkloadResult run(core::FreePartRuntime &runtime,
                       const AppModel &model) const;

    /**
     * Replay the same trace through invokeAsync: loads for round N
     * are issued before the host inspects round N-1's frame, and
     * results are wired by ticket peeking, so stages overlap on the
     * virtual timelines (when the runtime's pipelineParallel gate is
     * on; with it off this degrades to the sync replay). Object
     * contents — and finalDigest — are byte-identical to run().
     */
    WorkloadResult runAsync(core::FreePartRuntime &runtime,
                            const AppModel &model) const;

    /** Seed the input files the generated traces read. */
    void seedInputs(osim::Kernel &kernel) const;

    const Config &config() const { return config_; }

  private:
    WorkloadResult replay(core::FreePartRuntime &runtime,
                          const AppModel &model, bool async) const;
    /** Pick up to `count` APIs of a type for a framework. */
    std::vector<std::string>
    pickApis(fw::ApiType type, fw::Framework framework,
             uint32_t count) const;

    const fw::ApiRegistry &registry;
    Config config_;
};

} // namespace freepart::apps

#endif // FREEPART_APPS_WORKLOAD_HH
