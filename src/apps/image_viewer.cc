#include "apps/image_viewer.hh"

#include "fw/image_format.hh"

namespace freepart::apps {

namespace {

using ipc::Value;

constexpr size_t kRecentBufBytes = 512;

} // namespace

ImageViewer::ImageViewer(core::FreePartRuntime &runtime)
    : runtime(runtime)
{
}

std::vector<std::string>
ImageViewer::seedImages(osim::Kernel &kernel, int count)
{
    std::vector<std::string> paths;
    for (int i = 0; i < count; ++i) {
        std::string path =
            "/library/secret_album_" + std::to_string(i) + ".fpim";
        kernel.vfs().putFile(
            path, fw::encodeImageFile(
                      32, 32, 3,
                      fw::synthPixels(32, 32, 3,
                                      static_cast<uint64_t>(i))));
        paths.push_back(std::move(path));
    }
    return paths;
}

void
ImageViewer::setup()
{
    // self._window.uimanager.recent: the sensitive recent-files
    // list, kept in the target program process. It is written
    // throughout execution, so it is NOT annotated for temporal
    // protection — the §5.4.2 defence is process isolation (the
    // exploit runs in the loading process, where this address is
    // simply not mapped) plus the syscall filter.
    recentAddr = runtime.hostProcess().space().alloc(
        kRecentBufBytes, osim::PermRW, "uimanager.recent");
    recentLen = kRecentBufBytes;
    recentUsed = 0;
}

bool
ImageViewer::openImage(const std::string &path)
{
    // Data loading through the vulnerable Pillow decoder.
    core::ApiResult img =
        runtime.invoke("pil.Image.open", {Value(path)});
    if (!img.ok)
        return false;
    core::ApiResult sized = runtime.invoke(
        "pil.Image.resize",
        {img.values[0], Value(uint64_t(24)), Value(uint64_t(24))});
    if (!sized.ok)
        return false;
    // Visualizing: display + record in the GTK recent manager (GUI
    // process state).
    core::ApiResult show = runtime.invoke(
        "gtk.Window.show",
        {Value(std::string("viewer")), sized.values[0]});
    runtime.invoke("gtk.RecentManager.add", {Value(path)});
    if (!show.ok)
        return false;

    // Record the name in the host-side recent list.
    osim::AddressSpace &host = runtime.hostProcess().space();
    if (recentUsed + path.size() + 1 <= recentLen) {
        host.write(recentAddr + recentUsed, path.data(),
                   path.size());
        recentUsed += path.size();
        const char nl = '\n';
        host.write(recentAddr + recentUsed, &nl, 1);
        ++recentUsed;
    }
    ++shown;
    return true;
}

std::string
ImageViewer::recentNames() const
{
    std::vector<char> buf(recentUsed);
    const_cast<core::FreePartRuntime &>(runtime)
        .hostProcess()
        .space()
        .read(recentAddr, buf.data(), recentUsed);
    return std::string(buf.begin(), buf.end());
}

} // namespace freepart::apps
