#include "apps/workload.hh"

#include <algorithm>

#include "fw/invoker.hh"
#include "util/checksum.hh"
#include "util/logging.hh"

namespace freepart::apps {

namespace {

using fw::ApiType;
using fw::Framework;

/** Secondary framework per Table 6 footnotes: every evaluated app
 *  also touches OpenCV (Keras for app 1, OpenCV elsewhere). */
Framework
secondaryFramework(Framework primary)
{
    return primary == Framework::OpenCV ? Framework::Pillow
                                        : Framework::OpenCV;
}

/**
 * Can the pipeline's live tensor replace an API's prepared first
 * argument? Shape-agnostic elementwise ops accept anything; pooling
 * needs rank 3; convolutions need 3 input channels (the fixture
 * weights); everything else needs an exact shape match.
 */
bool
tensorChainCompatible(const std::string &api,
                      const std::vector<uint32_t> &chain_shape,
                      const std::vector<uint32_t> &prep_shape)
{
    if (api == "torch.relu" || api == "torch.softmax" ||
        api == "torch.argmax" || api == "np.argmax" ||
        api == "np.mean" || api == "torch.save" ||
        api == "np.save" || api == "tf.keras.Model.save_weights" ||
        api == "caffe.WriteProtoToTextFile" ||
        api == "caffe.hdf5_save_string" ||
        api ==
            "torch.utils.tensorboard.SummaryWriter.add_scalar" ||
        api == "tf.keras.preprocessing.image.save_img")
        return true;
    if (api == "torch.nn.MaxPool2d" || api == "tf.nn.max_pool" ||
        api == "tf.nn.avg_pool")
        return chain_shape.size() == 3 && chain_shape[1] >= 2 &&
               chain_shape[2] >= 2;
    if (api == "torch.nn.Conv2d" || api == "tf.nn.conv2d" ||
        api == "tf.nn.conv3d" || api == "caffe.Net.Forward")
        return chain_shape.size() == 3 && chain_shape[0] == 3 &&
               chain_shape[1] >= 3 && chain_shape[2] >= 3;
    return chain_shape == prep_shape;
}

} // namespace

WorkloadGenerator::WorkloadGenerator(const fw::ApiRegistry &registry,
                                     Config config)
    : registry(registry), config_(config)
{
}

WorkloadGenerator::WorkloadGenerator(const fw::ApiRegistry &registry)
    : WorkloadGenerator(registry, Config())
{
}

std::vector<std::string>
WorkloadGenerator::pickApis(ApiType type, Framework framework,
                            uint32_t count) const
{
    std::vector<std::string> out;
    auto take = [&](Framework fw_id) {
        for (const fw::ApiDescriptor *api :
             registry.byFramework(fw_id)) {
            if (out.size() >= count)
                return;
            if (api->declaredType != type || !api->implemented())
                continue;
            if (std::find(out.begin(), out.end(), api->name) ==
                out.end())
                out.push_back(api->name);
        }
    };
    take(framework);
    take(secondaryFramework(framework));
    // Fall back to the whole registry when the model wants more
    // unique APIs than the two frameworks provide.
    for (const fw::ApiDescriptor &api : registry.all()) {
        if (out.size() >= count)
            break;
        if (api.declaredType != type || !api.implemented())
            continue;
        if (std::find(out.begin(), out.end(), api.name) == out.end())
            out.push_back(api.name);
    }
    return out;
}

std::vector<std::string>
WorkloadGenerator::apisFor(const AppModel &model) const
{
    std::vector<std::string> out;
    for (auto [type, usage] :
         {std::make_pair(ApiType::Loading, model.loading),
          std::make_pair(ApiType::Processing, model.processing),
          std::make_pair(ApiType::Visualizing, model.visualizing),
          std::make_pair(ApiType::Storing, model.storing)}) {
        std::vector<std::string> picked =
            pickApis(type, model.framework, usage.unique);
        out.insert(out.end(), picked.begin(), picked.end());
    }
    return out;
}

std::vector<WorkloadCall>
WorkloadGenerator::trace(const AppModel &model) const
{
    std::vector<WorkloadCall> calls;
    std::vector<std::string> loaders =
        pickApis(ApiType::Loading, model.framework,
                 std::max<uint32_t>(1, model.loading.unique));
    std::vector<std::string> processors =
        pickApis(ApiType::Processing, model.framework,
                 std::max<uint32_t>(1, model.processing.unique));
    std::vector<std::string> visualizers = pickApis(
        ApiType::Visualizing, model.framework,
        model.visualizing.unique);
    std::vector<std::string> storers = pickApis(
        ApiType::Storing, model.framework, model.storing.unique);

    uint32_t rounds = std::min<uint32_t>(
        config_.maxRounds,
        std::max<uint32_t>(1, model.loading.total));
    uint32_t proc_per_round = std::min<uint32_t>(
        config_.maxCallsPerRound,
        std::max<uint32_t>(
            1, model.processing.total /
                   std::max<uint32_t>(1, model.loading.total)));
    uint32_t vis_per_round =
        model.visualizing.total
            ? std::max<uint32_t>(
                  1, model.visualizing.total /
                         std::max<uint32_t>(1,
                                            model.loading.total))
            : 0;
    vis_per_round = std::min<uint32_t>(vis_per_round, 8);
    uint32_t store_per_round =
        model.storing.total
            ? std::max<uint32_t>(
                  1, model.storing.total /
                         std::max<uint32_t>(1,
                                            model.loading.total))
            : 0;
    store_per_round = std::min<uint32_t>(store_per_round, 8);

    size_t li = 0, pi = 0, vi = 0, si = 0;
    for (uint32_t round = 0; round < rounds; ++round) {
        calls.push_back({loaders[li++ % loaders.size()], false,
                         true});
        for (uint32_t i = 0; i < proc_per_round; ++i)
            calls.push_back(
                {processors[pi++ % processors.size()], true, false});
        for (uint32_t i = 0; i < vis_per_round && !visualizers.empty();
             ++i)
            calls.push_back(
                {visualizers[vi++ % visualizers.size()], true,
                 false});
        for (uint32_t i = 0; i < store_per_round && !storers.empty();
             ++i)
            calls.push_back({storers[si++ % storers.size()], true,
                             false});
    }
    return calls;
}

void
WorkloadGenerator::seedInputs(osim::Kernel &kernel) const
{
    fw::TestFixture fixture;
    fixture.rows = config_.imageRows;
    fixture.cols = config_.imageCols;
    fixture.tensorDim = config_.tensorDim;
    fw::seedFixtureFiles(kernel, fixture);
}

WorkloadResult
WorkloadGenerator::run(core::FreePartRuntime &runtime,
                       const AppModel &model) const
{
    return replay(runtime, model, /*async=*/false);
}

WorkloadResult
WorkloadGenerator::runAsync(core::FreePartRuntime &runtime,
                            const AppModel &model) const
{
    return replay(runtime, model, /*async=*/true);
}

WorkloadResult
WorkloadGenerator::replay(core::FreePartRuntime &runtime,
                          const AppModel &model, bool async) const
{
    WorkloadResult result;
    fw::TestFixture fixture;
    fixture.rows = config_.imageRows;
    fixture.cols = config_.imageCols;
    fixture.tensorDim = config_.tensorDim;
    fw::Invoker invoker(runtime.kernel(), runtime.hostStore(),
                        core::kHostPartition, fixture);

    // The live pipeline object flowing between framework APIs.
    bool have_chain = false;
    ipc::ObjectRef chain{};
    fw::ObjKind chain_kind = fw::ObjKind::Bytes;

    auto object_kind = [&](const ipc::ObjectRef &ref) {
        return runtime.storeOf(runtime.homeOf(ref.objectId))
            .get(ref.objectId)
            .kind;
    };

    uint64_t seed = static_cast<uint64_t>(model.id) * 1000;
    for (const WorkloadCall &call : trace(model)) {
        // The pipeline object can be lost outright when the agent
        // holding it crashes between checkpoints; the app drops the
        // dangling reference and rebuilds from the next load call
        // (the paper's accepted state discrepancy, §4.4.2).
        if (have_chain && !runtime.hasObject(chain.objectId))
            have_chain = false;
        // At each round boundary the host program inspects the
        // previous round's result (reading scores, writing logs):
        // a genuine dereference, i.e. a non-lazy copy (Table 12's
        // ~5% non-lazy share). The async replay defers the
        // inspection until the next round's load call is already in
        // flight — the frame-N-loads-while-frame-N-1-is-inspected
        // overlap pipelining exists for. Contents are unaffected:
        // the load never touches the previous chain object.
        bool fetch_prev = call.startsRound && have_chain;
        ipc::ObjectRef prev_chain = chain;
        if (fetch_prev && !async)
            runtime.fetchToHost(prev_chain);
        const fw::ApiDescriptor &api = registry.require(call.api);
        ipc::ValueList args = invoker.prepareArgs(api, seed++);
        // Chain the pipeline object through compatible first args
        // (the Fig. 6 "output of a component is the input of the
        // next component" property LDC exploits). Substitution also
        // requires matching Mat channel counts so grayscale-only
        // kernels keep grayscale inputs.
        if (call.chainInput && have_chain && !args.empty() &&
            args[0].kind() == ipc::Value::Kind::Ref &&
            object_kind(args[0].asRef()) == chain_kind) {
            bool compatible = true;
            if (chain_kind == fw::ObjKind::Mat) {
                const ipc::ObjectRef &prep = args[0].asRef();
                const fw::MatDesc &prep_mat =
                    runtime.storeOf(runtime.homeOf(prep.objectId))
                        .mat(prep.objectId);
                const fw::MatDesc &chain_mat =
                    runtime.storeOf(runtime.homeOf(chain.objectId))
                        .mat(chain.objectId);
                compatible =
                    prep_mat.channels == chain_mat.channels;
                // Two-Mat elementwise APIs need the first argument
                // to match the shape of the prepared second one.
                if (call.api == "cv2.absdiff" ||
                    call.api == "cv2.addWeighted")
                    compatible = compatible &&
                                 prep_mat.rows == chain_mat.rows &&
                                 prep_mat.cols == chain_mat.cols;
            } else if (chain_kind == fw::ObjKind::Tensor) {
                const std::vector<uint32_t> &chain_shape =
                    runtime.storeOf(runtime.homeOf(chain.objectId))
                        .tensor(chain.objectId)
                        .shape;
                const std::vector<uint32_t> &prep_shape =
                    runtime
                        .storeOf(runtime.homeOf(
                            args[0].asRef().objectId))
                        .tensor(args[0].asRef().objectId)
                        .shape;
                compatible =
                    tensorChainCompatible(call.api, chain_shape,
                                          prep_shape);
            }
            if (compatible)
                args[0] = ipc::Value(chain);
        }
        core::ApiResult res;
        if (async) {
            core::CallTicket ticket =
                runtime.invokeAsync(call.api, std::move(args));
            // Execution is eager, so the result is already there;
            // peeking (instead of waiting) keeps the host clock from
            // synchronizing with the agent timeline on every call.
            if (const core::ApiResult *peeked =
                    runtime.peekResult(ticket))
                res = *peeked;
            else
                res.error = "async ticket vanished";
            if (fetch_prev)
                runtime.fetchToHost(prev_chain);
        } else {
            res = runtime.invoke(call.api, std::move(args));
        }
        if (!res.ok) {
            ++result.callsFailed;
            continue;
        }
        ++result.callsOk;
        if (!res.values.empty() &&
            res.values[0].kind() == ipc::Value::Kind::Ref) {
            ipc::ObjectRef out = res.values[0].asRef();
            fw::ObjKind kind = object_kind(out);
            if (kind == fw::ObjKind::Mat ||
                kind == fw::ObjKind::Tensor) {
                chain = out;
                chain_kind = kind;
                have_chain = true;
            }
        }
    }
    // The host consumes the final result.
    if (have_chain && runtime.hasObject(chain.objectId)) {
        runtime.fetchToHost(chain);
        result.hasFinalObject = true;
        result.finalDigest = util::fnv1a64(
            runtime.hostStore().serialize(chain.objectId));
    }
    if (async)
        runtime.drainAll();
    result.stats = runtime.stats();
    return result;
}

} // namespace freepart::apps
