/**
 * @file
 * The paper's two design studies (§4.1) as datasets + analysis code:
 *
 *  - Study 1: 56 popular data-processing applications, their
 *    pipeline structure (Fig. 6) and their usage of vulnerable APIs
 *    (Table 3). The paper reports aggregates; the per-app census
 *    here is reconstructed deterministically so that computing the
 *    aggregates from it reproduces Table 3's numbers.
 *  - Study 2: 241 CVEs (Aug 2018 - Feb 2022) across TensorFlow (172),
 *    Pillow (44), OpenCV (22) and NumPy (3), bucketed by API type
 *    and vulnerability class (Fig. 7). Per-bucket counts are
 *    reconstructed to match the reported per-framework totals and
 *    the loading/processing-heavy shape.
 *
 * Plus the stateful-API census of A.2.4.
 */

#ifndef FREEPART_APPS_STUDIES_HH
#define FREEPART_APPS_STUDIES_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "fw/api_types.hh"

namespace freepart::apps {

// ---- Study 1: 56-application usage census ---------------------------

/** Frameworks covered by the studies. */
enum class StudyFramework : uint8_t {
    OpenCV = 0,
    TensorFlow,
    Pillow,
    NumPy,
    NumStudyFrameworks,
};

constexpr size_t kNumStudyFrameworks =
    static_cast<size_t>(StudyFramework::NumStudyFrameworks);

/** Display name. */
const char *studyFrameworkName(StudyFramework fw);

/** One of the 56 studied applications. */
struct StudyApp {
    int id;       //!< 0..55
    /** Vulnerable-API ids used, per framework x concrete API type.
     *  Ids are global per (framework, type) pool, so distinct ids
     *  are distinct APIs. */
    std::vector<int> vulnApis[kNumStudyFrameworks][fw::kNumApiTypes];
    bool loops;          //!< repeats load->process (video apps)
    bool hasVisualizing; //!< ends with a visualizing phase
    bool hasStoring;     //!< ends with a storing phase

    /** Count of vulnerable APIs of one framework+type used. */
    size_t
    vulnCount(StudyFramework fw, fw::ApiType type) const
    {
        return vulnApis[static_cast<size_t>(fw)]
                       [static_cast<size_t>(type)]
                           .size();
    }

    /**
     * Phase sequence of the app (Fig. 6 pipeline): "L", "P",
     * repeated if looping, then "V" and/or "S".
     */
    std::vector<fw::ApiType> phaseSequence() const;
};

/** The 56-app census (deterministically reconstructed). */
const std::vector<StudyApp> &studyApps();

/** Aggregates per framework x type (the Table 3 cells). */
struct VulnUsageAgg {
    double avg = 0.0;   //!< mean vulnerable APIs per app
    uint32_t max = 0;   //!< max in a single app
    uint32_t total = 0; //!< distinct vulnerable APIs across all apps
};

/** Compute Table 3 aggregates from the census. */
std::map<std::pair<StudyFramework, fw::ApiType>, VulnUsageAgg>
computeVulnUsage();

/** Totals row of Table 3 (summing across frameworks per type). */
std::array<VulnUsageAgg, fw::kNumApiTypes> computeVulnUsageTotals();

/**
 * Fig. 6 pipeline check: true iff an app's phase sequence matches
 * loading -> processing (optionally repeated) -> visualizing and/or
 * storing.
 */
bool followsPipelinePattern(const StudyApp &app);

// ---- Study 2: 241-CVE census ------------------------------------------

/** Vulnerability classes of Fig. 7. */
enum class VulnClass : uint8_t {
    UnauthorizedMemWrite = 0,
    UnauthorizedMemRead,
    DenialOfService,
    UnauthorizedFileRead,
    NumVulnClasses,
};

constexpr size_t kNumVulnClasses =
    static_cast<size_t>(VulnClass::NumVulnClasses);

/** Display name. */
const char *vulnClassName(VulnClass cls);

/** One bucket of the CVE census. */
struct CveBucket {
    fw::ApiType apiType;
    StudyFramework framework;
    VulnClass vulnClass;
    uint32_t count;
};

/** All non-empty buckets (sums to 241). */
const std::vector<CveBucket> &cveStudyBuckets();

/** Total CVEs per framework (TF 172 / Pillow 44 / OpenCV 22 / NumPy 3). */
std::map<StudyFramework, uint32_t> cveTotalsByFramework();

/** Total CVEs per API type. */
std::map<fw::ApiType, uint32_t> cveTotalsByType();

// ---- Stateful-API census (A.2.4) ---------------------------------------

/** Breakdown of the 1,841 stateful APIs across four frameworks. */
struct StatefulCensus {
    uint32_t initialization = 506; //!< restored by re-running init
    uint32_t gui = 279;            //!< restored by re-display
    uint32_t dataProcessing = 1056; //!< need periodic checkpoints

    uint32_t
    total() const
    {
        return initialization + gui + dataProcessing;
    }
};

/** The census constants. */
StatefulCensus statefulCensus();

} // namespace freepart::apps

#endif // FREEPART_APPS_STUDIES_HH
