#include "attacks/cve_corpus.hh"

#include "util/logging.hh"

namespace freepart::attacks {

namespace {

using fw::ApiType;
using fw::PayloadKind;

const char *kMemWrite = "Unauthorized Mem. Write";
const char *kRce = "Remote Code Execution";
const char *kDos = "Denial-of-Service (DoS)";

/** Table 5, one record per CVE. */
const std::vector<CveRecord> kEvaluation = {
    // Unauthorized memory writes in the OpenCV image decoder.
    {"CVE-2017-12604", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
    {"CVE-2017-12605", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
    {"CVE-2017-12606", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
    {"CVE-2017-12597", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
    // Remote code execution.
    {"CVE-2017-17760", kRce, PayloadKind::CodeRewrite, "cv2.imread",
     ApiType::Loading, {1, 7, 10, 12}},
    {"CVE-2019-5063", kRce, PayloadKind::OobWrite,
     "cv2.CascadeClassifier.detectMultiScale", ApiType::Processing,
     {1, 9, 10}},
    {"CVE-2019-5064", kRce, PayloadKind::OobWrite,
     "cv2.CascadeClassifier.detectMultiScale", ApiType::Processing,
     {1, 9, 10}},
    // Denial of service.
    {"CVE-2017-14136", kDos, PayloadKind::Dos, "cv2.imread",
     ApiType::Loading, {1, 7, 9, 10, 12}},
    {"CVE-2018-5269", kDos, PayloadKind::Dos, "cv2.imdecode",
     ApiType::Loading, {1, 7, 9, 10, 12}},
    {"CVE-2019-14491", kDos, PayloadKind::Dos,
     "cv2.CascadeClassifier.detectMultiScale", ApiType::Processing,
     {1, 9, 10}},
    {"CVE-2019-14492", kDos, PayloadKind::Dos,
     "cv2.CascadeClassifier.detectMultiScale", ApiType::Processing,
     {1, 9, 10}},
    {"CVE-2019-14493", kDos, PayloadKind::Dos,
     "cv2.CascadeClassifier.detectMultiScale", ApiType::Processing,
     {1, 9, 10}},
    {"CVE-2021-29513", kDos, PayloadKind::Dos, "tf.nn.conv3d",
     ApiType::Processing, {21, 23}},
    {"CVE-2021-29618", kDos, PayloadKind::Dos, "tf.nn.max_pool",
     ApiType::Processing, {23}},
    {"CVE-2021-37661", kDos, PayloadKind::Dos, "tf.nn.avg_pool",
     ApiType::Processing, {21, 22, 23}},
    {"CVE-2021-41198", kDos, PayloadKind::Dos, "tf.nn.conv2d",
     ApiType::Processing, {20, 22}},
    // The paper counts 18 reproduced CVEs; the remaining two rows of
    // its Table 5 ranges are the imread decoder variants below.
    {"CVE-2017-12862", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
    {"CVE-2017-12864", kMemWrite, PayloadKind::OobWrite,
     "cv2.imread", ApiType::Loading, {1, 9, 10, 12}},
};

const std::vector<CveRecord> kCaseStudies = {
    {"CVE-2020-10378", "Unauthorized Mem. Read",
     PayloadKind::Exfiltrate, "pil.Image.open", ApiType::Loading,
     {}},
    {"SIM-IMSHOW-DOS", kDos, PayloadKind::Dos, "cv2.imshow",
     ApiType::Visualizing, {8}},
    {"SIM-STEGONET", "Trojaned DNN model (StegoNet)",
     PayloadKind::ForkBomb, "torch.load", ApiType::Loading, {}},
};

} // namespace

const std::vector<CveRecord> &
evaluationCves()
{
    return kEvaluation;
}

const std::vector<CveRecord> &
caseStudyCves()
{
    return kCaseStudies;
}

const CveRecord &
cveById(const std::string &id)
{
    for (const CveRecord &record : kEvaluation)
        if (record.id == id)
            return record;
    for (const CveRecord &record : kCaseStudies)
        if (record.id == id)
            return record;
    util::fatal("cve corpus: unknown CVE '%s'", id.c_str());
}

} // namespace freepart::attacks
