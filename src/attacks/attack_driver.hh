/**
 * @file
 * Attack driver: constructs exploits for corpus CVEs (the paper built
 * theirs from public PoCs with Metasploit payloads, §5) and launches
 * them against an application running on any runtime configuration.
 * The outcome classifier then reports what the attack achieved —
 * data corrupted, data exfiltrated, host crashed — and which
 * enforcement point stopped it.
 */

#ifndef FREEPART_ATTACKS_ATTACK_DRIVER_HH
#define FREEPART_ATTACKS_ATTACK_DRIVER_HH

#include <string>

#include "attacks/cve_corpus.hh"
#include "core/runtime.hh"
#include "fw/invoker.hh"

namespace freepart::attacks {

/** What the attacker is trying to achieve (§5.3 scenarios). */
enum class AttackGoal : uint8_t {
    CorruptData, //!< overwrite a critical variable (Fig. 1)
    Exfiltrate,  //!< leak a secret to a remote server
    Dos,         //!< crash the application
    CodeRewrite, //!< mprotect + overwrite code
    ForkBomb,    //!< StegoNet resource exhaustion (A.7)
};

/** Display name of a goal. */
const char *attackGoalName(AttackGoal goal);

/** Map a Table 5 payload kind onto the natural attack goal. */
AttackGoal goalForPayload(fw::PayloadKind kind);

/** A concrete attack to launch. */
struct AttackSpec {
    std::string cve;        //!< CVE id from the corpus
    AttackGoal goal = AttackGoal::Dos;
    osim::Pid targetPid = 0;   //!< process holding the victim data
    osim::Addr targetAddr = 0; //!< victim data address
    size_t targetLen = 0;      //!< victim data length
    std::string exfilDest = "evil.example";
};

/** Classified attack result. */
struct AttackOutcome {
    bool delivered = false;       //!< the vulnerable API ran the input
    bool dataCorrupted = false;   //!< victim bytes changed
    bool dataLeaked = false;      //!< secret reached the network
    bool hostCrashed = false;     //!< whole application lost
    bool executorCrashed = false; //!< the executing process died
    bool blockedByMemFault = false;   //!< page permissions stopped it
    bool blockedBySyscall = false;    //!< seccomp stopped it
    uint32_t childrenSpawned = 0;     //!< fork-bomb progress
    std::string detail;           //!< human-readable narrative

    /** True if the attack failed to achieve its goal AND the host
     *  application survived. */
    bool mitigated(AttackGoal goal) const;
};

/** Launches exploits against a runtime. */
class AttackDriver
{
  public:
    AttackDriver(core::FreePartRuntime &runtime,
                 const fw::ApiRegistry &registry);

    /** Build + deliver the exploit, classify the outcome. */
    AttackOutcome launch(const AttackSpec &spec);

  private:
    /** Craft the payload for a spec. */
    fw::ExploitPayload buildPayload(const AttackSpec &spec) const;

    /** Deliver through a file-loading API (crafted input file). */
    core::ApiResult deliverViaFile(const CveRecord &cve,
                                   const fw::ExploitPayload &payload);

    /** Deliver through a data-processing/visualizing API (crafted
     *  in-memory object). */
    core::ApiResult
    deliverViaObject(const CveRecord &cve,
                     const fw::ExploitPayload &payload);

    core::FreePartRuntime &runtime;
    const fw::ApiRegistry &registry;
};

} // namespace freepart::attacks

#endif // FREEPART_ATTACKS_ATTACK_DRIVER_HH
