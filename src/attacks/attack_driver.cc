#include "attacks/attack_driver.hh"

#include <cstring>

#include "fw/image_format.hh"
#include "util/logging.hh"

namespace freepart::attacks {

namespace {

using ipc::Value;

/** Loading APIs whose crafted input is an FPIM image file. */
bool
isImageFileLoader(const std::string &api)
{
    return api == "cv2.imread" || api == "pil.Image.open" ||
           api == "cv2.CascadeClassifier.load" ||
           api == "cv2.readOpticalFlow";
}

/** Loading APIs whose crafted input is a model/tensor file. */
bool
isModelFileLoader(const std::string &api)
{
    return api == "torch.load" || api == "torch.hub.load" ||
           api == "caffe.ReadProtoFromTextFile" ||
           api == "caffe.Net.CopyTrainedLayersFrom" ||
           api == "np.load" ||
           api == "torch.utils.model_zoo.load_url";
}

/** Processing APIs operating on Tensors rather than Mats. */
bool
takesTensor(const std::string &api)
{
    return api.rfind("tf.nn.", 0) == 0 ||
           api.rfind("torch.nn.", 0) == 0 ||
           api == "caffe.Net.Forward" ||
           api == "caffe.Net.Backward" ||
           api == "tf.estimator.DNNClassifier.train";
}

} // namespace

const char *
attackGoalName(AttackGoal goal)
{
    switch (goal) {
      case AttackGoal::CorruptData:
        return "data corruption";
      case AttackGoal::Exfiltrate:
        return "data exfiltration";
      case AttackGoal::Dos:
        return "denial of service";
      case AttackGoal::CodeRewrite:
        return "code rewriting";
      case AttackGoal::ForkBomb:
        return "fork bomb";
    }
    return "?";
}

AttackGoal
goalForPayload(fw::PayloadKind kind)
{
    switch (kind) {
      case fw::PayloadKind::OobWrite:
        return AttackGoal::CorruptData;
      case fw::PayloadKind::Exfiltrate:
        return AttackGoal::Exfiltrate;
      case fw::PayloadKind::Dos:
        return AttackGoal::Dos;
      case fw::PayloadKind::CodeRewrite:
        return AttackGoal::CodeRewrite;
      case fw::PayloadKind::ForkBomb:
        return AttackGoal::ForkBomb;
    }
    return AttackGoal::Dos;
}

bool
AttackOutcome::mitigated(AttackGoal goal) const
{
    if (hostCrashed)
        return false;
    switch (goal) {
      case AttackGoal::CorruptData:
      case AttackGoal::CodeRewrite:
        return !dataCorrupted;
      case AttackGoal::Exfiltrate:
        return !dataLeaked;
      case AttackGoal::Dos:
        return true; // host survived
      case AttackGoal::ForkBomb:
        return childrenSpawned == 0;
    }
    return false;
}

AttackDriver::AttackDriver(core::FreePartRuntime &runtime,
                           const fw::ApiRegistry &registry)
    : runtime(runtime), registry(registry)
{
}

fw::ExploitPayload
AttackDriver::buildPayload(const AttackSpec &spec) const
{
    fw::ExploitPayload payload;
    payload.cve = spec.cve;
    switch (spec.goal) {
      case AttackGoal::CorruptData: {
        payload.kind = fw::PayloadKind::OobWrite;
        payload.targetAddr = spec.targetAddr;
        const char *mark = "HACKED!!";
        size_t n = std::min<size_t>(spec.targetLen ? spec.targetLen
                                                   : 8,
                                    8);
        payload.writeData.assign(mark, mark + n);
        break;
      }
      case AttackGoal::Exfiltrate:
        payload.kind = fw::PayloadKind::Exfiltrate;
        payload.leakAddr = spec.targetAddr;
        payload.leakLen = static_cast<uint32_t>(spec.targetLen);
        payload.dest = spec.exfilDest;
        break;
      case AttackGoal::Dos:
        payload.kind = fw::PayloadKind::Dos;
        break;
      case AttackGoal::CodeRewrite: {
        payload.kind = fw::PayloadKind::CodeRewrite;
        payload.targetAddr = spec.targetAddr;
        const char *shellcode = "\x90\x90\xcc\xcc";
        payload.writeData.assign(shellcode, shellcode + 4);
        break;
      }
      case AttackGoal::ForkBomb:
        payload.kind = fw::PayloadKind::ForkBomb;
        payload.forkCount = 8;
        break;
    }
    return payload;
}

core::ApiResult
AttackDriver::deliverViaFile(const CveRecord &cve,
                             const fw::ExploitPayload &payload)
{
    osim::Kernel &kernel = runtime.kernel();
    if (isImageFileLoader(cve.api)) {
        kernel.vfs().putFile(
            "/attack/crafted.fpim",
            fw::encodeImageFile(16, 16, 1,
                                fw::synthPixels(16, 16, 1, 0),
                                payload));
        return runtime.invoke(
            cve.api, {Value(std::string("/attack/crafted.fpim"))});
    }
    if (cve.api == "cv2.imdecode") {
        std::vector<uint8_t> blob = fw::encodeImageFile(
            16, 16, 1, fw::synthPixels(16, 16, 1, 0), payload);
        return runtime.invoke(cve.api, {Value(std::move(blob))});
    }
    // Model-file loaders (and any other file-based loader): tensor
    // header/body + trojan trailer (the StegoNet delivery channel).
    if (!isModelFileLoader(cve.api))
        util::warn("attack driver: treating '%s' as a model loader",
                   cve.api.c_str());
    uint32_t rank = 1;
    uint32_t dim = 16;
    std::vector<uint8_t> file(8 + dim * sizeof(float), 0);
    std::memcpy(file.data(), &rank, 4);
    std::memcpy(file.data() + 4, &dim, 4);
    std::vector<uint8_t> trailer = fw::encodePayload(payload);
    file.insert(file.end(), trailer.begin(), trailer.end());
    kernel.vfs().putFile("/attack/model.fpt", file);
    return runtime.invoke(cve.api,
                          {Value(std::string("/attack/model.fpt"))});
}

core::ApiResult
AttackDriver::deliverViaObject(const CveRecord &cve,
                               const fw::ExploitPayload &payload)
{
    const fw::ApiDescriptor &api = registry.require(cve.api);
    fw::Invoker invoker(runtime.kernel(), runtime.hostStore(),
                        core::kHostPartition);
    ipc::ValueList args = invoker.prepareArgs(api, /*seed=*/1);
    // Infuse the payload into the leading bytes of the first object
    // argument — the crafted-data-reaches-vulnerable-kernel path.
    std::vector<uint8_t> blob = fw::encodePayload(payload);
    for (ipc::Value &value : args) {
        if (value.kind() != ipc::Value::Kind::Ref)
            continue;
        uint64_t id = value.asRef().objectId;
        const fw::StoredObject &obj = runtime.hostStore().get(id);
        osim::AddressSpace &host = runtime.hostProcess().space();
        size_t n = std::min(blob.size(), obj.byteLen);
        host.write(obj.addr, blob.data(), n);
        break;
    }
    (void)takesTensor(cve.api); // kind handled by prepareArgs
    return runtime.invoke(cve.api, std::move(args));
}

AttackOutcome
AttackDriver::launch(const AttackSpec &spec)
{
    const CveRecord &cve = cveById(spec.cve);
    osim::Kernel &kernel = runtime.kernel();
    AttackOutcome outcome;

    // Pre-attack observations.
    std::vector<uint8_t> before;
    uint64_t secret_checksum = 0;
    if (spec.targetAddr && spec.targetLen) {
        before.resize(spec.targetLen);
        kernel.process(spec.targetPid)
            .space()
            .read(spec.targetAddr, before.data(), spec.targetLen);
        secret_checksum =
            osim::fnv1a(before.data(), before.size());
    }
    size_t sends_before = kernel.network().sends().size();
    size_t denied_before =
        kernel.countEvents(osim::EventKind::SyscallDenied);
    core::RunStats stats_before = runtime.stats();
    size_t procs_before = kernel.processCount();

    // Build + deliver.
    fw::ExploitPayload payload = buildPayload(spec);
    const fw::ApiDescriptor &api = registry.require(cve.api);
    core::ApiResult result;
    if (api.declaredType == fw::ApiType::Loading)
        result = deliverViaFile(cve, payload);
    else
        result = deliverViaObject(cve, payload);
    outcome.delivered = true;

    // Classify the aftermath.
    outcome.hostCrashed = !runtime.hostAlive();
    outcome.executorCrashed = result.agentCrashed;
    if (spec.targetAddr && spec.targetLen) {
        std::vector<uint8_t> after(spec.targetLen);
        try {
            kernel.process(spec.targetPid)
                .space()
                .read(spec.targetAddr, after.data(),
                      spec.targetLen);
            outcome.dataCorrupted = after != before;
        } catch (const osim::MemFault &) {
            // The victim mapping vanished (the process holding it
            // was respawned after a contained crash): the original
            // bytes were never modified in place.
            outcome.dataCorrupted = false;
        }
    }
    for (size_t i = sends_before;
         i < kernel.network().sends().size(); ++i) {
        const osim::NetSendEvent &send = kernel.network().sends()[i];
        if (send.dest == spec.exfilDest &&
            send.checksum == secret_checksum &&
            send.length == spec.targetLen)
            outcome.dataLeaked = true;
    }
    outcome.blockedBySyscall =
        kernel.countEvents(osim::EventKind::SyscallDenied) >
        denied_before;
    core::RunStats stats_after = runtime.stats();
    outcome.blockedByMemFault =
        stats_after.memFaults > stats_before.memFaults ||
        (!result.ok &&
         result.error.find("mem fault") != std::string::npos);
    // Fork-bomb children (restart respawns reuse pids, so any extra
    // process is attacker-spawned).
    for (size_t extra = procs_before;
         extra < kernel.processCount(); ++extra)
        ++outcome.childrenSpawned;

    outcome.detail = result.ok ? "API returned normally"
                               : result.error;
    return outcome;
}

} // namespace freepart::attacks
