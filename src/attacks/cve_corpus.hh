/**
 * @file
 * The CVE corpus: the 18 real-world vulnerabilities of Table 5 used
 * in the evaluation, plus the case-study vulnerabilities (§5.4, A.7).
 * Each record carries the vulnerability class, the vulnerable API in
 * the MiniCV/MiniDNN registry, the API type (which agent process it
 * lands in), and the affected sample-program ids from Table 6.
 */

#ifndef FREEPART_ATTACKS_CVE_CORPUS_HH
#define FREEPART_ATTACKS_CVE_CORPUS_HH

#include <string>
#include <vector>

#include "fw/api_types.hh"
#include "fw/vuln.hh"

namespace freepart::attacks {

/** One vulnerability usable by the attack driver. */
struct CveRecord {
    std::string id;          //!< e.g. "CVE-2017-12597"
    std::string vulnClass;   //!< Table 5 "Vuln. Type" column
    fw::PayloadKind defaultPayload; //!< representative payload
    std::string api;         //!< vulnerable API (registry name)
    fw::ApiType apiType;     //!< DL / DP (Table 5 last column)
    std::vector<int> samples; //!< affected Table 6 sample ids
};

/** The 18 evaluation CVEs (Table 5 rows, expanded). */
const std::vector<CveRecord> &evaluationCves();

/** Case-study vulnerabilities: MComix3 leak (CVE-2020-10378), the
 *  motivating example's imshow DoS, and the StegoNet model trojan. */
const std::vector<CveRecord> &caseStudyCves();

/** Look up any corpus record by id; throws util::FatalError. */
const CveRecord &cveById(const std::string &id);

} // namespace freepart::attacks

#endif // FREEPART_ATTACKS_CVE_CORPUS_HH
