#include "fw/minicv_ops.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

namespace freepart::fw::ops {

namespace {

inline size_t
idx(uint32_t r, uint32_t c, uint32_t ch, uint32_t cols, uint32_t nch)
{
    return (static_cast<size_t>(r) * cols + c) * nch + ch;
}

inline uint8_t
clampU8(double v)
{
    return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

inline uint32_t
clampI(int v, int lo, int hi)
{
    return static_cast<uint32_t>(std::clamp(v, lo, hi));
}

/** Generic 3x3 min/max filter. */
template <bool TakeMax>
void
minmax3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
          uint32_t cols, uint32_t ch)
{
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            for (uint32_t k = 0; k < ch; ++k) {
                uint8_t best = TakeMax ? 0 : 255;
                for (int dr = -1; dr <= 1; ++dr) {
                    for (int dc = -1; dc <= 1; ++dc) {
                        uint32_t rr = clampI(static_cast<int>(r) + dr,
                                             0, static_cast<int>(rows) -
                                                    1);
                        uint32_t cc = clampI(static_cast<int>(c) + dc,
                                             0, static_cast<int>(cols) -
                                                    1);
                        uint8_t v = src[idx(rr, cc, k, cols, ch)];
                        if (TakeMax ? v > best : v < best)
                            best = v;
                    }
                }
                dst[idx(r, c, k, cols, ch)] = best;
            }
        }
    }
}

} // namespace

void
gaussianBlur3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
                uint32_t cols, uint32_t ch)
{
    // Horizontal pass into a temp, vertical pass into dst.
    std::vector<uint16_t> tmp(static_cast<size_t>(rows) * cols * ch);
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            uint32_t cl = c == 0 ? 0 : c - 1;
            uint32_t cr = c + 1 >= cols ? cols - 1 : c + 1;
            for (uint32_t k = 0; k < ch; ++k) {
                tmp[idx(r, c, k, cols, ch)] = static_cast<uint16_t>(
                    src[idx(r, cl, k, cols, ch)] +
                    2 * src[idx(r, c, k, cols, ch)] +
                    src[idx(r, cr, k, cols, ch)]);
            }
        }
    }
    for (uint32_t r = 0; r < rows; ++r) {
        uint32_t ru = r == 0 ? 0 : r - 1;
        uint32_t rd = r + 1 >= rows ? rows - 1 : r + 1;
        for (uint32_t c = 0; c < cols; ++c) {
            for (uint32_t k = 0; k < ch; ++k) {
                uint32_t sum = tmp[idx(ru, c, k, cols, ch)] +
                               2 * tmp[idx(r, c, k, cols, ch)] +
                               tmp[idx(rd, c, k, cols, ch)];
                dst[idx(r, c, k, cols, ch)] =
                    static_cast<uint8_t>((sum + 8) / 16);
            }
        }
    }
}

void
boxBlur(const uint8_t *src, uint8_t *dst, uint32_t rows,
        uint32_t cols, uint32_t ch, uint32_t k)
{
    int half = static_cast<int>(k / 2);
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            for (uint32_t kk = 0; kk < ch; ++kk) {
                uint32_t sum = 0;
                uint32_t count = 0;
                for (int dr = -half; dr <= half; ++dr) {
                    for (int dc = -half; dc <= half; ++dc) {
                        int rr = static_cast<int>(r) + dr;
                        int cc = static_cast<int>(c) + dc;
                        if (rr < 0 || cc < 0 ||
                            rr >= static_cast<int>(rows) ||
                            cc >= static_cast<int>(cols))
                            continue;
                        sum += src[idx(static_cast<uint32_t>(rr),
                                       static_cast<uint32_t>(cc), kk,
                                       cols, ch)];
                        ++count;
                    }
                }
                dst[idx(r, c, kk, cols, ch)] =
                    static_cast<uint8_t>(sum / count);
            }
        }
    }
}

void
erode3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
         uint32_t cols, uint32_t ch)
{
    minmax3x3<false>(src, dst, rows, cols, ch);
}

void
dilate3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
          uint32_t cols, uint32_t ch)
{
    minmax3x3<true>(src, dst, rows, cols, ch);
}

void
morphOpen(const uint8_t *src, uint8_t *dst, uint32_t rows,
          uint32_t cols, uint32_t ch)
{
    std::vector<uint8_t> tmp(static_cast<size_t>(rows) * cols * ch);
    erode3x3(src, tmp.data(), rows, cols, ch);
    dilate3x3(tmp.data(), dst, rows, cols, ch);
}

void
morphClose(const uint8_t *src, uint8_t *dst, uint32_t rows,
           uint32_t cols, uint32_t ch)
{
    std::vector<uint8_t> tmp(static_cast<size_t>(rows) * cols * ch);
    dilate3x3(src, tmp.data(), rows, cols, ch);
    erode3x3(tmp.data(), dst, rows, cols, ch);
}

void
toGray(const uint8_t *src, uint8_t *dst, uint32_t rows,
       uint32_t cols, uint32_t ch_in)
{
    size_t n = static_cast<size_t>(rows) * cols;
    for (size_t i = 0; i < n; ++i) {
        uint32_t sum = 0;
        for (uint32_t k = 0; k < ch_in; ++k)
            sum += src[i * ch_in + k];
        dst[i] = static_cast<uint8_t>(sum / ch_in);
    }
}

void
sobelMagnitude(const uint8_t *gray, uint8_t *dst, uint32_t rows,
               uint32_t cols)
{
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            if (r == 0 || c == 0 || r + 1 == rows || c + 1 == cols) {
                dst[idx(r, c, 0, cols, 1)] = 0;
                continue;
            }
            auto px = [&](int dr, int dc) {
                return static_cast<int>(
                    gray[idx(r + static_cast<uint32_t>(dr),
                             c + static_cast<uint32_t>(dc), 0, cols,
                             1)]);
            };
            int gx = -px(-1, -1) - 2 * px(0, -1) - px(1, -1) +
                     px(-1, 1) + 2 * px(0, 1) + px(1, 1);
            int gy = -px(-1, -1) - 2 * px(-1, 0) - px(-1, 1) +
                     px(1, -1) + 2 * px(1, 0) + px(1, 1);
            double mag = std::sqrt(static_cast<double>(gx) * gx +
                                   static_cast<double>(gy) * gy);
            dst[idx(r, c, 0, cols, 1)] = clampU8(mag);
        }
    }
}

void
cannyEdges(const uint8_t *gray, uint8_t *dst, uint32_t rows,
           uint32_t cols, uint8_t lo, uint8_t hi)
{
    size_t n = static_cast<size_t>(rows) * cols;
    std::vector<uint8_t> mag(n);
    sobelMagnitude(gray, mag.data(), rows, cols);
    // Strong = 255, weak = 128, rest = 0.
    for (size_t i = 0; i < n; ++i)
        dst[i] = mag[i] >= hi ? 255 : (mag[i] >= lo ? 128 : 0);
    // Promote weak edges adjacent to strong edges (single pass).
    for (uint32_t r = 1; r + 1 < rows; ++r) {
        for (uint32_t c = 1; c + 1 < cols; ++c) {
            size_t i = idx(r, c, 0, cols, 1);
            if (dst[i] != 128)
                continue;
            bool promoted = false;
            for (int dr = -1; dr <= 1 && !promoted; ++dr)
                for (int dc = -1; dc <= 1 && !promoted; ++dc)
                    if (dst[idx(r + static_cast<uint32_t>(dr),
                                c + static_cast<uint32_t>(dc), 0,
                                cols, 1)] == 255)
                        promoted = true;
            dst[i] = promoted ? 255 : 0;
        }
    }
    // Remaining weak edges on the border are suppressed.
    for (size_t i = 0; i < n; ++i)
        if (dst[i] == 128)
            dst[i] = 0;
}

void
resizeNearest(const uint8_t *src, uint32_t rows, uint32_t cols,
              uint32_t ch, uint8_t *dst, uint32_t drows,
              uint32_t dcols)
{
    for (uint32_t r = 0; r < drows; ++r) {
        uint32_t sr = static_cast<uint32_t>(
            static_cast<uint64_t>(r) * rows / drows);
        for (uint32_t c = 0; c < dcols; ++c) {
            uint32_t sc = static_cast<uint32_t>(
                static_cast<uint64_t>(c) * cols / dcols);
            for (uint32_t k = 0; k < ch; ++k)
                dst[idx(r, c, k, dcols, ch)] =
                    src[idx(sr, sc, k, cols, ch)];
        }
    }
}

void
resizeBilinear(const uint8_t *src, uint32_t rows, uint32_t cols,
               uint32_t ch, uint8_t *dst, uint32_t drows,
               uint32_t dcols)
{
    double rscale = drows > 1
                        ? static_cast<double>(rows - 1) / (drows - 1)
                        : 0.0;
    double cscale = dcols > 1
                        ? static_cast<double>(cols - 1) / (dcols - 1)
                        : 0.0;
    for (uint32_t r = 0; r < drows; ++r) {
        double fr = r * rscale;
        uint32_t r0 = static_cast<uint32_t>(fr);
        uint32_t r1 = std::min(r0 + 1, rows - 1);
        double wr = fr - r0;
        for (uint32_t c = 0; c < dcols; ++c) {
            double fc = c * cscale;
            uint32_t c0 = static_cast<uint32_t>(fc);
            uint32_t c1 = std::min(c0 + 1, cols - 1);
            double wc = fc - c0;
            for (uint32_t k = 0; k < ch; ++k) {
                double v =
                    (1 - wr) * (1 - wc) *
                        src[idx(r0, c0, k, cols, ch)] +
                    (1 - wr) * wc * src[idx(r0, c1, k, cols, ch)] +
                    wr * (1 - wc) * src[idx(r1, c0, k, cols, ch)] +
                    wr * wc * src[idx(r1, c1, k, cols, ch)];
                dst[idx(r, c, k, dcols, ch)] = clampU8(v);
            }
        }
    }
}

void
equalizeHist(const uint8_t *src, uint8_t *dst, uint32_t rows,
             uint32_t cols)
{
    size_t n = static_cast<size_t>(rows) * cols;
    uint32_t hist[256] = {};
    histogram256(src, n, hist);
    uint32_t cdf[256];
    uint32_t running = 0;
    for (int i = 0; i < 256; ++i) {
        running += hist[i];
        cdf[i] = running;
    }
    uint32_t cdf_min = 0;
    for (int i = 0; i < 256; ++i) {
        if (cdf[i]) {
            cdf_min = cdf[i];
            break;
        }
    }
    double denom = static_cast<double>(n - cdf_min);
    for (size_t i = 0; i < n; ++i) {
        if (denom <= 0) {
            dst[i] = src[i];
            continue;
        }
        dst[i] = clampU8(255.0 * (cdf[src[i]] - cdf_min) / denom);
    }
}

void
threshold(const uint8_t *src, uint8_t *dst, size_t n, uint8_t thresh,
          uint8_t maxval)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = src[i] > thresh ? maxval : 0;
}

void
warpPerspective(const uint8_t *src, uint8_t *dst, uint32_t rows,
                uint32_t cols, uint32_t ch, const double h[9])
{
    // Invert H (3x3) for inverse mapping.
    double det =
        h[0] * (h[4] * h[8] - h[5] * h[7]) -
        h[1] * (h[3] * h[8] - h[5] * h[6]) +
        h[2] * (h[3] * h[7] - h[4] * h[6]);
    if (std::abs(det) < 1e-12) {
        std::memset(dst, 0, static_cast<size_t>(rows) * cols * ch);
        return;
    }
    double inv[9] = {
        (h[4] * h[8] - h[5] * h[7]) / det,
        (h[2] * h[7] - h[1] * h[8]) / det,
        (h[1] * h[5] - h[2] * h[4]) / det,
        (h[5] * h[6] - h[3] * h[8]) / det,
        (h[0] * h[8] - h[2] * h[6]) / det,
        (h[2] * h[3] - h[0] * h[5]) / det,
        (h[3] * h[7] - h[4] * h[6]) / det,
        (h[1] * h[6] - h[0] * h[7]) / det,
        (h[0] * h[4] - h[1] * h[3]) / det,
    };
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            double x = static_cast<double>(c);
            double y = static_cast<double>(r);
            double w = inv[6] * x + inv[7] * y + inv[8];
            double sx = (inv[0] * x + inv[1] * y + inv[2]) / w;
            double sy = (inv[3] * x + inv[4] * y + inv[5]) / w;
            int sc = static_cast<int>(std::lround(sx));
            int sr = static_cast<int>(std::lround(sy));
            for (uint32_t k = 0; k < ch; ++k) {
                uint8_t v = 0;
                if (sr >= 0 && sc >= 0 &&
                    sr < static_cast<int>(rows) &&
                    sc < static_cast<int>(cols))
                    v = src[idx(static_cast<uint32_t>(sr),
                                static_cast<uint32_t>(sc), k, cols,
                                ch)];
                dst[idx(r, c, k, cols, ch)] = v;
            }
        }
    }
}

void
drawRect(uint8_t *buf, uint32_t rows, uint32_t cols, uint32_t ch,
         const Box &box, uint8_t color)
{
    uint32_t r0 = std::min(box[0], rows ? rows - 1 : 0);
    uint32_t c0 = std::min(box[1], cols ? cols - 1 : 0);
    uint32_t r1 = std::min(box[0] + box[2], rows ? rows - 1 : 0);
    uint32_t c1 = std::min(box[1] + box[3], cols ? cols - 1 : 0);
    for (uint32_t c = c0; c <= c1; ++c) {
        for (uint32_t k = 0; k < ch; ++k) {
            buf[idx(r0, c, k, cols, ch)] = color;
            buf[idx(r1, c, k, cols, ch)] = color;
        }
    }
    for (uint32_t r = r0; r <= r1; ++r) {
        for (uint32_t k = 0; k < ch; ++k) {
            buf[idx(r, c0, k, cols, ch)] = color;
            buf[idx(r, c1, k, cols, ch)] = color;
        }
    }
}

namespace {

/**
 * Minimal 5x7 font: each glyph is 5 column bytes, 7 bits used. Only
 * the characters the examples draw are defined; everything else
 * renders as a filled box.
 */
struct Glyph {
    char ch;
    uint8_t cols[5];
};

const Glyph kFont[] = {
    {'0', {0x3e, 0x51, 0x49, 0x45, 0x3e}},
    {'1', {0x00, 0x42, 0x7f, 0x40, 0x00}},
    {'2', {0x42, 0x61, 0x51, 0x49, 0x46}},
    {'3', {0x21, 0x41, 0x45, 0x4b, 0x31}},
    {'4', {0x18, 0x14, 0x12, 0x7f, 0x10}},
    {'5', {0x27, 0x45, 0x45, 0x45, 0x39}},
    {'6', {0x3c, 0x4a, 0x49, 0x49, 0x30}},
    {'7', {0x01, 0x71, 0x09, 0x05, 0x03}},
    {'8', {0x36, 0x49, 0x49, 0x49, 0x36}},
    {'9', {0x06, 0x49, 0x49, 0x29, 0x1e}},
    {'A', {0x7e, 0x11, 0x11, 0x11, 0x7e}},
    {'B', {0x7f, 0x49, 0x49, 0x49, 0x36}},
    {'C', {0x3e, 0x41, 0x41, 0x41, 0x22}},
    {'D', {0x7f, 0x41, 0x41, 0x22, 0x1c}},
    {'E', {0x7f, 0x49, 0x49, 0x49, 0x41}},
    {'F', {0x7f, 0x09, 0x09, 0x09, 0x01}},
    {'O', {0x3e, 0x41, 0x41, 0x41, 0x3e}},
    {'K', {0x7f, 0x08, 0x14, 0x22, 0x41}},
    {'S', {0x46, 0x49, 0x49, 0x49, 0x31}},
    {'%', {0x23, 0x13, 0x08, 0x64, 0x62}},
    {'.', {0x00, 0x60, 0x60, 0x00, 0x00}},
    {':', {0x00, 0x36, 0x36, 0x00, 0x00}},
    {' ', {0x00, 0x00, 0x00, 0x00, 0x00}},
    {'-', {0x08, 0x08, 0x08, 0x08, 0x08}},
};

const uint8_t *
glyphFor(char ch)
{
    for (const Glyph &g : kFont)
        if (g.ch == ch)
            return g.cols;
    return nullptr;
}

} // namespace

void
drawText(uint8_t *buf, uint32_t rows, uint32_t cols, uint32_t ch,
         uint32_t r, uint32_t c, const std::string &text,
         uint8_t color)
{
    uint32_t x = c;
    for (char chr : text) {
        const uint8_t *glyph = glyphFor(chr);
        for (uint32_t gc = 0; gc < 5; ++gc) {
            uint8_t bits = glyph ? glyph[gc] : 0x7f;
            for (uint32_t gr = 0; gr < 7; ++gr) {
                if (!(bits & (1u << gr)))
                    continue;
                uint32_t rr = r + gr;
                uint32_t cc = x + gc;
                if (rr >= rows || cc >= cols)
                    continue;
                for (uint32_t k = 0; k < ch; ++k)
                    buf[idx(rr, cc, k, cols, ch)] = color;
            }
        }
        x += 6;
    }
}

uint32_t
connectedComponents(const uint8_t *bin, uint32_t rows, uint32_t cols,
                    std::vector<Box> *bboxes)
{
    size_t n = static_cast<size_t>(rows) * cols;
    std::vector<int32_t> label(n, -1);
    uint32_t next = 0;
    std::vector<size_t> stack;
    if (bboxes)
        bboxes->clear();
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            size_t i = static_cast<size_t>(r) * cols + c;
            if (!bin[i] || label[i] >= 0)
                continue;
            uint32_t id = next++;
            uint32_t rmin = r, rmax = r, cmin = c, cmax = c;
            stack.clear();
            stack.push_back(i);
            label[i] = static_cast<int32_t>(id);
            while (!stack.empty()) {
                size_t cur = stack.back();
                stack.pop_back();
                uint32_t cr = static_cast<uint32_t>(cur / cols);
                uint32_t cc = static_cast<uint32_t>(cur % cols);
                rmin = std::min(rmin, cr);
                rmax = std::max(rmax, cr);
                cmin = std::min(cmin, cc);
                cmax = std::max(cmax, cc);
                const int dr[4] = {-1, 1, 0, 0};
                const int dc[4] = {0, 0, -1, 1};
                for (int d = 0; d < 4; ++d) {
                    int nr = static_cast<int>(cr) + dr[d];
                    int nc = static_cast<int>(cc) + dc[d];
                    if (nr < 0 || nc < 0 ||
                        nr >= static_cast<int>(rows) ||
                        nc >= static_cast<int>(cols))
                        continue;
                    size_t ni = static_cast<size_t>(nr) * cols +
                                static_cast<size_t>(nc);
                    if (bin[ni] && label[ni] < 0) {
                        label[ni] = static_cast<int32_t>(id);
                        stack.push_back(ni);
                    }
                }
            }
            if (bboxes)
                bboxes->push_back(
                    {rmin, cmin, rmax - rmin, cmax - cmin});
        }
    }
    return next;
}

uint64_t
templateMatchBest(const uint8_t *img, uint32_t rows, uint32_t cols,
                  const uint8_t *tmpl, uint32_t trows, uint32_t tcols,
                  uint32_t &best_r, uint32_t &best_c)
{
    best_r = 0;
    best_c = 0;
    if (trows > rows || tcols > cols)
        return UINT64_MAX;
    uint64_t best = UINT64_MAX;
    for (uint32_t r = 0; r + trows <= rows; ++r) {
        for (uint32_t c = 0; c + tcols <= cols; ++c) {
            uint64_t ssd = 0;
            for (uint32_t tr = 0; tr < trows && ssd < best; ++tr) {
                for (uint32_t tc = 0; tc < tcols; ++tc) {
                    int d = static_cast<int>(
                                img[idx(r + tr, c + tc, 0, cols, 1)]) -
                            static_cast<int>(
                                tmpl[idx(tr, tc, 0, tcols, 1)]);
                    ssd += static_cast<uint64_t>(d * d);
                }
            }
            if (ssd < best) {
                best = ssd;
                best_r = r;
                best_c = c;
            }
        }
    }
    return best;
}

void
flipHorizontal(const uint8_t *src, uint8_t *dst, uint32_t rows,
               uint32_t cols, uint32_t ch)
{
    for (uint32_t r = 0; r < rows; ++r)
        for (uint32_t c = 0; c < cols; ++c)
            for (uint32_t k = 0; k < ch; ++k)
                dst[idx(r, c, k, cols, ch)] =
                    src[idx(r, cols - 1 - c, k, cols, ch)];
}

void
addWeighted(const uint8_t *a, const uint8_t *b, uint8_t *dst,
            size_t n, double alpha, double beta)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = clampU8(alpha * a[i] + beta * b[i]);
}

void
normalizeMinMax(const uint8_t *src, uint8_t *dst, size_t n)
{
    if (!n)
        return;
    uint8_t lo = 255, hi = 0;
    for (size_t i = 0; i < n; ++i) {
        lo = std::min(lo, src[i]);
        hi = std::max(hi, src[i]);
    }
    if (hi == lo) {
        std::memset(dst, 0, n);
        return;
    }
    double scale = 255.0 / (hi - lo);
    for (size_t i = 0; i < n; ++i)
        dst[i] = clampU8((src[i] - lo) * scale);
}

void
histogram256(const uint8_t *src, size_t n, uint32_t out[256])
{
    std::memset(out, 0, 256 * sizeof(uint32_t));
    for (size_t i = 0; i < n; ++i)
        ++out[src[i]];
}

void
absdiff(const uint8_t *a, const uint8_t *b, uint8_t *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<uint8_t>(
            a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
}

void
invert(const uint8_t *src, uint8_t *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<uint8_t>(255 - src[i]);
}

void
convFilter3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
              uint32_t cols, uint32_t ch, const float k[9])
{
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            for (uint32_t kk = 0; kk < ch; ++kk) {
                double sum = 0;
                for (int dr = -1; dr <= 1; ++dr) {
                    for (int dc = -1; dc <= 1; ++dc) {
                        uint32_t rr = clampI(static_cast<int>(r) + dr,
                                             0,
                                             static_cast<int>(rows) -
                                                 1);
                        uint32_t cc = clampI(static_cast<int>(c) + dc,
                                             0,
                                             static_cast<int>(cols) -
                                                 1);
                        sum += k[(dr + 1) * 3 + (dc + 1)] *
                               src[idx(rr, cc, kk, cols, ch)];
                    }
                }
                dst[idx(r, c, kk, cols, ch)] = clampU8(sum);
            }
        }
    }
}

} // namespace freepart::fw::ops
