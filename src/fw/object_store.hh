/**
 * @file
 * Per-process table of framework data objects (Mats, Tensors, raw
 * byte regions). Object ids are globally unique across a runtime so a
 * wire ObjectRef (partition, id) names exactly one object — the
 * bookkeeping behind Lazy Data Copy (§4.3.2), matching the paper's
 * map_set()/map_get() in the agent request handlers (Fig. 10-(c)).
 */

#ifndef FREEPART_FW_OBJECT_STORE_HH
#define FREEPART_FW_OBJECT_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fw/mat.hh"
#include "fw/tensor.hh"
#include "osim/kernel.hh"

namespace freepart::fw {

// ---- Object-id namespacing ------------------------------------------
//
// Object ids are only unique within one id counter. When several
// runtimes coexist (a shard cluster, or simply two runtimes in one
// process), each counter must mint from a disjoint namespace or two
// runtimes would hand out identical ids and cross-runtime references
// (LDC migration, replica restore) would silently alias. The high
// bits of every id carry the namespace ("shard id"); the low bits are
// the per-namespace running index.

/** High bits of an object id reserved for the shard namespace. */
constexpr uint32_t kObjectIdShardBits = 16;

/** Bit position of the shard namespace within an object id. */
constexpr uint32_t kObjectIdShardShift = 64 - kObjectIdShardBits;

/** First id of a shard's namespace (the value an id counter must be
 *  initialized to so every minted id carries the stamp). */
constexpr uint64_t
objectIdNamespace(uint32_t shard_id)
{
    return static_cast<uint64_t>(shard_id &
                                 ((1u << kObjectIdShardBits) - 1))
           << kObjectIdShardShift;
}

/** Shard namespace an object id was minted in. */
constexpr uint32_t
shardOfObjectId(uint64_t object_id)
{
    return static_cast<uint32_t>(object_id >> kObjectIdShardShift);
}

/** Per-namespace running index of an object id. */
constexpr uint64_t
objectIdIndex(uint64_t object_id)
{
    return object_id & ((1ull << kObjectIdShardShift) - 1);
}

/** Kinds of stored framework objects. */
enum class ObjKind : uint8_t { Mat, Tensor, Bytes };

/** One entry in an ObjectStore. */
struct StoredObject {
    ObjKind kind = ObjKind::Bytes;
    MatDesc mat;        //!< valid when kind == Mat
    TensorDesc tensor;  //!< valid when kind == Tensor
    osim::Addr addr = osim::kNullAddr; //!< buffer base (all kinds)
    size_t byteLen = 0; //!< buffer length (all kinds)
    std::string label;  //!< debug label
    uint64_t dirtyEpoch = 0; //!< write epoch of the last mutation
};

/**
 * Object table bound to one process's address space. The runtime
 * creates one store per partition (and one for the host) and shares a
 * single id counter across them.
 */
class ObjectStore
{
  public:
    /**
     * @param kernel      Owning kernel.
     * @param pid         Process whose space holds the objects.
     * @param id_counter  Shared monotonically increasing id source.
     */
    ObjectStore(osim::Kernel &kernel, osim::Pid pid,
                uint64_t *id_counter);

    ~ObjectStore();

    ObjectStore(const ObjectStore &) = delete;
    ObjectStore &operator=(const ObjectStore &) = delete;

    osim::Pid pid() const { return pid_; }

    /** Register a materialized Mat; returns its new object id. */
    uint64_t putMat(const MatDesc &desc, const std::string &label = "");

    /** Register a materialized Tensor. */
    uint64_t putTensor(const TensorDesc &desc,
                       const std::string &label = "");

    /** Register a raw byte region. */
    uint64_t putBytes(osim::Addr addr, size_t len,
                      const std::string &label = "");

    bool has(uint64_t id) const { return objects.count(id) > 0; }

    /** Look up an object; panics on unknown id. */
    const StoredObject &get(uint64_t id) const;

    /** Fetch a Mat descriptor; panics if id is not a Mat. */
    const MatDesc &mat(uint64_t id) const;

    /** Fetch a Tensor descriptor; panics if id is not a Tensor. */
    const TensorDesc &tensor(uint64_t id) const;

    /** Drop an object (its memory stays allocated until unmapped). */
    void erase(uint64_t id);

    /** Serialize an object's header+data (for eager RPC transfer). */
    std::vector<uint8_t> serialize(uint64_t id) const;

    /**
     * Materialize serialized bytes produced by serialize() into this
     * store's process, preserving the original object id so refs keep
     * resolving after a cross-process move.
     */
    void materialize(uint64_t id, ObjKind kind,
                     const std::vector<uint8_t> &bytes,
                     const std::string &label = "");

    /** Number of live objects. */
    size_t count() const { return objects.size(); }

    /** All live object ids, ascending. */
    std::vector<uint64_t> ids() const;

    /** Remove everything (used on agent respawn). The write-epoch
     *  counter deliberately survives — epochs are monotonic across
     *  incarnations so stale checkpoint watermarks stay comparable. */
    void
    clear()
    {
        objects.clear();
        byAddr.clear();
    }

    // ---- Dirty-epoch tracking (incremental checkpoints) -----------

    /**
     * Current write epoch: a counter bumped on every observed
     * mutating access to this process's memory. An object whose
     * dirtyEpoch is <= a checkpoint's watermark epoch has not changed
     * since that checkpoint and can be skipped by an incremental
     * snapshot.
     */
    uint64_t writeEpoch() const { return writeEpoch_; }

    /**
     * (Re-)install this store's write observer on the owning
     * process's address space. Must be called again after a respawn:
     * the fresh incarnation gets a fresh AddressSpace and would
     * otherwise mutate unobserved.
     */
    void bindObserver();

  private:
    /** Write-observer callback: stamp the touched object. */
    void noteWrite(osim::Addr addr, size_t len);

    /** Stamp an object as dirtied right now. */
    void markDirty(StoredObject &obj) { obj.dirtyEpoch = ++writeEpoch_; }

    osim::Kernel &kernel;
    osim::Pid pid_;
    uint64_t *idCounter;
    std::map<uint64_t, StoredObject> objects;
    /** buffer base address -> object id, for observer lookups. */
    std::map<osim::Addr, uint64_t> byAddr;
    uint64_t writeEpoch_ = 0;
};

} // namespace freepart::fw

#endif // FREEPART_FW_OBJECT_STORE_HH
