#include "fw/tensor.hh"

#include <cstring>

#include "util/logging.hh"

namespace freepart::fw {

std::vector<uint8_t>
tensorToBytes(const osim::AddressSpace &space, const TensorDesc &desc)
{
    uint32_t rank = static_cast<uint32_t>(desc.shape.size());
    std::vector<uint8_t> out(sizeof(uint32_t) * (1 + rank) +
                             desc.byteLen());
    std::memcpy(out.data(), &rank, sizeof(uint32_t));
    std::memcpy(out.data() + sizeof(uint32_t), desc.shape.data(),
                rank * sizeof(uint32_t));
    space.read(desc.addr, out.data() + sizeof(uint32_t) * (1 + rank),
               desc.byteLen());
    return out;
}

TensorDesc
tensorFromBytes(osim::AddressSpace &space,
                const std::vector<uint8_t> &bytes,
                const std::string &label)
{
    if (bytes.size() < sizeof(uint32_t))
        util::fatal("tensorFromBytes: truncated header");
    uint32_t rank = 0;
    std::memcpy(&rank, bytes.data(), sizeof(uint32_t));
    if (rank > 8)
        util::fatal("tensorFromBytes: implausible rank %u", rank);
    if (bytes.size() < sizeof(uint32_t) * (1 + rank))
        util::fatal("tensorFromBytes: truncated shape");
    TensorDesc desc;
    desc.shape.resize(rank);
    std::memcpy(desc.shape.data(), bytes.data() + sizeof(uint32_t),
                rank * sizeof(uint32_t));
    size_t expect = sizeof(uint32_t) * (1 + rank) + desc.byteLen();
    if (bytes.size() < expect)
        util::fatal("tensorFromBytes: truncated data (%zu < %zu)",
                    bytes.size(), expect);
    desc.addr = space.alloc(desc.byteLen() ? desc.byteLen() : 1,
                            osim::PermRW, label);
    space.write(desc.addr,
                bytes.data() + sizeof(uint32_t) * (1 + rank),
                desc.byteLen());
    return desc;
}

std::vector<float>
tensorRead(const osim::AddressSpace &space, const TensorDesc &desc)
{
    std::vector<float> out(desc.elements());
    space.read(desc.addr, out.data(), desc.byteLen());
    return out;
}

void
tensorWrite(osim::AddressSpace &space, const TensorDesc &desc,
            const std::vector<float> &values)
{
    if (values.size() != desc.elements())
        util::panic("tensorWrite: %zu values for %zu elements",
                    values.size(), desc.elements());
    space.write(desc.addr, values.data(), desc.byteLen());
}

} // namespace freepart::fw
