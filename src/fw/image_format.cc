#include "fw/image_format.hh"

#include <cstring>

#include "util/logging.hh"

namespace freepart::fw {

namespace {

constexpr uint32_t kImageMagic = 0x4d495046; // "FPIM"
constexpr size_t kHeaderBytes = 4 * sizeof(uint32_t);

} // namespace

std::vector<uint8_t>
encodeImageFile(uint32_t rows, uint32_t cols, uint32_t channels,
                const std::vector<uint8_t> &pixels,
                const std::optional<ExploitPayload> &payload)
{
    size_t expect = static_cast<size_t>(rows) * cols * channels;
    if (pixels.size() != expect)
        util::fatal("encodeImageFile: %zu pixels for %ux%ux%u",
                    pixels.size(), rows, cols, channels);
    std::vector<uint8_t> out;
    out.reserve(kHeaderBytes + pixels.size() + 128);
    out.resize(kHeaderBytes);
    std::memcpy(out.data(), &kImageMagic, 4);
    std::memcpy(out.data() + 4, &rows, 4);
    std::memcpy(out.data() + 8, &cols, 4);
    std::memcpy(out.data() + 12, &channels, 4);
    out.insert(out.end(), pixels.begin(), pixels.end());
    if (payload) {
        std::vector<uint8_t> blob = encodePayload(*payload);
        out.insert(out.end(), blob.begin(), blob.end());
    }
    return out;
}

DecodedImage
decodeImageFile(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < kHeaderBytes)
        util::fatal("decodeImageFile: truncated header");
    uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic != kImageMagic)
        util::fatal("decodeImageFile: bad magic 0x%08x", magic);
    DecodedImage img;
    std::memcpy(&img.rows, bytes.data() + 4, 4);
    std::memcpy(&img.cols, bytes.data() + 8, 4);
    std::memcpy(&img.channels, bytes.data() + 12, 4);
    size_t pixel_len =
        static_cast<size_t>(img.rows) * img.cols * img.channels;
    if (bytes.size() < kHeaderBytes + pixel_len)
        util::fatal("decodeImageFile: truncated pixels (%zu < %zu)",
                    bytes.size() - kHeaderBytes, pixel_len);
    img.pixels.assign(bytes.begin() +
                          static_cast<ptrdiff_t>(kHeaderBytes),
                      bytes.begin() + static_cast<ptrdiff_t>(
                                          kHeaderBytes + pixel_len));
    img.trailer.assign(
        bytes.begin() + static_cast<ptrdiff_t>(kHeaderBytes +
                                               pixel_len),
        bytes.end());
    return img;
}

bool
looksLikeImageFile(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 4)
        return false;
    uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    return magic == kImageMagic;
}

std::vector<uint8_t>
synthPixels(uint32_t rows, uint32_t cols, uint32_t channels,
            uint64_t seed)
{
    std::vector<uint8_t> out(static_cast<size_t>(rows) * cols *
                             channels);
    size_t i = 0;
    for (uint32_t r = 0; r < rows; ++r)
        for (uint32_t c = 0; c < cols; ++c)
            for (uint32_t ch = 0; ch < channels; ++ch)
                out[i++] = static_cast<uint8_t>(
                    (r * 5 + c * 3 + ch * 17 + seed * 13) & 0xff);
    return out;
}

} // namespace freepart::fw
