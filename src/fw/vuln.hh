/**
 * @file
 * Exploit payload model. Real CVE PoCs cannot run in this substrate,
 * so crafted inputs carry a serialized payload that, when parsed by a
 * *vulnerable* API, executes with that API's privileges inside its
 * process — exactly the attacker capability of the threat model (§2).
 * Payload classes mirror Table 5's vulnerability types:
 *
 *  - OobWrite    : unauthorized memory write (CVE-2017-12597 class)
 *  - Exfiltrate  : unauthorized memory read + network send (§5.3)
 *  - Dos         : crash the executing process (CVE-2019-14491 class)
 *  - CodeRewrite : mprotect + overwrite (code-manipulation attack)
 *  - ForkBomb    : StegoNet-style resource exhaustion (A.7)
 *
 * Whether a payload achieves anything is decided entirely by the
 * enforcement points it hits: page permissions, the process boundary,
 * and the seccomp filter.
 */

#ifndef FREEPART_FW_VULN_HH
#define FREEPART_FW_VULN_HH

#include <optional>
#include <string>
#include <vector>

#include "fw/exec_context.hh"
#include "osim/types.hh"

namespace freepart::fw {

/** Classes of exploit payloads (mirroring Table 5). */
enum class PayloadKind : uint8_t {
    OobWrite = 0,
    Exfiltrate,
    Dos,
    CodeRewrite,
    ForkBomb,
};

/** Name of a payload kind ("oob-write", ...). */
const char *payloadKindName(PayloadKind kind);

/** A concrete exploit payload embedded in a crafted input. */
struct ExploitPayload {
    PayloadKind kind = PayloadKind::Dos;
    std::string cve;              //!< CVE this exploit targets

    // OobWrite / CodeRewrite
    osim::Addr targetAddr = 0;    //!< address to corrupt
    std::vector<uint8_t> writeData; //!< bytes to write

    // Exfiltrate
    osim::Addr leakAddr = 0;      //!< address to leak
    uint32_t leakLen = 0;         //!< bytes to leak
    std::string dest = "evil.example"; //!< exfiltration destination

    // ForkBomb
    uint32_t forkCount = 8;
};

/** Serialize a payload (embedded into crafted input files). */
std::vector<uint8_t> encodePayload(const ExploitPayload &payload);

/** Parse a payload; nullopt if bytes are not a payload blob. */
std::optional<ExploitPayload>
decodePayload(const std::vector<uint8_t> &bytes);

/**
 * Execute a payload with the privileges of the current context's
 * process. Faults and syscall denials propagate as osim exceptions;
 * callers (the runtime's RPC dispatch) convert them into contained
 * agent crashes.
 */
void executePayload(ExecContext &ctx, const ExploitPayload &payload);

/**
 * The vulnerable-API entry point: if `input` embeds a payload whose
 * CVE is in `api_cves` (i.e. this API is actually vulnerable to it),
 * run the payload. Called by vulnerable API bodies while parsing
 * untrusted input.
 */
void maybeTriggerExploit(ExecContext &ctx,
                         const std::vector<std::string> &api_cves,
                         const std::vector<uint8_t> &input);

} // namespace freepart::fw

#endif // FREEPART_FW_VULN_HH
