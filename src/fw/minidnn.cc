/**
 * @file
 * MiniDNN: the Caffe / PyTorch / TensorFlow / NumPy analogue. Real
 * (naive) tensor kernels — convolution, pooling, activations, fully
 * connected layers, SGD steps — plus model (de)serialization, with
 * the same registry metadata scheme as MiniCV. The TensorFlow
 * `utils.get_file` body implements the download->file->memory pattern
 * whose IR the analysis module reduces via the "memory copy via
 * files" rule (§4.2.1).
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fw/api_registry.hh"
#include "fw/vuln.hh"
#include "util/logging.hh"

namespace freepart::fw {

namespace {

using ipc::Value;
using ipc::ValueList;
using osim::Syscall;

// ---- Tensor compute kernels -----------------------------------------

/** conv2d: input {C,H,W}, weight {O,C,K,K} -> output {O,H-K+1,W-K+1}. */
std::vector<float>
conv2d(const std::vector<float> &in, const std::vector<uint32_t> &ishp,
       const std::vector<float> &w, const std::vector<uint32_t> &wshp,
       std::vector<uint32_t> &oshp)
{
    if (ishp.size() != 3 || wshp.size() != 4 || ishp[0] != wshp[1])
        util::fatal("conv2d: bad shapes");
    uint32_t c = ishp[0], h = ishp[1], wd = ishp[2];
    uint32_t o = wshp[0], k = wshp[2];
    if (k > h || k > wd)
        util::fatal("conv2d: kernel larger than input");
    uint32_t oh = h - k + 1, ow = wd - k + 1;
    oshp = {o, oh, ow};
    std::vector<float> out(static_cast<size_t>(o) * oh * ow, 0.f);
    for (uint32_t oc = 0; oc < o; ++oc)
        for (uint32_t r = 0; r < oh; ++r)
            for (uint32_t cc = 0; cc < ow; ++cc) {
                float acc = 0.f;
                for (uint32_t ic = 0; ic < c; ++ic)
                    for (uint32_t kr = 0; kr < k; ++kr)
                        for (uint32_t kc = 0; kc < k; ++kc)
                            acc += in[(static_cast<size_t>(ic) * h +
                                       r + kr) *
                                          wd +
                                      cc + kc] *
                                   w[((static_cast<size_t>(oc) * c +
                                       ic) *
                                          k +
                                      kr) *
                                         k +
                                     kc];
                out[(static_cast<size_t>(oc) * oh + r) * ow + cc] =
                    acc;
            }
    return out;
}

/** 2x2 stride-2 pooling; TakeMax selects max vs mean. */
template <bool TakeMax>
std::vector<float>
pool2x2(const std::vector<float> &in, const std::vector<uint32_t> &ishp,
        std::vector<uint32_t> &oshp)
{
    if (ishp.size() != 3)
        util::fatal("pool2x2: expects rank-3 input");
    uint32_t c = ishp[0], h = ishp[1], w = ishp[2];
    uint32_t oh = h / 2, ow = w / 2;
    oshp = {c, oh, ow};
    std::vector<float> out(static_cast<size_t>(c) * oh * ow);
    for (uint32_t ic = 0; ic < c; ++ic)
        for (uint32_t r = 0; r < oh; ++r)
            for (uint32_t cc = 0; cc < ow; ++cc) {
                float v[4] = {
                    in[(static_cast<size_t>(ic) * h + 2 * r) * w +
                       2 * cc],
                    in[(static_cast<size_t>(ic) * h + 2 * r) * w +
                       2 * cc + 1],
                    in[(static_cast<size_t>(ic) * h + 2 * r + 1) * w +
                       2 * cc],
                    in[(static_cast<size_t>(ic) * h + 2 * r + 1) * w +
                       2 * cc + 1]};
                float res;
                if (TakeMax)
                    res = std::max(std::max(v[0], v[1]),
                                   std::max(v[2], v[3]));
                else
                    res = (v[0] + v[1] + v[2] + v[3]) / 4.f;
                out[(static_cast<size_t>(ic) * oh + r) * ow + cc] =
                    res;
            }
    return out;
}

/** Fully connected: weight {O,I} x input {I} -> {O}. */
std::vector<float>
fullyConnected(const std::vector<float> &in,
               const std::vector<float> &w,
               const std::vector<uint32_t> &wshp)
{
    if (wshp.size() != 2 || wshp[1] != in.size())
        util::fatal("fc: bad shapes (%zu inputs)", in.size());
    std::vector<float> out(wshp[0], 0.f);
    for (uint32_t o = 0; o < wshp[0]; ++o)
        for (uint32_t i = 0; i < wshp[1]; ++i)
            out[o] += w[static_cast<size_t>(o) * wshp[1] + i] * in[i];
    return out;
}

void
softmaxInPlace(std::vector<float> &v)
{
    if (v.empty())
        return;
    float mx = *std::max_element(v.begin(), v.end());
    float sum = 0.f;
    for (float &x : v) {
        x = std::exp(x - mx);
        sum += x;
    }
    for (float &x : v)
        x /= sum;
}

// ---- Body helpers -----------------------------------------------------

const TensorDesc &
getTensor(ExecContext &ctx, const ValueList &args, size_t i)
{
    return ctx.store().tensor(argObjectId(args, i));
}

ValueList
retTensor(ExecContext &ctx, const TensorDesc &t,
          const std::string &label)
{
    uint64_t id = ctx.store().putTensor(t, label);
    return {refValue(ctx.partition(), id)};
}

TensorDesc
makeTensor(ExecContext &ctx, const std::vector<uint32_t> &shape,
           const std::vector<float> &values, const std::string &label)
{
    TensorDesc t = ctx.allocTensor(shape, label);
    tensorWrite(ctx.space(), t, values);
    return t;
}

/** Scan leading tensor bytes for an embedded payload (DP attacks). */
void
checkTensorExploit(ExecContext &ctx, const ApiDescriptor &desc,
                   const TensorDesc &t)
{
    if (desc.cves.empty() || t.byteLen() == 0)
        return;
    size_t probe = std::min<size_t>(t.byteLen(), 512);
    std::vector<uint8_t> head(probe);
    ctx.space().read(t.addr, head.data(), probe);
    maybeTriggerExploit(ctx, desc.cves, head);
}

/** Read a whole file via syscalls (duplicated from minicv on
 *  purpose: each framework ships its own loader). */
std::vector<uint8_t>
dnnLoadFile(ExecContext &ctx, const std::string &path)
{
    osim::Kernel &kernel = ctx.kernel();
    osim::Process &proc = ctx.proc();
    osim::Fd fd = kernel.sysOpen(proc, path, false);
    size_t size = kernel.sysFstat(proc, fd);
    kernel.sysBrk(proc);
    osim::Addr staging = ctx.space().alloc(size ? size : 1,
                                           osim::PermRW, "staging");
    size_t got = 0;
    while (got < size) {
        size_t n = kernel.sysRead(
            proc, fd, staging + got,
            std::min<size_t>(size - got, 1 << 16));
        if (n == 0)
            break;
        got += n;
    }
    kernel.sysClose(proc, fd);
    std::vector<uint8_t> bytes(got);
    ctx.space().read(staging, bytes.data(), got);
    ctx.space().unmap(staging);
    return bytes;
}

void
dnnStoreFile(ExecContext &ctx, const std::string &path,
             const std::vector<uint8_t> &bytes)
{
    osim::Kernel &kernel = ctx.kernel();
    osim::Process &proc = ctx.proc();
    osim::Fd fd = kernel.sysOpen(proc, path, true);
    osim::Addr staging = ctx.space().alloc(
        bytes.size() ? bytes.size() : 1, osim::PermRW, "staging");
    ctx.space().write(staging, bytes.data(), bytes.size());
    kernel.sysWrite(proc, fd, staging, bytes.size());
    kernel.sysClose(proc, fd);
    ctx.space().unmap(staging);
}

/**
 * Model-file decode: header-sized tensor followed by an optional
 * trailing payload (StegoNet-style model trojans live there, A.7).
 */
TensorDesc
decodeModelFile(ExecContext &ctx, const ApiDescriptor &desc,
                const std::vector<uint8_t> &bytes,
                const std::string &label)
{
    if (bytes.size() < sizeof(uint32_t))
        util::fatal("model file truncated");
    uint32_t rank = 0;
    std::memcpy(&rank, bytes.data(), sizeof(uint32_t));
    if (rank > 8)
        util::fatal("model file: implausible rank %u", rank);
    std::vector<uint32_t> shape(rank);
    std::memcpy(shape.data(), bytes.data() + sizeof(uint32_t),
                rank * sizeof(uint32_t));
    size_t elems = 1;
    for (uint32_t d : shape)
        elems *= d;
    size_t body = sizeof(uint32_t) * (1 + rank) +
                  (rank ? elems : 0) * sizeof(float);
    if (bytes.size() < body)
        util::fatal("model file: truncated body");
    std::vector<uint8_t> tensor_bytes(
        bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(body));
    std::vector<uint8_t> trailer(
        bytes.begin() + static_cast<ptrdiff_t>(body), bytes.end());
    maybeTriggerExploit(ctx, desc.cves, trailer);
    TensorDesc t = tensorFromBytes(ctx.space(), tensor_bytes, label);
    ctx.traceOp(StorageKind::Mem, StorageKind::File);
    ctx.chargeCompute(t.elements());
    return t;
}

FlowOp
dMemMem()
{
    return {StorageKind::Mem, StorageKind::Mem, false};
}

FlowOp
dMemFile()
{
    return {StorageKind::Mem, StorageKind::File, false};
}

FlowOp
dMemDev()
{
    return {StorageKind::Mem, StorageKind::Dev, false};
}

FlowOp
dFileMem()
{
    return {StorageKind::File, StorageKind::Mem, false};
}

const std::set<Syscall> kDnnLoadSyscalls = {
    Syscall::Openat, Syscall::Close, Syscall::Brk, Syscall::Fstat,
    Syscall::Read, Syscall::Lseek, Syscall::Mmap};
const std::set<Syscall> kDnnComputeSyscalls = {
    Syscall::Brk, Syscall::Mmap, Syscall::Futex,
    Syscall::ClockGettime, Syscall::Getrandom, Syscall::SchedYield};
const std::set<Syscall> kDnnStoreSyscalls = {
    Syscall::Openat, Syscall::Write, Syscall::Close, Syscall::Mkdir,
    Syscall::Umask, Syscall::Unlink, Syscall::Lstat};

/** Register a model-load API (torch.load-style). */
void
addModelLoad(ApiRegistry &registry, const std::string &name,
             Framework fw, std::vector<std::string> cves = {})
{
    ApiDescriptor api;
    api.name = name;
    api.framework = fw;
    api.declaredType = ApiType::Loading;
    api.ir = {dMemFile()};
    api.syscalls = kDnnLoadSyscalls;
    api.cves = std::move(cves);
    api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                const ValueList &args) -> ValueList {
        std::vector<uint8_t> bytes =
            dnnLoadFile(ctx, args[0].asStr());
        TensorDesc t = decodeModelFile(ctx, desc, bytes,
                                       "model:" + args[0].asStr());
        return retTensor(ctx, t, "model");
    };
    registry.add(std::move(api));
}

/** Register a model-save API (torch.save-style). */
void
addModelSave(ApiRegistry &registry, const std::string &name,
             Framework fw)
{
    ApiDescriptor api;
    api.name = name;
    api.framework = fw;
    api.declaredType = ApiType::Storing;
    api.ir = {dFileMem()};
    api.syscalls = kDnnStoreSyscalls;
    api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                const ValueList &args) -> ValueList {
        const std::string &path = args[0].asStr();
        const TensorDesc &t = getTensor(ctx, args, 1);
        std::vector<uint8_t> bytes = tensorToBytes(ctx.space(), t);
        dnnStoreFile(ctx, path, bytes);
        ctx.traceOp(StorageKind::File, StorageKind::Mem);
        return {Value(static_cast<uint64_t>(bytes.size()))};
    };
    registry.add(std::move(api));
}

/** Register conv2d under a given name (shared by tf/torch/caffe). */
void
addConv(ApiRegistry &registry, const std::string &name, Framework fw,
        std::vector<std::string> cves = {})
{
    ApiDescriptor api;
    api.name = name;
    api.framework = fw;
    api.declaredType = ApiType::Processing;
    api.ir = {dMemMem()};
    api.syscalls = kDnnComputeSyscalls;
    api.cves = std::move(cves);
    api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                const ValueList &args) -> ValueList {
        const TensorDesc &in = getTensor(ctx, args, 0);
        const TensorDesc &w = getTensor(ctx, args, 1);
        checkTensorExploit(ctx, desc, in);
        std::vector<uint32_t> oshp;
        std::vector<float> out =
            conv2d(tensorRead(ctx.space(), in), in.shape,
                   tensorRead(ctx.space(), w), w.shape, oshp);
        ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
        ctx.chargeCompute(out.size() * w.shape[2] * w.shape[3] *
                          in.shape[0]);
        return retTensor(ctx, makeTensor(ctx, oshp, out, desc.name),
                         desc.name);
    };
    registry.add(std::move(api));
}

/** Register a 2x2 pooling API. */
void
addPool(ApiRegistry &registry, const std::string &name, Framework fw,
        bool take_max, std::vector<std::string> cves = {})
{
    ApiDescriptor api;
    api.name = name;
    api.framework = fw;
    api.declaredType = ApiType::Processing;
    api.ir = {dMemMem()};
    api.syscalls = kDnnComputeSyscalls;
    api.cves = std::move(cves);
    api.fn = [take_max](ExecContext &ctx, const ApiDescriptor &desc,
                        const ValueList &args) -> ValueList {
        const TensorDesc &in = getTensor(ctx, args, 0);
        checkTensorExploit(ctx, desc, in);
        std::vector<uint32_t> oshp;
        std::vector<float> data = tensorRead(ctx.space(), in);
        std::vector<float> out =
            take_max ? pool2x2<true>(data, in.shape, oshp)
                     : pool2x2<false>(data, in.shape, oshp);
        ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
        ctx.chargeCompute(data.size());
        return retTensor(ctx, makeTensor(ctx, oshp, out, desc.name),
                         desc.name);
    };
    registry.add(std::move(api));
}

} // namespace

void
registerMiniDnn(ApiRegistry &registry)
{
    // ================= NumPy ==========================================

    addModelLoad(registry, "np.load", Framework::NumPy);
    addModelSave(registry, "np.save", Framework::NumPy);

    {
        ApiDescriptor api;
        api.name = "np.argmax";
        api.framework = Framework::NumPy;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &t = getTensor(ctx, args, 0);
            checkTensorExploit(ctx, desc, t);
            std::vector<float> v = tensorRead(ctx.space(), t);
            size_t best = 0;
            for (size_t i = 1; i < v.size(); ++i)
                if (v[i] > v[best])
                    best = i;
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(v.size());
            return {Value(static_cast<uint64_t>(best))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "np.mean";
        api.framework = Framework::NumPy;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &t = getTensor(ctx, args, 0);
            checkTensorExploit(ctx, desc, t);
            std::vector<float> v = tensorRead(ctx.space(), t);
            double sum = 0;
            for (float x : v)
                sum += x;
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(v.size());
            return {Value(v.empty() ? 0.0 : sum / v.size())};
        };
        registry.add(std::move(api));
    }

    // ================= Caffe ==========================================

    addModelLoad(registry, "caffe.ReadProtoFromTextFile",
                 Framework::Caffe);
    addModelLoad(registry, "caffe.Net.CopyTrainedLayersFrom",
                 Framework::Caffe);
    addModelSave(registry, "caffe.WriteProtoToTextFile",
                 Framework::Caffe);
    addModelSave(registry, "caffe.hdf5_save_string",
                 Framework::Caffe);
    addConv(registry, "caffe.Net.Forward", Framework::Caffe);

    {
        // Backward: stateful SGD step on the weights. The updated
        // weights are *internal state* of the net — the A.2.4
        // checkpoint/restore machinery exists for APIs like this.
        ApiDescriptor api;
        api.name = "caffe.Net.Backward";
        api.framework = Framework::Caffe;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.stateful = true;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            // args: weights, gradient, learning rate.
            const TensorDesc &w = getTensor(ctx, args, 0);
            const TensorDesc &g = getTensor(ctx, args, 1);
            checkTensorExploit(ctx, desc, w);
            float lr = static_cast<float>(args[2].asF64());
            std::vector<float> wv = tensorRead(ctx.space(), w);
            std::vector<float> gv = tensorRead(ctx.space(), g);
            if (wv.size() != gv.size())
                util::fatal("Backward: grad shape mismatch");
            for (size_t i = 0; i < wv.size(); ++i)
                wv[i] -= lr * gv[i];
            // In-place update of the weight tensor (the state).
            tensorWrite(ctx.space(), w, wv);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(wv.size() * 2);
            return {args[0]};
        };
        registry.add(std::move(api));
    }

    // ================= PyTorch ========================================

    addModelLoad(registry, "torch.load", Framework::PyTorch,
                 {"SIM-STEGONET"});
    addModelLoad(registry, "torch.hub.load", Framework::PyTorch);
    addModelLoad(registry, "torch.utils.model_zoo.load_url",
                 Framework::PyTorch);
    addModelLoad(registry, "torchvision.datasets.MNIST",
                 Framework::PyTorch);
    addModelLoad(registry, "torch.utils.data.DataLoader",
                 Framework::PyTorch);
    addModelSave(registry, "torch.save", Framework::PyTorch);
    addModelSave(registry,
                 "torch.utils.tensorboard.SummaryWriter.add_scalar",
                 Framework::PyTorch);
    addConv(registry, "torch.nn.Conv2d", Framework::PyTorch);
    addPool(registry, "torch.nn.MaxPool2d", Framework::PyTorch, true);

    {
        ApiDescriptor api;
        api.name = "torch.relu";
        api.framework = Framework::PyTorch;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &t = getTensor(ctx, args, 0);
            checkTensorExploit(ctx, desc, t);
            std::vector<float> v = tensorRead(ctx.space(), t);
            for (float &x : v)
                x = std::max(x, 0.f);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(v.size());
            return retTensor(ctx, makeTensor(ctx, t.shape, v, "relu"),
                             "relu");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "torch.softmax";
        api.framework = Framework::PyTorch;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &t = getTensor(ctx, args, 0);
            checkTensorExploit(ctx, desc, t);
            std::vector<float> v = tensorRead(ctx.space(), t);
            softmaxInPlace(v);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(v.size() * 3);
            return retTensor(ctx,
                             makeTensor(ctx, t.shape, v, "softmax"),
                             "softmax");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "torch.nn.Linear";
        api.framework = Framework::PyTorch;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &in = getTensor(ctx, args, 0);
            const TensorDesc &w = getTensor(ctx, args, 1);
            checkTensorExploit(ctx, desc, in);
            std::vector<float> out =
                fullyConnected(tensorRead(ctx.space(), in),
                               tensorRead(ctx.space(), w), w.shape);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(w.elements());
            return retTensor(
                ctx,
                makeTensor(ctx, {w.shape[0]}, out, "linear"),
                "linear");
        };
        registry.add(std::move(api));
    }

    {
        // torch.tensor: type-neutral constructor from a raw blob.
        ApiDescriptor api;
        api.name = "torch.tensor";
        api.framework = Framework::PyTorch;
        api.declaredType = ApiType::Processing;
        api.typeNeutral = true;
        api.ir = {dMemMem()};
        api.syscalls = {Syscall::Brk, Syscall::Mmap};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            const auto &blob = args[0].asBlob();
            size_t n = blob.size() / sizeof(float);
            std::vector<float> v(n);
            std::memcpy(v.data(), blob.data(), n * sizeof(float));
            TensorDesc t = makeTensor(
                ctx, {static_cast<uint32_t>(n)}, v, "tensor");
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            return retTensor(ctx, t, "tensor");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "torch.argmax";
        api.framework = Framework::PyTorch;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.fn = registry.require("np.argmax").fn;
        registry.add(std::move(api));
    }

    // ================= TensorFlow =====================================

    {
        // tf.keras.utils.get_file: the "memory copy via files" API of
        // §4.2.1 — download (DEV->MEM), spill (MEM->FILE), reload
        // (FILE->MEM). The analysis reduces this chain to a plain
        // loading pattern.
        ApiDescriptor api;
        api.name = "tf.keras.utils.get_file";
        api.framework = Framework::TensorFlow;
        api.declaredType = ApiType::Loading;
        api.ir = {dMemDev(), dFileMem(), dMemFile()};
        api.syscalls = {Syscall::Socket,  Syscall::Connect,
                        Syscall::Recvfrom, Syscall::Openat,
                        Syscall::Write,   Syscall::Read,
                        Syscall::Close,   Syscall::Fstat,
                        Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            const std::string &url = args[0].asStr();
            osim::Kernel &kernel = ctx.kernel();
            osim::Process &proc = ctx.proc();
            // "Download": deterministic bytes derived from the URL.
            // The socket is connected once and cached, so connect()
            // is genuinely an init-only syscall (§4.4.1).
            osim::Fd sock = ctx.netFd(url);
            kernel.sysRecvfrom(proc, sock, 0, 0);
            std::vector<uint8_t> body(2048);
            for (size_t i = 0; i < body.size(); ++i)
                body[i] = static_cast<uint8_t>(
                    (i * 31 + url.size() * 7) & 0xff);
            ctx.traceOp(StorageKind::Mem, StorageKind::Dev);
            // Spill to a temp file...
            std::string tmp = "/tmp/get_file.cache";
            dnnStoreFile(ctx, tmp, body);
            ctx.traceOp(StorageKind::File, StorageKind::Mem);
            // ...and read it back: the chain the reducer collapses.
            std::vector<uint8_t> back = dnnLoadFile(ctx, tmp);
            ctx.traceOp(StorageKind::Mem, StorageKind::File);
            osim::Addr addr = ctx.space().alloc(
                back.size(), osim::PermRW, "get_file");
            ctx.space().write(addr, back.data(), back.size());
            uint64_t id =
                ctx.store().putBytes(addr, back.size(), "get_file");
            ctx.chargeCompute(back.size());
            return {refValue(ctx.partition(), id)};
        };
        registry.add(std::move(api));
    }

    addModelLoad(registry,
                 "tf.keras.preprocessing.image_dataset_from_directory",
                 Framework::TensorFlow);
    addConv(registry, "tf.nn.conv2d", Framework::TensorFlow,
            {"CVE-2021-41198"});
    addConv(registry, "tf.nn.conv3d", Framework::TensorFlow,
            {"CVE-2021-29513"});
    addPool(registry, "tf.nn.max_pool", Framework::TensorFlow, true,
            {"CVE-2021-29618"});
    addPool(registry, "tf.nn.avg_pool", Framework::TensorFlow, false,
            {"CVE-2021-37661"});
    addModelSave(registry, "tf.keras.preprocessing.image.save_img",
                 Framework::TensorFlow);
    addModelSave(registry, "tf.keras.Model.save_weights",
                 Framework::TensorFlow);

    {
        // DNNClassifier.train: the canonical stateful DP API the
        // paper checkpoints (A.2.4). One SGD epoch over synthetic
        // labels derived from the data tensor.
        ApiDescriptor api;
        api.name = "tf.estimator.DNNClassifier.train";
        api.framework = Framework::TensorFlow;
        api.declaredType = ApiType::Processing;
        api.ir = {dMemMem()};
        api.syscalls = kDnnComputeSyscalls;
        api.stateful = true;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const TensorDesc &w = getTensor(ctx, args, 0);
            const TensorDesc &x = getTensor(ctx, args, 1);
            checkTensorExploit(ctx, desc, w);
            std::vector<float> wv = tensorRead(ctx.space(), w);
            std::vector<float> xv = tensorRead(ctx.space(), x);
            // One least-mean-squares step toward matching x's mean.
            double mean = 0;
            for (float v : xv)
                mean += v;
            mean = xv.empty() ? 0 : mean / xv.size();
            for (float &v : wv)
                v += 0.01f * (static_cast<float>(mean) - v);
            tensorWrite(ctx.space(), w, wv);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(wv.size() + xv.size());
            return {args[0]};
        };
        registry.add(std::move(api));
    }
}

} // namespace freepart::fw
