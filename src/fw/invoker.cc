#include "fw/invoker.hh"

#include <cstring>

#include "fw/image_format.hh"
#include "util/logging.hh"

namespace freepart::fw {

namespace {

using ipc::Value;
using ipc::ValueList;

} // namespace

void
seedFixtureFiles(osim::Kernel &kernel, const TestFixture &fixture)
{
    std::vector<uint8_t> pixels = synthPixels(
        fixture.rows, fixture.cols, fixture.channels, 1);
    kernel.vfs().putFile(fixture.imagePath,
                         encodeImageFile(fixture.rows, fixture.cols,
                                         fixture.channels, pixels));

    // Model file: a flat 256-element tensor.
    uint32_t rank = 1;
    uint32_t dim = 256;
    std::vector<uint8_t> model(sizeof(uint32_t) * 2 +
                               dim * sizeof(float));
    std::memcpy(model.data(), &rank, 4);
    std::memcpy(model.data() + 4, &dim, 4);
    for (uint32_t i = 0; i < dim; ++i) {
        float v = static_cast<float>(i % 17) * 0.25f;
        std::memcpy(model.data() + 8 + i * sizeof(float), &v,
                    sizeof(float));
    }
    kernel.vfs().putFile(fixture.modelPath, model);

    const char *csv = "id,score\n1,90\n2,85\n3,77\n";
    kernel.vfs().putFile(
        fixture.csvPath,
        std::vector<uint8_t>(csv, csv + std::strlen(csv)));
}

Invoker::Invoker(osim::Kernel &kernel, ObjectStore &store,
                 uint32_t partition, const TestFixture &fixture)
    : kernel(kernel), store(store), partition(partition),
      fixture(fixture)
{
}

ipc::Value
Invoker::makeMatArg(uint32_t rows, uint32_t cols, uint32_t ch,
                    uint64_t seed)
{
    osim::AddressSpace &space = kernel.process(store.pid()).space();
    MatDesc mat;
    mat.rows = rows;
    mat.cols = cols;
    mat.channels = ch;
    mat.addr = space.alloc(mat.byteLen(), osim::PermRW, "fixture-mat");
    std::vector<uint8_t> pixels = synthPixels(rows, cols, ch, seed);
    space.write(mat.addr, pixels.data(), pixels.size());
    return refValue(partition, store.putMat(mat, "fixture-mat"));
}

ipc::Value
Invoker::makeTensorArg(std::vector<uint32_t> shape, uint64_t seed)
{
    osim::AddressSpace &space = kernel.process(store.pid()).space();
    TensorDesc t;
    t.shape = std::move(shape);
    t.addr = space.alloc(t.byteLen() ? t.byteLen() : 1, osim::PermRW,
                         "fixture-tensor");
    std::vector<float> values(t.elements());
    for (size_t i = 0; i < values.size(); ++i)
        values[i] =
            static_cast<float>(((i + seed) % 23)) * 0.125f - 1.f;
    tensorWrite(space, t, values);
    return refValue(partition, store.putTensor(t, "fixture-tensor"));
}

bool
Invoker::canInvoke(const ApiDescriptor &api) const
{
    return api.implemented();
}

ipc::ValueList
Invoker::prepareArgs(const ApiDescriptor &api, uint64_t seed)
{
    const std::string &n = api.name;
    uint32_t r = fixture.rows, c = fixture.cols, ch = fixture.channels;

    // --- Special-cased signatures -------------------------------------
    if (n == "cv2.imread" || n == "cv2.CascadeClassifier.load" ||
        n == "cv2.readOpticalFlow" || n == "pil.Image.open")
        return {Value(fixture.imagePath)};
    if (n == "cv2.imdecode") {
        std::vector<uint8_t> file = encodeImageFile(
            r, c, ch, synthPixels(r, c, ch, seed));
        return {Value(std::move(file))};
    }
    if (n == "cv2.VideoCapture.read" || n == "cv2.pollKey" ||
        n == "cv2.getMouseWheelDelta" || n == "cv2.destroyAllWindows")
        return {};
    if (n == "cv2.namedWindow" || n == "cv2.moveWindow" ||
        n == "cv2.setWindowTitle")
        return {Value(std::string("win"))};
    if (n == "cv2.imshow" || n == "gtk.Window.show" ||
        n == "plt.show")
        return {Value(std::string("win")), makeMatArg(r, c, ch, seed)};
    if (n == "cv2.imwrite" || n == "cv2.writeOpticalFlow" ||
        n == "pil.Image.save" || n == "plt.savefig" ||
        n == "cv2.VideoWriter.write")
        return {Value(std::string("/out/") + n + ".fpim"),
                makeMatArg(r, c, ch, seed)};
    if (n == "cv2.Canny")
        return {makeMatArg(r, c, 1, seed), Value(uint64_t(50)),
                Value(uint64_t(150))};
    if (n == "cv2.resize" || n == "pil.Image.resize")
        return {makeMatArg(r, c, ch, seed), Value(uint64_t(r / 2)),
                Value(uint64_t(c / 2))};
    if (n == "cv2.threshold")
        return {makeMatArg(r, c, 1, seed), Value(uint64_t(128)),
                Value(uint64_t(255))};
    if (n == "cv2.equalizeHist" || n == "cv2.findContours" ||
        n == "cv2.Sobel" ||
        n == "cv2.CascadeClassifier.detectMultiScale")
        return {makeMatArg(r, c, 1, seed)};
    if (n == "cv2.warpPerspective" || n == "cv2.filter2D") {
        ValueList args = {makeMatArg(r, c, ch, seed)};
        const double identity[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
        const double sharpen[9] = {0, -1, 0, -1, 5, -1, 0, -1, 0};
        const double *k =
            n == "cv2.filter2D" ? sharpen : identity;
        for (int i = 0; i < 9; ++i)
            args.emplace_back(k[i]);
        return args;
    }
    if (n == "cv2.matchTemplate")
        return {makeMatArg(r, c, 1, seed),
                makeMatArg(r / 4, c / 4, 1, seed + 1)};
    if (n == "cv2.rectangle")
        return {makeMatArg(r, c, ch, seed), Value(uint64_t(4)),
                Value(uint64_t(4)), Value(uint64_t(r / 2)),
                Value(uint64_t(c / 2)), Value(uint64_t(255))};
    if (n == "cv2.putText")
        return {makeMatArg(r, c, ch, seed),
                Value(std::string("SCORE 98")), Value(uint64_t(4)),
                Value(uint64_t(4)), Value(uint64_t(255))};
    if (n == "cv2.addWeighted")
        return {makeMatArg(r, c, ch, seed),
                makeMatArg(r, c, ch, seed + 1), Value(0.5),
                Value(0.5)};
    if (n == "cv2.absdiff")
        return {makeMatArg(r, c, ch, seed),
                makeMatArg(r, c, ch, seed + 1)};
    if (n == "cv2.createMemStorage" || n == "cv2.alloc")
        return {};
    if (n == "cv2.copyTo")
        return {makeMatArg(r, c, ch, seed)};
    if (n == "pd.read_csv" || n == "json.load")
        return {Value(fixture.csvPath)};
    if (n == "pd.DataFrame.to_csv" || n == "json.dump") {
        // Needs a bytes object argument: stage a small CSV blob.
        osim::AddressSpace &space =
            kernel.process(store.pid()).space();
        const char *csv = "a,b\n1,2\n";
        osim::Addr addr = space.alloc(8, osim::PermRW, "csv-out");
        space.write(addr, csv, 8);
        uint64_t id = store.putBytes(addr, 8, "csv-out");
        return {Value(std::string("/out/results.csv")),
                refValue(partition, id)};
    }
    if (n == "gtk.RecentManager.add")
        return {Value(std::string("/data/recent.fpim"))};
    if (n == "tf.keras.utils.get_file")
        return {Value(std::string("http://example.com/weights"))};
    if (n == "torch.tensor") {
        std::vector<uint8_t> blob(64 * sizeof(float));
        for (size_t i = 0; i < 64; ++i) {
            float v = static_cast<float>(i + seed);
            std::memcpy(blob.data() + i * sizeof(float), &v,
                        sizeof(float));
        }
        return {Value(std::move(blob))};
    }
    if (n == "torch.nn.Conv2d" || n == "tf.nn.conv2d" ||
        n == "tf.nn.conv3d" || n == "caffe.Net.Forward")
        return {makeTensorArg({3, fixture.tensorDim,
                               fixture.tensorDim},
                              seed),
                makeTensorArg({4, 3, 3, 3}, seed + 1)};
    if (n == "torch.nn.MaxPool2d" || n == "tf.nn.max_pool" ||
        n == "tf.nn.avg_pool")
        return {makeTensorArg({3, fixture.tensorDim,
                               fixture.tensorDim},
                              seed)};
    if (n == "torch.relu" || n == "torch.softmax" ||
        n == "np.argmax" || n == "torch.argmax" || n == "np.mean")
        return {makeTensorArg(
            {fixture.tensorDim * fixture.tensorDim}, seed)};
    if (n == "torch.nn.Linear")
        return {makeTensorArg({32}, seed),
                makeTensorArg({10, 32}, seed + 1)};
    if (n == "caffe.Net.Backward")
        return {makeTensorArg({64}, seed),
                makeTensorArg({64}, seed + 1), Value(0.01)};
    if (n == "tf.estimator.DNNClassifier.train")
        return {makeTensorArg({64}, seed),
                makeTensorArg({64}, seed + 1)};

    // --- Fallbacks by declared type ------------------------------------
    switch (api.declaredType) {
      case ApiType::Loading:
        return {Value(fixture.modelPath)};
      case ApiType::Storing:
        return {Value(std::string("/out/") + n + ".bin"),
                makeTensorArg({64}, seed)};
      case ApiType::Processing:
      case ApiType::Neutral:
        return {makeMatArg(r, c, ch, seed)};
      case ApiType::Visualizing:
        return {Value(std::string("win")),
                makeMatArg(r, c, ch, seed)};
      case ApiType::Unknown:
        break;
    }
    util::fatal("Invoker: no argument plan for API '%s'", n.c_str());
}

} // namespace freepart::fw
