/**
 * @file
 * Generic API-invocation harness: synthesizes valid arguments for any
 * registered API (allocating Mats/Tensors in a target object store
 * and seeding VFS test files). This is the analogue of the framework
 * test suites the paper's dynamic analysis replays (§4.2.2, Table 11)
 * and is reused by the workload generator.
 */

#ifndef FREEPART_FW_INVOKER_HH
#define FREEPART_FW_INVOKER_HH

#include "fw/api_registry.hh"
#include "fw/exec_context.hh"

namespace freepart::fw {

/** Standard test-fixture paths seeded into the VFS. */
struct TestFixture {
    std::string imagePath = "/data/test.fpim";
    std::string modelPath = "/data/model.fpt";
    std::string csvPath = "/data/table.csv";
    uint32_t rows = 64;
    uint32_t cols = 64;
    uint32_t channels = 3;
    uint32_t tensorDim = 16; //!< spatial dim of synthesized tensors
};

/** Seed the VFS with the standard test fixture files. */
void seedFixtureFiles(osim::Kernel &kernel,
                      const TestFixture &fixture = TestFixture());

/**
 * Synthesizes arguments for registered APIs against one object store
 * (i.e. for execution in that store's process).
 */
class Invoker
{
  public:
    /**
     * @param kernel   Owning kernel (fixture files must be seeded).
     * @param store    Store in which object arguments are created.
     * @param partition Partition id used in generated Refs.
     */
    Invoker(osim::Kernel &kernel, ObjectStore &store,
            uint32_t partition,
            const TestFixture &fixture = TestFixture());

    /** True if prepareArgs() knows how to drive this API. */
    bool canInvoke(const ApiDescriptor &api) const;

    /**
     * Build a valid argument list for the API, creating any needed
     * Mats/Tensors in the store. seed varies generated content.
     */
    ipc::ValueList prepareArgs(const ApiDescriptor &api,
                               uint64_t seed = 0);

    /** Create a fresh color Mat object; returns its Ref value. */
    ipc::Value makeMatArg(uint32_t rows, uint32_t cols, uint32_t ch,
                          uint64_t seed);

    /** Create a fresh rank-3 float tensor object. */
    ipc::Value makeTensorArg(std::vector<uint32_t> shape,
                             uint64_t seed);

  private:
    osim::Kernel &kernel;
    ObjectStore &store;
    uint32_t partition;
    TestFixture fixture;
};

} // namespace freepart::fw

#endif // FREEPART_FW_INVOKER_HH
