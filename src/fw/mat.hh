/**
 * @file
 * Mat: the image-matrix data structure of MiniCV (the analogue of
 * OpenCV's cv::Mat the paper hooks in §4.3). Pixel data lives in a
 * simulated process's address space, so page permissions apply to
 * every element access — this is what makes the temporal read-only
 * protection (Fig. 3) bite.
 */

#ifndef FREEPART_FW_MAT_HH
#define FREEPART_FW_MAT_HH

#include <cstdint>
#include <vector>

#include "osim/address_space.hh"
#include "osim/types.hh"

namespace freepart::fw {

/** Descriptor of a materialized matrix inside one address space. */
struct MatDesc {
    uint32_t rows = 0;
    uint32_t cols = 0;
    uint32_t channels = 1;
    osim::Addr addr = osim::kNullAddr; //!< pixel buffer base

    /** Pixel buffer length in bytes (u8 elements). */
    size_t
    byteLen() const
    {
        return static_cast<size_t>(rows) * cols * channels;
    }

    /** Number of pixel elements. */
    size_t
    elements() const
    {
        return byteLen();
    }

    bool valid() const { return addr != osim::kNullAddr && rows > 0; }
};

/**
 * Borrowing accessor for a Mat's pixels through its address space.
 * Obtaining a view performs one up-front permission check over the
 * whole buffer (read or read/write), equivalent to a bulk access.
 */
class MatView
{
  public:
    /** Read-only view. @throws osim::MemFault on protected pages. */
    MatView(const osim::AddressSpace &space, const MatDesc &desc);

    /** Mutable view. @throws osim::MemFault on protected pages. */
    MatView(osim::AddressSpace &space, const MatDesc &desc,
            bool writable);

    uint32_t rows() const { return desc.rows; }
    uint32_t cols() const { return desc.cols; }
    uint32_t channels() const { return desc.channels; }
    size_t byteLen() const { return desc.byteLen(); }

    const uint8_t *data() const { return ro; }
    uint8_t *dataMutable();

    /** Pixel accessor (channel-interleaved, row-major). */
    uint8_t
    at(uint32_t r, uint32_t c, uint32_t ch = 0) const
    {
        return ro[(static_cast<size_t>(r) * desc.cols + c) *
                      desc.channels +
                  ch];
    }

    /** Mutable pixel accessor. */
    void
    set(uint32_t r, uint32_t c, uint32_t ch, uint8_t v)
    {
        dataMutable()[(static_cast<size_t>(r) * desc.cols + c) *
                          desc.channels +
                      ch] = v;
    }

  private:
    MatDesc desc;
    const uint8_t *ro = nullptr;
    uint8_t *rw = nullptr;
};

/** Serialize header + pixels (for eager RPC blob transfers). */
std::vector<uint8_t> matToBytes(const osim::AddressSpace &space,
                                const MatDesc &desc);

/**
 * Materialize serialized bytes as a new Mat allocation in a space.
 * @throws util::FatalError on malformed bytes.
 */
MatDesc matFromBytes(osim::AddressSpace &space,
                     const std::vector<uint8_t> &bytes,
                     const std::string &label = "mat");

/** Header-only length check: bytes needed for rows x cols x ch. */
constexpr size_t kMatHeaderBytes = 3 * sizeof(uint32_t);

} // namespace freepart::fw

#endif // FREEPART_FW_MAT_HH
