#include "fw/exec_context.hh"

namespace freepart::fw {

osim::Fd
ExecContext::cameraFd()
{
    if (devices.camera < 0)
        devices.camera = kernel_.sysOpen(proc_, "/dev/camera0", false);
    return devices.camera;
}

osim::Fd
ExecContext::guiFd()
{
    if (devices.gui < 0) {
        osim::Fd fd = kernel_.sysSocket(proc_);
        kernel_.sysConnect(proc_, fd, "gui");
        devices.gui = fd;
    }
    return devices.gui;
}

osim::Fd
ExecContext::netFd(const std::string &dest)
{
    if (devices.net < 0) {
        osim::Fd fd = kernel_.sysSocket(proc_);
        kernel_.sysConnect(proc_, fd, dest);
        devices.net = fd;
    }
    return devices.net;
}

MatDesc
ExecContext::allocMat(uint32_t rows, uint32_t cols, uint32_t channels,
                      const std::string &label)
{
    MatDesc desc;
    desc.rows = rows;
    desc.cols = cols;
    desc.channels = channels;
    desc.addr = space().alloc(desc.byteLen() ? desc.byteLen() : 1,
                              osim::PermRW, label);
    return desc;
}

TensorDesc
ExecContext::allocTensor(std::vector<uint32_t> shape,
                         const std::string &label)
{
    TensorDesc desc;
    desc.shape = std::move(shape);
    desc.addr = space().alloc(desc.byteLen() ? desc.byteLen() : 1,
                              osim::PermRW, label);
    return desc;
}

} // namespace freepart::fw
