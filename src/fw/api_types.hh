/**
 * @file
 * The API type model from §4.1/§4.2: four API types mirroring the
 * data-processing pipeline, the storage kinds and data-flow operation
 * IR of Fig. 8, and the framework identifiers used throughout the
 * evaluation.
 */

#ifndef FREEPART_FW_API_TYPES_HH
#define FREEPART_FW_API_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace freepart::fw {

/**
 * The four framework API types (plus type-neutral utilities whose
 * effective type is decided by calling context, §4.2 "Type-neutral
 * Framework APIs", and Unknown for uncategorized).
 */
enum class ApiType : uint8_t {
    Loading = 0,     //!< W(MEM, R(FILE|DEV))
    Processing = 1,  //!< W(MEM, R(MEM)) only
    Visualizing = 2, //!< touches GUI storage
    Storing = 3,     //!< W(FILE|DEV, R(MEM))
    Neutral = 4,     //!< memory-to-memory utility, context-typed
    Unknown = 5,
};

/** Number of concrete (isolatable) API types. */
constexpr size_t kNumApiTypes = 4;

/** Human-readable type name ("Data Loading", ...). */
const char *apiTypeName(ApiType type);

/** Short type name ("DL", "DP", "V", "ST"). */
const char *apiTypeShortName(ApiType type);

/** Storage kinds of Fig. 8: S := MEM | GUI | FILE | DEV. */
enum class StorageKind : uint8_t {
    Mem = 0,
    Gui = 1,
    File = 2,
    Dev = 3,
};

/** Name of a storage kind ("MEM", ...). */
const char *storageKindName(StorageKind kind);

/**
 * One data-flow operation W(dst, R(src)) from Fig. 8. Operations
 * flagged `indirect` flow through dynamically allocated objects or
 * indirect calls, which the static analysis cannot see (§4.2.2) —
 * only the dynamic tracer observes them.
 */
struct FlowOp {
    StorageKind dst;
    StorageKind src;
    bool indirect = false;

    bool
    operator==(const FlowOp &o) const
    {
        return dst == o.dst && src == o.src;
    }
};

/** Render an op as "W(MEM, R(FILE))". */
std::string flowOpName(const FlowOp &op);

/** Frameworks appearing in the paper's evaluation and studies. */
enum class Framework : uint8_t {
    OpenCV = 0,
    Caffe,
    PyTorch,
    TensorFlow,
    Keras,
    Pillow,
    NumPy,
    Pandas,
    Matplotlib,
    Json,
    Gtk,
    NumFrameworks,
};

/** Framework display name. */
const char *frameworkName(Framework fw);

/**
 * Classify a set of observed flow operations into an API type using
 * the Fig. 9 rules:
 *  - any W(MEM, R(FILE|DEV))          -> Loading
 *  - any GUI read or write            -> Visualizing
 *  - any W(FILE|DEV, R(MEM))          -> Storing
 *  - only W(MEM, R(MEM))              -> Processing
 *  - no operations observed           -> Unknown
 * Visualizing wins over Loading/Storing for GUI-socket traffic;
 * Loading+Storing both present resolves per the "memory copy via
 * files" reduction *before* calling this (see analysis module).
 */
ApiType classifyFlowOps(const std::vector<FlowOp> &ops);

} // namespace freepart::fw

#endif // FREEPART_FW_API_TYPES_HH
