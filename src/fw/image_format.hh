/**
 * @file
 * The on-disk image format used by MiniCV's imread/imwrite ("FPIM"):
 * a fixed header, raw interleaved pixels, and — in crafted malicious
 * files — a trailing exploit section that a *vulnerable* decoder
 * executes (see fw/vuln.hh). Benign decoders ignore trailing bytes,
 * mirroring how real image-parser CVEs live in the decode path.
 */

#ifndef FREEPART_FW_IMAGE_FORMAT_HH
#define FREEPART_FW_IMAGE_FORMAT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fw/vuln.hh"

namespace freepart::fw {

/** Decoded FPIM file contents. */
struct DecodedImage {
    uint32_t rows = 0;
    uint32_t cols = 0;
    uint32_t channels = 0;
    std::vector<uint8_t> pixels;
    /** Raw trailing bytes (candidate exploit payload), if any. */
    std::vector<uint8_t> trailer;
};

/** Encode an image (optionally with a trailing exploit payload). */
std::vector<uint8_t>
encodeImageFile(uint32_t rows, uint32_t cols, uint32_t channels,
                const std::vector<uint8_t> &pixels,
                const std::optional<ExploitPayload> &payload =
                    std::nullopt);

/**
 * Decode an FPIM file. Throws util::FatalError on bad magic or a
 * truncated pixel section (a *benign* decoder rejects those).
 */
DecodedImage decodeImageFile(const std::vector<uint8_t> &bytes);

/** True if bytes look like an FPIM file (magic check only). */
bool looksLikeImageFile(const std::vector<uint8_t> &bytes);

/** Generate a deterministic synthetic test image. */
std::vector<uint8_t> synthPixels(uint32_t rows, uint32_t cols,
                                 uint32_t channels, uint64_t seed);

} // namespace freepart::fw

#endif // FREEPART_FW_IMAGE_FORMAT_HH
