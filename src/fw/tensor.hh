/**
 * @file
 * Tensor: the MiniDNN float-matrix data structure (analogue of the
 * Caffe/PyTorch/TensorFlow tensors the paper's ML frameworks use).
 * Element data lives in a simulated process's address space, like Mat.
 */

#ifndef FREEPART_FW_TENSOR_HH
#define FREEPART_FW_TENSOR_HH

#include <cstdint>
#include <numeric>
#include <vector>

#include "osim/address_space.hh"
#include "osim/types.hh"

namespace freepart::fw {

/** Descriptor of a materialized float tensor in one address space. */
struct TensorDesc {
    std::vector<uint32_t> shape; //!< e.g. {N, C, H, W}
    osim::Addr addr = osim::kNullAddr;

    /** Number of float elements. */
    size_t
    elements() const
    {
        size_t n = 1;
        for (uint32_t d : shape)
            n *= d;
        return shape.empty() ? 0 : n;
    }

    /** Buffer length in bytes. */
    size_t byteLen() const { return elements() * sizeof(float); }

    bool valid() const { return addr != osim::kNullAddr; }
};

/** Serialize header (rank + dims) + elements for RPC blob transfer. */
std::vector<uint8_t> tensorToBytes(const osim::AddressSpace &space,
                                   const TensorDesc &desc);

/** Materialize serialized bytes as a new tensor allocation. */
TensorDesc tensorFromBytes(osim::AddressSpace &space,
                           const std::vector<uint8_t> &bytes,
                           const std::string &label = "tensor");

/** Read all elements into a host vector (permission-checked). */
std::vector<float> tensorRead(const osim::AddressSpace &space,
                              const TensorDesc &desc);

/** Write elements from a host vector (permission-checked). */
void tensorWrite(osim::AddressSpace &space, const TensorDesc &desc,
                 const std::vector<float> &values);

} // namespace freepart::fw

#endif // FREEPART_FW_TENSOR_HH
