/**
 * @file
 * MiniCV: the OpenCV-analogue framework. Registers every implemented
 * API with its data-flow IR, syscall profile, and CVE annotations, and
 * provides the executable bodies. Pillow / NumPy / pandas / json /
 * Matplotlib / GTK companion APIs (used by the evaluation programs)
 * are registered here too; the pandas/json/Matplotlib IR is flagged
 * `indirect` because — per Table 2's footnote — those frameworks
 * defeat the static analysis and need the hybrid (dynamic) pass.
 */

#include <cstring>

#include "fw/api_registry.hh"
#include "fw/image_format.hh"
#include "fw/minicv_ops.hh"
#include "fw/vuln.hh"
#include "util/logging.hh"

namespace freepart::fw {

namespace {

using ipc::Value;
using ipc::ValueList;
using osim::Syscall;

// ---- Shared body helpers ---------------------------------------------

/** Resolve a Ref argument to a local Mat descriptor. */
const MatDesc &
getMat(ExecContext &ctx, const ValueList &args, size_t i)
{
    return ctx.store().mat(argObjectId(args, i));
}

/** Store a result Mat and wrap it as the single return value. */
ValueList
retMat(ExecContext &ctx, const MatDesc &mat, const std::string &label)
{
    uint64_t id = ctx.store().putMat(mat, label);
    return {refValue(ctx.partition(), id)};
}

/**
 * Scan a Mat's leading pixels for an embedded exploit payload — the
 * data-processing-API attack path: a crafted image whose pixel bytes
 * smash the vulnerable kernel's parser.
 */
void
checkPixelExploit(ExecContext &ctx, const ApiDescriptor &desc,
                  const MatDesc &mat)
{
    if (desc.cves.empty() || mat.byteLen() == 0)
        return;
    size_t probe = std::min<size_t>(mat.byteLen(), 512);
    std::vector<uint8_t> head(probe);
    ctx.space().read(mat.addr, head.data(), probe);
    maybeTriggerExploit(ctx, desc.cves, head);
}

/** Kernel signature: (src, dst, rows, cols, ch). */
using UnaryKernel = void (*)(const uint8_t *, uint8_t *, uint32_t,
                             uint32_t, uint32_t);

/** Build a body for a same-shape unary Mat op. */
ApiFn
unaryBody(UnaryKernel kernel)
{
    return [kernel](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
        const MatDesc &src = getMat(ctx, args, 0);
        checkPixelExploit(ctx, desc, src);
        MatDesc dst = ctx.allocMat(src.rows, src.cols, src.channels,
                                   desc.name);
        const uint8_t *s =
            ctx.space().checkedSpan(src.addr, src.byteLen());
        uint8_t *d =
            ctx.space().checkedSpan(dst.addr, dst.byteLen(), true);
        kernel(s, d, src.rows, src.cols, src.channels);
        ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
        ctx.chargeCompute(src.elements());
        return retMat(ctx, dst, desc.name);
    };
}

/** Build a body for a binary (two-Mat) elementwise op. */
ApiFn
binaryBody(void (*kernel)(const uint8_t *, const uint8_t *, uint8_t *,
                          size_t))
{
    return [kernel](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
        const MatDesc &a = getMat(ctx, args, 0);
        const MatDesc &b = getMat(ctx, args, 1);
        checkPixelExploit(ctx, desc, a);
        if (a.byteLen() != b.byteLen())
            util::fatal("%s: shape mismatch", desc.name.c_str());
        MatDesc dst =
            ctx.allocMat(a.rows, a.cols, a.channels, desc.name);
        const uint8_t *pa =
            ctx.space().checkedSpan(a.addr, a.byteLen());
        const uint8_t *pb =
            ctx.space().checkedSpan(b.addr, b.byteLen());
        uint8_t *pd =
            ctx.space().checkedSpan(dst.addr, dst.byteLen(), true);
        kernel(pa, pb, pd, a.byteLen());
        ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
        ctx.chargeCompute(a.elements());
        return retMat(ctx, dst, desc.name);
    };
}

/** Read whole file into the process through the syscall surface. */
std::vector<uint8_t>
loadFileBytes(ExecContext &ctx, const std::string &path)
{
    osim::Kernel &kernel = ctx.kernel();
    osim::Process &proc = ctx.proc();
    osim::Fd fd = kernel.sysOpen(proc, path, false);
    size_t size = kernel.sysFstat(proc, fd);
    kernel.sysBrk(proc);
    osim::Addr staging = ctx.space().alloc(size ? size : 1,
                                           osim::PermRW, "staging");
    size_t got = 0;
    while (got < size) {
        size_t n = kernel.sysRead(proc, fd, staging + got,
                                  std::min<size_t>(size - got,
                                                   1 << 16));
        if (n == 0)
            break;
        got += n;
    }
    kernel.sysClose(proc, fd);
    std::vector<uint8_t> bytes(got);
    ctx.space().read(staging, bytes.data(), got);
    ctx.space().unmap(staging);
    return bytes;
}

/** Write bytes to a file through the syscall surface. */
void
storeFileBytes(ExecContext &ctx, const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    osim::Kernel &kernel = ctx.kernel();
    osim::Process &proc = ctx.proc();
    osim::Fd fd = kernel.sysOpen(proc, path, true);
    osim::Addr staging = ctx.space().alloc(
        bytes.size() ? bytes.size() : 1, osim::PermRW, "staging");
    ctx.space().write(staging, bytes.data(), bytes.size());
    size_t put = 0;
    while (put < bytes.size()) {
        size_t n = kernel.sysWrite(
            proc, fd, staging + put,
            std::min<size_t>(bytes.size() - put, 1 << 16));
        put += n;
    }
    kernel.sysClose(proc, fd);
    ctx.space().unmap(staging);
}

/** Decode image bytes into a fresh Mat; runs the exploit hook. */
ValueList
decodeToMat(ExecContext &ctx, const ApiDescriptor &desc,
            const std::vector<uint8_t> &bytes,
            const std::string &label)
{
    DecodedImage img = decodeImageFile(bytes);
    maybeTriggerExploit(ctx, desc.cves, img.trailer);
    MatDesc mat =
        ctx.allocMat(img.rows, img.cols, img.channels, label);
    ctx.space().write(mat.addr, img.pixels.data(), img.pixels.size());
    ctx.traceOp(StorageKind::Mem, StorageKind::File);
    ctx.chargeCompute(img.pixels.size());
    return retMat(ctx, mat, label);
}

// ---- IR shorthands ----------------------------------------------------

FlowOp
opMemMem()
{
    return {StorageKind::Mem, StorageKind::Mem, false};
}

FlowOp
opMemFile()
{
    return {StorageKind::Mem, StorageKind::File, false};
}

FlowOp
opMemDev()
{
    return {StorageKind::Mem, StorageKind::Dev, false};
}

FlowOp
opFileMem()
{
    return {StorageKind::File, StorageKind::Mem, false};
}

FlowOp
opGuiMem()
{
    return {StorageKind::Gui, StorageKind::Mem, false};
}

FlowOp
opMemGui()
{
    return {StorageKind::Mem, StorageKind::Gui, false};
}

FlowOp
indirect(FlowOp op)
{
    op.indirect = true;
    return op;
}

// Syscall profile shorthands.
const std::set<Syscall> kLoadFileSyscalls = {
    Syscall::Openat, Syscall::Close, Syscall::Brk, Syscall::Fstat,
    Syscall::Read, Syscall::Lseek};
const std::set<Syscall> kCameraSyscalls = {
    Syscall::Openat, Syscall::Close, Syscall::Ioctl, Syscall::Mmap,
    Syscall::Brk, Syscall::Select, Syscall::Read};
const std::set<Syscall> kProcessSyscalls = {
    Syscall::Brk, Syscall::Getrandom, Syscall::Gettimeofday,
    Syscall::ClockGettime, Syscall::Openat, Syscall::Read,
    Syscall::Close};
const std::set<Syscall> kGuiSyscalls = {
    Syscall::Socket, Syscall::Connect, Syscall::Select,
    Syscall::Sendto, Syscall::Futex, Syscall::Getuid,
    Syscall::Access, Syscall::Eventfd2};
const std::set<Syscall> kStoreSyscalls = {
    Syscall::Openat, Syscall::Write, Syscall::Close, Syscall::Umask,
    Syscall::Mkdir, Syscall::Lstat, Syscall::Uname, Syscall::Unlink,
    Syscall::Dup};

} // namespace

void
registerMiniCv(ApiRegistry &registry)
{
    // ================= Data loading ===================================

    {
        ApiDescriptor api;
        api.name = "cv2.imread";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemFile()};
        api.syscalls = kLoadFileSyscalls;
        api.cves = {"CVE-2017-12597", "CVE-2017-12604",
                    "CVE-2017-12605", "CVE-2017-12606",
                    "CVE-2017-17760", "CVE-2017-14136",
                    "CVE-2017-12862", "CVE-2017-12864"};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const std::string &path = args[0].asStr();
            std::vector<uint8_t> bytes = loadFileBytes(ctx, path);
            return decodeToMat(ctx, desc, bytes, "img:" + path);
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.imdecode";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemFile()};
        api.syscalls = {Syscall::Brk};
        api.cves = {"CVE-2018-5269"};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            // Decodes an in-memory byte blob (e.g. network payload).
            return decodeToMat(ctx, desc, args[0].asBlob(),
                               "imdecode");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.VideoCapture.read";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemDev()};
        api.syscalls = kCameraSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &) -> ValueList {
            osim::Kernel &kernel = ctx.kernel();
            osim::Process &proc = ctx.proc();
            osim::Fd fd = ctx.cameraFd();
            kernel.sysIoctl(proc, fd, osim::kIoctlCaptureFrame);
            kernel.sysSelect(proc, fd);
            osim::CameraDevice &cam = kernel.camera();
            MatDesc mat = ctx.allocMat(cam.height(), cam.width(),
                                       cam.channels(), "frame");
            kernel.sysRead(proc, fd, mat.addr, mat.byteLen());
            ctx.traceOp(StorageKind::Mem, StorageKind::Dev);
            return retMat(ctx, mat, "frame");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.CascadeClassifier.load";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemFile()};
        api.syscalls = kLoadFileSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const std::string &path = args[0].asStr();
            std::vector<uint8_t> bytes = loadFileBytes(ctx, path);
            return decodeToMat(ctx, desc, bytes, "cascade:" + path);
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.readOpticalFlow";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemFile()};
        api.syscalls = kLoadFileSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            std::vector<uint8_t> bytes =
                loadFileBytes(ctx, args[0].asStr());
            return decodeToMat(ctx, desc, bytes, "flow");
        };
        registry.add(std::move(api));
    }

    // ================= Data processing ================================

    auto addUnary = [&registry](const std::string &name,
                                UnaryKernel kernel,
                                bool neutral = false) {
        ApiDescriptor api;
        api.name = name;
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.typeNeutral = neutral;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = unaryBody(kernel);
        registry.add(std::move(api));
    };

    addUnary("cv2.GaussianBlur", &ops::gaussianBlur3x3);
    addUnary("cv2.erode", &ops::erode3x3);
    addUnary("cv2.dilate", &ops::dilate3x3);
    addUnary("cv2.morphologyEx",
             +[](const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
                 uint32_t ch) { ops::morphClose(s, d, r, c, ch); });
    addUnary("cv2.flip",
             +[](const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
                 uint32_t ch) { ops::flipHorizontal(s, d, r, c, ch); });
    // cvtColor and createMemStorage/alloc are the paper's examples of
    // type-neutral utilities (§4.2).
    {
        ApiDescriptor api;
        api.name = "cv2.cvtColor";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.typeNeutral = true;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            MatDesc dst =
                ctx.allocMat(src.rows, src.cols, 1, "gray");
            const uint8_t *s =
                ctx.space().checkedSpan(src.addr, src.byteLen());
            uint8_t *d = ctx.space().checkedSpan(dst.addr,
                                                 dst.byteLen(), true);
            ops::toGray(s, d, src.rows, src.cols, src.channels);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            return retMat(ctx, dst, "gray");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.blur";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            uint32_t k = args.size() > 1
                             ? static_cast<uint32_t>(args[1].asU64())
                             : 3;
            MatDesc dst = ctx.allocMat(src.rows, src.cols,
                                       src.channels, "blur");
            ops::boxBlur(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols, src.channels, k);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements() * k);
            return retMat(ctx, dst, "blur");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.Canny";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            uint8_t lo = static_cast<uint8_t>(args[1].asU64());
            uint8_t hi = static_cast<uint8_t>(args[2].asU64());
            // Canny expects grayscale; convert internally otherwise.
            std::vector<uint8_t> gray;
            const uint8_t *g;
            const uint8_t *s =
                ctx.space().checkedSpan(src.addr, src.byteLen());
            if (src.channels == 1) {
                g = s;
            } else {
                gray.resize(static_cast<size_t>(src.rows) * src.cols);
                ops::toGray(s, gray.data(), src.rows, src.cols,
                            src.channels);
                g = gray.data();
            }
            MatDesc dst = ctx.allocMat(src.rows, src.cols, 1,
                                       "edges");
            ops::cannyEdges(
                g,
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols, lo, hi);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements() * 3);
            return retMat(ctx, dst, "edges");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.resize";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            uint32_t drows = static_cast<uint32_t>(args[1].asU64());
            uint32_t dcols = static_cast<uint32_t>(args[2].asU64());
            MatDesc dst =
                ctx.allocMat(drows, dcols, src.channels, "resized");
            ops::resizeBilinear(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                src.rows, src.cols, src.channels,
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                drows, dcols);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(dst.elements());
            return retMat(ctx, dst, "resized");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.equalizeHist";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            if (src.channels != 1)
                util::fatal("cv2.equalizeHist: expects grayscale");
            MatDesc dst =
                ctx.allocMat(src.rows, src.cols, 1, "equalized");
            ops::equalizeHist(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            return retMat(ctx, dst, "equalized");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.threshold";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            uint8_t thresh = static_cast<uint8_t>(args[1].asU64());
            uint8_t maxval = static_cast<uint8_t>(args[2].asU64());
            MatDesc dst = ctx.allocMat(src.rows, src.cols,
                                       src.channels, "thresh");
            ops::threshold(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.byteLen(), thresh, maxval);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            return retMat(ctx, dst, "thresh");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.warpPerspective";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            double h[9];
            for (int i = 0; i < 9; ++i)
                h[i] = args[static_cast<size_t>(1 + i)].asF64();
            MatDesc dst = ctx.allocMat(src.rows, src.cols,
                                       src.channels, "warped");
            ops::warpPerspective(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols, src.channels, h);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements() * 2);
            return retMat(ctx, dst, "warped");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.findContours";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            if (src.channels != 1)
                util::fatal("cv2.findContours: expects binary image");
            std::vector<ops::Box> boxes;
            uint32_t count = ops::connectedComponents(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                src.rows, src.cols, &boxes);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            std::vector<uint8_t> blob(boxes.size() *
                                      sizeof(ops::Box));
            std::memcpy(blob.data(), boxes.data(), blob.size());
            return {Value(static_cast<uint64_t>(count)),
                    Value(std::move(blob))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.matchTemplate";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &img = getMat(ctx, args, 0);
            const MatDesc &tmpl = getMat(ctx, args, 1);
            checkPixelExploit(ctx, desc, img);
            if (img.channels != 1 || tmpl.channels != 1)
                util::fatal("cv2.matchTemplate: expects grayscale");
            uint32_t br = 0, bc = 0;
            uint64_t score = ops::templateMatchBest(
                ctx.space().checkedSpan(img.addr, img.byteLen()),
                img.rows, img.cols,
                ctx.space().checkedSpan(tmpl.addr, tmpl.byteLen()),
                tmpl.rows, tmpl.cols, br, bc);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(static_cast<size_t>(img.elements()) *
                              tmpl.elements() / 64 + 1);
            return {Value(static_cast<uint64_t>(br)),
                    Value(static_cast<uint64_t>(bc)), Value(score)};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.CascadeClassifier.detectMultiScale";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = kProcessSyscalls;
        api.cves = {"CVE-2019-5063", "CVE-2019-5064",
                    "CVE-2019-14491", "CVE-2019-14492",
                    "CVE-2019-14493"};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            // args: image (gray), cascade template (gray).
            const MatDesc &img = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, img);
            if (img.channels != 1)
                util::fatal("detectMultiScale: expects grayscale");
            // "Detection": threshold + connected components, a real
            // (if simple) object detector over the pixel data.
            std::vector<uint8_t> bin(img.byteLen());
            ops::threshold(
                ctx.space().checkedSpan(img.addr, img.byteLen()),
                bin.data(), img.byteLen(), 128, 255);
            std::vector<ops::Box> boxes;
            ops::connectedComponents(bin.data(), img.rows, img.cols,
                                     &boxes);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(img.elements() * 4);
            std::vector<uint8_t> blob(boxes.size() *
                                      sizeof(ops::Box));
            std::memcpy(blob.data(), boxes.data(), blob.size());
            return {Value(static_cast<uint64_t>(boxes.size())),
                    Value(std::move(blob))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.rectangle";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &mat = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, mat);
            ops::Box box = {static_cast<uint32_t>(args[1].asU64()),
                            static_cast<uint32_t>(args[2].asU64()),
                            static_cast<uint32_t>(args[3].asU64()),
                            static_cast<uint32_t>(args[4].asU64())};
            uint8_t color = static_cast<uint8_t>(args[5].asU64());
            ops::drawRect(
                ctx.space().checkedSpan(mat.addr, mat.byteLen(), true),
                mat.rows, mat.cols, mat.channels, box, color);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            // Drawing into a large Mat dirties cache lines across the
            // whole image footprint; charge proportional compute.
            ctx.chargeCompute(mat.elements() / 8 +
                              (box[2] + box[3]) * 2 + 1);
            // Draw APIs mutate in place; return the same ref.
            return {args[0]};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.putText";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &mat = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, mat);
            const std::string &text = args[1].asStr();
            uint32_t r = static_cast<uint32_t>(args[2].asU64());
            uint32_t c = static_cast<uint32_t>(args[3].asU64());
            uint8_t color = static_cast<uint8_t>(args[4].asU64());
            ops::drawText(
                ctx.space().checkedSpan(mat.addr, mat.byteLen(), true),
                mat.rows, mat.cols, mat.channels, r, c, text, color);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(mat.elements() / 8 +
                              text.size() * 35 + 1);
            return {args[0]};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.addWeighted";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &a = getMat(ctx, args, 0);
            const MatDesc &b = getMat(ctx, args, 1);
            checkPixelExploit(ctx, desc, a);
            double alpha = args[2].asF64();
            double beta = args[3].asF64();
            if (a.byteLen() != b.byteLen())
                util::fatal("cv2.addWeighted: shape mismatch");
            MatDesc dst =
                ctx.allocMat(a.rows, a.cols, a.channels, "blend");
            ops::addWeighted(
                ctx.space().checkedSpan(a.addr, a.byteLen()),
                ctx.space().checkedSpan(b.addr, b.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                a.byteLen(), alpha, beta);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(a.elements());
            return retMat(ctx, dst, "blend");
        };
        registry.add(std::move(api));
    }

    addUnary("cv2.normalize",
             +[](const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
                 uint32_t ch) {
                 ops::normalizeMinMax(
                     s, d, static_cast<size_t>(r) * c * ch);
             });
    addUnary("cv2.bitwise_not",
             +[](const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
                 uint32_t ch) {
                 ops::invert(s, d, static_cast<size_t>(r) * c * ch);
             });

    {
        ApiDescriptor api;
        api.name = "cv2.absdiff";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = binaryBody(&ops::absdiff);
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.Sobel";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            if (src.channels != 1)
                util::fatal("cv2.Sobel: expects grayscale");
            MatDesc dst =
                ctx.allocMat(src.rows, src.cols, 1, "sobel");
            ops::sobelMagnitude(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements() * 2);
            return retMat(ctx, dst, "sobel");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.filter2D";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            float k[9];
            for (int i = 0; i < 9; ++i)
                k[i] = static_cast<float>(
                    args[static_cast<size_t>(1 + i)].asF64());
            MatDesc dst = ctx.allocMat(src.rows, src.cols,
                                       src.channels, "filtered");
            ops::convFilter3x3(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                ctx.space().checkedSpan(dst.addr, dst.byteLen(), true),
                src.rows, src.cols, src.channels, k);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements() * 9);
            return retMat(ctx, dst, "filtered");
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.calcHist";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const MatDesc &src = getMat(ctx, args, 0);
            checkPixelExploit(ctx, desc, src);
            uint32_t hist[256];
            ops::histogram256(
                ctx.space().checkedSpan(src.addr, src.byteLen()),
                src.byteLen(), hist);
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            std::vector<uint8_t> blob(sizeof(hist));
            std::memcpy(blob.data(), hist, sizeof(hist));
            return {Value(std::move(blob))};
        };
        registry.add(std::move(api));
    }

    // Type-neutral utility APIs (§4.2): pure memory plumbing used
    // alongside every other type.
    for (const char *name :
         {"cv2.createMemStorage", "cv2.alloc", "cv2.copyTo"}) {
        ApiDescriptor api;
        api.name = name;
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Processing;
        api.typeNeutral = true;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk, Syscall::Mmap};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            if (args.empty() ||
                args[0].kind() != Value::Kind::Ref) {
                // Bare allocation utility: returns an empty 1-page
                // buffer object.
                osim::Addr addr = ctx.kernel().sysMmap(
                    ctx.proc(), osim::kPageSize, osim::PermRW,
                    desc.name);
                uint64_t id = ctx.store().putBytes(
                    addr, osim::kPageSize, desc.name);
                return {refValue(ctx.partition(), id)};
            }
            // copyTo: deep copy of a Mat.
            const MatDesc &src = getMat(ctx, args, 0);
            MatDesc dst = ctx.allocMat(src.rows, src.cols,
                                       src.channels, "copy");
            const uint8_t *s =
                ctx.space().checkedSpan(src.addr, src.byteLen());
            uint8_t *d = ctx.space().checkedSpan(dst.addr,
                                                 dst.byteLen(), true);
            std::memcpy(d, s, src.byteLen());
            ctx.traceOp(StorageKind::Mem, StorageKind::Mem);
            ctx.chargeCompute(src.elements());
            return retMat(ctx, dst, "copy");
        };
        registry.add(std::move(api));
    }

    // ================= Visualizing ====================================

    {
        ApiDescriptor api;
        api.name = "cv2.imshow";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opGuiMem()};
        api.syscalls = kGuiSyscalls;
        // The motivating example's DoS vulnerability in imshow()
        // (Fig. 1 (B)); no public CVE id is given in the paper, so a
        // clearly-marked simulation id is used.
        api.cves = {"SIM-IMSHOW-DOS"};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            const std::string &window = args[0].asStr();
            const MatDesc &mat = getMat(ctx, args, 1);
            checkPixelExploit(ctx, desc, mat);
            osim::Fd fd = ctx.guiFd();
            ctx.kernel().guiShow(ctx.proc(), fd, window, mat.cols,
                                 mat.rows, mat.addr, mat.byteLen());
            ctx.traceOp(StorageKind::Gui, StorageKind::Mem);
            return {};
        };
        registry.add(std::move(api));
    }

    auto addGuiNoop = [&registry](const std::string &name) {
        ApiDescriptor api;
        api.name = name;
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opGuiMem()};
        api.syscalls = kGuiSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &) -> ValueList {
            osim::Fd fd = ctx.guiFd();
            ctx.kernel().sysSelect(ctx.proc(), fd);
            ctx.traceOp(StorageKind::Gui, StorageKind::Mem);
            return {};
        };
        registry.add(std::move(api));
    };
    addGuiNoop("cv2.namedWindow");
    addGuiNoop("cv2.moveWindow");
    addGuiNoop("cv2.setWindowTitle");
    addGuiNoop("cv2.destroyAllWindows");

    {
        ApiDescriptor api;
        api.name = "cv2.pollKey";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opMemGui()};
        api.syscalls = kGuiSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &) -> ValueList {
            osim::Fd fd = ctx.guiFd();
            ctx.kernel().sysSelect(ctx.proc(), fd);
            int key = ctx.kernel().display().popKey();
            ctx.traceOp(StorageKind::Mem, StorageKind::Gui);
            return {Value(static_cast<int64_t>(key))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.getMouseWheelDelta";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opMemGui()};
        api.syscalls = kGuiSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &) -> ValueList {
            osim::Fd fd = ctx.guiFd();
            ctx.kernel().sysSelect(ctx.proc(), fd);
            ctx.traceOp(StorageKind::Mem, StorageKind::Gui);
            return {Value(static_cast<int64_t>(0))};
        };
        registry.add(std::move(api));
    }

    // ================= Storing ========================================

    {
        ApiDescriptor api;
        api.name = "cv2.imwrite";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Storing;
        api.ir = {opFileMem()};
        api.syscalls = kStoreSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            const std::string &path = args[0].asStr();
            const MatDesc &mat = getMat(ctx, args, 1);
            std::vector<uint8_t> pixels(mat.byteLen());
            ctx.space().read(mat.addr, pixels.data(), pixels.size());
            std::vector<uint8_t> file = encodeImageFile(
                mat.rows, mat.cols, mat.channels, pixels);
            storeFileBytes(ctx, path, file);
            ctx.traceOp(StorageKind::File, StorageKind::Mem);
            return {Value(static_cast<uint64_t>(1))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.VideoWriter.write";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Storing;
        api.ir = {opFileMem()};
        api.syscalls = kStoreSyscalls;
        api.syscalls.insert(Syscall::Lseek); // appends at stream end
        api.stateful = true; // keeps an open output stream position
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            const std::string &path = args[0].asStr();
            const MatDesc &mat = getMat(ctx, args, 1);
            std::vector<uint8_t> pixels(mat.byteLen());
            ctx.space().read(mat.addr, pixels.data(), pixels.size());
            // Append the frame to the "video" container file.
            osim::Kernel &kernel = ctx.kernel();
            osim::Process &proc = ctx.proc();
            osim::Fd fd = kernel.sysOpen(proc, path, true);
            size_t end = kernel.vfs().sizeOf(path);
            kernel.sysLseek(proc, fd, end);
            osim::Addr staging = ctx.space().alloc(
                pixels.size() ? pixels.size() : 1, osim::PermRW,
                "frame-out");
            ctx.space().write(staging, pixels.data(), pixels.size());
            kernel.sysWrite(proc, fd, staging, pixels.size());
            kernel.sysClose(proc, fd);
            ctx.space().unmap(staging);
            ctx.traceOp(StorageKind::File, StorageKind::Mem);
            return {Value(static_cast<uint64_t>(pixels.size()))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "cv2.writeOpticalFlow";
        api.framework = Framework::OpenCV;
        api.declaredType = ApiType::Storing;
        api.ir = {opFileMem()};
        api.syscalls = kStoreSyscalls;
        api.fn = registry.require("cv2.imwrite").fn;
        registry.add(std::move(api));
    }

    // ================= Companion frameworks ===========================

    {
        ApiDescriptor api;
        api.name = "pil.Image.open";
        api.framework = Framework::Pillow;
        api.declaredType = ApiType::Loading;
        api.ir = {opMemFile()};
        api.syscalls = kLoadFileSyscalls;
        api.cves = {"CVE-2020-10378"};
        api.fn = [](ExecContext &ctx, const ApiDescriptor &desc,
                    const ValueList &args) -> ValueList {
            std::vector<uint8_t> bytes =
                loadFileBytes(ctx, args[0].asStr());
            return decodeToMat(ctx, desc, bytes,
                               "pil:" + args[0].asStr());
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "pil.Image.save";
        api.framework = Framework::Pillow;
        api.declaredType = ApiType::Storing;
        api.ir = {opFileMem()};
        api.syscalls = kStoreSyscalls;
        api.fn = registry.require("cv2.imwrite").fn;
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "pil.Image.resize";
        api.framework = Framework::Pillow;
        api.declaredType = ApiType::Processing;
        api.ir = {opMemMem()};
        api.syscalls = {Syscall::Brk};
        api.fn = registry.require("cv2.resize").fn;
        registry.add(std::move(api));
    }

    // pandas / json / Matplotlib: the Table 2 footnote cases whose
    // data flows the static pass cannot see (indirect dispatch inside
    // the Python runtime) — IR ops flagged indirect.
    {
        ApiDescriptor api;
        api.name = "pd.read_csv";
        api.framework = Framework::Pandas;
        api.declaredType = ApiType::Loading;
        api.ir = {indirect(opMemFile())};
        api.syscalls = kLoadFileSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            std::vector<uint8_t> bytes =
                loadFileBytes(ctx, args[0].asStr());
            osim::Addr addr = ctx.space().alloc(
                bytes.size() ? bytes.size() : 1, osim::PermRW, "csv");
            ctx.space().write(addr, bytes.data(), bytes.size());
            uint64_t id =
                ctx.store().putBytes(addr, bytes.size(), "csv");
            ctx.traceOp(StorageKind::Mem, StorageKind::File);
            ctx.chargeCompute(bytes.size());
            return {refValue(ctx.partition(), id)};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "pd.DataFrame.to_csv";
        api.framework = Framework::Pandas;
        api.declaredType = ApiType::Storing;
        api.ir = {indirect(opFileMem())};
        api.syscalls = kStoreSyscalls;
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            const std::string &path = args[0].asStr();
            const StoredObject &obj =
                ctx.store().get(argObjectId(args, 1));
            std::vector<uint8_t> bytes(obj.byteLen);
            ctx.space().read(obj.addr, bytes.data(), bytes.size());
            storeFileBytes(ctx, path, bytes);
            ctx.traceOp(StorageKind::File, StorageKind::Mem);
            return {Value(static_cast<uint64_t>(bytes.size()))};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "json.load";
        api.framework = Framework::Json;
        api.declaredType = ApiType::Loading;
        api.ir = {indirect(opMemFile())};
        api.syscalls = kLoadFileSyscalls;
        api.fn = registry.require("pd.read_csv").fn;
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "json.dump";
        api.framework = Framework::Json;
        api.declaredType = ApiType::Storing;
        api.ir = {indirect(opFileMem())};
        api.syscalls = kStoreSyscalls;
        api.fn = registry.require("pd.DataFrame.to_csv").fn;
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "plt.show";
        api.framework = Framework::Matplotlib;
        api.declaredType = ApiType::Visualizing;
        api.ir = {indirect(opGuiMem())};
        api.syscalls = kGuiSyscalls;
        api.fn = registry.require("cv2.imshow").fn;
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "plt.savefig";
        api.framework = Framework::Matplotlib;
        api.declaredType = ApiType::Storing;
        api.ir = {indirect(opFileMem())};
        api.syscalls = kStoreSyscalls;
        api.fn = registry.require("cv2.imwrite").fn;
        registry.add(std::move(api));
    }

    // GTK APIs used by the MComix3 case study (§5.4.2): the recent-
    // files manager is GUI state held in the visualizing process.
    {
        ApiDescriptor api;
        api.name = "gtk.RecentManager.add";
        api.framework = Framework::Gtk;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opGuiMem()};
        api.syscalls = kGuiSyscalls;
        api.stateful = true; // accumulates the recent-files list
        api.fn = [](ExecContext &ctx, const ApiDescriptor &,
                    const ValueList &args) -> ValueList {
            osim::Fd fd = ctx.guiFd();
            ctx.kernel().sysSelect(ctx.proc(), fd);
            // Store the recent file name in process-local GUI state.
            const std::string &name = args[0].asStr();
            osim::Addr addr = ctx.space().alloc(
                name.size() ? name.size() : 1, osim::PermRW,
                "recent-file");
            ctx.space().write(addr, name.data(), name.size());
            ctx.store().putBytes(addr, name.size(), "recent-file");
            ctx.traceOp(StorageKind::Gui, StorageKind::Mem);
            return {};
        };
        registry.add(std::move(api));
    }

    {
        ApiDescriptor api;
        api.name = "gtk.Window.show";
        api.framework = Framework::Gtk;
        api.declaredType = ApiType::Visualizing;
        api.ir = {opGuiMem()};
        api.syscalls = kGuiSyscalls;
        api.fn = registry.require("cv2.imshow").fn;
        registry.add(std::move(api));
    }
}

} // namespace freepart::fw
