#include "fw/object_store.hh"

#include "util/logging.hh"

namespace freepart::fw {

ObjectStore::ObjectStore(osim::Kernel &kernel, osim::Pid pid,
                         uint64_t *id_counter)
    : kernel(kernel), pid_(pid), idCounter(id_counter)
{
    if (!id_counter)
        util::panic("ObjectStore: null id counter");
    bindObserver();
}

ObjectStore::~ObjectStore()
{
    // The kernel (and its processes) outlive the runtime that owns
    // this store; leave no dangling observer behind.
    kernel.process(pid_).space().setWriteObserver(nullptr);
}

void
ObjectStore::bindObserver()
{
    kernel.process(pid_).space().setWriteObserver(
        [this](osim::Addr addr, size_t len) { noteWrite(addr, len); });
}

void
ObjectStore::noteWrite(osim::Addr addr, size_t len)
{
    // Every mutating access advances the epoch, whether or not it
    // lands inside a registered object — the counter is a global
    // "time" for this process's memory, not a per-object one.
    ++writeEpoch_;
    auto it = byAddr.upper_bound(addr);
    if (it == byAddr.begin())
        return;
    --it;
    auto obj = objects.find(it->second);
    if (obj == objects.end())
        return;
    if (addr < obj->second.addr + obj->second.byteLen &&
        addr + len > obj->second.addr)
        obj->second.dirtyEpoch = writeEpoch_;
}

uint64_t
ObjectStore::putMat(const MatDesc &desc, const std::string &label)
{
    uint64_t id = ++*idCounter;
    StoredObject obj;
    obj.kind = ObjKind::Mat;
    obj.mat = desc;
    obj.addr = desc.addr;
    obj.byteLen = desc.byteLen();
    obj.label = label;
    auto [it, ok] = objects.emplace(id, std::move(obj));
    byAddr[it->second.addr] = id;
    markDirty(it->second); // fresh objects are dirty by definition
    return id;
}

uint64_t
ObjectStore::putTensor(const TensorDesc &desc, const std::string &label)
{
    uint64_t id = ++*idCounter;
    StoredObject obj;
    obj.kind = ObjKind::Tensor;
    obj.tensor = desc;
    obj.addr = desc.addr;
    obj.byteLen = desc.byteLen();
    obj.label = label;
    auto [it, ok] = objects.emplace(id, std::move(obj));
    byAddr[it->second.addr] = id;
    markDirty(it->second);
    return id;
}

uint64_t
ObjectStore::putBytes(osim::Addr addr, size_t len,
                      const std::string &label)
{
    uint64_t id = ++*idCounter;
    StoredObject obj;
    obj.kind = ObjKind::Bytes;
    obj.addr = addr;
    obj.byteLen = len;
    obj.label = label;
    auto [it, ok] = objects.emplace(id, std::move(obj));
    byAddr[it->second.addr] = id;
    markDirty(it->second);
    return id;
}

const StoredObject &
ObjectStore::get(uint64_t id) const
{
    auto it = objects.find(id);
    if (it == objects.end())
        util::panic("ObjectStore(pid %u): unknown object %llu "
                    "(shard %u, index %llu)",
                    pid_, static_cast<unsigned long long>(id),
                    shardOfObjectId(id),
                    static_cast<unsigned long long>(
                        objectIdIndex(id)));
    return it->second;
}

const MatDesc &
ObjectStore::mat(uint64_t id) const
{
    const StoredObject &obj = get(id);
    if (obj.kind != ObjKind::Mat)
        util::panic("ObjectStore: object %llu is not a Mat",
                    static_cast<unsigned long long>(id));
    return obj.mat;
}

const TensorDesc &
ObjectStore::tensor(uint64_t id) const
{
    const StoredObject &obj = get(id);
    if (obj.kind != ObjKind::Tensor)
        util::panic("ObjectStore: object %llu is not a Tensor",
                    static_cast<unsigned long long>(id));
    return obj.tensor;
}

void
ObjectStore::erase(uint64_t id)
{
    auto it = objects.find(id);
    if (it == objects.end())
        return;
    auto by = byAddr.find(it->second.addr);
    if (by != byAddr.end() && by->second == id)
        byAddr.erase(by);
    objects.erase(it);
}

std::vector<uint8_t>
ObjectStore::serialize(uint64_t id) const
{
    const StoredObject &obj = get(id);
    const osim::AddressSpace &space = kernel.process(pid_).space();
    switch (obj.kind) {
      case ObjKind::Mat:
        return matToBytes(space, obj.mat);
      case ObjKind::Tensor:
        return tensorToBytes(space, obj.tensor);
      case ObjKind::Bytes: {
        std::vector<uint8_t> out(obj.byteLen);
        space.read(obj.addr, out.data(), obj.byteLen);
        return out;
      }
    }
    util::panic("ObjectStore::serialize: bad kind");
}

void
ObjectStore::materialize(uint64_t id, ObjKind kind,
                         const std::vector<uint8_t> &bytes,
                         const std::string &label)
{
    osim::AddressSpace &space = kernel.process(pid_).space();
    StoredObject obj;
    obj.kind = kind;
    obj.label = label;
    switch (kind) {
      case ObjKind::Mat:
        obj.mat = matFromBytes(space, bytes, label);
        obj.addr = obj.mat.addr;
        obj.byteLen = obj.mat.byteLen();
        break;
      case ObjKind::Tensor:
        obj.tensor = tensorFromBytes(space, bytes, label);
        obj.addr = obj.tensor.addr;
        obj.byteLen = obj.tensor.byteLen();
        break;
      case ObjKind::Bytes:
        obj.addr = space.alloc(bytes.size() ? bytes.size() : 1,
                               osim::PermRW, label);
        obj.byteLen = bytes.size();
        space.write(obj.addr, bytes.data(), bytes.size());
        break;
    }
    // A re-materialize moves the object to a fresh buffer; the stale
    // address must stop resolving to this id.
    auto old = objects.find(id);
    if (old != objects.end()) {
        auto by = byAddr.find(old->second.addr);
        if (by != byAddr.end() && by->second == id)
            byAddr.erase(by);
    }
    StoredObject &stored = objects[id] = std::move(obj);
    byAddr[stored.addr] = id;
    markDirty(stored);
}

std::vector<uint64_t>
ObjectStore::ids() const
{
    std::vector<uint64_t> out;
    out.reserve(objects.size());
    for (const auto &[id, obj] : objects)
        out.push_back(id);
    return out;
}

} // namespace freepart::fw
