#include "fw/vuln.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace freepart::fw {

namespace {

constexpr uint32_t kPayloadMagic = 0x4c495645; // "EVIL"

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    const auto *b = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), b, b + 4);
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    const auto *b = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), b, b + 8);
}

} // namespace

const char *
payloadKindName(PayloadKind kind)
{
    switch (kind) {
      case PayloadKind::OobWrite:
        return "oob-write";
      case PayloadKind::Exfiltrate:
        return "exfiltrate";
      case PayloadKind::Dos:
        return "dos";
      case PayloadKind::CodeRewrite:
        return "code-rewrite";
      case PayloadKind::ForkBomb:
        return "fork-bomb";
    }
    return "?";
}

std::vector<uint8_t>
encodePayload(const ExploitPayload &payload)
{
    std::vector<uint8_t> out;
    put32(out, kPayloadMagic);
    out.push_back(static_cast<uint8_t>(payload.kind));
    put32(out, static_cast<uint32_t>(payload.cve.size()));
    out.insert(out.end(), payload.cve.begin(), payload.cve.end());
    put64(out, payload.targetAddr);
    put32(out, static_cast<uint32_t>(payload.writeData.size()));
    out.insert(out.end(), payload.writeData.begin(),
               payload.writeData.end());
    put64(out, payload.leakAddr);
    put32(out, payload.leakLen);
    put32(out, static_cast<uint32_t>(payload.dest.size()));
    out.insert(out.end(), payload.dest.begin(), payload.dest.end());
    put32(out, payload.forkCount);
    return out;
}

std::optional<ExploitPayload>
decodePayload(const std::vector<uint8_t> &bytes)
{
    size_t pos = 0;
    auto get32 = [&](uint32_t &v) {
        if (pos + 4 > bytes.size())
            return false;
        std::memcpy(&v, bytes.data() + pos, 4);
        pos += 4;
        return true;
    };
    auto get64 = [&](uint64_t &v) {
        if (pos + 8 > bytes.size())
            return false;
        std::memcpy(&v, bytes.data() + pos, 8);
        pos += 8;
        return true;
    };
    auto getStr = [&](std::string &s) {
        uint32_t n = 0;
        if (!get32(n) || pos + n > bytes.size())
            return false;
        s.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                 bytes.begin() + static_cast<ptrdiff_t>(pos + n));
        pos += n;
        return true;
    };

    uint32_t magic = 0;
    if (!get32(magic) || magic != kPayloadMagic)
        return std::nullopt;
    if (pos >= bytes.size())
        return std::nullopt;

    ExploitPayload p;
    p.kind = static_cast<PayloadKind>(bytes[pos++]);
    if (!getStr(p.cve))
        return std::nullopt;
    if (!get64(p.targetAddr))
        return std::nullopt;
    uint32_t wlen = 0;
    if (!get32(wlen) || pos + wlen > bytes.size())
        return std::nullopt;
    p.writeData.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                       bytes.begin() +
                           static_cast<ptrdiff_t>(pos + wlen));
    pos += wlen;
    if (!get64(p.leakAddr))
        return std::nullopt;
    if (!get32(p.leakLen))
        return std::nullopt;
    if (!getStr(p.dest))
        return std::nullopt;
    if (!get32(p.forkCount))
        return std::nullopt;
    return p;
}

void
executePayload(ExecContext &ctx, const ExploitPayload &payload)
{
    osim::Kernel &kernel = ctx.kernel();
    osim::Process &proc = ctx.proc();

    switch (payload.kind) {
      case PayloadKind::OobWrite:
        // Arbitrary write with the process's own memory view. Under
        // isolation the attacker-known address is simply not mapped
        // here (or is read-only under temporal protection) -> fault.
        proc.space().write(payload.targetAddr,
                           payload.writeData.data(),
                           payload.writeData.size());
        break;

      case PayloadKind::Exfiltrate: {
        // Read the secret, then ship it out: socket + connect + send.
        // Each step can be stopped: the read by the process boundary,
        // the syscalls by the seccomp allowlist.
        std::vector<uint8_t> secret(payload.leakLen);
        proc.space().read(payload.leakAddr, secret.data(),
                          payload.leakLen);
        osim::Addr stage = proc.space().alloc(
            payload.leakLen ? payload.leakLen : 1, osim::PermRW,
            "exfil-stage");
        proc.space().write(stage, secret.data(), payload.leakLen);
        osim::Fd fd = kernel.sysSocket(proc);
        kernel.sysConnect(proc, fd, payload.dest);
        kernel.sysSend(proc, fd, stage, payload.leakLen);
        break;
      }

      case PayloadKind::Dos:
        kernel.faultProcess(proc, "DoS payload (" + payload.cve + ")");
        throw osim::ProcessCrash(proc.pid(),
                                 "DoS payload (" + payload.cve + ")");

      case PayloadKind::CodeRewrite: {
        // Flip a region writable, then overwrite it — the classic
        // code-rewriting step. The mprotect syscall is the choke
        // point FreePart's allowlist removes after initialization.
        kernel.sysMprotect(proc, payload.targetAddr,
                           payload.writeData.size()
                               ? payload.writeData.size()
                               : 1,
                           osim::PermRWX);
        proc.space().write(payload.targetAddr,
                           payload.writeData.data(),
                           payload.writeData.size());
        break;
      }

      case PayloadKind::ForkBomb:
        for (uint32_t i = 0; i < payload.forkCount; ++i)
            kernel.sysFork(proc);
        break;
    }
}

void
maybeTriggerExploit(ExecContext &ctx,
                    const std::vector<std::string> &api_cves,
                    const std::vector<uint8_t> &input)
{
    std::optional<ExploitPayload> payload = decodePayload(input);
    if (!payload)
        return;
    bool vulnerable =
        std::find(api_cves.begin(), api_cves.end(), payload->cve) !=
        api_cves.end();
    if (!vulnerable) {
        // A patched / unaffected API treats the payload as garbage
        // pixels; nothing happens.
        return;
    }
    executePayload(ctx, *payload);
}

} // namespace freepart::fw
