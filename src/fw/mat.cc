#include "fw/mat.hh"

#include <cstring>

#include "util/logging.hh"

namespace freepart::fw {

MatView::MatView(const osim::AddressSpace &space, const MatDesc &d)
    : desc(d)
{
    ro = space.checkedSpan(desc.addr, desc.byteLen());
}

MatView::MatView(osim::AddressSpace &space, const MatDesc &d,
                 bool writable)
    : desc(d)
{
    if (writable) {
        rw = space.checkedSpan(desc.addr, desc.byteLen(), true);
        ro = rw;
    } else {
        ro = space.checkedSpan(desc.addr, desc.byteLen());
    }
}

uint8_t *
MatView::dataMutable()
{
    if (!rw)
        util::panic("MatView: mutable access through read-only view");
    return rw;
}

std::vector<uint8_t>
matToBytes(const osim::AddressSpace &space, const MatDesc &desc)
{
    std::vector<uint8_t> out(kMatHeaderBytes + desc.byteLen());
    std::memcpy(out.data(), &desc.rows, sizeof(uint32_t));
    std::memcpy(out.data() + 4, &desc.cols, sizeof(uint32_t));
    std::memcpy(out.data() + 8, &desc.channels, sizeof(uint32_t));
    space.read(desc.addr, out.data() + kMatHeaderBytes,
               desc.byteLen());
    return out;
}

MatDesc
matFromBytes(osim::AddressSpace &space,
             const std::vector<uint8_t> &bytes, const std::string &label)
{
    if (bytes.size() < kMatHeaderBytes)
        util::fatal("matFromBytes: truncated header (%zu bytes)",
                    bytes.size());
    MatDesc desc;
    std::memcpy(&desc.rows, bytes.data(), sizeof(uint32_t));
    std::memcpy(&desc.cols, bytes.data() + 4, sizeof(uint32_t));
    std::memcpy(&desc.channels, bytes.data() + 8, sizeof(uint32_t));
    if (bytes.size() < kMatHeaderBytes + desc.byteLen())
        util::fatal("matFromBytes: truncated pixels (%zu < %zu)",
                    bytes.size() - kMatHeaderBytes, desc.byteLen());
    desc.addr = space.alloc(desc.byteLen() ? desc.byteLen() : 1,
                            osim::PermRW, label);
    space.write(desc.addr, bytes.data() + kMatHeaderBytes,
                desc.byteLen());
    return desc;
}

} // namespace freepart::fw
