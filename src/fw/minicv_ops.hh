/**
 * @file
 * Pure image-processing kernels backing the MiniCV API bodies. These
 * operate over raw u8 buffers (already permission-checked by the
 * caller through MatView/checkedSpan) and contain the real per-pixel
 * algorithms — blur, morphology, edges, warps, drawing — so MiniCV
 * workloads exercise genuine data-processing compute.
 */

#ifndef FREEPART_FW_MINICV_OPS_HH
#define FREEPART_FW_MINICV_OPS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace freepart::fw::ops {

/** Axis-aligned box: {top row, left col, height, width}. */
using Box = std::array<uint32_t, 4>;

/** 3x3 separable Gaussian blur (kernel [1 2 1]/4 per axis). */
void gaussianBlur3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
                     uint32_t cols, uint32_t ch);

/** k x k box blur (mean filter), k odd. */
void boxBlur(const uint8_t *src, uint8_t *dst, uint32_t rows,
             uint32_t cols, uint32_t ch, uint32_t k);

/** 3x3 grayscale erosion (min filter), per channel. */
void erode3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
              uint32_t cols, uint32_t ch);

/** 3x3 grayscale dilation (max filter), per channel. */
void dilate3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
               uint32_t cols, uint32_t ch);

/** Morphological opening (erode then dilate). */
void morphOpen(const uint8_t *src, uint8_t *dst, uint32_t rows,
               uint32_t cols, uint32_t ch);

/** Morphological closing (dilate then erode). */
void morphClose(const uint8_t *src, uint8_t *dst, uint32_t rows,
                uint32_t cols, uint32_t ch);

/** Channel-mean grayscale conversion (any channel count -> 1). */
void toGray(const uint8_t *src, uint8_t *dst, uint32_t rows,
            uint32_t cols, uint32_t ch_in);

/** Sobel gradient magnitude of a grayscale image (clamped to u8). */
void sobelMagnitude(const uint8_t *gray, uint8_t *dst, uint32_t rows,
                    uint32_t cols);

/**
 * Simplified Canny: Sobel magnitude + double threshold with weak-edge
 * promotion by 8-neighbourhood.
 */
void cannyEdges(const uint8_t *gray, uint8_t *dst, uint32_t rows,
                uint32_t cols, uint8_t lo, uint8_t hi);

/** Nearest-neighbour resize. */
void resizeNearest(const uint8_t *src, uint32_t rows, uint32_t cols,
                   uint32_t ch, uint8_t *dst, uint32_t drows,
                   uint32_t dcols);

/** Bilinear resize. */
void resizeBilinear(const uint8_t *src, uint32_t rows, uint32_t cols,
                    uint32_t ch, uint8_t *dst, uint32_t drows,
                    uint32_t dcols);

/** Histogram equalization of a grayscale image. */
void equalizeHist(const uint8_t *src, uint8_t *dst, uint32_t rows,
                  uint32_t cols);

/** Binary threshold: dst = src > thresh ? maxval : 0. */
void threshold(const uint8_t *src, uint8_t *dst, size_t n,
               uint8_t thresh, uint8_t maxval);

/**
 * Perspective warp by 3x3 homography H (row-major), inverse-mapping
 * with nearest sampling; out-of-range pixels become 0.
 */
void warpPerspective(const uint8_t *src, uint8_t *dst, uint32_t rows,
                     uint32_t cols, uint32_t ch, const double h[9]);

/** Draw an axis-aligned rectangle outline. */
void drawRect(uint8_t *buf, uint32_t rows, uint32_t cols, uint32_t ch,
              const Box &box, uint8_t color);

/** Render text with a builtin 5x7 bitmap font (ASCII 32..127). */
void drawText(uint8_t *buf, uint32_t rows, uint32_t cols, uint32_t ch,
              uint32_t r, uint32_t c, const std::string &text,
              uint8_t color);

/**
 * 4-connected component labeling of a binary image.
 * @param bboxes  Optional out-param receiving per-component boxes.
 * @return Number of foreground components.
 */
uint32_t connectedComponents(const uint8_t *bin, uint32_t rows,
                             uint32_t cols,
                             std::vector<Box> *bboxes = nullptr);

/**
 * Exhaustive SSD template match of a grayscale template against a
 * grayscale image. Returns the best score and writes the position.
 */
uint64_t templateMatchBest(const uint8_t *img, uint32_t rows,
                           uint32_t cols, const uint8_t *tmpl,
                           uint32_t trows, uint32_t tcols,
                           uint32_t &best_r, uint32_t &best_c);

/** Horizontal flip. */
void flipHorizontal(const uint8_t *src, uint8_t *dst, uint32_t rows,
                    uint32_t cols, uint32_t ch);

/** dst = clamp(alpha*a + beta*b). */
void addWeighted(const uint8_t *a, const uint8_t *b, uint8_t *dst,
                 size_t n, double alpha, double beta);

/** Min-max normalize to the full 0..255 range. */
void normalizeMinMax(const uint8_t *src, uint8_t *dst, size_t n);

/** 256-bin intensity histogram. */
void histogram256(const uint8_t *src, size_t n, uint32_t out[256]);

/** Per-element absolute difference. */
void absdiff(const uint8_t *a, const uint8_t *b, uint8_t *dst,
             size_t n);

/** Bitwise inversion. */
void invert(const uint8_t *src, uint8_t *dst, size_t n);

/** Generic 3x3 convolution with a float kernel (clamped). */
void convFilter3x3(const uint8_t *src, uint8_t *dst, uint32_t rows,
                   uint32_t cols, uint32_t ch, const float k[9]);

} // namespace freepart::fw::ops

#endif // FREEPART_FW_MINICV_OPS_HH
