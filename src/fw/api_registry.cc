#include "fw/api_registry.hh"

#include "util/logging.hh"

namespace freepart::fw {

uint32_t
ApiRegistry::add(ApiDescriptor desc)
{
    if (index.count(desc.name))
        util::panic("ApiRegistry: duplicate API '%s'",
                    desc.name.c_str());
    desc.id = static_cast<uint32_t>(apis.size());
    index.emplace(desc.name, desc.id);
    apis.push_back(std::move(desc));
    return apis.back().id;
}

const ApiDescriptor &
ApiRegistry::byId(uint32_t id) const
{
    if (id >= apis.size())
        util::panic("ApiRegistry: bad id %u", id);
    return apis[id];
}

const ApiDescriptor *
ApiRegistry::byName(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? nullptr : &apis[it->second];
}

const ApiDescriptor &
ApiRegistry::require(const std::string &name) const
{
    const ApiDescriptor *desc = byName(name);
    if (!desc)
        util::fatal("ApiRegistry: no API named '%s'", name.c_str());
    return *desc;
}

std::vector<const ApiDescriptor *>
ApiRegistry::byFramework(Framework fw) const
{
    std::vector<const ApiDescriptor *> out;
    for (const ApiDescriptor &api : apis)
        if (api.framework == fw)
            out.push_back(&api);
    return out;
}

std::vector<const ApiDescriptor *>
ApiRegistry::vulnerable() const
{
    std::vector<const ApiDescriptor *> out;
    for (const ApiDescriptor &api : apis)
        if (api.hasCves())
            out.push_back(&api);
    return out;
}

ApiRegistry
buildFullRegistry()
{
    ApiRegistry registry;
    registerMiniCv(registry);
    registerMiniDnn(registry);
    return registry;
}

uint64_t
argObjectId(const ipc::ValueList &args, size_t idx)
{
    if (idx >= args.size())
        util::panic("argObjectId: index %zu of %zu args", idx,
                    args.size());
    return args[idx].asRef().objectId;
}

ipc::Value
refValue(uint32_t partition, uint64_t object_id)
{
    return ipc::Value(ipc::ObjectRef{partition, object_id});
}

} // namespace freepart::fw
