/**
 * @file
 * ExecContext: the environment a framework API body executes in. It
 * binds the body to one simulated process (its memory, fd table, and
 * syscall filter), one object store, and the tracing hooks the
 * dynamic analysis uses. Whether that process is the host (no
 * isolation) or an agent (FreePart / baselines) is decided by the
 * runtime — API bodies are oblivious, exactly like LD_PRELOAD-hooked
 * framework functions in the paper.
 */

#ifndef FREEPART_FW_EXEC_CONTEXT_HH
#define FREEPART_FW_EXEC_CONTEXT_HH

#include <vector>

#include "fw/api_types.hh"
#include "fw/object_store.hh"
#include "osim/kernel.hh"

namespace freepart::fw {

/** Per-process device-connection cache (persists across API calls). */
struct DeviceFds {
    osim::Fd camera = -1; //!< open fd for /dev/camera0
    osim::Fd gui = -1;    //!< connected GUI socket
    osim::Fd net = -1;    //!< connected download socket
};

/** Observed data-flow trace sink (dynamic analysis). */
struct FlowTrace {
    std::vector<FlowOp> ops;        //!< observed W(dst, R(src)) ops
    std::vector<osim::Syscall> syscalls; //!< not populated here; see
                                         //!< Process::syscallCounts
};

/**
 * Execution context for one framework API invocation.
 */
class ExecContext
{
  public:
    ExecContext(osim::Kernel &kernel, osim::Process &proc,
                ObjectStore &store, DeviceFds &devices,
                uint32_t partition)
        : kernel_(kernel), proc_(proc), store_(store),
          devices(devices), partition_(partition)
    {
    }

    osim::Kernel &kernel() { return kernel_; }
    osim::Process &proc() { return proc_; }
    osim::AddressSpace &space() { return proc_.space(); }
    ObjectStore &store() { return store_; }
    uint32_t partition() const { return partition_; }

    // ---- Dynamic-analysis tracing -----------------------------------

    /** Direct observed flow ops into sink (nullptr disables). */
    void setTraceSink(FlowTrace *sink) { trace = sink; }

    /** Record one observed data-flow operation. */
    void
    traceOp(StorageKind dst, StorageKind src)
    {
        if (trace)
            trace->ops.push_back({dst, src, false});
    }

    // ---- Costs -------------------------------------------------------

    /** Charge compute time for an n-element kernel. */
    void
    chargeCompute(size_t elements)
    {
        kernel_.advance(kernel_.costs().computeCost(elements));
    }

    // ---- Devices (lazily opened, cached per process) ------------------

    /** Open (once) and return the camera fd. */
    osim::Fd cameraFd();

    /**
     * Connect (once) and return the GUI socket fd. The one-time
     * connect() is exactly the init-only syscall pattern of §4.4.1.
     */
    osim::Fd guiFd();

    /** Connect (once) and return the network download socket. */
    osim::Fd netFd(const std::string &dest);

    // ---- Allocation helpers ------------------------------------------

    /** Allocate a Mat buffer in this process. */
    MatDesc allocMat(uint32_t rows, uint32_t cols, uint32_t channels,
                     const std::string &label = "mat");

    /** Allocate a Tensor buffer in this process. */
    TensorDesc allocTensor(std::vector<uint32_t> shape,
                           const std::string &label = "tensor");

  private:
    osim::Kernel &kernel_;
    osim::Process &proc_;
    ObjectStore &store_;
    DeviceFds &devices;
    uint32_t partition_;
    FlowTrace *trace = nullptr;
};

} // namespace freepart::fw

#endif // FREEPART_FW_EXEC_CONTEXT_HH
