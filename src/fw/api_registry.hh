/**
 * @file
 * The framework API registry: every MiniCV / MiniDNN API with its
 * ground-truth metadata (data-flow IR for the static analyzer,
 * syscall profile, statefulness, type-neutrality, CVE annotations)
 * and — for implemented APIs — an executable body. This is the
 * analogue of the framework symbol tables FreePart hooks via
 * LD_PRELOAD (§4.3).
 */

#ifndef FREEPART_FW_API_REGISTRY_HH
#define FREEPART_FW_API_REGISTRY_HH

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fw/api_types.hh"
#include "fw/exec_context.hh"
#include "ipc/codec.hh"
#include "osim/syscalls.hh"

namespace freepart::fw {

struct ApiDescriptor;

/**
 * Executable API body. Object arguments arrive as ipc Refs already
 * materialized in the executing process's ObjectStore; scalars and
 * strings arrive by value. Returns results with the same convention.
 */
using ApiFn = std::function<ipc::ValueList(
    ExecContext &, const ApiDescriptor &, const ipc::ValueList &)>;

/** Metadata + body of one framework API. */
struct ApiDescriptor {
    uint32_t id = 0;            //!< registry-assigned id
    std::string name;           //!< e.g. "cv2.imread"
    Framework framework = Framework::OpenCV;
    ApiType declaredType = ApiType::Processing; //!< ground truth
    std::vector<FlowOp> ir;     //!< static data-flow IR (Fig. 8)
    std::set<osim::Syscall> syscalls; //!< required syscalls (§4.4.1)
    bool stateful = false;      //!< keeps cross-call state (A.2.4)
    bool typeNeutral = false;   //!< context-typed utility (§4.2)
    std::vector<std::string> cves; //!< CVEs exploitable via this API
    ApiFn fn;                   //!< body; empty for modeled-only APIs

    bool implemented() const { return static_cast<bool>(fn); }
    bool hasCves() const { return !cves.empty(); }
};

/** Name-indexed table of ApiDescriptors. */
class ApiRegistry
{
  public:
    /** Register an API; returns the assigned id. */
    uint32_t add(ApiDescriptor desc);

    /** Look up by id; panics on unknown. */
    const ApiDescriptor &byId(uint32_t id) const;

    /** Look up by name; nullptr if absent. */
    const ApiDescriptor *byName(const std::string &name) const;

    /** Look up by name; panics if absent. */
    const ApiDescriptor &require(const std::string &name) const;

    size_t size() const { return apis.size(); }

    const std::vector<ApiDescriptor> &all() const { return apis; }

    /** All APIs belonging to one framework. */
    std::vector<const ApiDescriptor *>
    byFramework(Framework fw) const;

    /** All APIs carrying at least one CVE annotation. */
    std::vector<const ApiDescriptor *> vulnerable() const;

  private:
    std::vector<ApiDescriptor> apis;
    std::map<std::string, uint32_t> index;
};

/** Register all MiniCV (OpenCV-analogue) APIs. */
void registerMiniCv(ApiRegistry &registry);

/** Register all MiniDNN (Caffe/PyTorch/TensorFlow-analogue) APIs. */
void registerMiniDnn(ApiRegistry &registry);

/** Registry with both MiniCV and MiniDNN registered. */
ApiRegistry buildFullRegistry();

// ---- Argument helpers used by API bodies ----------------------------

/** Extract an object id from a Ref argument at index idx. */
uint64_t argObjectId(const ipc::ValueList &args, size_t idx);

/** Build a Ref value for an object in the given partition. */
ipc::Value refValue(uint32_t partition, uint64_t object_id);

} // namespace freepart::fw

#endif // FREEPART_FW_API_REGISTRY_HH
