#include "fw/api_types.hh"

#include "util/logging.hh"

namespace freepart::fw {

const char *
apiTypeName(ApiType type)
{
    switch (type) {
      case ApiType::Loading:
        return "Data Loading";
      case ApiType::Processing:
        return "Data Processing";
      case ApiType::Visualizing:
        return "Visualizing";
      case ApiType::Storing:
        return "Storing";
      case ApiType::Neutral:
        return "Type-neutral";
      case ApiType::Unknown:
        return "Unknown";
    }
    return "?";
}

const char *
apiTypeShortName(ApiType type)
{
    switch (type) {
      case ApiType::Loading:
        return "DL";
      case ApiType::Processing:
        return "DP";
      case ApiType::Visualizing:
        return "V";
      case ApiType::Storing:
        return "ST";
      case ApiType::Neutral:
        return "TN";
      case ApiType::Unknown:
        return "?";
    }
    return "?";
}

const char *
storageKindName(StorageKind kind)
{
    switch (kind) {
      case StorageKind::Mem:
        return "MEM";
      case StorageKind::Gui:
        return "GUI";
      case StorageKind::File:
        return "FILE";
      case StorageKind::Dev:
        return "DEV";
    }
    return "?";
}

std::string
flowOpName(const FlowOp &op)
{
    return std::string("W(") + storageKindName(op.dst) + ", R(" +
           storageKindName(op.src) + "))";
}

const char *
frameworkName(Framework fw)
{
    switch (fw) {
      case Framework::OpenCV:
        return "OpenCV";
      case Framework::Caffe:
        return "Caffe";
      case Framework::PyTorch:
        return "PyTorch";
      case Framework::TensorFlow:
        return "TensorFlow";
      case Framework::Keras:
        return "Keras";
      case Framework::Pillow:
        return "Pillow";
      case Framework::NumPy:
        return "NumPy";
      case Framework::Pandas:
        return "pandas";
      case Framework::Matplotlib:
        return "Matplotlib";
      case Framework::Json:
        return "json";
      case Framework::Gtk:
        return "GTK";
      case Framework::NumFrameworks:
        break;
    }
    return "?";
}

ApiType
classifyFlowOps(const std::vector<FlowOp> &ops)
{
    bool gui = false;
    bool load = false;
    bool store = false;
    bool mem = false;
    for (const FlowOp &op : ops) {
        if (op.dst == StorageKind::Gui || op.src == StorageKind::Gui) {
            gui = true;
        } else if (op.dst == StorageKind::Mem &&
                   (op.src == StorageKind::File ||
                    op.src == StorageKind::Dev)) {
            load = true;
        } else if ((op.dst == StorageKind::File ||
                    op.dst == StorageKind::Dev) &&
                   op.src == StorageKind::Mem) {
            store = true;
        } else if (op.dst == StorageKind::Mem &&
                   op.src == StorageKind::Mem) {
            mem = true;
        }
    }
    if (gui)
        return ApiType::Visualizing;
    if (load && store)
        // Unreduced load+store pattern: dominated by where the data
        // ends up. The file-copy reduction in the analysis module
        // normally rewrites this before classification; if both still
        // remain, treat as Loading (data ends in memory).
        return ApiType::Loading;
    if (load)
        return ApiType::Loading;
    if (store)
        return ApiType::Storing;
    if (mem)
        return ApiType::Processing;
    return ApiType::Unknown;
}

} // namespace freepart::fw
