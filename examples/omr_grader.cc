/**
 * @file
 * The motivating example (§3, Fig. 1-3) end to end: OMRChecker grades
 * student submissions; a malicious student submits a crafted image
 * exploiting the imread() decoder to corrupt the grading template,
 * and a second exploit DoS-crashes imshow(). Run once without
 * FreePart (both attacks succeed) and once with it (both contained).
 */

#include <cstdio>

#include "apps/omr_checker.hh"
#include "attacks/attack_driver.hh"

using namespace freepart;

namespace {

struct RunResult {
    std::vector<int> scores;
    bool template_corrupted = false;
    bool app_survived_dos = false;
};

RunResult
gradeUnder(const fw::ApiRegistry &registry,
           const analysis::Categorization &cats,
           core::PartitionPlan plan, core::RuntimeConfig config)
{
    osim::Kernel kernel;
    apps::OmrChecker::Config omr;
    omr.imageRows = 128;
    omr.imageCols = 128;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 3, omr);
    core::FreePartRuntime runtime(kernel, registry, cats,
                                  std::move(plan), config);
    apps::OmrChecker app(runtime, omr);
    app.setup();

    // Grade the first (benign) submission to establish baselines.
    app.gradeSubmission(inputs[0]);

    // Attack 1 (Fig. 1 (A)): crafted image corrupts the template
    // coordinates so answer B is recognized as answer A.
    attacks::AttackDriver driver(runtime, registry);
    attacks::AttackSpec corrupt;
    corrupt.cve = "CVE-2017-12597";
    corrupt.goal = attacks::AttackGoal::CorruptData;
    corrupt.targetPid = runtime.hostPid();
    corrupt.targetAddr = app.templateAddr();
    corrupt.targetLen = 8;
    attacks::AttackOutcome outcome1 = driver.launch(corrupt);

    // Grade the remaining (benign) submissions: with a corrupted
    // template, their scores change.
    RunResult result;
    result.template_corrupted = outcome1.dataCorrupted;
    for (size_t i = 1; i < inputs.size(); ++i) {
        apps::GradeResult grade = app.gradeSubmission(inputs[i]);
        result.scores.push_back(grade.ok ? grade.score : -1);
    }

    // Attack 2 (Fig. 1 (B)): DoS exploit against imshow().
    attacks::AttackSpec dos;
    dos.cve = "SIM-IMSHOW-DOS";
    dos.goal = attacks::AttackGoal::Dos;
    driver.launch(dos);
    result.app_survived_dos = runtime.hostAlive();
    if (runtime.hostAlive())
        app.finish();
    return result;
}

} // namespace

int
main()
{
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();

    std::printf("=== OMRChecker without isolation ===\n");
    core::RuntimeConfig vanilla;
    vanilla.enforceMemoryProtection = false;
    vanilla.restrictSyscalls = false;
    RunResult unprotected = gradeUnder(
        registry, cats, core::PartitionPlan::inHost(), vanilla);
    std::printf("template corrupted: %s\n",
                unprotected.template_corrupted ? "YES (grades now "
                                                 "manipulated)"
                                               : "no");
    std::printf("application survived imshow DoS: %s\n",
                unprotected.app_survived_dos ? "yes" : "NO (crashed)");

    std::printf("\n=== OMRChecker under FreePart ===\n");
    RunResult protected_run =
        gradeUnder(registry, cats,
                   core::PartitionPlan::freePartDefault(),
                   core::RuntimeConfig());
    std::printf("template corrupted: %s\n",
                protected_run.template_corrupted ? "YES" : "no "
                                                           "(read-only "
                                                           "+ process "
                                                           "isolation)");
    std::printf("application survived imshow DoS: %s\n",
                protected_run.app_survived_dos
                    ? "yes (crash contained to visualizing agent)"
                    : "NO");

    std::printf("\nscores after the corruption attempt:\n");
    for (size_t i = 0; i < protected_run.scores.size(); ++i)
        std::printf("  submission %zu: unprotected=%d freepart=%d\n",
                    i + 2,
                    i < unprotected.scores.size()
                        ? unprotected.scores[i]
                        : -1,
                    protected_run.scores[i]);

    bool ok = !protected_run.template_corrupted &&
              protected_run.app_survived_dos &&
              unprotected.template_corrupted;
    std::printf("\n%s\n", ok ? "FreePart mitigated the motivating-"
                               "example attacks."
                             : "UNEXPECTED OUTCOME");
    return ok ? 0 : 1;
}
