/**
 * @file
 * Quickstart: the smallest end-to-end FreePart program.
 *
 *  1. Build the framework registry and run the offline hybrid
 *     analysis to categorize every API.
 *  2. Create a runtime with the default 4-agent partition plan.
 *  3. Run a load -> process -> show -> store pipeline through the
 *     hooked APIs.
 *  4. Launch a real exploit (CVE-2017-12597-style out-of-bounds
 *     write in the image decoder) and watch it get contained.
 */

#include <cstdio>

#include "attacks/attack_driver.hh"
#include "core/runtime.hh"
#include "fw/invoker.hh"

using namespace freepart;

int
main()
{
    // ---- Offline analysis (once per framework version) -------------
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();
    std::printf("categorized %zu framework APIs\n", cats.size());

    // ---- Online runtime ---------------------------------------------
    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::FreePartRuntime runtime(
        kernel, registry, cats, core::PartitionPlan::freePartDefault());
    std::printf("host pid=%u plus %u agent processes\n",
                runtime.hostPid(), runtime.plan().partitionCount());

    // Critical data: annotated, so FreePart protects it temporally.
    osim::Addr secret = runtime.allocHostData("api-key", 64);
    runtime.hostProcess().space().write(secret, "s3cr3t-api-key", 14);

    // ---- The pipeline --------------------------------------------------
    core::ApiResult img = runtime.invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    core::ApiResult gray = runtime.invoke("cv2.cvtColor",
                                          {img.values[0]});
    core::ApiResult edges = runtime.invoke(
        "cv2.Canny", {gray.values[0], ipc::Value(uint64_t(40)),
                      ipc::Value(uint64_t(120))});
    runtime.invoke("cv2.imshow", {ipc::Value(std::string("edges")),
                                  edges.values[0]});
    runtime.invoke("cv2.imwrite",
                   {ipc::Value(std::string("/out/edges.fpim")),
                    edges.values[0]});
    std::printf("pipeline ok: %llu API calls, %llu IPC messages, "
                "%.1f%% copies lazy\n",
                static_cast<unsigned long long>(
                    runtime.stats().apiCalls),
                static_cast<unsigned long long>(
                    runtime.stats().ipcMessages),
                runtime.stats().lazyFraction() * 100.0);

    // ---- The attack ------------------------------------------------------
    attacks::AttackDriver driver(runtime, registry);
    attacks::AttackSpec spec;
    spec.cve = "CVE-2017-12597";
    spec.goal = attacks::AttackGoal::CorruptData;
    spec.targetPid = runtime.hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 14;
    attacks::AttackOutcome outcome = driver.launch(spec);
    std::printf("attack on the api-key via crafted image: %s\n",
                outcome.mitigated(spec.goal) ? "MITIGATED"
                                             : "SUCCEEDED");
    std::printf("  data corrupted: %s, host alive: %s, loading "
                "agent crashed: %s\n",
                outcome.dataCorrupted ? "yes" : "no",
                runtime.hostAlive() ? "yes" : "no",
                outcome.executorCrashed ? "yes (contained)" : "no");

    // The app keeps working after the contained crash.
    core::ApiResult again = runtime.invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    std::printf("benign imread after the attack: %s\n",
                again.ok ? "ok" : again.error.c_str());
    return outcome.mitigated(spec.goal) && again.ok ? 0 : 1;
}
