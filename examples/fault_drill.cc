/**
 * @file
 * Fault drill: a guided tour of the fault-injection framework and the
 * agent supervision layer.
 *
 *  1. Attach a seeded FaultInjector to the kernel and schedule a
 *     deterministic fault plan: a transient device-read error, a
 *     crash on the Nth syscall of the processing agent, and a burst
 *     of repeated crashes that drives one partition into quarantine.
 *  2. Run an image pipeline through it and watch every call complete
 *     anyway — retries, checkpointed restarts with simulated-time
 *     backoff, and finally host-fallback degradation.
 *  3. Print the recovery ledger: restarts, backoff time, mean
 *     time-to-recover, and the injector's fault log.
 */

#include <cstdio>

#include "core/runtime.hh"
#include "fw/invoker.hh"
#include "osim/fault_injection.hh"

using namespace freepart;

namespace {

core::ApiResult
call(core::FreePartRuntime &runtime, const char *api,
     ipc::ValueList args)
{
    core::ApiResult res = runtime.invoke(api, std::move(args));
    std::printf("  %-18s -> %s%s%s\n", api, res.ok ? "ok" : "FAILED",
                res.agentCrashed ? " (agent crashed, recovered)" : "",
                res.quarantined ? " (quarantined path)" : "");
    return res;
}

} // namespace

int
main()
{
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();

    osim::FaultInjector injector(/*seed=*/2026);
    osim::Kernel kernel;
    kernel.setFaultInjector(&injector);
    fw::seedFixtureFiles(kernel);
    core::FreePartRuntime runtime(
        kernel, registry, cats, core::PartitionPlan::freePartDefault());

    // ---- The fault plan (deterministic: same seed, same trace) -----
    osim::FaultSpec device_blip;
    device_blip.point = osim::FaultPoint::DeviceRead;
    device_blip.action = osim::FaultAction::Transient;
    device_blip.pid = runtime.agentPid(0);
    device_blip.tag = "camera EIO";
    injector.schedule(device_blip);

    osim::FaultSpec nth_syscall;
    nth_syscall.point = osim::FaultPoint::SyscallEntry;
    nth_syscall.action = osim::FaultAction::Crash;
    nth_syscall.pid = runtime.agentPid(3);
    nth_syscall.after = 1; // the 2nd syscall of the storing agent
    nth_syscall.tag = "segfault mid-imwrite";
    injector.schedule(nth_syscall);

    std::printf("pipeline with a transient device fault and one "
                "mid-API crash:\n");
    core::ApiResult frame = call(runtime, "cv2.VideoCapture.read", {});
    core::ApiResult gray =
        call(runtime, "cv2.cvtColor", {frame.values[0]});
    core::ApiResult blur =
        call(runtime, "cv2.GaussianBlur", {gray.values[0]});
    call(runtime, "cv2.imwrite",
         {ipc::Value(std::string("/out/frame.fpim")), blur.values[0]});

    // ---- Crash loop: repeated faults quarantine the partition ------
    osim::FaultSpec crash_loop;
    crash_loop.point = osim::FaultPoint::AgentCall;
    crash_loop.action = osim::FaultAction::Crash;
    crash_loop.pid = runtime.agentPid(1);
    crash_loop.count = 0; // every call, until quarantined
    crash_loop.tag = "crash loop";
    injector.schedule(crash_loop);

    std::printf("\nnow every processing call crashes the agent:\n");
    for (int i = 0; i < 3; ++i) {
        uint64_t id = runtime.createHostMat(64, 64, 1, i, "frame");
        call(runtime, "cv2.GaussianBlur",
             {ipc::Value(ipc::ObjectRef{core::kHostPartition, id})});
    }
    std::printf("processing partition health: %s\n",
                core::agentHealthName(
                    runtime.supervisor().health(1)));

    // ---- The recovery ledger ---------------------------------------
    const core::RunStats &stats = runtime.stats();
    std::printf("\nrecovery ledger:\n");
    std::printf("  faults injected      %llu\n",
                static_cast<unsigned long long>(
                    injector.injectedCount()));
    std::printf("  agent crashes        %llu\n",
                static_cast<unsigned long long>(stats.agentCrashes));
    std::printf("  restarts             %llu\n",
                static_cast<unsigned long long>(stats.agentRestarts));
    std::printf("  transient retries    %llu\n",
                static_cast<unsigned long long>(
                    stats.transientFaults));
    std::printf("  quarantines          %llu\n",
                static_cast<unsigned long long>(stats.quarantines));
    std::printf("  host-fallback calls  %llu\n",
                static_cast<unsigned long long>(
                    stats.hostFallbackCalls));
    std::printf("  backoff time         %.2f ms (simulated)\n",
                static_cast<double>(stats.backoffTime) / 1e6);
    std::printf("  mean time-to-recover %.2f ms (simulated)\n",
                static_cast<double>(stats.meanTimeToRecover()) / 1e6);
    std::printf("\nfault log:\n");
    for (const osim::FaultRecord &record : injector.log())
        std::printf("  hit %-4llu %-13s %-9s pid=%u  %s\n",
                    static_cast<unsigned long long>(record.hit),
                    osim::faultPointName(record.point),
                    osim::faultActionName(record.action), record.pid,
                    record.tag.c_str());
    return 0;
}
