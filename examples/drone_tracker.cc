/**
 * @file
 * Case study §5.4.1 (Fig. 14): the autonomous object-tracking drone.
 * Two attacks arrive through the camera-frame loading path:
 *   1. a DoS exploit (CVE-2017-14136 class) that would crash the
 *      whole flight controller, and
 *   2. a corruption exploit (CVE-2017-12606 class) that flips
 *      self.speed from 0.3 to -0.3 so the drone flies away from the
 *      target.
 * Under FreePart both are contained to the data-loading agent and
 * the drone keeps flying.
 */

#include <cstdio>

#include "apps/drone.hh"
#include "attacks/attack_driver.hh"

using namespace freepart;

int
main()
{
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();

    osim::Kernel kernel;
    auto frames = apps::DroneTracker::seedFrames(kernel, 4);
    core::FreePartRuntime runtime(
        kernel, registry, cats, core::PartitionPlan::freePartDefault());
    apps::DroneTracker drone(runtime);
    drone.setup();
    std::printf("drone airborne, speed=%.1f\n", drone.speed());

    // Normal flight.
    drone.processFrame(frames[0]);
    drone.processFrame(frames[1]);
    std::printf("tracking: %d frames processed, position (%.1f, "
                "%.1f)\n",
                drone.framesProcessed(), drone.positionX(),
                drone.positionY());

    // Attack 1: DoS frame.
    fw::ExploitPayload dos;
    dos.kind = fw::PayloadKind::Dos;
    dos.cve = "CVE-2017-14136";
    kernel.vfs().putFile(
        "/spool/dos.fpim",
        fw::encodeImageFile(8, 8, 1, fw::synthPixels(8, 8, 1, 0),
                            dos));
    bool handled = drone.processFrame("/spool/dos.fpim");
    std::printf("DoS frame: %s; drone operable: %s\n",
                handled ? "processed?!" : "dropped (loader crashed, "
                                          "restarted)",
                drone.operable() ? "YES" : "no");

    // Attack 2: speed-corruption frame.
    attacks::AttackDriver driver(runtime, registry);
    attacks::AttackSpec spec;
    spec.cve = "CVE-2017-12606";
    spec.goal = attacks::AttackGoal::CorruptData;
    spec.targetPid = runtime.hostPid();
    spec.targetAddr = drone.speedAddr();
    spec.targetLen = sizeof(double);
    attacks::AttackOutcome outcome = driver.launch(spec);
    std::printf("speed-corruption frame: %s; speed is now %.1f\n",
                outcome.dataCorrupted ? "SUCCEEDED" : "blocked",
                drone.speed());

    // The drone continues the mission.
    bool resumed = drone.processFrame(frames[2]);
    std::printf("mission resumed: %s (total processed %d, dropped "
                "%d)\n",
                resumed ? "yes" : "no", drone.framesProcessed(),
                drone.framesDropped());

    bool ok = drone.operable() && !outcome.dataCorrupted &&
              drone.speed() == 0.3 && resumed;
    std::printf("%s\n", ok ? "case study reproduced: both attacks "
                             "contained."
                           : "UNEXPECTED OUTCOME");
    return ok ? 0 : 1;
}
