/**
 * @file
 * Partition explorer: an interactive-scale version of the Fig. 4
 * experiment. Runs the OMR workload under FreePart's 4 type-based
 * partitions and under a handful of random finer-grained plans,
 * showing how splitting the hot-loop pair (cv2.rectangle /
 * cv2.putText) into different partitions inflates the runtime.
 */

#include <cstdio>

#include "apps/omr_checker.hh"
#include "util/rng.hh"

using namespace freepart;

namespace {

/** Run the OMR app under a plan; returns simulated milliseconds. */
double
runUnder(const fw::ApiRegistry &registry,
         const analysis::Categorization &cats,
         core::PartitionPlan plan)
{
    osim::Kernel kernel;
    apps::OmrChecker::Config omr;
    omr.imageRows = 160;
    omr.imageCols = 160;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 2, omr);
    core::FreePartRuntime runtime(kernel, registry, cats,
                                  std::move(plan));
    apps::OmrChecker app(runtime, omr);
    app.setup();
    for (const std::string &input : inputs)
        app.gradeSubmission(input);
    app.finish();
    return static_cast<double>(runtime.stats().elapsed()) / 1e6;
}

} // namespace

int
main()
{
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();

    // Discover the app's API set with a dry run.
    std::vector<std::string> apis;
    {
        osim::Kernel kernel;
        apps::OmrChecker::Config omr;
        omr.imageRows = 48;
        omr.imageCols = 48;
        omr.questions = 2;
        auto inputs = apps::OmrChecker::seedInputs(kernel, 1, omr);
        core::FreePartRuntime runtime(kernel, registry, cats,
                                      core::PartitionPlan::inHost());
        apps::OmrChecker app(runtime, omr);
        app.setup();
        app.gradeSubmission(inputs[0]);
        app.finish();
        apis = app.usedApis();
    }
    std::printf("OMR application uses %zu framework APIs\n",
                apis.size());

    double base = runUnder(registry, cats,
                           core::PartitionPlan::inHost());
    double freepart = runUnder(registry, cats,
                               core::PartitionPlan::freePartDefault());
    std::printf("no isolation: %8.2f ms\n", base);
    std::printf("4 partitions: %8.2f ms (FreePart, +%.1f%%)\n",
                freepart, (freepart - base) / base * 100.0);

    util::Rng rng(2023);
    for (uint32_t partitions : {6u, 10u, 16u}) {
        // Random assignment; report the mean of a few samples plus
        // whether the hot-loop pair ended up separated.
        double total = 0;
        int split_count = 0;
        const int samples = 3;
        for (int s = 0; s < samples; ++s) {
            std::map<std::string, uint32_t> map;
            for (const std::string &api : apis)
                map[api] = static_cast<uint32_t>(
                    rng.below(partitions));
            bool split = map["cv2.rectangle"] != map["cv2.putText"];
            split_count += split ? 1 : 0;
            total += runUnder(
                registry, cats,
                core::PartitionPlan::custom(map, partitions));
        }
        double mean = total / samples;
        std::printf("%2u partitions: %8.2f ms (+%.1f%%, hot pair "
                    "split in %d/%d samples)\n",
                    partitions, mean,
                    (mean - base) / base * 100.0, split_count,
                    samples);
    }
    std::printf("\nFiner-grained partitioning costs more because the "
                "frequently-called\nrectangle/putText pair shares the "
                "image object (§3, Fig. 4).\n");
    return 0;
}
