/**
 * @file
 * Case study §5.4.2 (Fig. 15): the MComix3-style image viewer. The
 * recently-opened file names are sensitive; an exploit in the image
 * loader (CVE-2020-10378 class) tries to read them and ship them to
 * a remote server. Under FreePart the names live in the target
 * program process (unreachable from the loading agent) and the
 * loading agent's seccomp policy has no send()/connect() anyway.
 */

#include <cstdio>

#include "apps/image_viewer.hh"
#include "attacks/attack_driver.hh"

using namespace freepart;

int
main()
{
    fw::ApiRegistry registry = fw::buildFullRegistry();
    analysis::HybridCategorizer categorizer(registry);
    analysis::Categorization cats = categorizer.categorizeAll();

    osim::Kernel kernel;
    auto images = apps::ImageViewer::seedImages(kernel, 3);
    core::FreePartRuntime runtime(
        kernel, registry, cats, core::PartitionPlan::freePartDefault());
    apps::ImageViewer viewer(runtime);
    viewer.setup();

    for (const std::string &image : images)
        viewer.openImage(image);
    std::printf("viewer showed %d images; recent list:\n%s",
                viewer.imagesShown(), viewer.recentNames().c_str());

    attacks::AttackDriver driver(runtime, registry);
    attacks::AttackSpec spec;
    spec.cve = "CVE-2020-10378";
    spec.goal = attacks::AttackGoal::Exfiltrate;
    spec.targetPid = runtime.hostPid();
    spec.targetAddr = viewer.recentListAddr();
    spec.targetLen = 48;
    attacks::AttackOutcome outcome = driver.launch(spec);

    std::printf("exfiltration attempt: %s\n",
                outcome.dataLeaked ? "LEAKED" : "blocked");
    std::printf("  bytes that reached the network: %zu\n",
                kernel.network().bytesSent());
    std::printf("  blocked by: %s%s\n",
                outcome.blockedByMemFault ? "memory isolation " : "",
                outcome.blockedBySyscall ? "syscall filter" : "");

    // The viewer still works.
    bool still_works = viewer.openImage(images[0]);
    std::printf("viewer still functional: %s\n",
                still_works ? "yes" : "no");

    bool ok = !outcome.dataLeaked && still_works &&
              kernel.network().bytesSent() == 0;
    std::printf("%s\n", ok ? "case study reproduced: the recent-"
                             "files list never left the machine."
                           : "UNEXPECTED OUTCOME");
    return ok ? 0 : 1;
}
