/**
 * @file
 * Multi-tenant serving evaluation (DESIGN.md §14): thousands of
 * tenant sessions drawn from a Zipfian popularity distribution over
 * the 23 Table 6 app models, arriving open-loop as a Poisson process
 * through a low -> peak -> cool load ramp. Four runs compare the
 * serving stack:
 *
 *   autoscaled  SLO-driven autoscaler (2..6 shards) + warm agent pool
 *   replay      same seed, fresh cluster — must be byte-identical
 *   static-max  fixed max-size cluster (the capacity bill baseline)
 *   cold-start  autoscaled, pool disabled — every session forks a
 *               fresh four-agent partition set on the critical path
 *
 * Acceptance: the autoscaled run meets the p99 SLO with strictly
 * fewer shard-seconds than static-max, loses zero acked calls across
 * scale events (at-least-once audit), warm checkout costs a fraction
 * of a cold start, and the whole thing replays byte-identically.
 */

#include <string>
#include <vector>

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "core/runtime.hh"
#include "serve/agent_pool.hh"
#include "serve/autoscaler.hh"
#include "serve/tenant_workload.hh"
#include "shard/shard_router.hh"
#include "util/table.hh"

using namespace freepart;

namespace {

constexpr uint32_t kMinShards = 2;
constexpr uint32_t kMaxShards = 6;
constexpr uint32_t kTenants = 1500;
constexpr double kSloFloor = 0.95;
constexpr uint32_t kImageDim = 192;

apps::WorkloadGenerator::Config
workloadConfig()
{
    apps::WorkloadGenerator::Config wconfig;
    wconfig.maxRounds = 1;
    wconfig.maxCallsPerRound = 6;
    wconfig.imageRows = kImageDim;
    wconfig.imageCols = kImageDim;
    return wconfig;
}

/** Mean service time of the op mix on an unloaded single shard —
 *  calibrates the ramp's interarrival gaps and the deadline. */
osim::SimTime
calibrateMeanService()
{
    static const char *const kOps[] = {
        "cv2.GaussianBlur", "cv2.erode",     "cv2.dilate",
        "cv2.flip",         "cv2.normalize", "cv2.bitwise_not"};
    shard::ShardRouterConfig config;
    config.shardCount = 1;
    config.runtime.ringBytes = 2 << 20;
    shard::ShardRouter router(
        bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        [](osim::Kernel &kernel) {
            apps::WorkloadGenerator(bench::registry(),
                                    workloadConfig())
                .seedInputs(kernel);
        });
    uint64_t token = 0;
    ipc::ValueList load;
    load.emplace_back(std::string("/data/test.fpim"));
    shard::RoutedCall first =
        router.invoke(1, "cv2.imread", std::move(load), ++token);
    uint64_t calls = 1;
    ipc::Value chain = first.result.values.at(0);
    for (size_t round = 0; round < 4; ++round) {
        for (const char *op : kOps) {
            ipc::ValueList args;
            args.push_back(chain);
            shard::RoutedCall routed =
                router.invoke(1, op, std::move(args), ++token);
            ++calls;
            if (routed.result.ok && !routed.result.values.empty() &&
                routed.result.values[0].kind() ==
                    ipc::Value::Kind::Ref)
                chain = routed.result.values[0];
        }
    }
    router.drainAll();
    return std::max<osim::SimTime>(
        1, router.stats().makespan / std::max<uint64_t>(1, calls));
}

enum class Mode { Autoscaled, StaticMax, ColdStart };

/**
 * One full serving run: fresh cluster, warm pool (unless ColdStart),
 * autoscaler (unless StaticMax), and the tenant ramp replayed through
 * it. meanService parameterizes the ramp so all modes see identical
 * arrivals.
 */
serve::ServeOutcome
runServe(Mode mode, osim::SimTime meanService)
{
    apps::WorkloadGenerator generator(bench::registry(),
                                      workloadConfig());

    shard::ShardRouterConfig config;
    config.shardCount =
        mode == Mode::StaticMax ? kMaxShards : kMinShards;
    config.runtime.ringBytes = 2 << 20;
    config.dedupEntries = 1 << 13; // hold every token of the run
    config.replicateObjects = true;
    config.defaultDeadline = meanService * 8;
    shard::ShardRouter::SeedFn seed =
        [&generator](osim::Kernel &kernel) {
            generator.seedInputs(kernel);
        };
    shard::ShardRouter router(
        bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        seed);

    // Pool costs come from the runtime's own cost model — warm
    // handoff is one promote, a cold start forks host + agents.
    core::FreePartRuntime &probe = router.runtime(0);
    // The frontend admits at most kSessionCap concurrent sessions;
    // the min-size cluster pre-warms enough sets per shard to absorb
    // that many leases without falling back to cold spawns.
    constexpr uint32_t kSessionCap = 40;
    serve::AgentPoolConfig poolConfig;
    poolConfig.enabled = mode != Mode::ColdStart;
    poolConfig.initialSize = kSessionCap / kMinShards;
    poolConfig.maxSize = kSessionCap + 8;
    poolConfig.warmHandoff = probe.sessionWarmHandoffCost();
    poolConfig.epochReset = probe.sessionEpochResetCost();
    poolConfig.coldSpawn = probe.sessionColdStartCost();
    serve::WarmAgentPool pool(poolConfig);

    serve::AutoscalerConfig scalerConfig;
    scalerConfig.minLiveShards = kMinShards;
    scalerConfig.maxLiveShards = kMaxShards;
    scalerConfig.tickInterval = 250'000;
    scalerConfig.scaleUpDepth = 4.0;
    scalerConfig.scaleDownDepth = 0.6;
    scalerConfig.panicDepth = 16.0;
    scalerConfig.sustainUp = 3;
    scalerConfig.sustainDown = 12;
    scalerConfig.cooldown = 2'000'000;
    scalerConfig.seed = seed;
    // Session starts burst (a completed session's slot readmits a
    // parked tenant immediately): keep every pool at its provisioned
    // floor so bursts never fall back to a critical-path cold spawn.
    scalerConfig.poolMin = poolConfig.initialSize;
    scalerConfig.poolMax = poolConfig.maxSize;
    serve::Autoscaler scaler(router, scalerConfig, &pool);

    serve::TenantWorkloadConfig tconfig;
    tconfig.tenants = kTenants;
    tconfig.zipfExponent = 1.1;
    tconfig.maxConcurrentSessions = kSessionCap;
    serve::TenantTrafficGenerator traffic(generator, tconfig);

    // Low -> peak -> cool: the peak needs ~4x the capacity the
    // valleys do, so a fixed min-size cluster drowns and a fixed
    // max-size cluster idles through two thirds of the run.
    std::vector<serve::RampPhase> phases = {
        {1200, meanService * 5 / 4},
        {3600, std::max<osim::SimTime>(1, meanService * 2 / 7)},
        {1200, meanService * 5 / 4},
    };

    return traffic.run(router, phases,
                       mode == Mode::StaticMax ? nullptr : &scaler,
                       &pool);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("serve_autoscale", argc, argv);
    bench::banner("Multi-tenant serving",
                  "1500 Zipfian tenants replaying Table 6 app "
                  "sessions open-loop through a low->peak->cool "
                  "ramp: SLO-driven autoscaler + warm agent pool "
                  "vs static max-size and cold-start baselines");

    osim::SimTime meanService = calibrateMeanService();
    std::printf("calibration: mean service %.1f us -> peak gap "
                "%.1f us, deadline %.1f us\n\n",
                meanService / 1e3, meanService * 2 / 7 / 1e3,
                meanService * 8 / 1e3);

    serve::ServeOutcome autoRun =
        runServe(Mode::Autoscaled, meanService);
    serve::ServeOutcome replay =
        runServe(Mode::Autoscaled, meanService);
    serve::ServeOutcome staticRun =
        runServe(Mode::StaticMax, meanService);
    serve::ServeOutcome coldRun =
        runServe(Mode::ColdStart, meanService);

    util::TextTable table({"run", "issued", "acked", "SLO %",
                           "p50 us", "p99 us", "p999 us", "shard-s",
                           "starts", "lost"});
    auto addRow = [&table](const char *name,
                           const serve::ServeOutcome &o) {
        table.addRow({name, std::to_string(o.issued),
                      std::to_string(o.acked),
                      util::fmtDouble(o.sloAttainment * 100.0, 2),
                      util::fmtDouble(o.p50Us, 1),
                      util::fmtDouble(o.p99Us, 1),
                      util::fmtDouble(o.p999Us, 1),
                      util::fmtDouble(o.shardSeconds, 3),
                      std::to_string(o.sessionsStarted),
                      std::to_string(o.lostAcks)});
    };
    addRow("autoscaled", autoRun);
    addRow("static-max", staticRun);
    addRow("cold-start", coldRun);
    std::printf("%s", table.render().c_str());

    std::printf(
        "\nautoscaler: %llu ups (%llu revived, %llu added), %llu "
        "downs, live %u..%u, max depth %.1f, %llu blips ignored\n",
        static_cast<unsigned long long>(autoRun.scaler.scaleUps),
        static_cast<unsigned long long>(
            autoRun.scaler.shardsRevived),
        static_cast<unsigned long long>(autoRun.scaler.shardsAdded),
        static_cast<unsigned long long>(autoRun.scaler.scaleDowns),
        autoRun.scaler.liveFloor, autoRun.scaler.livePeak,
        autoRun.scaler.maxDepthSeen,
        static_cast<unsigned long long>(
            autoRun.scaler.blipsIgnored));
    double warmUs = autoRun.pool.meanCheckoutUs();
    double coldUs = coldRun.pool.meanCheckoutUs();
    std::printf("session start: warm pool %.1f us mean (%llu warm / "
                "%llu cold), cold-start baseline %.1f us mean\n",
                warmUs,
                static_cast<unsigned long long>(
                    autoRun.pool.warmCheckouts),
                static_cast<unsigned long long>(
                    autoRun.pool.coldFallbacks),
                coldUs);
    std::printf("tenants: %llu touched, hottest %.2f%% of calls, "
                "worst per-tenant p99 %.1f us over %llu tenants\n",
                static_cast<unsigned long long>(
                    autoRun.tenantsTouched),
                autoRun.hottestTenantShare * 100.0,
                autoRun.worstTenantP99Us,
                static_cast<unsigned long long>(
                    autoRun.tenantsInBreakdown));
    std::printf("capacity: autoscaled %.3f shard-s vs static-max "
                "%.3f shard-s (%.1f%% saved)\n",
                autoRun.shardSeconds, staticRun.shardSeconds,
                staticRun.shardSeconds > 0.0
                    ? (1.0 - autoRun.shardSeconds /
                                 staticRun.shardSeconds) *
                          100.0
                    : 0.0);

    // Determinism: same seed, fresh cluster — byte-identical run.
    bool identical =
        replay.issued == autoRun.issued &&
        replay.acked == autoRun.acked &&
        replay.ackedInDeadline == autoRun.ackedInDeadline &&
        replay.sessionsStarted == autoRun.sessionsStarted &&
        replay.sessionsCompleted == autoRun.sessionsCompleted &&
        replay.p99Us == autoRun.p99Us &&
        replay.p999Us == autoRun.p999Us &&
        replay.shardSeconds == autoRun.shardSeconds &&
        replay.scaler.scaleUps == autoRun.scaler.scaleUps &&
        replay.scaler.scaleDowns == autoRun.scaler.scaleDowns &&
        replay.pool.warmCheckouts == autoRun.pool.warmCheckouts &&
        replay.cluster.makespan == autoRun.cluster.makespan;
    std::printf("deterministic replay: %s\n",
                identical ? "yes" : "NO (bug)");

    bool pass = autoRun.sloAttainment >= kSloFloor &&
                autoRun.lostAcks == 0 && staticRun.lostAcks == 0 &&
                coldRun.lostAcks == 0 &&
                autoRun.scaler.scaleUps >= 1 &&
                autoRun.scaler.scaleDowns >= 1 &&
                autoRun.shardSeconds < staticRun.shardSeconds &&
                autoRun.pool.warmCheckouts > 0 && coldUs > 0.0 &&
                (warmUs < coldUs || autoRun.pool.coldFallbacks ==
                                        autoRun.pool.warmCheckouts) &&
                autoRun.p99Us > 0.0 && identical;

    json.metric("slo_attainment_autoscaled", autoRun.sloAttainment);
    json.metric("slo_attainment_static", staticRun.sloAttainment);
    json.metric("slo_attainment_coldstart", coldRun.sloAttainment);
    json.metric("p50_us_autoscaled", autoRun.p50Us);
    json.metric("p99_us_autoscaled", autoRun.p99Us);
    json.metric("p999_us_autoscaled", autoRun.p999Us);
    json.metric("worst_tenant_p99_us", autoRun.worstTenantP99Us);
    json.metric("hottest_tenant_share", autoRun.hottestTenantShare);
    json.metric("tenants_touched", autoRun.tenantsTouched);
    json.metric("sessions_started", autoRun.sessionsStarted);
    json.metric("sessions_completed", autoRun.sessionsCompleted);
    json.metric("shard_seconds_autoscaled", autoRun.shardSeconds);
    json.metric("shard_seconds_static", staticRun.shardSeconds);
    json.metric("shard_seconds_saved_pct",
                staticRun.shardSeconds > 0.0
                    ? (1.0 - autoRun.shardSeconds /
                                 staticRun.shardSeconds) *
                          100.0
                    : 0.0);
    json.metric("scale_up_events", autoRun.scaler.scaleUps);
    json.metric("scale_down_events", autoRun.scaler.scaleDowns);
    json.metric("shards_revived", autoRun.scaler.shardsRevived);
    json.metric("shards_retired", autoRun.cluster.shardsRetired);
    json.metric("warm_checkout_mean_us", warmUs);
    json.metric("cold_checkout_mean_us", coldUs);
    json.metric("warm_vs_cold_speedup",
                warmUs > 0.0 ? coldUs / warmUs : 0.0);
    json.metric("lost_acks_autoscaled", autoRun.lostAcks);
    json.metric("lost_acks_static", staticRun.lostAcks);
    json.metric("lost_acks_coldstart", coldRun.lostAcks);
    json.metric("deterministic_replay", identical ? 1 : 0);
    json.metric("acceptance_pass", pass ? 1 : 0);
    json.flush();

    bench::note("all time is simulated: arrivals are Poisson on a "
                "shared open-loop axis, tenant draws are Zipfian, "
                "and the autoscaler/pool decisions are pure "
                "functions of the seeded call sequence — the run "
                "replays byte-identically");
    return pass ? 0 : 1;
}
