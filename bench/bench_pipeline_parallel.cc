/**
 * @file
 * Pipeline-parallel execution bench: the 23 Table 6 applications
 * replayed under three configurations — serialized accounting (the
 * Table 9 configuration), the async replay with per-agent virtual
 * timelines, and the async replay with speculative execution past
 * protection flips (RuntimeConfig::speculativeFlips, DESIGN.md §15)
 * — measuring the makespan speedup and overlap fraction gained by
 * overlapping the loading, processing, visualizing and storing
 * partitions. Every replay must produce byte-identical pipeline
 * objects (execution stays eager and in program order; only time
 * accounting overlaps) and be exactly reproducible across runs.
 *
 * The acceptance gates are a >= 1.5x mean speculative speedup and a
 * >= 0.55 mean speculative overlap fraction over the *pipeline
 * subset*: apps that replay multiple load->process->visualize/store
 * rounds, where frame N's load genuinely overlaps frame N-1's
 * downstream stages. Single-round apps have no cross-round overlap
 * to mine and are reported but not gated.
 *
 * A misprediction-heavy adversarial workload closes the bench: every
 * round draws into the object fetched under the open speculation
 * window, forcing a conflict and a dirty-epoch squash. The gate is
 * bounded rollback cost — the all-rollback replay must stay byte-
 * identical and may not run materially slower than the barrier mode
 * it replaces.
 */

#include <cmath>

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "util/checksum.hh"
#include "util/stats.hh"

using namespace freepart;

namespace {

struct Replay {
    double makespan = 0;
    uint64_t digest = 0;
    bool hasFinal = false;
    uint64_t callsFailed = 0;
    double overlap = 0;
    uint64_t asyncCalls = 0;
    uint64_t barriers = 0;
    uint64_t stalls = 0;
    uint64_t starts = 0;
    uint64_t commits = 0;
    uint64_t rollbacks = 0;
    uint64_t fetches = 0;
    uint64_t ipcMessages = 0;
    double recovered = 0;
};

Replay
replay(const apps::WorkloadGenerator &generator,
       const apps::AppModel &model, bool async, bool spec)
{
    osim::Kernel kernel;
    generator.seedInputs(kernel);
    core::RuntimeConfig rc;
    rc.pipelineParallel = async;
    rc.speculativeFlips = spec;
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), rc);
    apps::WorkloadResult result =
        async ? generator.runAsync(runtime, model)
              : generator.run(runtime, model);
    Replay out;
    out.makespan = static_cast<double>(result.stats.elapsed());
    out.digest = result.finalDigest;
    out.hasFinal = result.hasFinalObject;
    out.callsFailed = result.callsFailed;
    out.overlap = result.stats.overlapFraction();
    out.asyncCalls = result.stats.asyncCalls;
    out.barriers = result.stats.pipelineBarriers;
    out.stalls = result.stats.inFlightStalls;
    out.starts = result.stats.speculationStarts;
    out.commits = result.stats.speculationCommits;
    out.rollbacks = result.stats.speculationRollbacks;
    out.fetches = result.stats.speculativeFetches;
    out.ipcMessages = result.stats.ipcMessages;
    out.recovered =
        static_cast<double>(result.stats.recoveredBarrierTime);
    return out;
}

/** Apps with cross-round overlap to mine: several rounds, each with
 *  downstream visualize/store work for the next load to hide. */
bool
pipelineShaped(const apps::AppModel &model)
{
    return model.loading.total >= 2 &&
           (model.visualizing.total > 0 || model.storing.total > 0);
}

/**
 * Misprediction-heavy adversarial replay: each round loads a frame,
 * blurs it into the chain object, fetches the chain to the host
 * (which opens a speculation window under speculativeFlips), then
 * draws into that pre-window chain — a guaranteed conflict that
 * squashes and re-issues the draw every round. The same trace runs
 * identically with speculation off (async barriers) and fully
 * synchronous; contents must match bit-for-bit in all three.
 */
struct Adversarial {
    double makespan = 0;
    uint64_t digest = 0;
    uint64_t starts = 0;
    uint64_t rollbacks = 0;
    uint64_t squashedBytes = 0;
    uint64_t callsFailed = 0;
};

Adversarial
adversarial(bool async, bool spec, int rounds)
{
    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::RuntimeConfig rc;
    rc.pipelineParallel = async;
    rc.speculativeFlips = spec;
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), rc);
    Adversarial out;
    ipc::Value chain;
    bool have_chain = false;
    auto call = [&](const std::string &api,
                    ipc::ValueList args) -> ipc::Value {
        core::CallTicket ticket =
            runtime.invokeAsync(api, std::move(args));
        const core::ApiResult *res = runtime.peekResult(ticket);
        if (!res || !res->ok || res->values.empty() ||
            res->values[0].kind() != ipc::Value::Kind::Ref) {
            ++out.callsFailed;
            return ipc::Value();
        }
        return res->values[0];
    };
    for (int r = 0; r < rounds; ++r) {
        ipc::Value frame = call(
            "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
        if (frame.kind() != ipc::Value::Kind::Ref)
            continue;
        ipc::Value blurred = call("cv2.GaussianBlur", {frame});
        if (blurred.kind() != ipc::Value::Kind::Ref)
            continue;
        chain = blurred;
        have_chain = true;
        // Round boundary: the host inspects the fresh chain object.
        // Under speculativeFlips this opens the speculation window.
        runtime.fetchToHost(chain.asRef());
        // The adversarial step: draw into the object fetched under
        // the still-open window — a write to pre-window data, the
        // exact conflict the dirty-epoch rollback exists for.
        ipc::Value drawn = call(
            "cv2.rectangle",
            {chain, ipc::Value(static_cast<uint64_t>(2)),
             ipc::Value(static_cast<uint64_t>(2)),
             ipc::Value(static_cast<uint64_t>(8)),
             ipc::Value(static_cast<uint64_t>(8)),
             ipc::Value(static_cast<uint64_t>(200 + r))});
        if (drawn.kind() == ipc::Value::Kind::Ref)
            chain = drawn;
    }
    if (have_chain && runtime.hasObject(chain.asRef().objectId)) {
        runtime.fetchToHost(chain.asRef());
        out.digest = util::fnv1a64(
            runtime.hostStore().serialize(chain.asRef().objectId));
    }
    runtime.drainAll();
    const core::RunStats &stats = runtime.stats();
    out.makespan = static_cast<double>(stats.elapsed());
    out.starts = stats.speculationStarts;
    out.rollbacks = stats.speculationRollbacks;
    out.squashedBytes = stats.squashedWriteBytes;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("pipeline_parallel", argc, argv);
    bench::banner("Pipeline-parallel",
                  "async invoke + virtual timelines + speculative "
                  "flips vs serialized accounting, 23 Table 6 apps");

    apps::WorkloadGenerator::Config config;
    // Small frames keep the per-call fixed costs (IPC round trips,
    // protection flips) comparable to the per-byte work, so the four
    // stage partitions are balanced enough to overlap; huge frames
    // make one stage dominate and bound the speedup near 1.
    config.imageRows = 128;
    config.imageCols = 128;
    config.tensorDim = 16;
    config.maxRounds = 4;
    config.maxCallsPerRound = 1;
    apps::WorkloadGenerator generator(bench::registry(), config);

    util::TextTable table({"ID", "Name", "sync us", "async us",
                           "spec us", "speedup", "overlap", "spec ov",
                           "st/rb", "fetch", "pipeline"});
    util::RunningStat nospec_speedups_all;
    util::RunningStat nospec_speedups_pipeline;
    util::RunningStat nospec_overlaps;
    util::RunningStat spec_speedups_all;
    util::RunningStat spec_speedups_pipeline;
    util::RunningStat spec_overlaps;
    util::RunningStat spec_overlaps_pipeline;
    bool byte_identical = true;
    bool deterministic = true;
    bool ledger_balanced = true; // starts == commits + rollbacks
    uint64_t failed_calls = 0;
    uint64_t total_starts = 0, total_rollbacks = 0, total_fetches = 0;
    double total_recovered = 0;

    for (const apps::AppModel &model : apps::appModels()) {
        Replay sync = replay(generator, model, false, false);
        Replay nospec = replay(generator, model, true, false);
        Replay spec = replay(generator, model, true, true);
        Replay again = replay(generator, model, true, true);

        if (sync.hasFinal != nospec.hasFinal ||
            sync.digest != nospec.digest ||
            sync.hasFinal != spec.hasFinal ||
            sync.digest != spec.digest)
            byte_identical = false;
        if (spec.digest != again.digest ||
            spec.makespan != again.makespan ||
            spec.ipcMessages != again.ipcMessages)
            deterministic = false;
        if (spec.starts != spec.commits + spec.rollbacks)
            ledger_balanced = false;
        failed_calls += sync.callsFailed + nospec.callsFailed +
                        spec.callsFailed;

        double nospec_speedup =
            nospec.makespan > 0 ? sync.makespan / nospec.makespan
                                : 1.0;
        double spec_speedup =
            spec.makespan > 0 ? sync.makespan / spec.makespan : 1.0;
        nospec_speedups_all.add(nospec_speedup);
        spec_speedups_all.add(spec_speedup);
        bool shaped = pipelineShaped(model);
        if (shaped) {
            nospec_speedups_pipeline.add(nospec_speedup);
            spec_speedups_pipeline.add(spec_speedup);
            spec_overlaps_pipeline.add(spec.overlap);
        }
        nospec_overlaps.add(nospec.overlap);
        spec_overlaps.add(spec.overlap);
        total_starts += spec.starts;
        total_rollbacks += spec.rollbacks;
        total_fetches += spec.fetches;
        total_recovered += spec.recovered;
        json.metric("overlap_" + std::to_string(model.id),
                    spec.overlap);
        table.addRow({std::to_string(model.id), model.name,
                      util::fmtDouble(sync.makespan / 1000.0, 1),
                      util::fmtDouble(nospec.makespan / 1000.0, 1),
                      util::fmtDouble(spec.makespan / 1000.0, 1),
                      util::fmtDouble(spec_speedup, 2) + "x",
                      util::fmtDouble(nospec.overlap * 100.0, 1) + "%",
                      util::fmtDouble(spec.overlap * 100.0, 1) + "%",
                      std::to_string(spec.starts) + "/" +
                          std::to_string(spec.rollbacks),
                      std::to_string(spec.fetches),
                      shaped ? "yes" : "-"});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nmean speedup: %.2fx nospec / %.2fx spec over all "
                "%zu apps; %.2fx nospec / %.2fx spec over the %zu "
                "pipeline-shaped apps\n",
                nospec_speedups_all.mean(), spec_speedups_all.mean(),
                static_cast<size_t>(apps::appModels().size()),
                nospec_speedups_pipeline.mean(),
                spec_speedups_pipeline.mean(),
                static_cast<size_t>(spec_speedups_pipeline.count()));
    std::printf("mean overlap: %.3f nospec -> %.3f spec (all apps), "
                "%.3f spec (pipeline subset)\n",
                nospec_overlaps.mean(), spec_overlaps.mean(),
                spec_overlaps_pipeline.mean());
    std::printf("speculation: %llu starts, %llu rollbacks, %llu "
                "speculative fetches, %.1f ms of barrier waits "
                "recovered\n",
                static_cast<unsigned long long>(total_starts),
                static_cast<unsigned long long>(total_rollbacks),
                static_cast<unsigned long long>(total_fetches),
                total_recovered / 1e6);
    std::printf("byte-identical sync vs async vs spec: %s\n",
                byte_identical ? "yes" : "NO");
    std::printf("deterministic speculative replay: %s\n",
                deterministic ? "yes" : "NO");
    std::printf("speculation ledger balanced: %s\n",
                ledger_balanced ? "yes" : "NO");

    // Misprediction-heavy adversarial trace: all-conflict, every
    // speculative draw squashed and re-issued.
    const int adv_rounds = 8;
    Adversarial adv_sync = adversarial(false, false, adv_rounds);
    Adversarial adv_nospec = adversarial(true, false, adv_rounds);
    Adversarial adv_spec = adversarial(true, true, adv_rounds);
    bool adv_identical = adv_sync.digest == adv_nospec.digest &&
                         adv_sync.digest == adv_spec.digest &&
                         adv_sync.digest != 0;
    double adv_rollback_rate =
        adv_spec.starts
            ? static_cast<double>(adv_spec.rollbacks) /
                  static_cast<double>(adv_spec.starts)
            : 0.0;
    // Bounded rollback cost: even with every speculation squashed,
    // the replay may not run materially slower than barrier mode.
    double adv_overhead = adv_nospec.makespan > 0
                              ? adv_spec.makespan / adv_nospec.makespan
                              : 1.0;
    std::printf("\nadversarial (%d all-conflict rounds): %llu starts, "
                "%llu rollbacks (rate %.2f), %llu bytes restored, "
                "makespan %.1f us vs %.1f us nospec (overhead "
                "%.3fx), byte-identical: %s\n",
                adv_rounds,
                static_cast<unsigned long long>(adv_spec.starts),
                static_cast<unsigned long long>(adv_spec.rollbacks),
                adv_rollback_rate,
                static_cast<unsigned long long>(adv_spec.squashedBytes),
                adv_spec.makespan / 1000.0,
                adv_nospec.makespan / 1000.0, adv_overhead,
                adv_identical ? "yes" : "NO");

    bool accept = spec_speedups_pipeline.mean() >= 1.5 &&
                  spec_overlaps_pipeline.mean() >= 0.55 &&
                  byte_identical && deterministic &&
                  ledger_balanced && failed_calls == 0 &&
                  adv_identical && adv_spec.rollbacks > 0 &&
                  adv_spec.squashedBytes > 0 && adv_overhead <= 1.25 &&
                  adv_sync.callsFailed + adv_nospec.callsFailed +
                          adv_spec.callsFailed ==
                      0;
    std::printf("acceptance (spec pipeline speedup >= 1.5x, subset "
                "overlap >= 0.55, identical, deterministic, bounded "
                "adversarial rollback): %s\n",
                accept ? "PASS" : "FAIL");

    // Headline metrics measure the speculative mode; nospec_* pin the
    // pre-speculation async mode so CI can verify the gate-off path
    // still reproduces the old numbers exactly.
    json.metric("pipeline_speedup", spec_speedups_pipeline.mean());
    json.metric("mean_speedup_all_apps", spec_speedups_all.mean());
    json.metric("max_speedup", spec_speedups_all.max());
    json.metric("mean_overlap_fraction", spec_overlaps.mean());
    json.metric("pipeline_overlap_fraction",
                spec_overlaps_pipeline.mean());
    json.metric("nospec_pipeline_speedup",
                nospec_speedups_pipeline.mean());
    json.metric("nospec_mean_speedup_all_apps",
                nospec_speedups_all.mean());
    json.metric("nospec_max_speedup", nospec_speedups_all.max());
    json.metric("nospec_mean_overlap_fraction",
                nospec_overlaps.mean());
    json.metric("speculation_starts", total_starts);
    json.metric("speculation_rollbacks", total_rollbacks);
    json.metric("speculative_fetches", total_fetches);
    json.metric("rollback_rate",
                total_starts ? static_cast<double>(total_rollbacks) /
                                   static_cast<double>(total_starts)
                             : 0.0);
    json.metric("recovered_barrier_ms", total_recovered / 1e6);
    json.metric("adv_rollback_rate", adv_rollback_rate);
    json.metric("adv_overhead", adv_overhead);
    json.metric("adv_byte_identical", adv_identical ? 1 : 0);
    json.metric("byte_identical", byte_identical ? 1 : 0);
    json.metric("deterministic_replay", deterministic ? 1 : 0);
    json.metric("acceptance_pass", accept ? 1 : 0);
    json.flush();
    bench::note("speedup = serialized makespan / pipelined makespan "
                "on the same trace; contents verified byte-identical "
                "via FNV-1a of the final pipeline object in all "
                "three modes");
    return accept ? 0 : 1;
}
