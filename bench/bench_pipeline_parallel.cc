/**
 * @file
 * Pipeline-parallel execution bench: the 23 Table 6 applications
 * replayed twice — serialized accounting (the Table 9 configuration)
 * vs. the async replay with per-agent virtual timelines — measuring
 * the makespan speedup from overlapping the loading, processing,
 * visualizing and storing partitions. The async replay must produce
 * byte-identical pipeline objects (execution stays eager and in
 * program order; only time accounting overlaps) and be exactly
 * reproducible across repeated runs.
 *
 * The acceptance gate is a >= 1.5x mean speedup over the *pipeline
 * subset*: apps that replay multiple load->process->visualize/store
 * rounds, where frame N's load genuinely overlaps frame N-1's
 * downstream stages. Single-round apps have no cross-round overlap
 * to mine and are reported but not gated.
 */

#include <cmath>

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "util/stats.hh"

using namespace freepart;

namespace {

struct Replay {
    double makespan = 0;
    uint64_t digest = 0;
    bool hasFinal = false;
    uint64_t callsFailed = 0;
    double overlap = 0;
    uint64_t asyncCalls = 0;
    uint64_t barriers = 0;
    uint64_t stalls = 0;
};

Replay
replay(const apps::WorkloadGenerator &generator,
       const apps::AppModel &model, bool async)
{
    osim::Kernel kernel;
    generator.seedInputs(kernel);
    core::RuntimeConfig rc;
    rc.pipelineParallel = async;
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), rc);
    apps::WorkloadResult result =
        async ? generator.runAsync(runtime, model)
              : generator.run(runtime, model);
    Replay out;
    out.makespan = static_cast<double>(result.stats.elapsed());
    out.digest = result.finalDigest;
    out.hasFinal = result.hasFinalObject;
    out.callsFailed = result.callsFailed;
    out.overlap = result.stats.overlapFraction();
    out.asyncCalls = result.stats.asyncCalls;
    out.barriers = result.stats.pipelineBarriers;
    out.stalls = result.stats.inFlightStalls;
    return out;
}

/** Apps with cross-round overlap to mine: several rounds, each with
 *  downstream visualize/store work for the next load to hide. */
bool
pipelineShaped(const apps::AppModel &model)
{
    return model.loading.total >= 2 &&
           (model.visualizing.total > 0 || model.storing.total > 0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("pipeline_parallel", argc, argv);
    bench::banner("Pipeline-parallel",
                  "async invoke + virtual timelines vs serialized "
                  "accounting, 23 Table 6 apps");

    apps::WorkloadGenerator::Config config;
    // Small frames keep the per-call fixed costs (IPC round trips,
    // protection flips) comparable to the per-byte work, so the four
    // stage partitions are balanced enough to overlap; huge frames
    // make one stage dominate and bound the speedup near 1.
    config.imageRows = 128;
    config.imageCols = 128;
    config.tensorDim = 16;
    config.maxRounds = 4;
    config.maxCallsPerRound = 1;
    apps::WorkloadGenerator generator(bench::registry(), config);

    util::TextTable table({"ID", "Name", "sync us", "async us",
                           "speedup", "overlap", "barriers",
                           "stalls", "pipeline"});
    util::RunningStat all_speedups;
    util::RunningStat pipeline_speedups;
    util::RunningStat overlaps;
    bool byte_identical = true;
    bool deterministic = true;
    uint64_t failed_calls = 0;

    for (const apps::AppModel &model : apps::appModels()) {
        Replay sync = replay(generator, model, false);
        Replay async = replay(generator, model, true);
        Replay again = replay(generator, model, true);

        if (sync.hasFinal != async.hasFinal ||
            sync.digest != async.digest)
            byte_identical = false;
        if (async.digest != again.digest ||
            async.makespan != again.makespan)
            deterministic = false;
        failed_calls += sync.callsFailed + async.callsFailed;

        double speedup =
            async.makespan > 0 ? sync.makespan / async.makespan : 1.0;
        all_speedups.add(speedup);
        bool shaped = pipelineShaped(model);
        if (shaped)
            pipeline_speedups.add(speedup);
        overlaps.add(async.overlap);
        table.addRow({std::to_string(model.id), model.name,
                      util::fmtDouble(sync.makespan / 1000.0, 1),
                      util::fmtDouble(async.makespan / 1000.0, 1),
                      util::fmtDouble(speedup, 2) + "x",
                      util::fmtDouble(async.overlap * 100.0, 1) + "%",
                      std::to_string(async.barriers),
                      std::to_string(async.stalls),
                      shaped ? "yes" : "-"});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nmean speedup: %.2fx over all %zu apps, %.2fx over "
                "the %zu pipeline-shaped apps\n",
                all_speedups.mean(),
                static_cast<size_t>(apps::appModels().size()),
                pipeline_speedups.mean(),
                static_cast<size_t>(pipeline_speedups.count()));
    std::printf("byte-identical sync vs async: %s\n",
                byte_identical ? "yes" : "NO");
    std::printf("deterministic async replay: %s\n",
                deterministic ? "yes" : "NO");

    bool accept = pipeline_speedups.mean() >= 1.5 &&
                  byte_identical && deterministic &&
                  failed_calls == 0;
    std::printf("acceptance (pipeline speedup >= 1.5x, identical, "
                "deterministic, no failed calls): %s\n",
                accept ? "PASS" : "FAIL");

    json.metric("pipeline_speedup", pipeline_speedups.mean());
    json.metric("mean_speedup_all_apps", all_speedups.mean());
    json.metric("max_speedup", all_speedups.max());
    json.metric("mean_overlap_fraction", overlaps.mean());
    json.metric("byte_identical", byte_identical ? 1 : 0);
    json.metric("deterministic_replay", deterministic ? 1 : 0);
    json.metric("acceptance_pass", accept ? 1 : 0);
    json.flush();
    bench::note("speedup = serialized makespan / pipelined makespan "
                "on the same trace; contents verified byte-identical "
                "via FNV-1a of the final pipeline object");
    return accept ? 0 : 1;
}
