/**
 * @file
 * Table 10 reproduction: API isolation granularity — how many
 * framework APIs each technique packs into each process, over the
 * motivating example's API set.
 */

#include "apps/omr_checker.hh"
#include "baselines/technique.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table10_granularity", argc, argv);
    bench::banner("Table 10", "API isolation granularity");

    // Discover the OMR app's API set.
    osim::Kernel kernel;
    apps::OmrChecker::Config omr;
    omr.imageRows = 48;
    omr.imageCols = 48;
    omr.questions = 2;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 1, omr);
    core::FreePartRuntime runtime(kernel, bench::registry(),
                                  bench::categorization(),
                                  core::PartitionPlan::inHost());
    apps::OmrChecker app(runtime, omr);
    app.setup();
    app.gradeSubmission(inputs[0]);
    app.finish();
    std::vector<std::string> apis = app.usedApis();
    std::printf("motivating example uses %zu distinct APIs (paper's "
                "build: 86)\n\n",
                apis.size());

    const char *paper_rows[] = {
        "paper: Code API        : 1 / 84 (2 processes + rest)",
        "paper: Code API & Data : 1 / 84 (+2 data processes)",
        "paper: Entire library  : 86 in one process",
        "paper: Individual APIs : 1 per process (86 processes)",
        "paper: Memory-based    : 86 in the host",
        "paper: FreePart        : 3 / 75 / 6 / 2 across 4 agents",
    };
    for (const char *row : paper_rows)
        std::printf("%s\n", row);
    std::printf("\n");

    util::TextTable table(
        {"Technique", "APIs per process (partition: count)"});
    for (size_t i = 1; i < baselines::kNumTechniques; ++i) {
        auto technique = static_cast<baselines::Technique>(i);
        baselines::TechniqueSetup setup =
            baselines::makeTechniqueSetup(technique, apis);
        std::map<uint32_t, size_t> per_partition;
        for (const std::string &api : apis) {
            fw::ApiType type = bench::categorization().at(api).type;
            ++per_partition[setup.plan.partitionFor(api, type)];
        }
        std::string cells;
        for (const auto &[partition, count] : per_partition) {
            if (!cells.empty())
                cells += "  ";
            cells += (partition == core::kHostPartition
                          ? std::string("host")
                          : std::to_string(partition)) +
                     ":" + std::to_string(count);
        }
        table.addRow({baselines::techniqueName(technique), cells});
    }
    std::printf("%s", table.render().c_str());
    json.metric("distinct_apis", static_cast<uint64_t>(apis.size()));
    json.flush();
    bench::note("FreePart's four type-based partitions mirror the "
                "paper's 3/75/6/2 split at this app's smaller scale");
    return 0;
}
