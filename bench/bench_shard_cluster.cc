/**
 * @file
 * Shard-cluster evaluation: aggregate throughput and latency of the
 * consistent-hash ShardRouter fanning the FreePart runtime out across
 * 1–8 shards, under uniform and skewed routing keys, plus the
 * kill-one-shard recovery drill — a shard dies mid-workload, its keys
 * remap to the survivors (bounded movement), inputs are rebuilt from
 * replicas, and every previously acknowledged call must still be
 * answered from the cluster dedup cache (at-least-once: no acked call
 * is lost). Shards run on independent simulated kernels, so cluster
 * makespan is the max per-shard elapsed time; everything is
 * deterministic sim-time and replays bit-for-bit.
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/placement_workload.hh"
#include "core/runtime.hh"
#include "shard/shard_router.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace freepart;

namespace {

constexpr size_t kSessions = 64;
constexpr size_t kOpsPerSession = 22; //!< unary chain between load/store
constexpr uint64_t kKeyBase = 0xbeef00;

const char *const kOps[] = {"cv2.GaussianBlur", "cv2.erode",
                            "cv2.dilate",       "cv2.flip",
                            "cv2.normalize",    "cv2.bitwise_not"};

/** Routing key of a session: 64 distinct keys spread over the ring
 *  (uniform), or collapsed onto 8 hot keys (skewed 8:1). */
uint64_t
sessionKey(size_t session, bool skewed)
{
    size_t slot = skewed ? session % 8 : session;
    return kKeyBase + slot * 97;
}

struct ClusterOutcome {
    shard::ClusterStats stats;
    double throughput = 0.0; //!< acked calls per simulated second
    double meanLatencyUs = 0.0; //!< mean sim latency per acked call
    uint64_t ackedCalls = 0;
    uint64_t lostAcks = 0;      //!< acked tokens not answered on resubmit
    double remapFraction = 0.0; //!< keys moved by the kill (probe set)
    uint32_t killedShard = 0;
};

/**
 * Drive kSessions concurrent sessions round-robin through the router:
 * each session loads an image, chains kOpsPerSession unary ops on its
 * own result refs, and stores the final frame. Every call carries a
 * unique dedup token. With kill_one, the busiest key's owner is
 * killed halfway through and all acknowledged tokens are resubmitted
 * at the end to verify none was lost.
 */
ClusterOutcome
runCluster(uint32_t shard_count, bool skewed, bool kill_one,
           bool async = false,
           shard::PlacementPolicy policy = shard::PlacementPolicy::Hash)
{
    shard::ShardRouterConfig config;
    config.shardCount = shard_count;
    config.runtime.ringBytes = 2 << 20;
    config.runtime.pipelineParallel = async;
    config.dedupEntries = 4096; // hold every token of this run
    config.placementPolicy = policy;
    if (policy == shard::PlacementPolicy::Optimized)
        config.repartitionEveryCalls = 192; // ~8 epochs over the run
    shard::ShardRouter router(
        bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });

    std::vector<ipc::Value> chain(kSessions); //!< last result ref
    std::vector<std::pair<uint64_t, uint64_t>> acked; //!< token, key
    ClusterOutcome out;

    const size_t steps = kOpsPerSession + 2; // imread ... imwrite
    const size_t totalCalls = kSessions * steps;
    size_t issued = 0;
    bool killed = false;
    shard::HashRing ringBefore = router.ring();

    for (size_t step = 0; step < steps; ++step) {
        for (size_t session = 0; session < kSessions; ++session) {
            if (kill_one && !killed && issued >= totalCalls / 2) {
                ringBefore = router.ring();
                out.killedShard =
                    router.ownerShardOf(sessionKey(0, skewed));
                router.killShard(out.killedShard);
                killed = true;
            }
            uint64_t key = sessionKey(session, skewed);
            uint64_t token =
                (static_cast<uint64_t>(session) << 32) | (step + 1);
            ipc::ValueList args;
            std::string api;
            if (step == 0) {
                api = "cv2.imread";
                args.emplace_back(std::string("/data/test.fpim"));
            } else if (step == steps - 1) {
                api = "cv2.imwrite";
                args.emplace_back(std::string("/out/s") +
                                  std::to_string(session) + ".fpim");
                args.push_back(chain[session]);
            } else {
                api = kOps[(step - 1) % (sizeof(kOps) / sizeof(*kOps))];
                args.push_back(chain[session]);
            }
            shard::RoutedCall call =
                router.invoke(key, api, std::move(args), token);
            ++issued;
            if (!call.result.ok)
                continue;
            acked.emplace_back(token, key);
            if (!call.result.values.empty() &&
                call.result.values[0].kind() == ipc::Value::Kind::Ref)
                chain[session] = call.result.values[0];
        }
    }

    if (kill_one) {
        // Bounded movement: how much of the keyspace the kill moved.
        std::vector<uint64_t> probes;
        for (uint64_t p = 0; p < 1000; ++p)
            probes.push_back(kKeyBase + p * 13);
        out.remapFraction = shard::HashRing::remappedFraction(
            ringBefore, router.ring(), probes);

        // At-least-once audit: every acknowledged call must still be
        // answered (from the dedup cache, without re-executing).
        for (auto &[token, key] : acked) {
            shard::RoutedCall replay = router.invoke(
                key, "cv2.bitwise_not", {}, token);
            if (!replay.result.ok || !replay.deduped)
                ++out.lostAcks;
        }
    }

    // Settle per-shard virtual timelines before reading makespans
    // (no-op in the serialized configuration).
    router.drainAll();
    out.stats = router.stats();
    out.ackedCalls = acked.size();
    out.throughput = out.stats.throughputCallsPerSec();
    if (!acked.empty())
        out.meanLatencyUs =
            static_cast<double>(out.stats.makespan) / 1000.0 /
            static_cast<double>(acked.size());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("shard_cluster", argc, argv);
    bench::banner("Shard cluster",
                  "consistent-hash routing across 1-8 FreePart "
                  "runtimes: throughput scaling, key skew, and "
                  "kill-one-shard recovery");

    util::TextTable table({"shards", "keys", "acked", "makespan ms",
                           "calls/s", "imbalance", "migrations",
                           "restores"});
    const uint32_t shardCounts[] = {1, 2, 4, 8};
    double uniformTp[9] = {0};
    double uniformImbalance4 = 0.0;

    for (uint32_t shards : shardCounts) {
        ClusterOutcome run = runCluster(shards, false, false);
        uniformTp[shards] = run.throughput;
        if (shards == 4)
            uniformImbalance4 = run.stats.imbalance();
        table.addRow({std::to_string(shards), "uniform",
                      std::to_string(run.ackedCalls),
                      util::fmtDouble(run.stats.makespan / 1e6, 2),
                      util::fmtDouble(run.throughput, 0),
                      util::fmtDouble(run.stats.imbalance(), 2),
                      std::to_string(run.stats.migrations),
                      std::to_string(run.stats.replicaRestores)});
        json.metric("throughput_uniform_" + std::to_string(shards) +
                        "shards",
                    run.throughput);
    }

    // Async-per-shard: same trace, per-shard runtimes in pipeline-
    // parallel mode — calls co-located by the ring overlap on each
    // shard's agent timelines instead of serializing its host clock.
    ClusterOutcome asyncRun = runCluster(4, false, false, true);
    table.addRow({"4", "uniform+async",
                  std::to_string(asyncRun.ackedCalls),
                  util::fmtDouble(asyncRun.stats.makespan / 1e6, 2),
                  util::fmtDouble(asyncRun.throughput, 0),
                  util::fmtDouble(asyncRun.stats.imbalance(), 2),
                  std::to_string(asyncRun.stats.migrations),
                  std::to_string(asyncRun.stats.replicaRestores)});

    ClusterOutcome skew = runCluster(4, true, false);
    table.addRow({"4", "skewed", std::to_string(skew.ackedCalls),
                  util::fmtDouble(skew.stats.makespan / 1e6, 2),
                  util::fmtDouble(skew.throughput, 0),
                  util::fmtDouble(skew.stats.imbalance(), 2),
                  std::to_string(skew.stats.migrations),
                  std::to_string(skew.stats.replicaRestores)});

    // Same skewed trace with the load-aware placement optimizer: the
    // 8 hot keys are re-spread 2-2-2-2 by the first re-partition
    // epochs, so cumulative imbalance converges toward 1.0.
    ClusterOutcome skewOpt = runCluster(
        4, true, false, false, shard::PlacementPolicy::Optimized);
    table.addRow({"4", "skewed+opt",
                  std::to_string(skewOpt.ackedCalls),
                  util::fmtDouble(skewOpt.stats.makespan / 1e6, 2),
                  util::fmtDouble(skewOpt.throughput, 0),
                  util::fmtDouble(skewOpt.stats.imbalance(), 2),
                  std::to_string(skewOpt.stats.migrations),
                  std::to_string(skewOpt.stats.replicaRestores)});
    std::printf("%s", table.render().c_str());

    double speedup4 = uniformTp[1] > 0.0
                          ? uniformTp[4] / uniformTp[1]
                          : 0.0;
    double speedup8 = uniformTp[1] > 0.0
                          ? uniformTp[8] / uniformTp[1]
                          : 0.0;
    std::printf("\nuniform-key speedup vs 1 shard: %.2fx at 4 "
                "shards, %.2fx at 8 shards\n",
                speedup4, speedup8);
    std::printf("skewed keys (8 hot keys / 64 sessions) at 4 shards: "
                "imbalance %.2f, %.2fx vs 1 shard\n",
                skew.stats.imbalance(),
                uniformTp[1] > 0.0 ? skew.throughput / uniformTp[1]
                                   : 0.0);
    double asyncSpeedup = uniformTp[4] > 0.0
                              ? asyncRun.throughput / uniformTp[4]
                              : 0.0;
    std::printf("async-per-shard at 4 shards: %.0f calls/s, %.2fx "
                "over the serialized 4-shard run (%llu async calls)\n",
                asyncRun.throughput, asyncSpeedup,
                static_cast<unsigned long long>(
                    asyncRun.stats.shardTotals.asyncCalls));
    std::printf("skewed keys with optimized placement: imbalance "
                "%.2f (%llu epochs, %llu placement moves, epoch peak "
                "%llu bytes)\n",
                skewOpt.stats.imbalance(),
                static_cast<unsigned long long>(
                    skewOpt.stats.repartitions),
                static_cast<unsigned long long>(
                    skewOpt.stats.placementMoves),
                static_cast<unsigned long long>(
                    skewOpt.stats.placementEpochBytesPeak));

    // ---- Zipf-skewed placement comparison (hash vs optimized) --------
    // Community-structured Zipf traffic (shared workload driver, see
    // placement_workload.hh): slot popularity follows a Zipf law and
    // every third op blends with a same-community partner, so hash
    // placement pays a cross-shard migration for most blends while
    // the optimizer co-places communities.
    util::TextTable zipfTable({"shards", "policy", "imbalance*",
                               "cross rate*", "calls/s", "epochs",
                               "moved KiB", "deferrals"});
    struct ZipfRun {
        uint32_t shards;
        shard::PlacementPolicy policy;
        bench::ZipfOutcome out;
    };
    std::vector<ZipfRun> zipfRuns;
    for (uint32_t shards : {4u, 8u}) {
        for (auto policy : {shard::PlacementPolicy::Hash,
                            shard::PlacementPolicy::Optimized}) {
            bench::ZipfWorkloadConfig wl;
            wl.shards = shards;
            wl.policy = policy;
            bench::ZipfOutcome run = bench::runZipfWorkload(wl);
            zipfTable.addRow(
                {std::to_string(shards),
                 policy == shard::PlacementPolicy::Hash ? "hash"
                                                        : "optimized",
                 util::fmtDouble(run.imbalanceSteady, 2),
                 util::fmtDouble(run.crossRateSteady, 3),
                 util::fmtDouble(run.throughput, 0),
                 std::to_string(run.stats.repartitions),
                 std::to_string(run.stats.placementMovedBytes / 1024),
                 std::to_string(run.stats.placementDeferrals)});
            zipfRuns.push_back({shards, policy, std::move(run)});
        }
    }
    std::printf("\nZipf-skewed placement (exponent 1.0, 48 keys, "
                "community blends; * = steady-state second half):\n%s",
                zipfTable.render().c_str());

    // ---- Kill-one-shard recovery drill -------------------------------
    ClusterOutcome kill = runCluster(4, false, true);
    std::printf("\nkill-one-of-four: shard %u killed mid-run; %llu/%llu"
                " calls acked, %llu acked lost on resubmit, remap "
                "fraction %.3f, %llu replica restores, %llu dedup "
                "answers\n",
                kill.killedShard,
                static_cast<unsigned long long>(kill.ackedCalls),
                static_cast<unsigned long long>(kSessions *
                                                (kOpsPerSession + 2)),
                static_cast<unsigned long long>(kill.lostAcks),
                kill.remapFraction,
                static_cast<unsigned long long>(
                    kill.stats.replicaRestores),
                static_cast<unsigned long long>(kill.stats.dedupHits));

    // Determinism: same schedule, fresh cluster, identical trace.
    ClusterOutcome a = runCluster(2, false, false);
    ClusterOutcome b = runCluster(2, false, false);
    bool identical =
        a.stats.makespan == b.stats.makespan &&
        a.ackedCalls == b.ackedCalls &&
        a.stats.migrations == b.stats.migrations &&
        a.stats.shardTotals.ipcMessages ==
            b.stats.shardTotals.ipcMessages;
    std::printf("deterministic replay: %s\n",
                identical ? "yes" : "NO (bug)");

    auto zipfOf = [&](uint32_t shards, shard::PlacementPolicy policy)
        -> const bench::ZipfOutcome & {
        for (const auto &run : zipfRuns)
            if (run.shards == shards && run.policy == policy)
                return run.out;
        return zipfRuns.front().out; // unreachable
    };
    const bench::ZipfOutcome &zh4 =
        zipfOf(4, shard::PlacementPolicy::Hash);
    const bench::ZipfOutcome &zo4 =
        zipfOf(4, shard::PlacementPolicy::Optimized);
    const bench::ZipfOutcome &zh8 =
        zipfOf(8, shard::PlacementPolicy::Hash);
    const bench::ZipfOutcome &zo8 =
        zipfOf(8, shard::PlacementPolicy::Optimized);
    bool budgetOk =
        skewOpt.stats.placementEpochBytesPeak <= (4u << 20) &&
        zo4.stats.placementEpochBytesPeak <= (4u << 20) &&
        zo8.stats.placementEpochBytesPeak <= (4u << 20);

    bool pass = speedup4 >= 2.5 && kill.lostAcks == 0 &&
                kill.remapFraction <= 0.35 && identical &&
                skewOpt.stats.imbalance() <= 1.2 &&
                zo4.crossRateSteady < zh4.crossRateSteady &&
                zo8.crossRateSteady < zh8.crossRateSteady && budgetOk;

    json.metric("speedup_uniform_4shards", speedup4);
    json.metric("speedup_uniform_8shards", speedup8);
    json.metric("throughput_async_4shards", asyncRun.throughput);
    json.metric("async_speedup_4shards", asyncSpeedup);
    json.metric("throughput_skewed_4shards", skew.throughput);
    json.metric("imbalance_skewed_4shards", skew.stats.imbalance());
    json.metric("imbalance_uniform_4shards", uniformImbalance4);
    json.metric("kill_lost_acks", kill.lostAcks);
    json.metric("kill_remap_fraction", kill.remapFraction);
    json.metric("kill_replica_restores", kill.stats.replicaRestores);
    json.metric("kill_acked_calls", kill.ackedCalls);
    json.metric("kill_migrations", kill.stats.migrations);
    json.metric("deterministic_replay", identical ? 1 : 0);
    json.metric("imbalance_skewed_opt_4shards",
                skewOpt.stats.imbalance());
    json.metric("skewed_opt_repartitions", skewOpt.stats.repartitions);
    json.metric("skewed_opt_epoch_peak_bytes",
                skewOpt.stats.placementEpochBytesPeak);
    json.metric("cross_shard_calls_skewed_4shards",
                skew.stats.crossShardCalls);
    json.metric("cross_shard_calls_skewed_opt_4shards",
                skewOpt.stats.crossShardCalls);
    json.metric("proxied_bytes_skewed_4shards",
                skew.stats.proxiedBytes);
    json.metric("migrated_bytes_skewed_4shards",
                skew.stats.migratedBytes);
    json.metric("imbalance_zipf_hash_4shards", zh4.imbalanceSteady);
    json.metric("imbalance_zipf_opt_4shards", zo4.imbalanceSteady);
    json.metric("imbalance_zipf_hash_8shards", zh8.imbalanceSteady);
    json.metric("imbalance_zipf_opt_8shards", zo8.imbalanceSteady);
    json.metric("cross_rate_zipf_hash_4shards", zh4.crossRateSteady);
    json.metric("cross_rate_zipf_opt_4shards", zo4.crossRateSteady);
    json.metric("cross_rate_zipf_hash_8shards", zh8.crossRateSteady);
    json.metric("cross_rate_zipf_opt_8shards", zo8.crossRateSteady);
    json.metric("throughput_zipf_hash_4shards", zh4.throughput);
    json.metric("throughput_zipf_opt_4shards", zo4.throughput);
    json.metric("placement_budget_respected", budgetOk ? 1 : 0);
    json.metric("acceptance_pass", pass ? 1 : 0);
    json.flush();

    bench::note("shards are independent simulated machines: cluster "
                "makespan is the max per-shard elapsed sim time, "
                "throughput = acked calls / makespan; cross-shard "
                "object traffic pays a simulated network cost (80 us "
                "+ 0.25 ns/B) on top of serialization");
    return pass ? 0 : 1;
}
