/**
 * @file
 * Table 5 + §5.3 reproduction: every evaluation CVE is exploited
 * against (a) an unprotected run and (b) FreePart. The paper's
 * result — all attacks mitigated under FreePart, none without it —
 * must hold, including the data-exfiltration and data-corruption
 * scenarios of §5.3.
 */

#include "attacks/attack_driver.hh"
#include "bench/bench_common.hh"

using namespace freepart;

namespace {

attacks::AttackOutcome
runAttack(const attacks::CveRecord &record, bool with_freepart,
          bool &host_alive)
{
    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::RuntimeConfig config;
    if (!with_freepart) {
        config.enforceMemoryProtection = false;
        config.restrictSyscalls = false;
    }
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        with_freepart ? core::PartitionPlan::freePartDefault()
                      : core::PartitionPlan::inHost(),
        config);
    osim::Addr secret = runtime.allocHostData("critical", 64);
    runtime.hostProcess().space().write(secret, "CRITICAL", 8);

    attacks::AttackDriver driver(runtime, bench::registry());
    attacks::AttackSpec spec;
    spec.cve = record.id;
    spec.goal = attacks::goalForPayload(record.defaultPayload);
    spec.targetPid = runtime.hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 8;
    attacks::AttackOutcome outcome = driver.launch(spec);
    host_alive = runtime.hostAlive();
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table5_attack_matrix", argc, argv);
    bench::banner("Table 5 / §5.3",
                  "Attack mitigation matrix over the 18 CVEs");

    util::TextTable table({"CVE", "Class", "API type", "Samples",
                           "unprotected", "FreePart"});
    size_t mitigated = 0;
    size_t succeeded_without = 0;
    for (const attacks::CveRecord &record :
         attacks::evaluationCves()) {
        attacks::AttackGoal goal =
            attacks::goalForPayload(record.defaultPayload);
        bool alive_plain = true, alive_fp = true;
        attacks::AttackOutcome plain =
            runAttack(record, false, alive_plain);
        attacks::AttackOutcome fp = runAttack(record, true, alive_fp);
        bool plain_succeeded = !plain.mitigated(goal);
        bool fp_mitigated = fp.mitigated(goal) && alive_fp;
        mitigated += fp_mitigated ? 1 : 0;
        succeeded_without += plain_succeeded ? 1 : 0;
        std::string samples;
        for (int id : record.samples)
            samples += (samples.empty() ? "" : ",") +
                       std::to_string(id);
        table.addRow({record.id, record.vulnClass,
                      fw::apiTypeShortName(record.apiType), samples,
                      plain_succeeded ? "EXPLOITED" : "survived",
                      fp_mitigated ? "mitigated" : "FAILED"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nFreePart mitigated %zu/%zu attacks "
                "(paper: 18/18); without isolation %zu/%zu "
                "succeeded\n",
                mitigated, attacks::evaluationCves().size(),
                succeeded_without, attacks::evaluationCves().size());
    json.metric("attacks_mitigated", static_cast<uint64_t>(mitigated));
    json.metric("attacks_total",
                static_cast<uint64_t>(attacks::evaluationCves().size()));
    json.flush();

    // §5.3 scenario analysis: exfiltration + corruption.
    bench::banner("§5.3", "Data exfiltration / corruption scenarios");
    {
        osim::Kernel kernel;
        fw::seedFixtureFiles(kernel);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            core::PartitionPlan::freePartDefault());
        osim::Addr profile = runtime.allocHostData("user-profile",
                                                   128);
        runtime.hostProcess().space().write(
            profile, "name:alice;ssn:123-45-6789", 26);
        attacks::AttackDriver driver(runtime, bench::registry());
        attacks::AttackSpec exfil;
        exfil.cve = "CVE-2020-10378";
        exfil.goal = attacks::AttackGoal::Exfiltrate;
        exfil.targetPid = runtime.hostPid();
        exfil.targetAddr = profile;
        exfil.targetLen = 26;
        attacks::AttackOutcome leak = driver.launch(exfil);
        std::printf("exfiltration of the user profile: %s "
                    "(network bytes sent: %zu)\n",
                    leak.dataLeaked ? "LEAKED" : "blocked",
                    kernel.network().bytesSent());
        std::printf("loading/processing agents cannot send(): the "
                    "allowlists exclude write/send (Table 7)\n");
    }
    return 0;
}
